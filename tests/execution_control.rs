//! Integration tests for the execution-control layer: cooperative
//! cancellation and deadlines across all five executors (dense sweep,
//! sparse per-op, density, stabilizer, trajectory), the partial-result
//! contract for trajectory ensembles, and the bit-identity guarantee —
//! control checks read the clock and an atomic flag only, never an RNG
//! stream, so a run that completes under a generous deadline is
//! byte-identical to one with no control at all.

use qclab::prelude::*;
use qclab_core::program::{BackendRequest, PlanOptions};
use qclab_core::sim::control::{ExecutionControl, StopCause};
use qclab_core::sim::density::{run_noisy, run_noisy_controlled, DensityState, NoiseModel};
use qclab_core::sim::guard::ResourceLimits;
use qclab_core::sim::sparse::{self, SparseOptions, SparseState};
use qclab_core::sim::stabilizer::{run_program, run_program_controlled};
use qclab_core::sim::trajectory::{run_trajectories, NoiseSpec, PauliChannel, TrajectoryConfig};
use qclab_core::sim::SimOptions;
use qclab_core::QclabError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An n-qubit circuit of `layers` H + CNOT-chain layers with terminal
/// measurements: enough ops to cross any check interval when unfused.
fn workload(n: usize, layers: usize) -> QCircuit {
    let mut c = QCircuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            c.push_back(Hadamard::new(q));
        }
        for q in 0..n - 1 {
            c.push_back(CNOT::new(q, q + 1));
        }
    }
    for q in 0..n {
        c.push_back(Measurement::z(q));
    }
    c
}

/// A control whose cancel token is already set: the first check fires.
fn cancelled_control() -> ExecutionControl {
    let token = Arc::new(AtomicBool::new(true));
    ExecutionControl::with_cancel_token(token).check_every(1)
}

/// A control whose deadline is already in the past.
fn expired_control() -> ExecutionControl {
    ExecutionControl::with_deadline(Instant::now() - Duration::from_secs(1)).check_every(1)
}

/// A control that can never plausibly fire during a test run.
fn generous_control() -> ExecutionControl {
    ExecutionControl::with_timeout(Duration::from_secs(3600))
}

#[test]
fn dense_run_observes_cancellation() {
    let c = workload(3, 4);
    let opts = SimOptions {
        control: cancelled_control(),
        ..SimOptions::default()
    };
    match c.simulate_bitstring_with("000", &opts) {
        Err(QclabError::Cancelled(p)) => assert!(p.ops_done >= 1),
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn dense_run_observes_deadline() {
    let c = workload(3, 4);
    let opts = SimOptions {
        control: expired_control(),
        ..SimOptions::default()
    };
    assert!(matches!(
        c.simulate_bitstring_with("000", &opts),
        Err(QclabError::DeadlineExceeded(_))
    ));
}

#[test]
fn sparse_run_observes_cancellation_and_deadline() {
    let c = workload(3, 4);
    let program = c.compile_with(&PlanOptions::sparse());
    let run = |control: &ExecutionControl| {
        sparse::execute_controlled(
            &program,
            SparseState::from_bitstring("000").unwrap(),
            &SparseOptions::default(),
            control,
        )
    };
    assert!(matches!(
        run(&cancelled_control()),
        Err(QclabError::Cancelled(_))
    ));
    assert!(matches!(
        run(&expired_control()),
        Err(QclabError::DeadlineExceeded(_))
    ));
    assert!(run(&generous_control()).is_ok());
}

#[test]
fn density_run_observes_cancellation_and_deadline() {
    let c = workload(2, 3);
    let psi = CVec::basis_state(4, 0);
    let rho = DensityState::from_pure(&psi);
    let noise = NoiseModel { after_gate: None };
    assert!(matches!(
        run_noisy_controlled(&c, &rho, &noise, &cancelled_control()),
        Err(QclabError::Cancelled(_))
    ));
    assert!(matches!(
        run_noisy_controlled(&c, &rho, &noise, &expired_control()),
        Err(QclabError::DeadlineExceeded(_))
    ));
    // a generous deadline reproduces the uncontrolled evolution exactly
    let plain = run_noisy(&c, &rho, &noise).unwrap();
    let timed = run_noisy_controlled(&c, &rho, &noise, &generous_control()).unwrap();
    assert_eq!(plain.purity(), timed.purity());
    assert_eq!(
        plain.fidelity_with_pure(&psi),
        timed.fidelity_with_pure(&psi)
    );
}

#[test]
fn stabilizer_run_observes_cancellation_and_deadline() {
    // Clifford-only workload: H / CNOT layers + measurements
    let c = workload(3, 4);
    let program = c.compile_with(&PlanOptions::unfused());
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    assert!(matches!(
        run_program_controlled(&program, &mut rng, &cancelled_control()),
        Err(QclabError::Cancelled(_))
    ));
    assert!(matches!(
        run_program_controlled(&program, &mut rng, &expired_control()),
        Err(QclabError::DeadlineExceeded(_))
    ));
    // control checks never draw from the RNG: a fresh seed under a
    // generous deadline matches the uncontrolled run bit for bit
    let mut a = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let mut b = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let plain = run_program(&program, &mut a).unwrap();
    let timed = run_program_controlled(&program, &mut b, &generous_control()).unwrap();
    assert_eq!(plain.record, timed.record);
}

#[test]
fn cancelled_trajectory_ensemble_returns_empty_partial() {
    // ensembles report partial progress as Ok, not Err: a cancelled run
    // carries its completed shots (here none) and the stop cause
    let c = workload(3, 2);
    let config = TrajectoryConfig {
        shots: 40,
        seed: 3,
        noise: NoiseSpec {
            after_gate: Some(PauliChannel::Depolarizing(0.02)),
            ..NoiseSpec::default()
        },
        control: cancelled_control(),
        ..TrajectoryConfig::default()
    };
    let result = run_trajectories(&c, &config).unwrap();
    assert!(result.is_partial());
    assert_eq!(result.stop_cause(), Some(StopCause::Cancelled));
    assert_eq!(result.shots(), 0);
    assert_eq!(result.requested_shots(), 40);
    assert!(result.counts().is_empty());
}

#[test]
fn timed_out_trajectory_ensemble_keeps_completed_shots() {
    // A deadline that expires mid-ensemble: make each shot heavy enough
    // (12 qubits, noisy per-shot path) that 200 shots take far longer
    // than the 20 ms budget, while a single shot completes well inside
    // it. The exact stop point is timing-dependent; the contract —
    // completed count in [0, requested], consistent counts total,
    // deadline cause — is not.
    let c = workload(12, 6);
    let config = TrajectoryConfig {
        shots: 200,
        seed: 9,
        noise: NoiseSpec {
            after_gate: Some(PauliChannel::Depolarizing(0.01)),
            ..NoiseSpec::default()
        },
        control: ExecutionControl::with_timeout(Duration::from_millis(20)),
        // pin the heavy state-vector per-shot engine this test's
        // timing model is built on (the Clifford workload would
        // otherwise route to the frame sampler and finish instantly)
        frames: false,
        ..TrajectoryConfig::default()
    };
    let result = run_trajectories(&c, &config).unwrap();
    assert_eq!(result.requested_shots(), 200);
    let tallied: u64 = result.counts().values().sum();
    assert_eq!(tallied, result.shots(), "counts must cover completed shots");
    if result.is_partial() {
        assert_eq!(result.stop_cause(), Some(StopCause::DeadlineExceeded));
        assert!(result.shots() < 200);
    } else {
        // a very fast machine may finish; the contract still holds
        assert_eq!(result.shots(), 200);
    }
}

#[test]
fn generous_deadline_trajectories_are_bit_identical() {
    let c = workload(4, 3);
    let base = TrajectoryConfig {
        shots: 150,
        seed: 21,
        noise: NoiseSpec {
            after_gate: Some(PauliChannel::BitFlip(0.05)),
            idle: Some(PauliChannel::PhaseFlip(0.02)),
            ..NoiseSpec::default()
        },
        ..TrajectoryConfig::default()
    };
    let plain = run_trajectories(&c, &base).unwrap();
    let timed = run_trajectories(
        &c,
        &TrajectoryConfig {
            control: generous_control(),
            ..base.clone()
        },
    )
    .unwrap();
    assert!(!timed.is_partial());
    assert_eq!(plain.counts(), timed.counts());
    assert_eq!(plain.injected_errors(), timed.injected_errors());
    assert_eq!(plain.shots(), timed.shots());
}

#[test]
fn generous_deadline_dense_simulation_is_bit_identical() {
    let c = workload(4, 3);
    let plain = c.simulate_bitstring("0000").unwrap();
    let timed = c
        .simulate_bitstring_with(
            "0000",
            &SimOptions {
                control: generous_control(),
                ..SimOptions::default()
            },
        )
        .unwrap();
    assert_eq!(plain.results(), timed.results());
    assert_eq!(plain.probabilities(), timed.probabilities());
}

#[test]
fn cancellation_respects_the_check_interval_bound() {
    // with check_every(8) on a 50-op program, the run stops within 8
    // ops of the (pre-set) cancellation — never later
    let c = workload(3, 4); // 4 * (3 H + 2 CNOT) + 3 M = 23 ops unfused
    let token = Arc::new(AtomicBool::new(true));
    let opts = SimOptions {
        control: ExecutionControl::with_cancel_token(Arc::clone(&token)).check_every(8),
        kernel: qclab_core::sim::kernel::KernelConfig {
            fuse: false,
            ..qclab_core::sim::kernel::KernelConfig::default()
        },
        ..SimOptions::default()
    };
    match c.simulate_bitstring_with("000", &opts) {
        Err(QclabError::Cancelled(p)) => {
            assert!(p.ops_done <= 8, "stopped after {} ops", p.ops_done)
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn mid_run_cancellation_from_another_thread_stops_the_ensemble() {
    // the real use case: a controller thread flips the shared token
    // while the ensemble runs; the run returns Ok(partial) promptly
    let c = workload(12, 6);
    let token = Arc::new(AtomicBool::new(false));
    let config = TrajectoryConfig {
        shots: 100_000,
        seed: 2,
        noise: NoiseSpec {
            after_gate: Some(PauliChannel::Depolarizing(0.01)),
            ..NoiseSpec::default()
        },
        control: ExecutionControl::with_cancel_token(Arc::clone(&token)),
        // pin the state-vector engine: 100k shots must still be
        // running when the controller thread cancels at 30 ms
        frames: false,
        ..TrajectoryConfig::default()
    };
    let canceller = {
        let token = Arc::clone(&token);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            token.store(true, Ordering::SeqCst);
        })
    };
    let result = run_trajectories(&c, &config).unwrap();
    canceller.join().unwrap();
    assert!(
        result.is_partial(),
        "100k heavy shots cannot finish in 30ms"
    );
    assert_eq!(result.stop_cause(), Some(StopCause::Cancelled));
    assert!(result.shots() < 100_000);
    let tallied: u64 = result.counts().values().sum();
    assert_eq!(tallied, result.shots());
}

#[test]
fn routed_auto_surfaces_deadline_as_error_when_sparse_cannot_rescue() {
    // under Auto an expired deadline degrades dense -> sparse; with
    // check_every(1) the sparse retry hits its own first check, so the
    // deadline still surfaces — as DeadlineExceeded, never a panic
    let c = workload(3, 4);
    let opts = SimOptions {
        control: expired_control(),
        ..SimOptions::default()
    };
    assert!(matches!(
        c.simulate_bitstring_routed("000", &opts, BackendRequest::Auto),
        Err(QclabError::DeadlineExceeded(_))
    ));
    // a pinned-sparse run under the same control also stops cleanly
    assert!(matches!(
        c.simulate_bitstring_routed("000", &opts, BackendRequest::Sparse),
        Err(QclabError::DeadlineExceeded(_))
    ));
}

#[test]
fn resource_limits_still_bind_under_control() {
    // control never bypasses the guard: an oversized register is
    // refused up front even with an (irrelevant) generous deadline
    let c = workload(3, 1);
    let opts = SimOptions {
        control: generous_control(),
        limits: ResourceLimits::with_max_qubits(2),
        ..SimOptions::default()
    };
    assert!(matches!(
        c.simulate_bitstring_with("000", &opts),
        Err(QclabError::ResourceExhausted { .. })
    ));
}
