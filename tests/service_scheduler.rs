//! Integration contract of the multi-tenant scheduler
//! (`qclab_core::service`): per-job bit-identity under coalescing,
//! fair-share admission (a big blocked job must not starve small ones),
//! immediate resolution of queued-job cancellations, deadline stops
//! with partial results, and error isolation (a refused job never
//! disturbs its neighbours).

use qclab::prelude::*;
use qclab_core::service::{ErrorKind, JobSpec, Scheduler, ServiceConfig};
use qclab_core::sim::trajectory::{run_trajectories, NoiseSpec, PauliChannel, TrajectoryConfig};
use std::time::{Duration, Instant};

/// Terminal-measurement circuit (alias path); the angle tags the
/// fingerprint.
fn sampled_circuit(n: usize, tag: f64) -> QCircuit {
    let mut c = QCircuit::new(n);
    c.push_back(Hadamard::new(0));
    c.push_back(RotationY::new(1 % n, tag));
    for q in 1..n.min(4) {
        c.push_back(CNOT::new(0, q));
    }
    c.push_back(Measurement::z(0));
    c.push_back(Measurement::z(n - 1));
    c
}

/// A circuit the per-shot engine must grind through (noise disables
/// every fast path on a non-Clifford stream) — used where a job must
/// take real wall time. `tag` makes the fingerprint unique: two slow
/// jobs with distinct tags can never coalesce into one group.
fn slow_circuit(n: usize, tag: f64) -> QCircuit {
    let mut c = QCircuit::new(n);
    for q in 0..n {
        c.push_back(Hadamard::new(q));
        c.push_back(RotationY::new(q, 0.1 + tag + q as f64 * 0.05));
    }
    for q in 0..n - 1 {
        c.push_back(CNOT::new(q, q + 1));
    }
    c.push_back(Measurement::z(0));
    c.push_back(Measurement::z(n - 1));
    c
}

fn noisy_base() -> TrajectoryConfig {
    let mut base = TrajectoryConfig {
        parallel: false,
        noise: NoiseSpec {
            after_gate: Some(PauliChannel::BitFlip(0.01)),
            ..NoiseSpec::default()
        },
        ..TrajectoryConfig::default()
    };
    base.kernel.allow_parallel = false;
    base
}

#[test]
fn coalesced_jobs_are_bit_identical_to_standalone_runs() {
    let cfg = ServiceConfig {
        workers: 3,
        batch_window: Duration::from_millis(5),
        ..ServiceConfig::default()
    };
    let base = cfg.base.clone();
    let sched = Scheduler::new(cfg);
    // 12 jobs over 3 fingerprints: heavy duplication forces coalescing
    let jobs: Vec<(usize, u64)> = (0..12).map(|i| (i % 3, 1000 + i as u64)).collect();
    let handles: Vec<_> = jobs
        .iter()
        .enumerate()
        .map(|(i, &(fp, seed))| {
            sched
                .submit(JobSpec::new(
                    format!("j{i}"),
                    sampled_circuit(4, 0.2 + fp as f64 * 0.3),
                    800,
                    seed,
                ))
                .expect("admitted")
        })
        .collect();
    for (h, &(fp, seed)) in handles.into_iter().zip(&jobs) {
        let out = h.wait().expect("job succeeds");
        let mut config = base.clone();
        config.seed = seed;
        config.shots = 800;
        let alone = run_trajectories(&sampled_circuit(4, 0.2 + fp as f64 * 0.3), &config).unwrap();
        assert_eq!(
            &out.counts,
            alone.counts(),
            "seed {seed} diverged from its standalone run"
        );
        assert_eq!(out.shots, 800);
        assert_eq!(out.path, alone.path().to_string());
    }
    let stats = sched.stats();
    assert_eq!(stats.completed, 12);
    assert!(
        stats.dedup_hits > 0,
        "duplicate fingerprints must register dedup hits"
    );
    assert!(
        stats.coalesce_hits > 0,
        "duplicate fingerprints queued together must coalesce"
    );
    sched.shutdown();
}

#[test]
fn fair_share_small_jobs_pass_a_blocked_large_job() {
    let small_n = 4;
    let large_n = 16;
    let large_bytes = 16u64 << large_n;
    let cfg = ServiceConfig {
        workers: 2,
        // exactly one large job fits; a second must wait, but small
        // jobs (16·2^4 = 256 B) still fit beside the first
        global_state_bytes: large_bytes + (16 << (small_n + 2)),
        batch_window: Duration::ZERO,
        base: noisy_base(),
        ..ServiceConfig::default()
    };
    let sched = Scheduler::new(cfg);
    // L1 runs (per-shot noise on 2^18 amplitudes: real work)
    let l1 = sched
        .submit(JobSpec::new("L1", slow_circuit(large_n, 0.0), 60, 1))
        .expect("L1 admitted");
    // L2 parks at the queue head: over budget while L1 runs
    let l2 = sched
        .submit(JobSpec::new("L2", slow_circuit(large_n, 1.0), 60, 2))
        .expect("L2 queued");
    // small jobs submitted *behind* the blocked L2
    let smalls: Vec<_> = (0..8)
        .map(|i| {
            sched
                .submit(JobSpec::new(
                    format!("s{i}"),
                    sampled_circuit(small_n, 0.4),
                    200,
                    50 + i,
                ))
                .expect("small job admitted")
        })
        .collect();
    let mut max_queue_ms = 0f64;
    for h in smalls {
        let out = h.wait().expect("small job succeeds");
        max_queue_ms = max_queue_ms.max(out.telemetry.queue_ms);
    }
    let l1_out = l1.wait().expect("L1 succeeds");
    let l2_out = l2.wait().expect("L2 succeeds");
    // strict FIFO admission would hold every small job until L1
    // finished and freed the budget for L2; fair-share admits them
    // immediately, so their queue wait must be far below L1's runtime
    assert!(
        max_queue_ms < l1_out.telemetry.run_ms.max(l2_out.telemetry.run_ms) / 2.0,
        "small jobs waited {max_queue_ms:.1} ms behind the blocked large job \
         (L1 ran {:.1} ms, L2 {:.1} ms)",
        l1_out.telemetry.run_ms,
        l2_out.telemetry.run_ms
    );
    assert!(
        l2_out.telemetry.queue_ms >= l1_out.telemetry.run_ms / 2.0,
        "L2 should have waited for L1's budget (queued {:.1} ms, L1 ran {:.1} ms)",
        l2_out.telemetry.queue_ms,
        l1_out.telemetry.run_ms
    );
    sched.shutdown();
}

#[test]
fn cancelling_a_queued_job_resolves_immediately() {
    let cfg = ServiceConfig {
        workers: 1,
        batch_window: Duration::ZERO,
        base: noisy_base(),
        ..ServiceConfig::default()
    };
    let sched = Scheduler::new(cfg);
    // occupy the only worker with real work
    let busy = sched
        .submit(JobSpec::new("busy", slow_circuit(14, 0.0), 300, 1))
        .expect("admitted");
    // park a victim behind it (different fingerprint: no coalescing)
    let victim = sched
        .submit(JobSpec::new("victim", sampled_circuit(4, 0.9), 100_000, 2))
        .expect("queued");
    let t0 = Instant::now();
    victim.cancel();
    let result = victim.wait();
    let elapsed = t0.elapsed();
    let err = result.expect_err("cancelled queued job must not succeed");
    assert_eq!(err.kind, ErrorKind::Cancelled);
    assert_eq!(err.kind.exit_code(), 7);
    assert!(err.partial.is_none(), "a never-started job has no partial");
    assert!(
        elapsed < Duration::from_millis(100),
        "queued-job cancellation must resolve without waiting for a \
         worker (took {elapsed:?})"
    );
    let busy_out = busy.wait().expect("unrelated job unaffected");
    assert_eq!(busy_out.shots, 300);
    assert!(sched.stats().cancelled >= 1);
    sched.shutdown();
}

#[test]
fn running_job_cancellation_keeps_partial_shots() {
    let cfg = ServiceConfig {
        workers: 1,
        batch_window: Duration::ZERO,
        base: noisy_base(),
        ..ServiceConfig::default()
    };
    let sched = Scheduler::new(cfg);
    let job = sched
        .submit(JobSpec::new("slow", slow_circuit(14, 0.0), 100_000, 3))
        .expect("admitted");
    // wait until it is actually running, then cancel mid-ensemble
    std::thread::sleep(Duration::from_millis(60));
    job.cancel();
    let err = job.wait().expect_err("cancelled job must not succeed");
    assert_eq!(err.kind, ErrorKind::Cancelled);
    let partial = err.partial.expect("a running job keeps completed shots");
    assert!(partial.shots < 100_000, "cancellation must stop the run");
    sched.shutdown();
}

#[test]
fn deadline_resolves_as_timeout_with_partial_results() {
    let cfg = ServiceConfig {
        workers: 1,
        batch_window: Duration::ZERO,
        base: noisy_base(),
        ..ServiceConfig::default()
    };
    let sched = Scheduler::new(cfg);
    let mut spec = JobSpec::new("deadline", slow_circuit(14, 0.0), 100_000, 4);
    spec.timeout_ms = Some(80);
    let job = sched.submit(spec).expect("admitted");
    let err = job.wait().expect_err("the deadline must fire");
    assert_eq!(err.kind, ErrorKind::Timeout);
    assert_eq!(err.kind.exit_code(), 7);
    let partial = err.partial.expect("timeout keeps completed shots");
    assert!(partial.shots < 100_000);
    let tally: u64 = partial.counts.values().sum();
    assert_eq!(tally, partial.shots, "partial counts must be consistent");
    sched.shutdown();
}

#[test]
fn rejections_isolate_and_the_scheduler_survives() {
    let cfg = ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    };
    let base = cfg.base.clone();
    let sched = Scheduler::new(cfg);
    // an un-admittable job is refused at the door…
    let err = sched
        .submit(JobSpec::new("huge", sampled_circuit(48, 0.1), 10, 1))
        .expect_err("a 48-qubit dense job must be refused");
    assert_eq!(err.kind, ErrorKind::Resource);
    assert_eq!(err.kind.exit_code(), 6);
    // …and the scheduler keeps serving everyone else, bit-identically
    let h = sched
        .submit(JobSpec::new("after", sampled_circuit(4, 0.5), 400, 9))
        .expect("admitted after a rejection");
    let out = h.wait().expect("job succeeds");
    let mut config = base;
    config.seed = 9;
    config.shots = 400;
    let alone = run_trajectories(&sampled_circuit(4, 0.5), &config).unwrap();
    assert_eq!(&out.counts, alone.counts());
    let stats = sched.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 1);
    sched.shutdown();
}

#[test]
fn no_coalesce_mode_still_dedups_plans_and_matches_standalone() {
    let cfg = ServiceConfig {
        workers: 2,
        coalesce: false,
        ..ServiceConfig::default()
    };
    let base = cfg.base.clone();
    let sched = Scheduler::new(cfg);
    let handles: Vec<_> = (0..6)
        .map(|i| {
            sched
                .submit(JobSpec::new(
                    format!("n{i}"),
                    sampled_circuit(4, 0.7),
                    500,
                    70 + i,
                ))
                .expect("admitted")
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let out = h.wait().expect("job succeeds");
        assert_eq!(
            out.telemetry.coalesced, 1,
            "--no-coalesce must run jobs alone"
        );
        let mut config = base.clone();
        config.seed = 70 + i as u64;
        config.shots = 500;
        let alone = run_trajectories(&sampled_circuit(4, 0.7), &config).unwrap();
        assert_eq!(&out.counts, alone.counts());
    }
    let stats = sched.stats();
    assert_eq!(stats.coalesce_hits, 0);
    assert!(
        stats.dedup_hits > 0,
        "plan dedup is independent of coalescing"
    );
    sched.shutdown();
}
