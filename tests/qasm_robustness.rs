//! Robustness tests for the OpenQASM front end: arbitrary input must
//! never panic — malformed programs produce structured parse errors with
//! line information.

use proptest::prelude::*;
use qclab_qasm::from_qasm;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Completely arbitrary strings: the parser returns Ok or Err, never
    /// panics.
    #[test]
    fn arbitrary_input_never_panics(src in ".{0,200}") {
        let _ = from_qasm(&src);
    }

    /// QASM-flavoured token soup: random keywords, numbers and
    /// punctuation stitched together.
    #[test]
    fn token_soup_never_panics(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("qreg".to_string()),
                Just("creg".to_string()),
                Just("gate".to_string()),
                Just("measure".to_string()),
                Just("reset".to_string()),
                Just("barrier".to_string()),
                Just("h".to_string()),
                Just("cx".to_string()),
                Just("rz".to_string()),
                Just("q[0]".to_string()),
                Just("q[1]".to_string()),
                Just("c[0]".to_string()),
                Just("->".to_string()),
                Just("(pi/2)".to_string()),
                Just(";".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just(",".to_string()),
                Just("q".to_string()),
                Just("2".to_string()),
            ],
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = from_qasm(&src);
    }

    /// Truncations of a valid program fail gracefully (or parse, for
    /// prefixes that happen to be complete).
    #[test]
    fn truncated_program_never_panics(cut in 0usize..200) {
        let full = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\n\
                    gate rzz2(t) a,b { cx a,b; rz(t) b; cx a,b; }\n\
                    h q[0];\nrzz2(pi/4) q[0], q[1];\nmeasure q -> c;\n";
        let cut = cut.min(full.len());
        // avoid slicing inside a UTF-8 boundary (input is ASCII here)
        let _ = from_qasm(&full[..cut]);
    }
}

#[test]
fn specific_malformed_programs_error_cleanly() {
    let cases = [
        "qreg q[0];",                        // empty register is useless but parses; gate fails
        "qreg q[2]; h q[5];",                // out of range
        "qreg q[2]; cx q[0], q[0];",         // duplicate qubit
        "qreg q[2]; gate g a { h a; } g q;", // broadcast through gate def
        "qreg q[1]; rz() q[0];",             // empty params
        "qreg q[1]; rz(1,2) q[0];",          // too many params
        "qreg q[1]; measure q[0] -> ;",      // missing cbit
        "OPENQASM 3.0; qreg q[1];",          // unsupported version
        "qreg q[1]; gate loop a { loop a; } loop q[0];", // infinite recursion
    ];
    for src in cases {
        // some are permissible; the point is that none of them panic
        let _ = from_qasm(src);
    }
    // recursion depth specifically must be a clean error, not a stack
    // overflow
    let e = from_qasm("qreg q[1]; gate loop a { loop a; } loop q[0];");
    assert!(e.is_err());
}
