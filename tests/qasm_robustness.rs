//! Robustness tests for the OpenQASM front end: arbitrary input must
//! never panic — malformed programs produce structured parse errors with
//! line information.

use proptest::prelude::*;
use qclab_qasm::from_qasm;

/// Fuzz case count, overridable for the hardened CI job: set
/// `QCLAB_PROPTEST_CASES` to run more (or fewer) cases per property.
fn fuzz_cases() -> u32 {
    std::env::var("QCLAB_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// A representative valid program exercising registers, gate defs,
/// parameters, broadcasts, measurements, resets and barriers — the
/// seed for the mutation fuzzers below.
const VALID_PROGRAM: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n\
    qreg q[3];\ncreg c[3];\n\
    gate rzz2(t) a,b { cx a,b; rz(t) b; cx a,b; }\n\
    h q[0];\nx q[1];\nrzz2(pi/4) q[0], q[1];\ncz q[1], q[2];\n\
    barrier q;\nreset q[2];\nu3(0.1, 0.2, 0.3) q[2];\nmeasure q -> c;\n";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Completely arbitrary strings: the parser returns Ok or Err, never
    /// panics.
    #[test]
    fn arbitrary_input_never_panics(src in ".{0,200}") {
        let _ = from_qasm(&src);
    }

    /// QASM-flavoured token soup: random keywords, numbers and
    /// punctuation stitched together.
    #[test]
    fn token_soup_never_panics(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("qreg".to_string()),
                Just("creg".to_string()),
                Just("gate".to_string()),
                Just("measure".to_string()),
                Just("reset".to_string()),
                Just("barrier".to_string()),
                Just("h".to_string()),
                Just("cx".to_string()),
                Just("rz".to_string()),
                Just("q[0]".to_string()),
                Just("q[1]".to_string()),
                Just("c[0]".to_string()),
                Just("->".to_string()),
                Just("(pi/2)".to_string()),
                Just(";".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just(",".to_string()),
                Just("q".to_string()),
                Just("2".to_string()),
            ],
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = from_qasm(&src);
    }

    /// Truncations of a valid program fail gracefully (or parse, for
    /// prefixes that happen to be complete).
    #[test]
    fn truncated_program_never_panics(cut in 0usize..400) {
        let full = VALID_PROGRAM;
        let cut = cut.min(full.len());
        // avoid slicing inside a UTF-8 boundary (input is ASCII here)
        let _ = from_qasm(&full[..cut]);
    }

    /// Completely arbitrary byte soup, decoded lossily: exercises the
    /// lexer on replacement characters, control bytes and broken
    /// multi-byte sequences that string strategies never produce.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = from_qasm(&src);
    }

    /// Byte-level mutations of a valid program: overwrite a handful of
    /// positions with arbitrary bytes. Mutants stay *close* to valid
    /// QASM, hitting error paths deep inside the parser/importer that
    /// pure noise never reaches.
    #[test]
    fn mutated_valid_program_never_panics(
        muts in prop::collection::vec(
            (0usize..VALID_PROGRAM.len(), any::<u8>()),
            1..8,
        )
    ) {
        let mut bytes = VALID_PROGRAM.as_bytes().to_vec();
        for &(pos, b) in &muts {
            bytes[pos] = b;
        }
        let src = String::from_utf8_lossy(&bytes);
        let _ = from_qasm(&src);
    }

    /// Structural mutations: delete a random slice of the valid program
    /// and splice arbitrary bytes into the cut, covering unbalanced
    /// braces, severed statements and merged tokens.
    #[test]
    fn spliced_valid_program_never_panics(
        start in 0usize..VALID_PROGRAM.len(),
        len in 0usize..60,
        splice in prop::collection::vec(any::<u8>(), 0..20),
    ) {
        let end = (start + len).min(VALID_PROGRAM.len());
        let mut bytes = VALID_PROGRAM.as_bytes().to_vec();
        bytes.splice(start..end, splice);
        let src = String::from_utf8_lossy(&bytes);
        let _ = from_qasm(&src);
    }
}

#[test]
fn mutation_seed_program_is_valid() {
    // the fuzzers above mutate VALID_PROGRAM; the mutants only probe
    // deep parser paths if the unmutated seed actually parses
    let c = from_qasm(VALID_PROGRAM).expect("seed program must parse");
    assert_eq!(c.nb_qubits(), 3);
    assert!(c.nb_gates() > 0);
    assert_eq!(c.nb_measurements(), 3);
}

#[test]
fn specific_malformed_programs_error_cleanly() {
    let cases = [
        "qreg q[0];",                        // empty register is useless but parses; gate fails
        "qreg q[2]; h q[5];",                // out of range
        "qreg q[2]; cx q[0], q[0];",         // duplicate qubit
        "qreg q[2]; gate g a { h a; } g q;", // broadcast through gate def
        "qreg q[1]; rz() q[0];",             // empty params
        "qreg q[1]; rz(1,2) q[0];",          // too many params
        "qreg q[1]; measure q[0] -> ;",      // missing cbit
        "OPENQASM 3.0; qreg q[1];",          // unsupported version
        "qreg q[1]; gate loop a { loop a; } loop q[0];", // infinite recursion
    ];
    for src in cases {
        // some are permissible; the point is that none of them panic
        let _ = from_qasm(src);
    }
    // recursion depth specifically must be a clean error, not a stack
    // overflow
    let e = from_qasm("qreg q[1]; gate loop a { loop a; } loop q[0];");
    assert!(e.is_err());
}

#[test]
fn resource_exhaustion_attacks_error_cleanly() {
    // expression nesting bombs must not blow the stack
    let parens = format!(
        "qreg q[1]; rx({}1{}) q[0];",
        "(".repeat(50_000),
        ")".repeat(50_000)
    );
    assert!(from_qasm(&parens).is_err());
    let minuses = format!("qreg q[1]; rx({}1) q[0];", "-".repeat(50_000));
    assert!(from_qasm(&minuses).is_err());
    let calls = format!(
        "qreg q[1]; rx({}1{}) q[0];",
        "cos(".repeat(10_000),
        ")".repeat(10_000)
    );
    assert!(from_qasm(&calls).is_err());

    // register-size bombs must not trigger huge allocations or
    // overflowing size arithmetic
    assert!(from_qasm("qreg q[99999999999999999999999];").is_err());
    assert!(from_qasm(&format!("qreg q[{}];", u64::MAX)).is_err());
    assert!(from_qasm("qreg a[1048576]; qreg b[1048576];").is_err());

    // a full register count just under the importer cap still parses
    let ok = from_qasm("qreg q[1024]; h q[0];");
    assert!(ok.is_ok(), "moderate registers must import: {ok:?}");
}
