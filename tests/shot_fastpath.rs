//! Validation of the shot-execution fast paths against the exact
//! simulator and the plain per-shot trajectory engine:
//!
//! * the **alias path** (unitary circuit + terminal measurements,
//!   noiseless) must draw from exactly the branch distribution the
//!   branching simulator computes — pinned by a chi-square
//!   goodness-of-fit test,
//! * the **fork path** (deterministic prefix evolved once, shots forked
//!   from the snapshot) must be *bit-identical* to the unforked engine
//!   at the same seed — counts, injected errors and watchdog stats,
//! * the **shot plan** that drives the dispatch must partition the
//!   lowered op schedule in place: no op reordered, no measurement or
//!   reset in the prefix, fences left where they were.

mod common;

use common::measured_circuit;
use proptest::prelude::*;
use qclab::prelude::*;
use qclab_core::sim::trajectory::{
    run_trajectories, NoiseSpec, PauliChannel, ShotPath, TrajectoryConfig,
};
use qclab_core::{Observable, PlanOptions, ProgramOp};

/// A small entangling workload with measurements on every qubit.
fn sampling_workload(n: usize) -> QCircuit {
    let mut c = QCircuit::new(n);
    for q in 0..n {
        c.push_back(Hadamard::new(q));
        c.push_back(RotationY::new(q, 0.3 + 0.2 * q as f64));
    }
    for q in 0..n - 1 {
        c.push_back(CNOT::new(q, q + 1));
    }
    for q in 0..n {
        c.push_back(Measurement::z(q));
    }
    c
}

#[test]
fn alias_sampled_counts_match_exact_branch_probabilities() {
    let n = 4;
    let c = sampling_workload(n);
    let sim = c.simulate(&CVec::basis_state(1 << n, 0)).unwrap();
    let shots = 20_000u64;
    let result = run_trajectories(
        &c,
        &TrajectoryConfig {
            shots,
            seed: 13,
            ..TrajectoryConfig::default()
        },
    )
    .unwrap();
    assert!(
        matches!(result.path(), ShotPath::AliasSampled { .. }),
        "workload must take the alias path, got {}",
        result.path()
    );
    assert_eq!(result.total_counts(), shots);

    // chi-square goodness of fit against the exact branch distribution
    let mut chi2 = 0.0;
    let mut dof = 0usize;
    for b in sim.branches() {
        let expected = b.probability() * shots as f64;
        if expected < 5.0 {
            continue; // chi-square needs a minimum expected count
        }
        let observed = *result.counts().get(b.result()).unwrap_or(&0) as f64;
        chi2 += (observed - expected).powi(2) / expected;
        dof += 1;
    }
    assert!(dof > 4, "workload should spread over many branches");
    let dof = (dof - 1) as f64;
    // mean dof, variance 2·dof: five sigma plus slack never false-alarms
    let bound = dof + 5.0 * (2.0 * dof).sqrt() + 10.0;
    assert!(
        chi2 < bound,
        "alias draws diverge from the simulator: chi2 = {chi2:.1}, bound = {bound:.1}"
    );
    // every drawn record must be a branch the simulator produces
    let valid: std::collections::BTreeSet<_> = sim
        .branches()
        .iter()
        .map(|b| b.result().to_string())
        .collect();
    for record in result.counts().keys() {
        assert!(valid.contains(record), "impossible record '{record}' drawn");
    }
}

#[test]
fn forked_zero_noise_runs_are_bit_identical_to_per_shot() {
    // mid-circuit measurement + later gates keep the run off the alias
    // path; zero noise means the fork must change nothing at all
    let mut c = QCircuit::new(4);
    for q in 0..4 {
        c.push_back(Hadamard::new(q));
    }
    c.push_back(CNOT::new(0, 1));
    c.push_back(Measurement::z(0));
    c.push_back(CNOT::new(1, 2));
    c.push_back(Measurement::x(2));
    c.push_back(Measurement::z(0)); // re-measure: never alias-eligible
    let mk = |fast_path| TrajectoryConfig {
        shots: 500,
        seed: 29,
        fast_path,
        ..TrajectoryConfig::default()
    };
    let fast = run_trajectories(&c, &mk(true)).unwrap();
    let slow = run_trajectories(&c, &mk(false)).unwrap();
    assert!(matches!(fast.path(), ShotPath::Forked { .. }));
    assert_eq!(slow.path(), ShotPath::PerShot);
    assert_eq!(fast.counts(), slow.counts(), "forking changed the counts");
    assert_eq!(fast.norm_stats(), slow.norm_stats());
    assert_eq!(fast.injected_errors(), 0);
}

#[test]
fn forked_observable_runs_match_per_shot_expectations_exactly() {
    // terminal measurements + observables: alias is off (per-shot final
    // states are needed) but the whole circuit is deterministic prefix
    let c = sampling_workload(3);
    let z0 = Observable::new(3).term(1.0, "ZII");
    let mk = |fast_path| TrajectoryConfig {
        shots: 200,
        seed: 5,
        fast_path,
        observables: vec![z0.clone()],
        ..TrajectoryConfig::default()
    };
    let fast = run_trajectories(&c, &mk(true)).unwrap();
    let slow = run_trajectories(&c, &mk(false)).unwrap();
    assert!(matches!(fast.path(), ShotPath::Forked { .. }));
    assert_eq!(fast.counts(), slow.counts());
    // bit-identical forking extends to the averaged expectations
    assert_eq!(fast.expectations(), slow.expectations());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The shot plan splits the lowered schedule in place: the prefix is
    /// purely deterministic (gates and fences), the split sits exactly at
    /// the first stochastic op, and a sample-eligible suffix holds only
    /// single measurements of distinct qubits (fences stay put).
    #[test]
    fn shot_plan_partitions_programs_in_place(c in measured_circuit(3, 12)) {
        let program = c.compile_with(&PlanOptions::unfused());
        let plan = program.shot_plan();
        let ops = program.ops();
        prop_assert_eq!(plan.prefix_ops + plan.suffix_ops, ops.len());
        let first_stochastic = ops
            .iter()
            .position(|op| matches!(op, ProgramOp::Measure(_) | ProgramOp::Reset(_)))
            .unwrap_or(ops.len());
        prop_assert_eq!(plan.prefix_ops, first_stochastic);
        for op in &ops[..plan.prefix_ops] {
            prop_assert!(
                matches!(op, ProgramOp::Gate(_) | ProgramOp::Fence(_)),
                "stochastic op leaked into the prefix"
            );
        }
        if plan.terminal_measurements {
            let mut seen = std::collections::BTreeSet::new();
            for op in &ops[plan.prefix_ops..] {
                match op {
                    ProgramOp::Measure(m) => prop_assert!(
                        seen.insert(m.qubit()),
                        "terminal plan re-measures qubit {}",
                        m.qubit()
                    ),
                    ProgramOp::Fence(_) => {}
                    other => prop_assert!(false, "non-measurement {other} in terminal suffix"),
                }
            }
            prop_assert_eq!(seen.len(), plan.measured_qubits.len());
        }
    }

    /// Forking is exact for arbitrary circuits whenever the prefix draws
    /// no randomness: with readout noise only, fast-path and per-shot
    /// runs agree bit for bit.
    #[test]
    fn forking_is_exact_under_readout_noise(c in measured_circuit(3, 10)) {
        let mk = |fast_path| TrajectoryConfig {
            shots: 48,
            seed: 17,
            fast_path,
            noise: NoiseSpec {
                before_measure: Some(PauliChannel::BitFlip(0.1)),
                ..NoiseSpec::default()
            },
            // this test pins the fork-vs-per-shot engines; an
            // all-Clifford draw would otherwise route to the frame
            // sampler
            frames: false,
            ..TrajectoryConfig::default()
        };
        let fast = run_trajectories(&c, &mk(true)).unwrap();
        let slow = run_trajectories(&c, &mk(false)).unwrap();
        prop_assert_eq!(slow.path(), ShotPath::PerShot);
        prop_assert_eq!(fast.counts(), slow.counts());
        prop_assert_eq!(fast.injected_errors(), slow.injected_errors());
        prop_assert_eq!(fast.norm_stats(), slow.norm_stats());
    }
}
