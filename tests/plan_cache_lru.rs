//! LRU behaviour of the global plan cache: filling it past
//! [`PLAN_CACHE_CAPACITY`] evicts the least-recently-used plan, a hit
//! refreshes an entry's position, and a re-lowered plan after
//! [`clear_plan_cache`] is indistinguishable from the evicted one.
//!
//! Everything lives in ONE test function: the cache and its counters
//! are process-global, and the default parallel test runner would race
//! them across `#[test]`s.

use qclab::prelude::*;
use qclab_core::program::{self, PlanOptions, PLAN_CACHE_CAPACITY};

/// Circuits with pairwise-distinct fingerprints (the angle encodes `i`).
fn distinct_circuit(i: usize) -> QCircuit {
    let mut c = QCircuit::new(3);
    c.push_back(Hadamard::new(0));
    c.push_back(RotationZ::new(1, 0.01 * (i as f64 + 1.0)));
    c.push_back(CNOT::new(0, 1));
    c.push_back(Measurement::z(2));
    c
}

#[test]
fn plan_cache_is_lru_and_relowering_matches() {
    let opts = PlanOptions::default();
    program::clear_plan_cache();

    // fill exactly to capacity: circuits 0..CAP, front-to-back in age
    for i in 0..PLAN_CACHE_CAPACITY {
        program::compile(&distinct_circuit(i), &opts);
    }
    let full = program::plan_cache_stats();
    assert_eq!(full.entries, PLAN_CACHE_CAPACITY, "cache must be full");

    // a hit refreshes circuit 0's position (front -> back)
    let before = program::plan_cache_stats();
    let plan0 = program::compile(&distinct_circuit(0), &opts);
    let after = program::plan_cache_stats();
    assert_eq!(
        after.hits,
        before.hits + 1,
        "refill of a resident plan must hit"
    );
    assert_eq!(
        after.misses, before.misses,
        "refill of a resident plan must not lower"
    );

    // the 33rd distinct circuit evicts the *oldest* entry — which is
    // now circuit 1, because circuit 0 was just touched
    let before = program::plan_cache_stats();
    program::compile(&distinct_circuit(PLAN_CACHE_CAPACITY), &opts);
    let after = program::plan_cache_stats();
    assert_eq!(after.misses, before.misses + 1);
    assert_eq!(
        after.entries, PLAN_CACHE_CAPACITY,
        "insertion at capacity must evict, not grow"
    );

    // circuit 0 survived the eviction thanks to the LRU touch…
    let before = program::plan_cache_stats();
    program::compile(&distinct_circuit(0), &opts);
    let after = program::plan_cache_stats();
    assert_eq!(
        after.hits,
        before.hits + 1,
        "recently-used plan must survive eviction"
    );

    // …and circuit 1 (the true LRU) is gone: recompiling it misses
    let before = program::plan_cache_stats();
    program::compile(&distinct_circuit(1), &opts);
    let after = program::plan_cache_stats();
    assert_eq!(
        after.misses,
        before.misses + 1,
        "the LRU plan must have been evicted"
    );

    // re-lowering after a clear reproduces the cached plan exactly:
    // same ops, same stats, same shot classification
    let cached_ops = plan0.ops().to_vec();
    let cached_stats = *plan0.stats();
    let cached_shot = plan0.shot_plan().clone();
    program::clear_plan_cache();
    assert_eq!(program::plan_cache_stats().entries, 0);
    let fresh = program::compile(&distinct_circuit(0), &opts);
    assert_eq!(fresh.ops(), &cached_ops[..], "re-lowered ops diverged");
    assert_eq!(*fresh.stats(), cached_stats, "re-lowered stats diverged");
    assert_eq!(
        *fresh.shot_plan(),
        cached_shot,
        "re-lowered shot plan diverged"
    );

    // the cache key is backend-aware: the same circuit lowered under
    // the dense defaults and under the sparse-tagged options are two
    // distinct entries — the second request must miss, not alias
    program::clear_plan_cache();
    let dense_plan = program::compile(&distinct_circuit(0), &PlanOptions::default());
    let before = program::plan_cache_stats();
    let sparse_plan = program::compile(&distinct_circuit(0), &PlanOptions::sparse());
    let after = program::plan_cache_stats();
    assert_eq!(
        after.misses,
        before.misses + 1,
        "a sparse-tagged lowering of a dense-cached circuit must miss"
    );
    assert_eq!(after.entries, 2, "dense and sparse plans must coexist");
    assert!(
        !std::sync::Arc::ptr_eq(&dense_plan, &sparse_plan),
        "dense and sparse requests must not share a plan"
    );
    // …and each variant hits its own entry afterwards, no cross-talk
    let before = program::plan_cache_stats();
    let dense_again = program::compile(&distinct_circuit(0), &PlanOptions::default());
    let sparse_again = program::compile(&distinct_circuit(0), &PlanOptions::sparse());
    let after = program::plan_cache_stats();
    assert_eq!(
        after.hits,
        before.hits + 2,
        "both variants must be resident"
    );
    assert_eq!(after.misses, before.misses, "no re-lowering on either side");
    assert!(std::sync::Arc::ptr_eq(&dense_plan, &dense_again));
    assert!(std::sync::Arc::ptr_eq(&sparse_plan, &sparse_again));
    // the support bound is computed on the flat unfused stream, so both
    // variants of one circuit report the same estimate
    assert_eq!(
        dense_plan.stats().sparse_entries,
        sparse_plan.stats().sparse_entries,
        "the sparse-entry bound must not depend on the plan variant"
    );

    // ---- configurable capacity + eviction accounting ----------------
    // shrink the cache to a non-default size; LRU order and the
    // eviction counter must track it exactly
    program::clear_plan_cache();
    program::set_plan_cache_capacity(4);
    assert_eq!(program::plan_cache_capacity(), 4);
    let evicted_before = program::plan_cache_stats().evictions;
    for i in 0..4 {
        program::compile(&distinct_circuit(i), &opts);
    }
    assert_eq!(program::plan_cache_stats().entries, 4);
    assert_eq!(
        program::plan_cache_stats().evictions,
        evicted_before,
        "filling to the new capacity must not evict"
    );
    // touch 0, insert a 5th: 1 (the LRU) is evicted and counted
    program::compile(&distinct_circuit(0), &opts);
    program::compile(&distinct_circuit(4), &opts);
    let st = program::plan_cache_stats();
    assert_eq!(st.entries, 4, "non-default capacity must be enforced");
    assert_eq!(st.evictions, evicted_before + 1, "one eviction expected");
    let before = program::plan_cache_stats();
    program::compile(&distinct_circuit(0), &opts);
    assert_eq!(
        program::plan_cache_stats().hits,
        before.hits + 1,
        "touched plan must survive at capacity 4"
    );
    let before = program::plan_cache_stats();
    program::compile(&distinct_circuit(1), &opts);
    assert_eq!(
        program::plan_cache_stats().misses,
        before.misses + 1,
        "LRU plan must be gone at capacity 4"
    );

    // shrinking below the resident count evicts down immediately
    let evicted_before = program::plan_cache_stats().evictions;
    program::set_plan_cache_capacity(2);
    let st = program::plan_cache_stats();
    assert_eq!(st.entries, 2, "shrink must evict down to the new cap");
    assert_eq!(st.evictions, evicted_before + 2);
    // clamp: capacity 0 is meaningless, it becomes 1
    program::set_plan_cache_capacity(0);
    assert_eq!(program::plan_cache_capacity(), 1);
    assert_eq!(program::plan_cache_stats().entries, 1);

    // restore the default so later suites see the documented behaviour
    program::set_plan_cache_capacity(PLAN_CACHE_CAPACITY);
    assert_eq!(program::plan_cache_capacity(), PLAN_CACHE_CAPACITY);
    program::clear_plan_cache();
}
