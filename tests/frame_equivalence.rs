//! Differential suite: the Pauli-frame sampler must be statistically
//! indistinguishable from the state-vector trajectory engine on every
//! frame-eligible workload — random Clifford circuits with mid-circuit
//! measurements in all three bases, resets, fences, and every Pauli
//! noise channel. A two-sample chi-square compares the sampled record
//! distributions; bitwise legs pin the determinism contract (results
//! independent of batch width and parallelism); routing legs prove
//! non-Clifford circuits and the `frames` opt-out stay on the old
//! engines; and `logical_error_rate` legs check the flagship QEC
//! workload against both the trajectory engine (small distance) and
//! the analytic binomial curve (large distance, where only the frame
//! sampler can realistically run).

mod common;

use common::clifford_measured_circuit;
use proptest::prelude::*;
use qclab::prelude::*;
use qclab_algorithms::qec::{
    analytic_logical_error_rate, logical_error_rate, majority_decode, repetition_code_circuit,
    InjectedError,
};
use qclab_core::sim::trajectory::{
    run_trajectories, NoiseSpec, PauliChannel, ShotPath, TrajectoryConfig,
};
use std::collections::BTreeMap;

const N: usize = 4;

/// Honour `QCLAB_PROPTEST_CASES` (the hardened CI job raises it).
fn fuzz_cases() -> u32 {
    std::env::var("QCLAB_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Strategy over a Pauli channel with a probability fat enough to
/// exercise the injection masks.
fn channel() -> impl Strategy<Value = PauliChannel> {
    (0.01f64..0.25, 0u8..3).prop_map(|(p, kind)| match kind {
        0 => PauliChannel::BitFlip(p),
        1 => PauliChannel::PhaseFlip(p),
        _ => PauliChannel::Depolarizing(p),
    })
}

/// Strategy over a noise spec with at least one live channel (noiseless
/// requests never reach the frame engine).
fn noise_spec() -> impl Strategy<Value = NoiseSpec> {
    let maybe = || prop_oneof![Just(None), channel().prop_map(Some)];
    (channel(), maybe(), maybe()).prop_map(|(after_gate, idle, before_measure)| NoiseSpec {
        after_gate: Some(after_gate),
        idle,
        before_measure,
    })
}

/// Two-sample Pearson chi-square between equally-sized count tables:
/// with `a` and `b` drawn from the same distribution,
/// `Σ (aᵢ − bᵢ)² / (aᵢ + bᵢ)` follows a chi-square with `bins − 1`
/// degrees of freedom. Sparse bins are pooled into one rest bucket to
/// stay inside the statistic's applicability range.
fn two_sample_chi_square(a: &BTreeMap<String, u64>, b: &BTreeMap<String, u64>) -> (f64, usize) {
    let labels: std::collections::BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    let mut stat = 0.0;
    let mut bins = 0usize;
    let (mut rest_a, mut rest_b) = (0u64, 0u64);
    for label in labels {
        let ca = a.get(label).copied().unwrap_or(0);
        let cb = b.get(label).copied().unwrap_or(0);
        if ca + cb < 10 {
            rest_a += ca;
            rest_b += cb;
            continue;
        }
        let d = ca as f64 - cb as f64;
        stat += d * d / (ca + cb) as f64;
        bins += 1;
    }
    if rest_a + rest_b >= 10 {
        let d = rest_a as f64 - rest_b as f64;
        stat += d * d / (rest_a + rest_b) as f64;
        bins += 1;
    }
    (stat, bins.saturating_sub(1))
}

/// Loose acceptance bound: mean + 5 sigma plus slack, so a correct
/// sampler fails with negligible probability.
fn chi_bound(dof: usize) -> f64 {
    dof as f64 + 5.0 * (2.0 * dof as f64).sqrt() + 10.0
}

fn frame_config(seed: u64, shots: u64, noise: NoiseSpec) -> TrajectoryConfig {
    TrajectoryConfig {
        seed,
        shots,
        noise,
        ..TrajectoryConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// The headline differential property: on random Clifford+noise
    /// circuits (mid-circuit measurements in all three bases, resets,
    /// fences included), frame-sampled records and state-vector
    /// trajectory records follow the same distribution.
    #[test]
    fn frame_counts_match_trajectory_counts(
        c in clifford_measured_circuit(N, 14),
        noise in noise_spec(),
        seed in 0u64..1 << 16,
    ) {
        let shots = 1200u64;
        let frames = run_trajectories(&c, &frame_config(seed, shots, noise)).unwrap();
        prop_assert_eq!(frames.path(), ShotPath::PauliFrame);
        prop_assert_eq!(frames.total_counts(), shots);
        // independent seed stream on the state-vector engine: the two
        // samples must agree in distribution, not bit for bit
        let traj = run_trajectories(&c, &TrajectoryConfig {
            frames: false,
            ..frame_config(seed ^ 0x5EED, shots, noise)
        }).unwrap();
        prop_assert!(traj.path() != ShotPath::PauliFrame);
        let (stat, dof) = two_sample_chi_square(frames.counts(), traj.counts());
        prop_assert!(
            stat <= chi_bound(dof),
            "chi-square {stat:.2} over {dof} dof exceeds {:.2}\nframe: {:?}\ntraj: {:?}",
            chi_bound(dof), frames.counts(), traj.counts()
        );
    }

    /// Bitwise determinism: batch width and parallel fan-out are pure
    /// execution knobs — counts and injected-error totals are identical
    /// at widths 1/3/64/1000, serial and parallel.
    #[test]
    fn frame_results_are_bitwise_identical_across_batch_widths(
        c in clifford_measured_circuit(N, 12),
        noise in noise_spec(),
        seed in 0u64..1 << 16,
    ) {
        let base = frame_config(seed, 400, noise);
        let reference = run_trajectories(&c, &TrajectoryConfig {
            shot_batch: 1,
            parallel: false,
            ..base.clone()
        }).unwrap();
        prop_assert_eq!(reference.path(), ShotPath::PauliFrame);
        for width in [3usize, 64, 1000] {
            for parallel in [false, true] {
                let run = run_trajectories(&c, &TrajectoryConfig {
                    shot_batch: width,
                    parallel,
                    ..base.clone()
                }).unwrap();
                prop_assert_eq!(run.counts(), reference.counts(),
                    "width {width} parallel {parallel} diverged");
                prop_assert_eq!(run.injected_errors(), reference.injected_errors());
            }
        }
    }

    /// One non-Clifford gate keeps a noisy run on the state-vector
    /// engines, and the `frames` opt-out never changes what the
    /// state-vector engine computes.
    #[test]
    fn non_clifford_circuits_route_to_the_state_vector_engine(
        c in clifford_measured_circuit(N, 8),
        noise in noise_spec(),
        seed in 0u64..1 << 16,
    ) {
        let mut c = c;
        c.push_back(TGate::new(0));
        c.push_back(Measurement::z(0));
        let on = run_trajectories(&c, &frame_config(seed, 64, noise)).unwrap();
        prop_assert!(on.path() != ShotPath::PauliFrame,
            "non-Clifford circuit took the frame path");
        let off = run_trajectories(&c, &TrajectoryConfig {
            frames: false,
            ..frame_config(seed, 64, noise)
        }).unwrap();
        // same engine either way: bit-identical
        prop_assert_eq!(on.counts(), off.counts());
        prop_assert_eq!(on.path(), off.path());
    }
}

/// The frame opt-out (`frames: false`, CLI `--no-frames`) pins the
/// state-vector engine even on frame-eligible circuits.
#[test]
fn frames_opt_out_falls_back_to_the_trajectory_engine() {
    let mut bell = QCircuit::new(2);
    bell.push_back(Hadamard::new(0));
    bell.push_back(CNOT::new(0, 1));
    bell.push_back(Measurement::z(0));
    bell.push_back(Measurement::z(1));
    let noise = NoiseSpec {
        after_gate: Some(PauliChannel::Depolarizing(0.05)),
        ..NoiseSpec::default()
    };
    let on = run_trajectories(&bell, &frame_config(5, 256, noise)).unwrap();
    assert_eq!(on.path(), ShotPath::PauliFrame);
    let off = run_trajectories(
        &bell,
        &TrajectoryConfig {
            frames: false,
            ..frame_config(5, 256, noise)
        },
    )
    .unwrap();
    assert_eq!(off.path(), ShotPath::PerShot);
}

/// Witness mechanics: random measurement outcomes stay independent per
/// shot (a naive frame sampler freezes them to the reference run), and
/// correlations survive — a noisy Bell pair splits ~50/50 between
/// `00`/`11` with only the readout-flip crossover populating `01`/`10`.
#[test]
fn random_measurements_keep_per_shot_randomness_and_correlations() {
    let mut bell = QCircuit::new(2);
    bell.push_back(Hadamard::new(0));
    bell.push_back(CNOT::new(0, 1));
    bell.push_back(Measurement::z(0));
    bell.push_back(Measurement::z(1));
    let shots = 40_000u64;
    let p = 0.01;
    let r = run_trajectories(
        &bell,
        &frame_config(
            9,
            shots,
            NoiseSpec {
                before_measure: Some(PauliChannel::BitFlip(p)),
                ..NoiseSpec::default()
            },
        ),
    )
    .unwrap();
    assert_eq!(r.path(), ShotPath::PauliFrame);
    let f = |s: &str| r.frequency(s);
    // five-sigma binomial bounds
    let tol = 5.0 * (0.5f64 * 0.5 / shots as f64).sqrt();
    assert!((f("00") - 0.5 * (1.0 - p) * (1.0 - p) - 0.5 * p * p).abs() < tol + 0.01);
    assert!((f("00") - f("11")).abs() < 2.0 * tol);
    // crossover bins exist but stay near 2·p·(1−p)·½·2 = p(1−p)
    let cross = f("01") + f("10");
    assert!((cross - 2.0 * p * (1.0 - p)).abs() < tol + 0.005);
}

/// Deterministic injection accounting: a certain channel fires at every
/// site, so the injected-error count is exactly `shots × sites`.
#[test]
fn injected_error_stats_are_exact_for_certain_channels() {
    let mut c = QCircuit::new(2);
    c.push_back(Hadamard::new(0));
    c.push_back(CNOT::new(0, 1));
    c.push_back(Measurement::z(0));
    c.push_back(CircuitItem::Reset(1));
    c.push_back(Measurement::z(1));
    let shots = 257u64; // deliberately not a multiple of the lane width
    let r = run_trajectories(
        &c,
        &frame_config(
            3,
            shots,
            NoiseSpec {
                before_measure: Some(PauliChannel::BitFlip(1.0)),
                ..NoiseSpec::default()
            },
        ),
    )
    .unwrap();
    assert_eq!(r.path(), ShotPath::PauliFrame);
    // three before-measure sites: two measurements plus one reset
    assert_eq!(r.injected_errors(), 3 * shots);
    // the flip before the reset is absorbed by the reset, so the
    // second record bit (measured after the reset) is its certain
    // flip: always 1. The first bit is the inverted Bell coin — both
    // values must appear (per-shot randomness survives the certain
    // channel).
    assert!(r.counts().keys().all(|rec| rec.ends_with('1')));
    assert!(r.counts().contains_key("01") && r.counts().contains_key("11"));
    assert_eq!(r.counts().len(), 2);
}

/// Small-distance QEC leg: the (frame-routed) `logical_error_rate` and
/// a frames-off trajectory run of the same circuit both land within
/// five sigma of the analytic binomial rate.
#[test]
fn logical_error_rate_agrees_with_the_trajectory_engine_at_small_distance() {
    let (d, p, shots) = (3usize, 0.15f64, 4000u64);
    let analytic = analytic_logical_error_rate(d, p);
    let tol = 5.0 * (analytic * (1.0 - analytic) / shots as f64).sqrt();

    let frame_rate = logical_error_rate(d, p, shots, 11).unwrap();
    assert!(
        (frame_rate - analytic).abs() < tol,
        "frame rate {frame_rate} vs analytic {analytic} (tol {tol})"
    );

    let circuit = repetition_code_circuit(d, InjectedError::None);
    let traj = run_trajectories(
        &circuit,
        &TrajectoryConfig {
            frames: false,
            ..frame_config(
                11,
                shots,
                NoiseSpec {
                    before_measure: Some(PauliChannel::BitFlip(p)),
                    ..NoiseSpec::default()
                },
            )
        },
    )
    .unwrap();
    assert!(traj.path() != ShotPath::PauliFrame);
    let failures: u64 = traj
        .counts()
        .iter()
        .filter(|(rec, _)| majority_decode(rec) == 1)
        .map(|(_, &n)| n)
        .sum();
    let traj_rate = failures as f64 / traj.shots() as f64;
    assert!(
        (traj_rate - analytic).abs() < tol,
        "trajectory rate {traj_rate} vs analytic {analytic} (tol {tol})"
    );
}

/// Large-distance QEC leg: at distance 25 the state-vector engine would
/// need a 2^49-amplitude register per shot — the frame sampler runs
/// 50 000 shots in milliseconds and matches
/// `Σ_{k>d/2} C(d,k) p^k (1−p)^{d−k}` to five sigma.
#[test]
fn logical_error_rate_matches_the_analytic_curve_at_large_distance() {
    let (d, p, shots) = (25usize, 0.35f64, 50_000u64);
    let analytic = analytic_logical_error_rate(d, p);
    assert!(analytic > 0.01, "test needs a resolvable rate");
    let rate = logical_error_rate(d, p, shots, 23).unwrap();
    let tol = 5.0 * (analytic * (1.0 - analytic) / shots as f64).sqrt();
    assert!(
        (rate - analytic).abs() < tol,
        "frame rate {rate} vs analytic {analytic} (tol {tol})"
    );
}

/// The capability acceptance: a 128-qubit noisy Clifford sampling run
/// completes on the frame engine while the state-vector engines refuse
/// the same request outright.
#[test]
fn wide_clifford_run_completes_where_the_state_vector_engines_refuse() {
    let n = 128;
    let mut ghz = QCircuit::new(n);
    ghz.push_back(Hadamard::new(0));
    for q in 1..n {
        ghz.push_back(CNOT::new(0, q));
    }
    for q in 0..n {
        ghz.push_back(Measurement::z(q));
    }
    let noise = NoiseSpec {
        after_gate: Some(PauliChannel::Depolarizing(0.001)),
        ..NoiseSpec::default()
    };
    let r = run_trajectories(&ghz, &frame_config(7, 4096, noise)).unwrap();
    assert_eq!(r.path(), ShotPath::PauliFrame);
    assert_eq!(r.total_counts(), 4096);
    assert_eq!(r.nb_qubits(), n);
    // every record is 128 bits; without noise it would be all-0 or
    // all-1 — depolarizing noise perturbs a few shots but the GHZ
    // correlation dominates
    let majority: u64 = r
        .counts()
        .iter()
        .filter(|(rec, _)| rec.chars().all(|c| c == '0') || rec.chars().all(|c| c == '1'))
        .map(|(_, &n)| n)
        .sum();
    assert!(majority > 2048, "GHZ correlation lost: {majority}/4096");

    let refused = run_trajectories(
        &ghz,
        &TrajectoryConfig {
            frames: false,
            ..frame_config(7, 4096, noise)
        },
    );
    assert!(
        matches!(
            refused,
            Err(qclab_core::QclabError::ResourceExhausted { .. })
        ),
        "the dense engine admitted a 128-qubit register"
    );
}
