//! Property tests: the stabilizer (tableau) backend agrees with the
//! state-vector simulator on random Clifford circuits — same
//! deterministic outcomes, same randomness structure, same
//! post-measurement correlations.

use proptest::prelude::*;
use qclab::prelude::*;
use qclab_core::sim::{collapse, kernel};
use qclab_core::StabilizerState;

/// A random Clifford operation for the equivalence test.
#[derive(Clone, Debug)]
enum CliffordOp {
    H(usize),
    S(usize),
    X(usize),
    Z(usize),
    Cnot(usize, usize),
    Cz(usize, usize),
    Measure(usize),
}

fn clifford_op(n: usize) -> impl Strategy<Value = CliffordOp> {
    let q = 0..n;
    let qq = (0..n, 0..n - 1).prop_map(move |(a, b)| {
        let b = if b >= a { b + 1 } else { b };
        (a, b)
    });
    prop_oneof![
        q.clone().prop_map(CliffordOp::H),
        q.clone().prop_map(CliffordOp::S),
        q.clone().prop_map(CliffordOp::X),
        q.clone().prop_map(CliffordOp::Z),
        qq.clone().prop_map(|(a, b)| CliffordOp::Cnot(a, b)),
        qq.prop_map(|(a, b)| CliffordOp::Cz(a, b)),
        q.prop_map(CliffordOp::Measure),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Step a random Clifford program through both simulators. Whenever
    /// the stabilizer backend declares an outcome random, the state
    /// vector must show a 50/50 split; when deterministic, probability 1
    /// of the same bit. The statevector branch follows the stabilizer's
    /// (forced) outcomes, so the comparison holds along the whole path.
    #[test]
    fn tableau_agrees_with_statevector(
        ops in prop::collection::vec(clifford_op(4), 1..40),
    ) {
        let n = 4;
        let mut tableau = StabilizerState::new(n).unwrap();
        let mut psi = CVec::basis_state(1 << n, 0);

        for op in &ops {
            match *op {
                CliffordOp::H(q) => {
                    tableau.apply_gate(&Hadamard::new(q)).unwrap();
                    kernel::apply_gate(&Hadamard::new(q), &mut psi, n);
                }
                CliffordOp::S(q) => {
                    tableau.apply_gate(&SGate::new(q)).unwrap();
                    kernel::apply_gate(&SGate::new(q), &mut psi, n);
                }
                CliffordOp::X(q) => {
                    tableau.apply_gate(&PauliX::new(q)).unwrap();
                    kernel::apply_gate(&PauliX::new(q), &mut psi, n);
                }
                CliffordOp::Z(q) => {
                    tableau.apply_gate(&PauliZ::new(q)).unwrap();
                    kernel::apply_gate(&PauliZ::new(q), &mut psi, n);
                }
                CliffordOp::Cnot(a, b) => {
                    tableau.apply_gate(&CNOT::new(a, b)).unwrap();
                    kernel::apply_gate(&CNOT::new(a, b), &mut psi, n);
                }
                CliffordOp::Cz(a, b) => {
                    tableau.apply_gate(&CZ::new(a, b)).unwrap();
                    kernel::apply_gate(&CZ::new(a, b), &mut psi, n);
                }
                CliffordOp::Measure(q) => {
                    let (p0, p1) = collapse::measure_probabilities(&psi, n, q);
                    // choose the branch the statevector can follow
                    let bit = p1 > p0;
                    let outcome = tableau.measure_forced(q, bit).unwrap();
                    if outcome.random {
                        prop_assert!(
                            (p0 - 0.5).abs() < 1e-9,
                            "tableau says random, statevector says P(0) = {p0}"
                        );
                    } else {
                        let expected = if outcome.bit { p1 } else { p0 };
                        prop_assert!(
                            (expected - 1.0).abs() < 1e-9,
                            "tableau deterministic but P = {expected}"
                        );
                    }
                    let p = if bit { p1 } else { p0 };
                    psi = collapse::collapse(&psi, n, q, bit as usize, p);
                }
            }
        }
    }
}

#[test]
fn repetition_code_runs_on_the_tableau() {
    // the paper's QEC circuit is pure Clifford: run it on the stabilizer
    // backend, forcing the known syndrome
    let mut s = StabilizerState::new(5).unwrap();
    // encode |0>_L (stabilizer sim starts from |0...0>)
    s.apply_gate(&CNOT::new(0, 1)).unwrap();
    s.apply_gate(&CNOT::new(0, 2)).unwrap();
    // inject the paper's X error on q0
    s.apply_gate(&PauliX::new(0)).unwrap();
    // syndrome extraction
    s.apply_gate(&CNOT::new(0, 3)).unwrap();
    s.apply_gate(&CNOT::new(1, 3)).unwrap();
    s.apply_gate(&CNOT::new(0, 4)).unwrap();
    s.apply_gate(&CNOT::new(2, 4)).unwrap();
    // both ancillas must read 1 deterministically
    let m3 = s.measure_forced(3, true).unwrap();
    let m4 = s.measure_forced(4, true).unwrap();
    assert!(!m3.random && !m4.random, "syndrome must be deterministic");
    // Pauli-frame correction: X back on q0, then verify the data qubits
    s.apply_gate(&PauliX::new(0)).unwrap();
    for q in 0..3 {
        let m = s.measure_forced(q, false).unwrap();
        assert!(!m.random);
    }
}

#[test]
fn five_hundred_qubit_cluster_state() {
    // far beyond state-vector reach: build a 1D cluster state and check
    // the measurement correlation structure survives
    let n = 500;
    let mut s = StabilizerState::new(n).unwrap();
    for q in 0..n {
        s.apply_gate(&Hadamard::new(q)).unwrap();
    }
    for q in 0..n - 1 {
        s.apply_gate(&CZ::new(q, q + 1)).unwrap();
    }
    // measuring every qubit in Z yields all-random outcomes
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let mut randoms = 0;
    for q in 0..n {
        if s.measure(q, &mut rng).random {
            randoms += 1;
        }
    }
    assert_eq!(randoms, n, "cluster state Z measurements are all random");
}
