//! Property tests: the sparse hashmap executor must be indistinguishable
//! from the dense state-vector engine wherever both run — a differential
//! oracle over random circuits that interleave unitary gates, barriers,
//! mid-circuit measurements (all three bases), resets and nested
//! sub-circuits. Branch records must match exactly, probabilities and
//! every amplitude to 1e-12. A chi-square leg checks that sparse
//! `counts` draws follow the dense engine's exact branch marginal, and
//! an acceptance test locks in the headline capability: a 30-qubit
//! low-entanglement circuit the dense guard refuses completes under
//! `BackendRequest::Auto` on the sparse executor.

mod common;

use common::{measured_circuit, state};
use proptest::prelude::*;
use qclab::prelude::*;
use qclab_core::program::{BackendRequest, PlanOptions};
use qclab_core::sim::guard::ResourceLimits;
use qclab_core::sim::sparse::{self, SparseOptions, SparseSimulation, SparseState};
use qclab_core::sim::trajectory::{run_trajectories, ShotPath, TrajectoryConfig};
use qclab_core::{CircuitItem, QclabError};
use std::collections::BTreeMap;

const N: usize = 4;

/// Honour `QCLAB_PROPTEST_CASES` to run more (or fewer) cases per
/// property (the hardened CI job raises it).
fn fuzz_cases() -> u32 {
    std::env::var("QCLAB_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A random circuit that exercises the whole item vocabulary the two
/// executors must agree on: a measured prefix, a nested sub-circuit at a
/// random offset (lowering flattens it into the shared op stream), and
/// a measured suffix.
fn rich_circuit() -> impl Strategy<Value = QCircuit> {
    (
        measured_circuit(N, 8),
        measured_circuit(3, 5),
        0..=N - 3,
        measured_circuit(N, 4),
    )
        .prop_map(|(mut outer, inner, offset, suffix)| {
            outer.push_back(CircuitItem::SubCircuit {
                offset,
                circuit: inner,
            });
            for item in suffix.items() {
                outer.push_back(item.clone());
            }
            outer
        })
}

/// Runs the sparse executor over the circuit's unfused plan from an
/// arbitrary dense initial state.
fn run_sparse(c: &QCircuit, init: &CVec) -> SparseSimulation {
    let program = c.compile_with(&PlanOptions::sparse());
    let initial = SparseState::from_dense(init, 0.0);
    sparse::execute(&program, initial, &SparseOptions::default()).unwrap()
}

/// Asserts the sparse run reproduces the dense run: identical branch
/// records, probabilities to 1e-12, and every amplitude to 1e-12 (via
/// the dense bridge, which also re-checks the byte guard).
fn assert_sparse_matches_dense(sp: &SparseSimulation, dense: &Simulation, what: &str) {
    assert_eq!(
        sp.results(),
        dense.results(),
        "{what}: branch records diverged"
    );
    for (pa, pb) in sp.probabilities().iter().zip(dense.probabilities()) {
        assert!(
            (pa - pb).abs() < 1e-12,
            "{what}: branch probabilities diverged ({pa} vs {pb})"
        );
    }
    let bridged = sp.to_dense(&ResourceLimits::default()).unwrap();
    for (sa, sb) in bridged.states().iter().zip(dense.states()) {
        for (a, b) in sa.iter().zip(sb.iter()) {
            assert!(
                (a - b).norm() < 1e-12,
                "{what}: amplitudes diverged ({a:?} vs {b:?})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Differential oracle from the all-zeros basis state: the workload
    /// shape the CLI and the trajectory prefix path run.
    #[test]
    fn sparse_matches_dense_from_basis_state(c in rich_circuit()) {
        let init = CVec::basis_state(1 << N, 0);
        let dense = c.simulate_with(&init, &SimOptions::default()).unwrap();
        let sp = run_sparse(&c, &init);
        assert_sparse_matches_dense(&sp, &dense, "basis-state start");
    }

    /// Differential oracle from a random dense state: every entry of the
    /// hashmap is live, so the general apply path, pruning and the
    /// measurement collapse all run with full support.
    #[test]
    fn sparse_matches_dense_from_random_state(c in rich_circuit(), init in state(N)) {
        let dense = c.simulate_with(&init, &SimOptions::default()).unwrap();
        let sp = run_sparse(&c, &init);
        assert_sparse_matches_dense(&sp, &dense, "random-state start");
    }

    /// The routed front end agrees with the dense engine regardless of
    /// which backend the request resolves to.
    #[test]
    fn routed_simulation_is_backend_transparent(c in rich_circuit()) {
        let zeros = "0".repeat(N);
        let dense = c.simulate_bitstring_with(&zeros, &SimOptions::default()).unwrap();
        for request in [BackendRequest::Auto, BackendRequest::Dense, BackendRequest::Sparse] {
            let routed = c
                .simulate_bitstring_routed(&zeros, &SimOptions::default(), request)
                .unwrap();
            prop_assert_eq!(routed.results(), dense.results(), "records under {}", request);
            for (pa, pb) in routed.probabilities().iter().zip(dense.probabilities()) {
                prop_assert!(
                    (pa - pb).abs() < 1e-12,
                    "probabilities diverged under {} ({} vs {})", request, pa, pb
                );
            }
        }
    }
}

/// Pearson chi-square over labelled counts against exact probabilities,
/// skipping bins whose expectation is below the standard applicability
/// threshold (mirrors the sampler's own statistical tests).
fn chi_square(
    counts: &BTreeMap<String, u64>,
    probs: &BTreeMap<String, f64>,
    draws: u64,
) -> (f64, usize) {
    let mut stat = 0.0;
    let mut dof = 0usize;
    for (label, p) in probs {
        let expect = p * draws as f64;
        if expect < 5.0 {
            continue; // standard applicability rule
        }
        let c = counts.get(label).copied().unwrap_or(0);
        let d = c as f64 - expect;
        stat += d * d / expect;
        dof += 1;
    }
    (stat, dof.saturating_sub(1))
}

/// Loose acceptance bound: mean + 5 sigma of the chi-square distribution
/// plus slack, so a correct sampler fails with negligible probability.
fn chi_bound(dof: usize) -> f64 {
    dof as f64 + 5.0 * (2.0 * dof as f64).sqrt() + 10.0
}

/// A branching workload for the statistical legs: superposition,
/// entanglement, a mid-circuit X-basis measurement and a reset, so the
/// outcome marginal is spread over several result strings.
fn branching_circuit() -> QCircuit {
    let mut c = QCircuit::new(3);
    c.push_back(Hadamard::new(0));
    c.push_back(CRY::new(0, 1, 1.1));
    c.push_back(CNOT::new(1, 2));
    c.push_back(Measurement::x(1));
    c.push_back(RotationY::new(2, 0.7));
    c.push_back(CircuitItem::Reset(0));
    c.push_back(Hadamard::new(0));
    c.push_back(Measurement::z(0));
    c.push_back(Measurement::z(2));
    c
}

/// Sparse `counts` draws must follow the dense engine's exact branch
/// marginal — the F10/F12-style statistical cross-check of the sampled
/// surface, not just the amplitudes.
#[test]
fn sparse_counts_match_dense_marginal_chi_square() {
    let c = branching_circuit();
    let init = CVec::basis_state(1 << 3, 0);
    let dense = c.simulate_with(&init, &SimOptions::default()).unwrap();
    // exact marginal over result strings (resets can make several
    // branches share a record: merge by summing)
    let mut probs: BTreeMap<String, f64> = BTreeMap::new();
    for (r, p) in dense.results().iter().zip(dense.probabilities()) {
        *probs.entry(r.to_string()).or_insert(0.0) += p;
    }
    assert!(probs.len() >= 4, "workload must branch, got {probs:?}");

    let sp = run_sparse(&c, &init);
    let draws = 40_000u64;
    for seed in [1u64, 7, 42] {
        let counts: BTreeMap<String, u64> = sp.counts(draws, seed).into_iter().collect();
        let total: u64 = counts.values().sum();
        assert_eq!(total, draws);
        let (stat, dof) = chi_square(&counts, &probs, draws);
        assert!(dof >= 3, "chi-square must retain bins, got dof {dof}");
        assert!(
            stat <= chi_bound(dof),
            "seed {seed}: sparse counts drifted from the dense marginal \
             (chi2 {stat:.1} > bound {:.1}, dof {dof})",
            chi_bound(dof)
        );
    }
}

/// The trajectory sparse prefix-sampling path draws from the same
/// distribution as the dense engine's exact marginal.
#[test]
fn sparse_sampled_trajectories_match_dense_marginal_chi_square() {
    // terminal-measurement shape: gates, then measure every qubit
    let mut c = QCircuit::new(3);
    c.push_back(Hadamard::new(0));
    c.push_back(CRY::new(0, 1, 0.9));
    c.push_back(CNOT::new(1, 2));
    c.push_back(RotationY::new(2, 0.4));
    for q in 0..3 {
        c.push_back(Measurement::z(q));
    }
    let init = CVec::basis_state(1 << 3, 0);
    let dense = c.simulate_with(&init, &SimOptions::default()).unwrap();
    let mut probs: BTreeMap<String, f64> = BTreeMap::new();
    for (r, p) in dense.results().iter().zip(dense.probabilities()) {
        *probs.entry(r.to_string()).or_insert(0.0) += p;
    }

    let shots = 40_000u64;
    let config = TrajectoryConfig {
        shots,
        seed: 13,
        backend: BackendRequest::Sparse,
        ..TrajectoryConfig::default()
    };
    let result = run_trajectories(&c, &config).unwrap();
    assert!(
        matches!(result.path(), ShotPath::SparseSampled { .. }),
        "pinned sparse trajectory must take the prefix-sampling path, got {}",
        result.path()
    );
    let counts: BTreeMap<String, u64> = result
        .counts()
        .iter()
        .map(|(r, n)| (r.clone(), *n))
        .collect();
    let (stat, dof) = chi_square(&counts, &probs, shots);
    assert!(dof >= 2, "chi-square must retain bins, got dof {dof}");
    assert!(
        stat <= chi_bound(dof),
        "sparse-sampled counts drifted from the dense marginal \
         (chi2 {stat:.1} > bound {:.1}, dof {dof})",
        chi_bound(dof)
    );
}

/// The headline capability, locked in at the library level: a 30-qubit
/// low-entanglement circuit the dense guard refuses runs to completion
/// under `Auto`, which resolves it to the sparse executor.
#[test]
fn thirty_qubit_circuit_dense_refuses_auto_completes() {
    let n = 30;
    let mut c = QCircuit::new(n);
    // Grover-oracle shape: X flips plus a Toffoli ladder — a pure
    // permutation, so the support never leaves one basis state
    c.push_back(PauliX::new(0));
    c.push_back(PauliX::new(1));
    for t in 2..n {
        c.push_back(Toffoli::new(t - 2, t - 1, t));
    }
    for q in 0..n {
        c.push_back(Measurement::z(q));
    }
    let zeros = "0".repeat(n);
    let opts = SimOptions::default();
    // dense refuses the register outright …
    assert!(matches!(
        c.simulate_bitstring_with(&zeros, &opts),
        Err(QclabError::ResourceExhausted { .. })
    ));
    // … and so does an explicit dense request through the router
    assert!(matches!(
        c.simulate_bitstring_routed(&zeros, &opts, BackendRequest::Dense),
        Err(QclabError::ResourceExhausted { .. })
    ));
    // Auto resolves sparse and completes: the ladder propagates the two
    // X flips through every Toffoli, ending in the all-ones state
    let sim = c
        .simulate_bitstring_routed(&zeros, &opts, BackendRequest::Auto)
        .unwrap();
    assert!(
        sim.is_sparse(),
        "30-qubit run must route to the sparse executor"
    );
    assert_eq!(sim.results(), vec!["1".repeat(n)]);
    assert!((sim.probabilities()[0] - 1.0).abs() < 1e-12);
}
