//! Property tests: the sparse-Kronecker backend (MATLAB QCLAB) and the
//! in-place kernel backend (QCLAB++) must be indistinguishable, and both
//! must satisfy the invariants of unitary evolution.

mod common;

use common::{circuit, state};
use proptest::prelude::*;
use qclab::prelude::*;
use qclab_core::sim::{kernel, kron};

const N: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both backends produce identical state vectors on random circuits.
    #[test]
    fn backends_agree_on_random_circuits(c in circuit(N, 12), init in state(N)) {
        let mut a = init.clone();
        let mut b = init;
        for item in c.items() {
            if let CircuitItem::Gate(g) = item {
                kernel::apply_gate(g, &mut a, N);
                kron::apply_gate(g, &mut b, N);
            }
        }
        prop_assert!(a.approx_eq(&b, 1e-10), "backends diverged");
    }

    /// Unitary evolution preserves the norm.
    #[test]
    fn norm_is_preserved(c in circuit(N, 16), init in state(N)) {
        let sim = c.simulate(&init).unwrap();
        prop_assert!((sim.states()[0].norm() - 1.0).abs() < 1e-9);
    }

    /// The adjoint circuit inverts the original.
    #[test]
    fn adjoint_inverts(c in circuit(N, 10), init in state(N)) {
        let mut full = c.clone();
        for item in c.adjoint().unwrap().items() {
            full.push_back(item.clone());
        }
        let sim = full.simulate(&init).unwrap();
        prop_assert!(sim.states()[0].approx_eq(&init, 1e-9));
    }

    /// to_matrix agrees with the simulator on every basis state.
    #[test]
    fn to_matrix_matches_simulation(c in circuit(3, 8)) {
        let m = c.to_matrix().unwrap();
        prop_assert!(m.is_unitary(1e-9));
        for j in 0..8usize {
            let init = CVec::basis_state(8, j);
            let sim = c.simulate(&init).unwrap();
            let col = m.col(j);
            for (i, amp) in sim.states()[0].iter().enumerate() {
                prop_assert!((amp - col[i]).norm() < 1e-9);
            }
        }
    }

    /// The extended sparse unitary of any random gate is unitary and its
    /// dense form matches the kernel's action.
    #[test]
    fn extended_unitary_is_unitary(g in common::gate(N)) {
        let u = kron::extended_unitary(&g, N);
        prop_assert!(u.to_dense().is_unitary(1e-9));
    }
}
