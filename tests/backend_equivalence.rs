//! Property tests: the sparse-Kronecker backend (MATLAB QCLAB), the
//! in-place kernel backend (QCLAB++), the kernel backend behind the
//! gate-fusion pre-pass and the zero-noise trajectory sampler must be
//! indistinguishable — a four-way differential oracle over random
//! circuits with measurements, barriers and resets — and all must
//! satisfy the invariants of unitary evolution.

mod common;

use common::{circuit, measured_circuit, state};
use proptest::prelude::*;
use qclab::prelude::*;
use qclab_core::program::{self, PlanOptions};
use qclab_core::sim::kernel::{KernelConfig, PARALLEL_THRESHOLD_QUBITS};
use qclab_core::sim::stabilizer::run_stabilizer;
use qclab_core::sim::trajectory::{self, TrajectoryConfig};
use qclab_core::sim::{kernel, kron};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 4;

/// [`SimOptions`] for one corner of the differential triangle.
fn opts(backend: Backend, fuse: bool, max_fused: usize, parallel: bool) -> SimOptions {
    SimOptions {
        backend,
        kernel: KernelConfig {
            fuse,
            max_fused_qubits: max_fused,
            allow_parallel: parallel,
            ..KernelConfig::default()
        },
        ..SimOptions::default()
    }
}

/// Asserts two simulations have the same branch structure (measurement
/// records, probabilities) and the same per-branch states.
fn assert_sims_agree(a: &Simulation, b: &Simulation, what: &str) {
    assert_eq!(a.results(), b.results(), "{what}: branch records diverged");
    for (pa, pb) in a.probabilities().iter().zip(b.probabilities()) {
        assert!(
            (pa - pb).abs() < 1e-10,
            "{what}: branch probabilities diverged ({pa} vs {pb})"
        );
    }
    for (sa, sb) in a.states().iter().zip(b.states()) {
        assert!(sa.approx_eq(sb, 1e-9), "{what}: branch states diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both backends produce identical state vectors on random circuits.
    #[test]
    fn backends_agree_on_random_circuits(c in circuit(N, 12), init in state(N)) {
        let mut a = init.clone();
        let mut b = init;
        for item in c.items() {
            if let CircuitItem::Gate(g) = item {
                kernel::apply_gate(g, &mut a, N);
                kron::apply_gate(g, &mut b, N);
            }
        }
        prop_assert!(a.approx_eq(&b, 1e-10), "backends diverged");
    }

    /// Unitary evolution preserves the norm.
    #[test]
    fn norm_is_preserved(c in circuit(N, 16), init in state(N)) {
        let sim = c.simulate(&init).unwrap();
        prop_assert!((sim.states()[0].norm() - 1.0).abs() < 1e-9);
    }

    /// The adjoint circuit inverts the original.
    #[test]
    fn adjoint_inverts(c in circuit(N, 10), init in state(N)) {
        let mut full = c.clone();
        for item in c.adjoint().unwrap().items() {
            full.push_back(item.clone());
        }
        let sim = full.simulate(&init).unwrap();
        prop_assert!(sim.states()[0].approx_eq(&init, 1e-9));
    }

    /// to_matrix agrees with the simulator on every basis state.
    #[test]
    fn to_matrix_matches_simulation(c in circuit(3, 8)) {
        let m = c.to_matrix().unwrap();
        prop_assert!(m.is_unitary(1e-9));
        for j in 0..8usize {
            let init = CVec::basis_state(8, j);
            let sim = c.simulate(&init).unwrap();
            let col = m.col(j);
            for (i, amp) in sim.states()[0].iter().enumerate() {
                prop_assert!((amp - col[i]).norm() < 1e-9);
            }
        }
    }

    /// The extended sparse unitary of any random gate is unitary and its
    /// dense form matches the kernel's action.
    #[test]
    fn extended_unitary_is_unitary(g in common::gate(N)) {
        let u = kron::extended_unitary(&g, N);
        prop_assert!(u.to_dense().is_unitary(1e-9));
    }

    /// Four-way differential oracle: sparse Kronecker, unfused kernels,
    /// the fusion pre-pass and a zero-noise trajectory must agree on
    /// random circuits that interleave unitary gates with barriers,
    /// measurements and resets. The first three enumerate every branch;
    /// the trajectory samples one, so its record must name an existing
    /// branch and its state must match that branch's state.
    #[test]
    fn four_way_differential(c in measured_circuit(N, 12), init in state(N)) {
        let kron_sim = c.simulate_with(&init, &opts(Backend::Kron, false, 2, false)).unwrap();
        let unfused = c.simulate_with(&init, &opts(Backend::Kernel, false, 2, false)).unwrap();
        let fused = c.simulate_with(&init, &opts(Backend::Kernel, true, 2, false)).unwrap();
        assert_sims_agree(&kron_sim, &unfused, "kron vs unfused kernel");
        assert_sims_agree(&unfused, &fused, "unfused vs fused kernel");

        let tcfg = TrajectoryConfig {
            kernel: KernelConfig {
                fuse: false,
                max_fused_qubits: 2,
                allow_parallel: false,
                ..KernelConfig::default()
            },
            ..TrajectoryConfig::default()
        };
        let t = trajectory::run_single_trajectory(&c, &init, &tcfg, 0).unwrap();
        prop_assert!(t.injected.is_empty(), "zero noise must inject nothing");
        // resets split branches without extending the record, so the
        // record can be shared by several branches: the trajectory must
        // match one of them
        let candidates: Vec<usize> = unfused
            .results()
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == t.record)
            .map(|(i, _)| i)
            .collect();
        prop_assert!(
            !candidates.is_empty(),
            "trajectory record '{}' must name a simulation branch", t.record
        );
        prop_assert!(
            candidates
                .iter()
                .any(|&i| t.state.approx_eq(unfused.states()[i], 1e-9)),
            "trajectory state diverged from every branch with record '{}'", t.record
        );
    }

    /// Every legal fusion cap (1..=4 qubits per block) is semantically
    /// neutral relative to the unfused kernel backend.
    #[test]
    fn fusion_cap_is_semantically_neutral(
        c in measured_circuit(N, 12),
        init in state(N),
        cap in 1usize..=4,
    ) {
        let unfused = c.simulate_with(&init, &opts(Backend::Kernel, false, 2, false)).unwrap();
        let fused = c.simulate_with(&init, &opts(Backend::Kernel, true, cap, false)).unwrap();
        assert_sims_agree(&unfused, &fused, "unfused vs fused at random cap");
    }
}

/// Deterministic pseudo-random layered circuit for the boundary tests:
/// a Hadamard/rotation layer, an entangling brick pattern, and a few
/// long-range gates so both the 1q, diagonal, swap and k-qubit kernels
/// all run.
fn boundary_circuit(n: usize) -> QCircuit {
    let mut c = QCircuit::new(n);
    for q in 0..n {
        c.push_back(Hadamard::new(q));
        c.push_back(RotationZ::new(q, 0.1 + 0.05 * q as f64));
    }
    for q in (0..n - 1).step_by(2) {
        c.push_back(CNOT::new(q, q + 1));
    }
    for q in (1..n - 1).step_by(2) {
        c.push_back(CZ::new(q, q + 1));
    }
    c.push_back(SwapGate::new(0, n - 1));
    c.push_back(RotationZZ::new(1, n - 2, 0.7));
    c.push_back(ISwapGate::new(2, n - 3));
    c.push_back(Toffoli::new(0, 1, 2));
    c.push_back(CRY::new(n - 1, 0, 1.3));
    c
}

/// Serial, parallel, and fused-parallel kernel runs agree on registers
/// one qubit below and one above the parallel threshold, where the
/// dispatch decision flips.
fn check_parallel_boundary(n: usize) {
    let c = boundary_circuit(n);
    let init = CVec::basis_state(1 << n, 0);
    let serial = c
        .simulate_with(&init, &opts(Backend::Kernel, false, 2, false))
        .unwrap();
    let parallel = c
        .simulate_with(&init, &opts(Backend::Kernel, false, 2, true))
        .unwrap();
    let fused = c
        .simulate_with(&init, &opts(Backend::Kernel, true, 2, true))
        .unwrap();
    assert_sims_agree(&serial, &parallel, "serial vs parallel kernel");
    assert_sims_agree(&parallel, &fused, "parallel vs fused-parallel kernel");
}

#[test]
fn kernels_agree_one_below_parallel_threshold() {
    check_parallel_boundary(PARALLEL_THRESHOLD_QUBITS - 1);
}

#[test]
fn kernels_agree_one_above_parallel_threshold() {
    check_parallel_boundary(PARALLEL_THRESHOLD_QUBITS + 1);
}

/// The compile/execute split must be invisible: a plan served from the
/// fingerprint-keyed cache is the *same* plan (one shared `Arc`) and
/// drives the executor bit-identically to a freshly lowered program.
#[test]
fn cached_plan_matches_fresh_lowering_bit_for_bit() {
    let c = boundary_circuit(N);
    let sim_opts = opts(Backend::Kernel, true, 2, false);
    let popts = PlanOptions::from(&sim_opts.kernel);

    // two compiles of an unchanged circuit share one plan
    let cached = c.compile_with(&popts);
    assert!(
        std::sync::Arc::ptr_eq(&cached, &c.compile_with(&popts)),
        "recompiling an unchanged circuit must hit the plan cache"
    );

    // the cached plan is structurally the plan a fresh lowering builds
    let fresh = program::lower(&c, &popts);
    assert_eq!(fresh.fingerprint(), cached.fingerprint());
    assert_eq!(fresh.ops().len(), cached.ops().len());
    for (a, b) in fresh.ops().iter().zip(cached.ops()) {
        assert_eq!(a.to_string(), b.to_string(), "cached plan drifted");
    }

    // driving both plans through the same executor is bit-identical
    let init = CVec::basis_state(1 << N, 3);
    let mut via_fresh = init.clone();
    let mut via_cached = init.clone();
    fresh.apply_unitary(&mut via_fresh);
    cached.apply_unitary(&mut via_cached);
    for (x, y) in via_fresh.iter().zip(via_cached.iter()) {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "cached amplitudes drifted");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "cached amplitudes drifted");
    }

    // and so is the full simulator front end: a cold-cache run and a
    // warm-cache run of the same circuit return the same bits
    program::clear_plan_cache();
    let cold = c.simulate_with(&init, &sim_opts).unwrap();
    let warm = c.simulate_with(&init, &sim_opts).unwrap();
    for (sa, sb) in cold.states().iter().zip(warm.states()) {
        for (x, y) in sa.iter().zip(sb.iter()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "warm-cache run drifted");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "warm-cache run drifted");
        }
    }
}

/// A barrier is a fusion wall in every backend. All executors pull their
/// plan from the one lowering pipeline, so the fence must survive
/// lowering, split the fused block, and change nothing semantically —
/// in the kernel and Kronecker simulators, the zero-noise trajectory
/// sampler (which fuses) and the stabilizer engine alike.
#[test]
fn barrier_blocks_fusion_identically_in_all_backends() {
    // Clifford-only so the stabilizer backend can run the same circuit
    let mut barred = QCircuit::new(2);
    barred.push_back(Hadamard::new(0));
    barred.push_back(SGate::new(0));
    barred.push_back(CircuitItem::Barrier(vec![0]));
    barred.push_back(CNOT::new(0, 1));
    barred.push_back(Hadamard::new(1));

    let mut unbarred = QCircuit::new(2);
    for item in barred.items() {
        if !matches!(item, CircuitItem::Barrier(_)) {
            unbarred.push_back(item.clone());
        }
    }

    // plan level: the fence survives lowering and splits the block the
    // barrier-free circuit fuses whole
    let popts = PlanOptions::default();
    let plan = barred.compile_with(&popts);
    let plan_unbarred = unbarred.compile_with(&popts);
    assert_eq!(plan.stats().fences, 1, "the barrier must lower to a fence");
    assert_eq!(plan_unbarred.stats().fences, 0);
    assert!(
        plan.stats().gates_out > plan_unbarred.stats().gates_out,
        "the fence must block fusion: {} vs {} gates after the pass",
        plan.stats().gates_out,
        plan_unbarred.stats().gates_out
    );

    // backend level: fused kernel, fused Kronecker and the unfused
    // reference agree on the barred circuit, and the barrier changes no
    // amplitudes relative to the barrier-free circuit
    let init = CVec::basis_state(1 << 2, 0);
    let reference = barred
        .simulate_with(&init, &opts(Backend::Kernel, false, 2, false))
        .unwrap();
    for (backend, what) in [
        (Backend::Kernel, "fused kernel"),
        (Backend::Kron, "fused kron"),
    ] {
        let fused = barred
            .simulate_with(&init, &opts(backend, true, 2, false))
            .unwrap();
        assert_sims_agree(&reference, &fused, what);
    }
    let no_barrier = unbarred
        .simulate_with(&init, &opts(Backend::Kernel, true, 2, false))
        .unwrap();
    assert_sims_agree(&reference, &no_barrier, "barrier must be a no-op");

    // the zero-noise trajectory sampler fuses through the same plan and
    // must reproduce the reference state exactly
    let t =
        trajectory::run_single_trajectory(&barred, &init, &TrajectoryConfig::default(), 5).unwrap();
    assert!(t.injected.is_empty());
    assert!(
        t.state.approx_eq(reference.states()[0], 1e-12),
        "trajectory diverged across the barrier"
    );

    // the stabilizer engine executes the same fence-preserving plan
    let mut rng = StdRng::seed_from_u64(5);
    let stab = run_stabilizer(&barred, &mut rng).unwrap();
    assert_eq!(stab.record, "", "no measurements, no record");
}
