//! Property tests: the locality pass (logical→physical qubit remapping
//! plus cache-blocked sweep execution) must be **bit-identical** to the
//! unmapped engine — not approximately equal. Every layout transition
//! is pure data movement, gate kernels are shift-independent per
//! amplitude pair, and the mapped collapse routines accumulate in
//! logical index order, so `remap: true` and `remap: false` must agree
//! with exact `==` on branch records, probabilities and every
//! amplitude, over random circuits that mix mid-circuit measurements
//! (all three bases), resets, barriers and nested sub-circuits.
//!
//! The workloads concentrate gates on a handful of "hot" qubits split
//! between the high-stride end (qubits 0..3, the most significant index
//! bits) and the tile-resident end, so the cost model actually adopts
//! layouts instead of staying inert.

mod common;

use common::gate;
use proptest::prelude::*;
use qclab::prelude::*;
use qclab_core::program::PlanOptions;
use qclab_core::sim::kernel::KernelConfig;
use qclab_core::sim::trajectory::{run_trajectories, ShotPath, TrajectoryConfig};
use qclab_core::CircuitItem;
use qclab_math::CVec;

/// Register size: two qubits above the sweep tile (12), so the pass has
/// genuinely far qubits to pull in and room for a non-trivial layout.
const N: usize = 14;

/// Physical homes of the 5 action qubits: three on the high-stride end
/// (outside the sweep tile's reach at `N = 14`) and two tile-resident,
/// so windows mix near and far targets.
const HOT: [usize; 5] = [0, 1, 2, 12, 13];

/// Honour `QCLAB_PROPTEST_CASES` to run more (or fewer) cases per
/// property (the hardened CI job raises it).
fn fuzz_cases() -> u32 {
    std::env::var("QCLAB_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// One circuit item on the hot qubits: mostly gates, with measurements
/// in all three bases, resets and barriers mixed in.
fn hot_item() -> impl Strategy<Value = CircuitItem> {
    // gate arm repeated so roughly two thirds of the items are unitary
    let hot_gate = || gate(HOT.len()).prop_map(|g| CircuitItem::Gate(g.relabeled(&HOT)));
    prop_oneof![
        hot_gate(),
        hot_gate(),
        hot_gate(),
        hot_gate(),
        hot_gate(),
        hot_gate(),
        (0..HOT.len(), 0u8..3).prop_map(|(q, b)| {
            CircuitItem::Measurement(match b {
                0 => Measurement::z(HOT[q]),
                1 => Measurement::x(HOT[q]),
                _ => Measurement::y(HOT[q]),
            })
        }),
        (0..HOT.len()).prop_map(|q| CircuitItem::Reset(HOT[q])),
        (0..HOT.len()).prop_map(|q| CircuitItem::Barrier(vec![HOT[q]])),
    ]
}

/// A random hot-qubit circuit of up to `max_items` items on `N` qubits.
fn hot_circuit(max_items: usize) -> impl Strategy<Value = QCircuit> {
    prop::collection::vec(hot_item(), 1..=max_items).prop_map(|items| {
        let mut c = QCircuit::new(N);
        for it in items {
            c.push_back(it);
        }
        c
    })
}

/// A hot-qubit circuit with a nested sub-circuit (random offset) spliced
/// into the middle — the flattener must relabel through the offset
/// before the locality pass sees the gates.
fn nested_circuit() -> impl Strategy<Value = QCircuit> {
    (
        prop::collection::vec(hot_item(), 0..6),
        prop::collection::vec(gate(3), 1..6),
        0..N - 2,
        prop::collection::vec(hot_item(), 0..6),
    )
        .prop_map(|(before, inner_gates, offset, after)| {
            let mut inner = QCircuit::new(3);
            for g in inner_gates {
                inner.push_back(g);
            }
            let mut c = QCircuit::new(N);
            for it in before {
                c.push_back(it);
            }
            c.push_back(CircuitItem::SubCircuit {
                offset,
                circuit: inner,
            });
            for it in after {
                c.push_back(it);
            }
            c
        })
}

fn opts(remap: bool, max_fused: usize, simd: bool) -> SimOptions {
    SimOptions {
        backend: Backend::Kernel,
        kernel: KernelConfig {
            remap,
            max_fused_qubits: max_fused,
            allow_simd: simd,
            ..KernelConfig::default()
        },
        ..SimOptions::default()
    }
}

/// Exact equality of two simulations: identical branch records,
/// bit-identical probabilities, and `==` on every amplitude (which
/// tolerates `-0.0` vs `+0.0` — the one divergence pure movement plus
/// the zero-tile occupancy skip may legitimately introduce).
fn assert_bit_identical(a: &Simulation, b: &Simulation, what: &str) {
    assert_eq!(a.results(), b.results(), "{what}: branch records diverged");
    assert_eq!(
        a.probabilities(),
        b.probabilities(),
        "{what}: branch probabilities are not bit-identical"
    );
    let (sa, sb) = (a.states(), b.states());
    assert_eq!(sa.len(), sb.len(), "{what}: branch count diverged");
    for (bi, (x, y)) in sa.iter().zip(&sb).enumerate() {
        for (i, (za, zb)) in x.iter().zip(y.iter()).enumerate() {
            assert!(
                za.re == zb.re && za.im == zb.im,
                "{what}: branch {bi} amplitude {i} diverged: {za:?} vs {zb:?}"
            );
        }
    }
}

fn run_both(c: &QCircuit, max_fused: usize, simd: bool, what: &str) {
    let init = CVec::basis_state(1 << N, 0);
    let on = c
        .simulate_with(&init, &opts(true, max_fused, simd))
        .unwrap();
    let off = c
        .simulate_with(&init, &opts(false, max_fused, simd))
        .unwrap();
    assert_bit_identical(&on, &off, what);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Default engine configuration (fusion cap 2, SIMD on): remapped
    /// execution is bit-identical on circuits with mid-circuit
    /// measurements and resets.
    #[test]
    fn remap_is_bit_identical_default_config(c in hot_circuit(14)) {
        run_both(&c, 2, true, "default config");
    }

    /// Large fused blocks (cap 4) exercise the k-qubit kernels under
    /// relabeling. SIMD is off on this leg: the k>=3 vectorized kernels
    /// require every target shift >= 1, so a relabeling can move a block
    /// across the SIMD/scalar dispatch boundary — the scalar kernels are
    /// position-independent and must agree exactly at any cap.
    #[test]
    fn remap_is_bit_identical_cap4_scalar(c in hot_circuit(14)) {
        run_both(&c, 4, false, "cap 4, scalar");
    }

    /// Nested sub-circuits flatten through their offset before the pass
    /// runs; remap must stay bit-identical across that relabeling too.
    #[test]
    fn remap_is_bit_identical_with_subcircuits(c in nested_circuit()) {
        run_both(&c, 2, true, "nested sub-circuits");
    }
}

/// A deterministic workload the cost model is guaranteed to accept:
/// many unfusable far-qubit gates. Guards against the proptest
/// distributions silently never firing the pass.
fn far_heavy_circuit(suffix: bool) -> QCircuit {
    let mut c = QCircuit::new(N);
    for rep in 0..12 {
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(RotationX::new(1, 0.3 + rep as f64));
        c.push_back(CNOT::new(1, 2));
        c.push_back(RotationZ::new(2, 0.7 * rep as f64));
        c.push_back(CNOT::new(2, 0));
    }
    c.push_back(Measurement::z(0));
    if suffix {
        // a gate after the measurement keeps the program non-terminal,
        // so the restore stays *after* the first measurement and the
        // deterministic prefix ends in a permuted layout
        c.push_back(Hadamard::new(1));
        c.push_back(Measurement::z(1));
    }
    c
}

#[test]
fn pass_fires_on_far_heavy_circuit() {
    let plan = far_heavy_circuit(false).compile_with(&PlanOptions {
        fuse: false,
        remap: true,
        ..PlanOptions::default()
    });
    let stats = plan.stats();
    assert!(
        stats.remap_windows >= 1,
        "cost model must adopt a layout on the far-heavy workload, got {stats:?}"
    );
    // bit-identity on the exact configuration the pass fires under
    let mk = |remap| SimOptions {
        backend: Backend::Kernel,
        kernel: KernelConfig {
            remap,
            fuse: false,
            ..KernelConfig::default()
        },
        ..SimOptions::default()
    };
    let c = far_heavy_circuit(false);
    let init = CVec::basis_state(1 << N, 0);
    let on = c.simulate_with(&init, &mk(true)).unwrap();
    let off = c.simulate_with(&init, &mk(false)).unwrap();
    assert_bit_identical(&on, &off, "far-heavy deterministic (unfused)");
}

/// The trajectory fork path snapshots the deterministic prefix *and*
/// the layout it ends in (`CompiledProgram::prefix_map`); forked shots
/// must reproduce the plain per-shot engine exactly.
#[test]
fn fork_path_resumes_under_the_prefix_layout() {
    let c = far_heavy_circuit(true);
    let kernel = KernelConfig {
        remap: true,
        fuse: false, // keep the far gates unfused so the pass fires
        ..KernelConfig::default()
    };

    // the prefix (everything before the first measurement) must end in
    // a non-identity layout for this test to mean anything
    let plan = c.compile_with(&PlanOptions::from(&kernel));
    let map = plan
        .prefix_map()
        .expect("prefix must end in a permuted layout");
    assert!(
        map.iter().enumerate().any(|(q, &p)| q != p),
        "prefix_map must be non-identity"
    );

    let mk = |fast_path| TrajectoryConfig {
        shots: 200,
        seed: 7,
        fast_path,
        kernel,
        ..TrajectoryConfig::default()
    };
    let fast = run_trajectories(&c, &mk(true)).unwrap();
    let slow = run_trajectories(&c, &mk(false)).unwrap();
    assert!(
        matches!(fast.path(), ShotPath::Forked { prefix_ops } if prefix_ops > 0),
        "expected the forked engine, got {:?}",
        fast.path()
    );
    assert_eq!(slow.path(), ShotPath::PerShot);
    assert_eq!(
        fast.counts(),
        slow.counts(),
        "forked shots diverged from the per-shot engine under a permuted prefix"
    );
    assert_eq!(fast.norm_stats(), slow.norm_stats());
}
