//! Cross-validation of the trajectory fault-injection engine against the
//! two exact references in the workspace:
//!
//! * the **pure state-vector simulator** — noiseless trajectories must
//!   reproduce its branch probabilities (statistically for counts,
//!   exactly for single shots, which `backend_equivalence.rs` pins down
//!   as the fourth leg of the differential oracle), and
//! * the **density-matrix simulator** — noisy trajectory averages must
//!   converge to the exact channel evolution at the `O(1/√shots)`
//!   Monte-Carlo rate.
//!
//! Plus the headline robustness guarantee: a 20-qubit noisy trajectory
//! run completes where the density backend (which would need a
//! 2^40-entry matrix) is refused by the resource guard — and every
//! oversized or malformed request comes back as an error value, never
//! a panic or abort.

use qclab::prelude::*;
use qclab_algorithms::ghz_circuit;
use qclab_core::sim::density::{DensityState, NoiseModel};
use qclab_core::sim::guard::ResourceLimits;
use qclab_core::sim::trajectory::{
    run_trajectories, run_trajectories_from, NoiseSpec, PauliChannel, TrajectoryConfig,
};
use qclab_core::Observable;

/// Builds the n-qubit observable `Z_q` (identity elsewhere).
fn z_on(n: usize, q: usize) -> Observable {
    let s: String = (0..n).map(|i| if i == q { 'Z' } else { 'I' }).collect();
    Observable::new(n).term(1.0, &s)
}

/// A small entangling workload: H/rotation layer plus a CNOT chain.
fn workload(n: usize) -> QCircuit {
    let mut c = QCircuit::new(n);
    for q in 0..n {
        c.push_back(Hadamard::new(q));
        c.push_back(RotationY::new(q, 0.3 + 0.2 * q as f64));
    }
    for q in 0..n - 1 {
        c.push_back(CNOT::new(q, q + 1));
    }
    c
}

#[test]
fn noiseless_trajectory_counts_match_simulation_probabilities() {
    let mut c = QCircuit::new(2);
    c.push_back(Hadamard::new(0));
    c.push_back(CNOT::new(0, 1));
    c.push_back(Measurement::z(0));
    c.push_back(Measurement::z(1));

    let sim = c.simulate(&CVec::basis_state(4, 0)).unwrap();
    let shots = 4096u64;
    let result = run_trajectories(
        &c,
        &TrajectoryConfig {
            shots,
            seed: 13,
            ..TrajectoryConfig::default()
        },
    )
    .unwrap();

    assert_eq!(result.total_counts(), shots);
    // every sampled record is a real branch, at its exact probability
    // up to ~4σ of binomial sampling noise
    for (record, &count) in result.counts() {
        let idx = sim
            .results()
            .iter()
            .position(|r| r == record)
            .unwrap_or_else(|| panic!("record '{record}' is not a simulation branch"));
        let p = sim.probabilities()[idx];
        let sigma = (p * (1.0 - p) / shots as f64).sqrt();
        let freq = count as f64 / shots as f64;
        assert!(
            (freq - p).abs() < 4.0 * sigma + 1e-9,
            "'{record}': sampled {freq} vs exact {p}"
        );
    }
}

#[test]
fn noisy_trajectory_expectations_converge_to_density_evolution() {
    let n = 3;
    let c = workload(n);
    let p = 0.05;
    let channel = PauliChannel::Depolarizing(p);

    // exact reference: the density-matrix channel evolution
    let rho = qclab_core::sim::density::run_noisy(
        &c,
        &DensityState::from_pure(&CVec::basis_state(1 << n, 0)),
        &NoiseModel {
            after_gate: Some(channel.to_density_channel()),
        },
    )
    .unwrap();

    // Monte-Carlo estimate over trajectories of the same channel
    let shots = 20_000u64;
    let result = run_trajectories(
        &c,
        &TrajectoryConfig {
            shots,
            seed: 99,
            noise: NoiseSpec {
                after_gate: Some(channel),
                ..NoiseSpec::default()
            },
            observables: (0..n).map(|q| z_on(n, q)).collect(),
            ..TrajectoryConfig::default()
        },
    )
    .unwrap();

    assert!(result.injected_errors() > 0, "p = 0.05 must inject errors");
    for q in 0..n {
        let (p0, p1) = rho.measure_probabilities(q);
        let exact = p0 - p1; // ⟨Z_q⟩ = P(0) − P(1)
        let sampled = result.expectations()[q];
        // ⟨Z⟩ estimates of ±1-bounded samples have σ ≤ 1/√shots ≈ 0.007
        assert!(
            (sampled - exact).abs() < 0.03,
            "qubit {q}: trajectory ⟨Z⟩ = {sampled} vs density ⟨Z⟩ = {exact}"
        );
    }
}

#[test]
fn depolarizing_strength_shrinks_expectations_monotonically() {
    // stronger noise must contract ⟨Z⟩ toward the maximally mixed value
    let n = 2;
    let c = workload(n);
    let magnitude = |p: f64| -> f64 {
        let result = run_trajectories(
            &c,
            &TrajectoryConfig {
                shots: 6000,
                seed: 7,
                noise: NoiseSpec {
                    after_gate: (p > 0.0).then_some(PauliChannel::Depolarizing(p)),
                    ..NoiseSpec::default()
                },
                observables: vec![z_on(n, 0)],
                ..TrajectoryConfig::default()
            },
        )
        .unwrap();
        result.expectations()[0].abs()
    };
    let clean = magnitude(0.0);
    let noisy = magnitude(0.2);
    let very_noisy = magnitude(0.6);
    assert!(clean > noisy + 0.05, "clean {clean} vs noisy {noisy}");
    assert!(
        noisy > very_noisy,
        "noisy {noisy} vs very noisy {very_noisy}"
    );
}

#[test]
fn twenty_qubit_noisy_trajectories_run_where_density_cannot() {
    let n = 20;
    // the density backend would need a 2^40-amplitude matrix (16 TiB):
    // the guard refuses it up front…
    let psi = CVec::basis_state(1 << n, 0);
    let err = DensityState::try_from_pure(&psi, &ResourceLimits::default()).unwrap_err();
    assert!(
        matches!(err, QclabError::ResourceExhausted { qubits: 40, .. }),
        "density at n = 20 must exhaust the limit, got {err:?}"
    );

    // …while the trajectory engine samples the same noisy physics in
    // 16 MiB per shot
    let mut c = QCircuit::new(n);
    c.push_back(Hadamard::new(0));
    for q in 0..n - 1 {
        c.push_back(CNOT::new(q, q + 1));
    }
    for q in 0..n {
        c.push_back(Measurement::z(q));
    }
    let result = run_trajectories(
        &c,
        &TrajectoryConfig {
            shots: 8,
            seed: 3,
            noise: NoiseSpec {
                after_gate: Some(PauliChannel::BitFlip(0.01)),
                ..NoiseSpec::default()
            },
            ..TrajectoryConfig::default()
        },
    )
    .unwrap();
    assert_eq!(result.nb_qubits(), n);
    assert_eq!(result.total_counts(), 8);
    for record in result.counts().keys() {
        assert_eq!(record.len(), n);
    }
}

#[test]
fn oversized_and_malformed_requests_error_instead_of_panicking() {
    // 70 qubits: 2^70 amplitudes can never be allocated
    let big = QCircuit::new(70);
    assert!(matches!(
        big.simulate(&CVec::basis_state(2, 0)),
        Err(QclabError::ResourceExhausted { qubits: 70, .. })
            | Err(QclabError::DimensionMismatch { .. })
    ));
    let err = run_trajectories(&big, &TrajectoryConfig::default()).unwrap_err();
    assert!(matches!(
        err,
        QclabError::ResourceExhausted { qubits: 70, .. }
    ));

    // a 140-qubit doubled register for to_matrix cannot even be sized
    assert!(matches!(
        QCircuit::new(70).to_matrix(),
        Err(QclabError::ResourceExhausted { .. })
    ));

    // invalid noise probabilities are rejected up front
    for bad in [-0.1, 1.5, f64::NAN] {
        let err = run_trajectories(
            &ghz_circuit(2),
            &TrajectoryConfig {
                noise: NoiseSpec {
                    after_gate: Some(PauliChannel::BitFlip(bad)),
                    ..NoiseSpec::default()
                },
                ..TrajectoryConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, QclabError::InvalidNoiseSpec(_)), "p = {bad}");
    }

    // mis-sized observables and initial states are dimension errors
    let err = run_trajectories(
        &ghz_circuit(3),
        &TrajectoryConfig {
            observables: vec![z_on(2, 0)],
            ..TrajectoryConfig::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, QclabError::DimensionMismatch { .. }));
    let err = run_trajectories_from(
        &ghz_circuit(3),
        &CVec::basis_state(4, 0),
        &TrajectoryConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, QclabError::DimensionMismatch { .. }));

    // malformed observable strings come back as error values too
    assert!(Observable::new(2).try_term(1.0, "ZQ").is_err());
    assert!(Observable::new(2).try_term(1.0, "ZZZ").is_err());
}
