//! Property tests on the gate zoo: unitarity, adjoint inverses,
//! control-state semantics, and consistency between the structural
//! controlled representation and explicitly expanded matrices.

mod common;

use common::gate;
use proptest::prelude::*;
use qclab::prelude::*;
use qclab_core::sim::kron::extended_unitary;
use qclab_math::scalar::cr;

const N: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every generated gate has a unitary target matrix.
    #[test]
    fn target_matrices_are_unitary(g in gate(N)) {
        prop_assert!(g.target_matrix().is_unitary(1e-10), "{} not unitary", g);
    }

    /// adjoint() is an exact inverse at the full-register level.
    #[test]
    fn adjoint_is_register_level_inverse(g in gate(N)) {
        let u = extended_unitary(&g, N).to_dense();
        let udg = extended_unitary(&g.adjoint(), N).to_dense();
        prop_assert!(udg.matmul(&u).is_identity(1e-9), "{}†·{} != I", g, g);
    }

    /// Double adjoint returns to the original unitary.
    #[test]
    fn double_adjoint_is_identity_operation(g in gate(N)) {
        let u = extended_unitary(&g, N).to_dense();
        let u2 = extended_unitary(&g.adjoint().adjoint(), N).to_dense();
        prop_assert!(u.approx_eq(&u2, 1e-9));
    }

    /// A controlled gate acts as the identity on states whose control
    /// qubits don't match, and as the raw gate when they do.
    #[test]
    fn control_semantics(g in gate(N), basis in 0usize..(1 << N)) {
        let controls = g.controls();
        prop_assume!(!controls.is_empty());
        let init = CVec::basis_state(1 << N, basis);
        let mut out = init.clone();
        qclab_core::sim::kernel::apply_gate(&g, &mut out, N);

        let satisfied = controls.iter().all(|&(q, s)| {
            qclab_math::bits::qubit_bit(basis, q, N) == s as usize
        });
        if !satisfied {
            prop_assert!(out.approx_eq(&init, 1e-12), "identity expected for {}", g);
        } else {
            // the target qubits transform by the target matrix column
            let targets = g.targets();
            let sub_col = qclab_math::bits::gather_bits(basis, &targets, N);
            let m = g.target_matrix();
            for (sub_row, amp_expected) in m.col(sub_col).into_iter().enumerate() {
                let idx = qclab_math::bits::scatter_bits(basis, sub_row, &targets, N);
                prop_assert!((out[idx] - amp_expected).norm() < 1e-12);
            }
        }
    }

    /// shifted() commutes with matrix semantics: the gate shifted in a
    /// larger register equals the original embedded at the offset.
    #[test]
    fn shifting_preserves_structure(g in gate(3), offset in 0usize..3) {
        let big = g.shifted(offset);
        prop_assert_eq!(big.targets(), g.targets().iter().map(|q| q + offset).collect::<Vec<_>>());
        prop_assert_eq!(
            big.controls(),
            g.controls().iter().map(|&(q, s)| (q + offset, s)).collect::<Vec<_>>()
        );
        prop_assert!(big.target_matrix().approx_eq(&g.target_matrix(), 0.0));
    }

    /// Gate application is linear: G(a·x + b·y) = a·Gx + b·Gy.
    #[test]
    fn gate_application_is_linear(
        g in gate(N),
        x in common::state(N),
        y in common::state(N),
        a in -1.0f64..1.0,
        b in -1.0f64..1.0,
    ) {
        let mut combo = CVec(
            x.iter().zip(y.iter()).map(|(xi, yi)| xi * cr(a) + yi * cr(b)).collect()
        );
        let mut gx = x.clone();
        let mut gy = y.clone();
        qclab_core::sim::kernel::apply_gate(&g, &mut combo, N);
        qclab_core::sim::kernel::apply_gate(&g, &mut gx, N);
        qclab_core::sim::kernel::apply_gate(&g, &mut gy, N);
        for i in 0..combo.len() {
            let expected = gx[i] * cr(a) + gy[i] * cr(b);
            prop_assert!((combo[i] - expected).norm() < 1e-10);
        }
    }
}

#[test]
fn toffoli_truth_table() {
    // exhaustive truth table of the Toffoli gate
    let g = Toffoli::new(0, 1, 2);
    for basis in 0..8usize {
        let mut s = CVec::basis_state(8, basis);
        qclab_core::sim::kernel::apply_gate(&g, &mut s, 3);
        let out = s.iter().position(|z| z.norm() > 0.5).unwrap();
        let expected = if basis & 0b110 == 0b110 {
            basis ^ 1
        } else {
            basis
        };
        assert_eq!(out, expected, "Toffoli wrong on basis {basis:03b}");
    }
}

#[test]
fn mcx_open_control_truth_table() {
    // the paper's MCX([3,4],2,[0,1]) on all 32 basis states
    let g = MCX::new(&[3, 4], 2, &[0, 1]);
    for basis in 0..32usize {
        let mut s = CVec::basis_state(32, basis);
        qclab_core::sim::kernel::apply_gate(&g, &mut s, 5);
        let out = s.iter().position(|z| z.norm() > 0.5).unwrap();
        let q3 = qclab_math::bits::qubit_bit(basis, 3, 5);
        let q4 = qclab_math::bits::qubit_bit(basis, 4, 5);
        let expected = if q3 == 0 && q4 == 1 {
            basis ^ (1 << qclab_math::bits::qubit_shift(2, 5))
        } else {
            basis
        };
        assert_eq!(out, expected);
    }
}
