#![allow(dead_code)] // each test binary uses a different subset

//! Shared proptest strategies for the integration test suite: random
//! gates, random circuits, and random normalized state vectors.

use proptest::prelude::*;
use qclab::prelude::*;
use qclab_math::scalar::c;

/// Strategy over angles in (-2π, 2π).
pub fn angle() -> impl Strategy<Value = f64> {
    -std::f64::consts::TAU..std::f64::consts::TAU
}

/// Strategy over a random gate on a register of `n` qubits (n >= 3).
pub fn gate(n: usize) -> impl Strategy<Value = Gate> {
    assert!(n >= 3, "gate strategy needs at least 3 qubits");
    let q = 0..n;
    // a pair of distinct qubits
    let qq = (0..n, 0..n - 1).prop_map(move |(a, b)| {
        let b = if b >= a { b + 1 } else { b };
        (a, b)
    });
    // a triple of distinct qubits
    let qqq = (0..n, 0..n - 1, 0..n - 2).prop_map(move |(a, b, cc)| {
        let b = if b >= a { b + 1 } else { b };
        let mut cc = cc;
        for low in [a.min(b), a.max(b)] {
            if cc >= low {
                cc += 1;
            }
        }
        (a, b, cc)
    });

    prop_oneof![
        q.clone().prop_map(Hadamard::new),
        q.clone().prop_map(PauliX::new),
        q.clone().prop_map(PauliY::new),
        q.clone().prop_map(PauliZ::new),
        q.clone().prop_map(SGate::new),
        q.clone().prop_map(TdgGate::new),
        q.clone().prop_map(SXGate::new),
        (q.clone(), angle()).prop_map(|(q, t)| RotationX::new(q, t)),
        (q.clone(), angle()).prop_map(|(q, t)| RotationY::new(q, t)),
        (q.clone(), angle()).prop_map(|(q, t)| RotationZ::new(q, t)),
        (q.clone(), angle()).prop_map(|(q, t)| PhaseGate::new(q, t)),
        (q.clone(), angle(), angle(), angle()).prop_map(|(q, a, b, cc)| U3Gate::new(q, a, b, cc)),
        qq.clone().prop_map(|(a, b)| SwapGate::new(a, b)),
        qq.clone().prop_map(|(a, b)| ISwapGate::new(a, b)),
        (qq.clone(), angle()).prop_map(|((a, b), t)| RotationZZ::new(a, b, t)),
        (qq.clone(), angle()).prop_map(|((a, b), t)| RotationXX::new(a, b, t)),
        qq.clone().prop_map(|(a, b)| CNOT::new(a, b)),
        qq.clone().prop_map(|(a, b)| CZ::new(a, b)),
        (qq.clone(), 0u8..2).prop_map(|((a, b), s)| CNOT::with_control_state(a, b, s)),
        (qq.clone(), angle()).prop_map(|((a, b), t)| CRY::new(a, b, t)),
        (qq, angle()).prop_map(|((a, b), t)| CPhase::new(a, b, t)),
        (qqq.clone(), 0u8..2, 0u8..2).prop_map(|((a, b, cc), s1, s2)| MCX::new(
            &[a, b],
            cc,
            &[s1, s2]
        )),
        qqq.prop_map(|(a, b, cc)| Toffoli::new(a, b, cc)),
    ]
}

/// Strategy over a unitary circuit of up to `max_gates` gates on `n`
/// qubits.
pub fn circuit(n: usize, max_gates: usize) -> impl Strategy<Value = QCircuit> {
    prop::collection::vec(gate(n), 1..=max_gates).prop_map(move |gates| {
        let mut c = QCircuit::new(n);
        for g in gates {
            c.push_back(g);
        }
        c
    })
}

/// Strategy over a circuit of up to `max_items` items on `n` qubits that
/// mixes barriers, mid-circuit measurements (all three bases) and resets
/// in with the unitary gates — the full item vocabulary the simulator and
/// the fusion pre-pass must agree on. Gate arms are repeated so roughly
/// three quarters of the items are unitary.
pub fn measured_circuit(n: usize, max_items: usize) -> impl Strategy<Value = QCircuit> {
    let item = prop_oneof![
        gate(n).prop_map(CircuitItem::Gate),
        gate(n).prop_map(CircuitItem::Gate),
        gate(n).prop_map(CircuitItem::Gate),
        gate(n).prop_map(CircuitItem::Gate),
        gate(n).prop_map(CircuitItem::Gate),
        gate(n).prop_map(CircuitItem::Gate),
        (0..n).prop_map(|q| CircuitItem::Barrier(vec![q])),
        (0..n, 0u8..3).prop_map(|(q, b)| {
            CircuitItem::Measurement(match b {
                0 => Measurement::z(q),
                1 => Measurement::x(q),
                _ => Measurement::y(q),
            })
        }),
        (0..n).prop_map(CircuitItem::Reset),
    ];
    prop::collection::vec(item, 1..=max_items).prop_map(move |items| {
        let mut c = QCircuit::new(n);
        for it in items {
            c.push_back(it);
        }
        c
    })
}

/// Strategy over a random Clifford gate on a register of `n` qubits
/// (n >= 2): the exact family the stabilizer tableau — and the
/// Pauli-frame sampler built on it — executes.
pub fn clifford_gate(n: usize) -> impl Strategy<Value = Gate> {
    assert!(n >= 2, "clifford gate strategy needs at least 2 qubits");
    let q = 0..n;
    let qq = (0..n, 0..n - 1).prop_map(move |(a, b)| {
        let b = if b >= a { b + 1 } else { b };
        (a, b)
    });
    prop_oneof![
        q.clone().prop_map(Hadamard::new),
        q.clone().prop_map(PauliX::new),
        q.clone().prop_map(PauliY::new),
        q.clone().prop_map(PauliZ::new),
        q.clone().prop_map(SGate::new),
        q.clone().prop_map(SdgGate::new),
        qq.clone().prop_map(|(a, b)| SwapGate::new(a, b)),
        qq.clone().prop_map(|(a, b)| CNOT::new(a, b)),
        qq.clone().prop_map(|(a, b)| CY::new(a, b)),
        qq.prop_map(|(a, b)| CZ::new(a, b)),
    ]
}

/// Strategy over a circuit of up to `max_items` items mixing Clifford
/// gates with barriers, mid-circuit measurements (all three bases) and
/// resets — the full vocabulary the Pauli-frame sampler must agree on.
pub fn clifford_measured_circuit(n: usize, max_items: usize) -> impl Strategy<Value = QCircuit> {
    let item = prop_oneof![
        clifford_gate(n).prop_map(CircuitItem::Gate),
        clifford_gate(n).prop_map(CircuitItem::Gate),
        clifford_gate(n).prop_map(CircuitItem::Gate),
        clifford_gate(n).prop_map(CircuitItem::Gate),
        (0..n).prop_map(|q| CircuitItem::Barrier(vec![q])),
        (0..n, 0u8..3).prop_map(|(q, b)| {
            CircuitItem::Measurement(match b {
                0 => Measurement::z(q),
                1 => Measurement::x(q),
                _ => Measurement::y(q),
            })
        }),
        (0..n).prop_map(CircuitItem::Reset),
    ];
    prop::collection::vec(item, 1..=max_items).prop_map(move |items| {
        let mut c = QCircuit::new(n);
        for it in items {
            c.push_back(it);
        }
        c
    })
}

/// Strategy over a normalized state vector on `n` qubits.
pub fn state(n: usize) -> impl Strategy<Value = CVec> {
    let dim = 1usize << n;
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), dim..=dim).prop_filter_map(
        "state must have nonzero norm",
        |parts| {
            let v = CVec(parts.into_iter().map(|(re, im)| c(re, im)).collect());
            if v.norm() < 1e-3 {
                None
            } else {
                Some(v.normalized())
            }
        },
    )
}
