//! Golden-output tests pinning the exact text artifacts the paper shows:
//! the terminal rendering of circuit (1), its LaTeX source, and its
//! OpenQASM listing. Any unintended change to the renderers breaks these
//! loudly.

use qclab::prelude::*;
use qclab_algorithms::bell_circuit;

#[test]
fn golden_ascii_rendering_of_circuit_1() {
    let art = draw_circuit(&bell_circuit());
    // note: no line-continuation backslashes here — they would strip the
    // significant leading spaces of the first line
    let expected = r#"     ┌───┐       ┌───┐
q0: ─┤ H ├───●───┤ M ├──
     └───┘   │   └───┘
           ┌─┴─┐ ┌───┐
q1: ───────┤ X ├─┤ M ├──
           └───┘ └───┘
"#;
    assert_eq!(art, expected, "terminal rendering drifted:\n{art}");
}

#[test]
fn golden_qasm_of_circuit_1() {
    let qasm = to_qasm(&bell_circuit()).unwrap();
    let expected = "\
OPENQASM 2.0;
include \"qelib1.inc\";
qreg q[2];
creg c[2];
h q[0];
cx q[0], q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
";
    assert_eq!(qasm, expected);
}

#[test]
fn golden_latex_of_circuit_1() {
    let tex = to_tex(&bell_circuit());
    let expected = "\
\\documentclass{standalone}
\\usepackage{tikz}
\\usetikzlibrary{quantikz}
\\begin{document}
\\begin{quantikz}
\\lstick{$q_{0}$} & \\gate{H} & \\ctrl{1} & \\meter{} & \\qw \\\\
\\lstick{$q_{1}$} & \\qw & \\gate{X} & \\meter{} & \\qw \\\\
\\end{quantikz}
\\end{document}
";
    assert_eq!(tex, expected, "LaTeX drifted:\n{tex}");
}

#[test]
fn golden_teleportation_rendering() {
    // pin the structure of the paper's Sec. 5.1 circuit drawing
    let art = draw_circuit(&qclab_algorithms::teleportation_circuit());
    let lines: Vec<&str> = art.lines().collect();
    assert_eq!(lines.len(), 9); // 3 qubits × 3 rows
                                // q0 carries H, a control dot, M, and the CZ control
    assert!(lines[1].contains("┤ H ├"));
    assert!(lines[1].matches('●').count() >= 2);
    // q2 carries the X and Z corrections
    assert!(lines[7].contains("┤ X ├"));
    assert!(lines[7].contains("┤ Z ├"));
}
