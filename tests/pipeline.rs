//! Cross-crate pipeline tests: circuits built by the synthesis layers
//! flow through the optimizer, the QASM round trip, the renderers and
//! both simulators without losing their semantics.

use qclab::prelude::*;
use qclab_algorithms::block_encoding::{encoded_block, fable};
use qclab_algorithms::state_preparation::prepare_state;
use qclab_algorithms::trotter::{evolve, exact_evolution, TrotterOrder};
use qclab_core::observable::Observable;
use qclab_core::optimize::optimize;
use qclab_math::scalar::{c, cr};

#[test]
fn trotter_optimize_qasm_pipeline() {
    // build a Trotter circuit, optimize it, export/import QASM, and
    // verify the unitary survived every stage
    let h = Observable::ising_chain(3, 1.0, 0.6);
    let circuit = evolve(&h, 0.8, 3, TrotterOrder::Second);
    let reference = circuit.to_matrix().unwrap();

    let (optimized, stats) = optimize(&circuit);
    assert!(
        optimized.nb_gates() < circuit.nb_gates(),
        "no fusion happened"
    );
    assert!(stats.rotations_fused > 0);
    assert!(optimized.to_matrix().unwrap().approx_eq(&reference, 1e-9));

    let qasm = to_qasm(&optimized).unwrap();
    let back = from_qasm(&qasm).unwrap();
    assert!(back.to_matrix().unwrap().approx_eq(&reference, 1e-9));

    // the exact evolution agrees up to Trotter error
    let exact = exact_evolution(&h, 0.8);
    let err = reference.max_abs_diff(&exact);
    assert!(err < 0.05, "Trotter circuit too far from exact: {err}");
}

#[test]
fn state_prep_qasm_and_draw_pipeline() {
    let psi = CVec(vec![cr(0.5), c(0.0, 0.5), c(0.5, 0.0), cr(-0.5)]);
    let circuit = prepare_state(&psi).unwrap();

    // QASM round trip preserves the prepared state
    let back = from_qasm(&to_qasm(&circuit).unwrap()).unwrap();
    let sim = back.simulate_bitstring("00").unwrap();
    assert!(sim.states()[0].approx_eq_up_to_phase(&psi, 1e-9));

    // renderers accept it
    assert!(!draw_circuit(&circuit).is_empty());
    assert!(to_tex(&circuit).contains("\\begin{quantikz}"));
}

#[test]
fn block_encoding_qasm_pipeline() {
    // FABLE uses only H/RY/CNOT/SWAP — fully QASM-exportable
    let a = CMat::from_fn(4, 4, |i, j| cr(if i == j { 0.7 } else { 0.1 }));
    let enc = fable(&a, 0.0).unwrap();
    let qasm = to_qasm(&enc.circuit).unwrap();
    let back = from_qasm(&qasm).unwrap();
    let block = CMat::from_fn(4, 4, |i, j| {
        back.to_matrix().unwrap()[(i, j)] / cr(enc.scale)
    });
    assert!(block.approx_eq(&a, 1e-9));
    let _ = encoded_block(&enc).unwrap();
}

#[test]
fn both_backends_agree_on_synthesized_circuits() {
    let psi = CVec(vec![
        cr(0.1),
        c(0.3, 0.2),
        c(0.0, -0.5),
        cr(0.4),
        cr(0.2),
        c(0.1, 0.1),
        cr(-0.3),
        c(0.2, -0.4),
    ])
    .normalized();
    let circuit = prepare_state(&psi).unwrap();
    let init = CVec::basis_state(8, 0);
    for backend in [Backend::Kron, Backend::Kernel] {
        let opts = SimOptions {
            backend,
            ..Default::default()
        };
        let sim = circuit.simulate_with(&init, &opts).unwrap();
        assert!(
            sim.states()[0].approx_eq_up_to_phase(&psi, 1e-9),
            "{backend:?} failed to prepare the state"
        );
    }
}

#[test]
fn noisy_density_and_pure_simulators_agree_at_zero_noise() {
    use qclab::core::sim::density::{run_noisy, DensityState, NoiseModel};
    let h = Observable::heisenberg_xxz(3, 0.7, 0.4);
    let circuit = evolve(&h, 0.5, 2, TrotterOrder::First);
    let init = CVec::basis_state(8, 5);

    let pure = circuit.simulate(&init).unwrap();
    let dm = run_noisy(
        &circuit,
        &DensityState::from_pure(&init),
        &NoiseModel { after_gate: None },
    )
    .unwrap();
    let f = dm.fidelity_with_pure(pure.states()[0]);
    assert!((f - 1.0).abs() < 1e-10, "simulators disagree: fidelity {f}");
}
