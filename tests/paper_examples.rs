//! End-to-end integration tests reproducing every concrete output the
//! QCLAB paper reports, section by section. These are the executable
//! version of EXPERIMENTS.md.

use qclab::prelude::*;
use qclab_algorithms::grover::{grover_circuit, paper_diffuser_2q};
use qclab_algorithms::qec::{bit_flip_circuit, logical_fidelity, protect, InjectedError};
use qclab_algorithms::teleportation::teleport;
use qclab_algorithms::tomography::tomography;
use qclab_math::scalar::{c, cr};

const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

fn paper_v() -> CVec {
    CVec(vec![cr(INV_SQRT2), c(0.0, INV_SQRT2)])
}

fn bell_circuit() -> QCircuit {
    let mut circuit = QCircuit::new(2);
    circuit.push_back(Hadamard::new(0));
    circuit.push_back(CNOT::new(0, 1));
    circuit.push_back(Measurement::z(0));
    circuit.push_back(Measurement::z(1));
    circuit
}

// ---------------------------------------------------------------- Sec. 2/3

#[test]
fn section3_circuit1_simulation() {
    let sim = bell_circuit().simulate_bitstring("00").unwrap();
    assert_eq!(sim.results(), &["00", "11"]);
    assert!((sim.probabilities()[0] - 0.5).abs() < 1e-12);
    assert!((sim.probabilities()[1] - 0.5).abs() < 1e-12);
}

#[test]
fn section3_vector_initial_state_equivalent() {
    // the paper allows '00' or the kron of basis vectors
    let zero = CVec::basis_state(2, 0);
    let init = zero.kron(&zero);
    let sim = bell_circuit().simulate(&init).unwrap();
    assert_eq!(sim.results(), &["00", "11"]);
}

#[test]
fn section3_both_backends_reproduce_circuit1() {
    for backend in [Backend::Kron, Backend::Kernel] {
        let opts = SimOptions {
            backend,
            ..Default::default()
        };
        let sim = bell_circuit()
            .simulate_with(&CVec::from_bitstring("00").unwrap(), &opts)
            .unwrap();
        assert_eq!(sim.results(), &["00", "11"]);
    }
}

// ---------------------------------------------------------------- Sec. 4

#[test]
fn section4_qasm_listing_matches_paper() {
    let mut circuit = bell_circuit();
    let _ = &mut circuit;
    let qasm = to_qasm(&circuit).unwrap();
    let expected = "OPENQASM 2.0;\n\
                    include \"qelib1.inc\";\n\
                    qreg q[2];\n\
                    creg c[2];\n\
                    h q[0];\n\
                    cx q[0], q[1];\n\
                    measure q[0] -> c[0];\n\
                    measure q[1] -> c[1];\n";
    assert_eq!(qasm, expected);
}

#[test]
fn section4_draw_and_totex_produce_output() {
    let circuit = bell_circuit();
    let art = draw_circuit(&circuit);
    assert!(art.contains("┤ H ├"));
    assert!(art.contains('●'));
    let tex = to_tex(&circuit);
    assert!(tex.contains("\\begin{quantikz}"));
    assert!(tex.contains("\\gate{H}"));
}

// ---------------------------------------------------------------- Sec. 5.1

#[test]
fn section51_teleportation_full_reproduction() {
    let out = teleport(&paper_v()).unwrap();
    // four distinct outcomes at 0.25 each
    assert_eq!(out.simulation.results(), &["00", "01", "10", "11"]);
    for p in out.simulation.probabilities() {
        assert!((p - 0.25).abs() < 1e-12);
    }
    // the paper prints 4 state vectors of dimension 8
    assert_eq!(out.simulation.states().len(), 4);
    for s in out.simulation.states() {
        assert_eq!(s.len(), 8);
    }
    // reducedStatevector(states(1), [0,1], '00') == |v>; the paper prints
    // the amplitudes as 0.7071 ± 0.0000i
    let red = reduced_statevector(out.simulation.states()[0], &[0, 1], "00").unwrap();
    assert!((red[0].re - INV_SQRT2).abs() < 5e-5);
    assert!((red[1].im - INV_SQRT2).abs() < 5e-5);
    // reducedStates is not applicable: only mid-circuit measurements but
    // the measured qubits survive as product states, so it still works —
    // verify both views agree
    let reduced = out.simulation.reduced_states().unwrap();
    for r in &reduced {
        assert!(r.approx_eq_up_to_phase(&paper_v(), 1e-10));
    }
}

// ---------------------------------------------------------------- Sec. 5.2

#[test]
fn section52_tomography_reproduction() {
    let t = tomography(&paper_v(), 1000, 1).unwrap();
    // counts sum to shots in each basis
    assert_eq!(t.counts_x.0 + t.counts_x.1, 1000);
    assert_eq!(t.counts_y.0 + t.counts_y.1, 1000);
    assert_eq!(t.counts_z.0 + t.counts_z.1, 1000);
    // S0 is exactly 1 by construction; S2 close to 1 for |v>
    assert!((t.s[0] - 1.0).abs() < 1e-12);
    assert!((t.s[2] - 1.0).abs() < 0.05);
    // trace distance in the paper's regime (paper: 0.006 with MATLAB rng)
    let d = DensityMatrix::from_pure(&paper_v()).trace_distance(&t.rho_est);
    assert!(d < 0.05, "trace distance {d}");
}

#[test]
fn section52_y_measurement_of_v_is_deterministic() {
    // |v> is the +1 eigenstate of Y, so P_y(0) = 1 exactly
    let mut c = QCircuit::new(1);
    c.push_back(Measurement::y(0));
    let sim = c.simulate(&paper_v()).unwrap();
    assert_eq!(sim.results(), &["0"]);
}

// ---------------------------------------------------------------- Sec. 5.3

#[test]
fn section53_grover_reproduction() {
    let sim = grover_circuit(2, "11", 1).simulate_bitstring("00").unwrap();
    assert_eq!(sim.results(), &["11"]);
    assert!((sim.probabilities()[0] - 1.0).abs() < 1e-10);
}

#[test]
fn section53_paper_block_construction_verbatim() {
    // build the circuit exactly as the paper lists it, blocks included
    let mut oracle = QCircuit::new(2);
    oracle.push_back(CZ::new(0, 1));
    oracle.as_block("oracle");

    let diffuser = paper_diffuser_2q();

    let mut gc = QCircuit::new(2);
    gc.push_back(Hadamard::new(0));
    gc.push_back(Hadamard::new(1));
    gc.push_back(oracle);
    gc.push_back(diffuser);
    gc.push_back(Measurement::z(0));
    gc.push_back(Measurement::z(1));

    let sim = gc.simulate_bitstring("00").unwrap();
    assert_eq!(sim.results(), &["11"]);
    assert!((sim.probabilities()[0] - 1.0).abs() < 1e-10);

    // the blocks draw as boxes
    let art = draw_circuit(&gc);
    assert!(art.contains("oracle"));
    assert!(art.contains("diffuser"));
}

// ---------------------------------------------------------------- Sec. 5.4

#[test]
fn section54_qec_reproduction() {
    let sim = protect(&bit_flip_circuit(InjectedError::BitFlip(0)), &paper_v()).unwrap();
    // the paper's measurement result '11'
    assert_eq!(sim.results(), &["11"]);
    assert!((sim.probabilities()[0] - 1.0).abs() < 1e-12);
    // physical qubits restored to α|000> + β|111>
    assert!(logical_fidelity(&sim, &paper_v()) > 1.0 - 1e-10);
}

#[test]
fn section54_all_correctable_errors() {
    for (err, syndrome) in [
        (InjectedError::None, "00"),
        (InjectedError::BitFlip(0), "11"),
        (InjectedError::BitFlip(1), "10"),
        (InjectedError::BitFlip(2), "01"),
    ] {
        let sim = protect(&bit_flip_circuit(err), &paper_v()).unwrap();
        assert_eq!(sim.results(), &[syndrome]);
        assert!(logical_fidelity(&sim, &paper_v()) > 1.0 - 1e-10);
    }
}

// ---------------------------------------------------------------- Sec. 6

#[test]
fn section6_custom_gate_support() {
    // the paper's differentiator: user-defined gates with validation
    let u = qclab::core::gates::matrices::u3(0.3, 0.1, -0.2);
    let g = CustomGate::new("mine", &[1], u.clone()).unwrap();
    let mut c = QCircuit::new(2);
    c.push_back(g);
    let m = c.to_matrix().unwrap();
    // acts as I ⊗ u
    let expected = u.embed(2, 1);
    assert!(m.approx_eq(&expected, 1e-12));
}

#[test]
fn section6_custom_measurement_basis() {
    // measure |v> in its own basis: deterministic outcome 0
    let v = paper_v();
    let orth = CVec(vec![cr(INV_SQRT2), c(0.0, -INV_SQRT2)]);
    let basis = CMat::from_fn(2, 2, |r, cl| if cl == 0 { v[r] } else { orth[r] });
    let m = Measurement::in_basis(0, "v", basis).unwrap();
    let mut c = QCircuit::new(1);
    c.push_back(m);
    let sim = c.simulate(&v).unwrap();
    assert_eq!(sim.results(), &["0"]);
    assert!((sim.probabilities()[0] - 1.0).abs() < 1e-12);
}
