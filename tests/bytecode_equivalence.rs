//! Property tests: the bytecode execution engine must be
//! **bit-identical** to the op-schedule interpreter — not approximately
//! equal. Both paths run [`kernel::apply_prepared`] on operands produced
//! by the same `prepare_gate` classification, in the same op order, with
//! the same runtime flags; the bytecode path merely moves preparation
//! out of the hot loop. So `bytecode: true` and `bytecode: false` must
//! agree with exact `==` on branch records, probabilities and every
//! amplitude — over random circuits mixing mid-circuit measurements
//! (all three bases), resets, fences and nested sub-circuits, with the
//! locality pass on and off.
//!
//! The shot-batched trajectory dispatcher gets the same treatment: each
//! batch lane owns the per-(seed, shot) RNG stream the serial engine
//! would use, so counts, injected-error totals, norm-watchdog stats and
//! observable expectations must be `==` across any batch width.

mod common;

use common::{gate, measured_circuit};
use proptest::prelude::*;
use qclab::prelude::*;
use qclab_core::sim::kernel::KernelConfig;
use qclab_core::sim::trajectory::{
    run_trajectories, NoiseSpec, PauliChannel, ShotPath, TrajectoryConfig,
};
use qclab_core::CircuitItem;
use qclab_math::CVec;

/// Register size for the dense equivalence properties: small enough to
/// keep thousands of cases fast, large enough for multi-qubit kernels,
/// control masks and the locality pass to all engage.
const N: usize = 8;

/// Honour `QCLAB_PROPTEST_CASES` to run more (or fewer) cases per
/// property (the hardened CI job raises it).
fn fuzz_cases() -> u32 {
    std::env::var("QCLAB_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A circuit with a nested sub-circuit (random offset) spliced into the
/// middle: the flattener relabels through the offset before lowering,
/// and the bytecode stream must reflect the flattened schedule.
fn nested_circuit() -> impl Strategy<Value = QCircuit> {
    (
        prop::collection::vec(gate(N), 0..6),
        prop::collection::vec(gate(3), 1..6),
        0..N - 2,
        prop::collection::vec(gate(N), 0..6),
    )
        .prop_map(|(before, inner_gates, offset, after)| {
            let mut inner = QCircuit::new(3);
            for g in inner_gates {
                inner.push_back(g);
            }
            let mut c = QCircuit::new(N);
            for g in before {
                c.push_back(g);
            }
            c.push_back(CircuitItem::SubCircuit {
                offset,
                circuit: inner,
            });
            for g in after {
                c.push_back(g);
            }
            c
        })
}

fn opts(bytecode: bool, remap: bool) -> SimOptions {
    SimOptions {
        backend: Backend::Kernel,
        kernel: KernelConfig {
            bytecode,
            remap,
            ..KernelConfig::default()
        },
        ..SimOptions::default()
    }
}

/// Exact equality of two simulations: identical branch records,
/// bit-identical probabilities, and `==` on every amplitude.
fn assert_bit_identical(a: &Simulation, b: &Simulation, what: &str) {
    assert_eq!(a.results(), b.results(), "{what}: branch records diverged");
    assert_eq!(
        a.probabilities(),
        b.probabilities(),
        "{what}: branch probabilities are not bit-identical"
    );
    let (sa, sb) = (a.states(), b.states());
    assert_eq!(sa.len(), sb.len(), "{what}: branch count diverged");
    for (bi, (x, y)) in sa.iter().zip(&sb).enumerate() {
        for (i, (za, zb)) in x.iter().zip(y.iter()).enumerate() {
            assert!(
                za.re == zb.re && za.im == zb.im,
                "{what}: branch {bi} amplitude {i} diverged: {za:?} vs {zb:?}"
            );
        }
    }
}

fn run_both(c: &QCircuit, remap: bool, what: &str) {
    let init = CVec::basis_state(1 << N, 0);
    let byte = c.simulate_with(&init, &opts(true, remap)).unwrap();
    let interp = c.simulate_with(&init, &opts(false, remap)).unwrap();
    assert_bit_identical(&byte, &interp, what);
}

/// A noisy trajectory configuration forced onto the per-shot engine
/// (the only path the batch dispatcher accelerates) at the given batch
/// width.
fn shot_config(seed: u64, shots: u64, batch: usize) -> TrajectoryConfig {
    TrajectoryConfig {
        seed,
        shots,
        noise: NoiseSpec {
            after_gate: Some(PauliChannel::Depolarizing(0.05)),
            idle: Some(PauliChannel::PhaseFlip(0.01)),
            before_measure: Some(PauliChannel::BitFlip(0.02)),
        },
        fast_path: false,
        // this suite pins the state-vector shot engines (serial vs
        // batched); all-Clifford draws would otherwise route to the
        // frame sampler
        frames: false,
        shot_batch: batch,
        ..TrajectoryConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Default engine configuration: bytecode dispatch is bit-identical
    /// on circuits with mid-circuit measurements, resets and fences.
    #[test]
    fn bytecode_is_bit_identical_default_config(c in measured_circuit(N, 16)) {
        run_both(&c, true, "default config");
    }

    /// With the locality pass off, no Permute instructions appear and
    /// window grouping follows the unmapped schedule — still identical.
    #[test]
    fn bytecode_is_bit_identical_without_remap(c in measured_circuit(N, 16)) {
        run_both(&c, false, "remap off");
    }

    /// Nested sub-circuits flatten through their offset before lowering;
    /// the compiled stream must match the interpreter across that
    /// relabeling.
    #[test]
    fn bytecode_is_bit_identical_with_subcircuits(c in nested_circuit()) {
        run_both(&c, true, "nested sub-circuits");
        run_both(&c, false, "nested sub-circuits, remap off");
    }

    /// Shot batching is pure scheduling: per-shot results depend only on
    /// `(seed, shot)`, never on which batch a shot landed in, so counts,
    /// injected-error totals and watchdog stats are `==` across widths.
    #[test]
    fn batched_shots_are_bit_identical_to_serial(
        c in measured_circuit(6, 12),
        seed in 0u64..1000,
    ) {
        let serial = run_trajectories(&c, &shot_config(seed, 24, 1)).unwrap();
        prop_assert_eq!(serial.path(), ShotPath::PerShot);
        for batch in [3usize, 8, 64] {
            let batched = run_trajectories(&c, &shot_config(seed, 24, batch)).unwrap();
            prop_assert_eq!(serial.counts(), batched.counts(), "counts @ batch {}", batch);
            prop_assert_eq!(
                serial.injected_errors(),
                batched.injected_errors(),
                "injected errors @ batch {}",
                batch
            );
            prop_assert_eq!(
                serial.norm_stats(),
                batched.norm_stats(),
                "norm stats @ batch {}",
                batch
            );
        }
    }
}

/// A deep circuit of tile-resident gates on a 14-qubit register (the
/// cache-blocked sweep needs `n` above the 12-qubit tile): the lowered
/// stream must actually collapse runs into Window instructions (guards
/// against the grouping rule silently never firing) and still execute
/// bit-identically.
#[test]
fn windows_form_and_stay_bit_identical() {
    let n = 14;
    let mut c = QCircuit::new(n);
    // qubits 2..n have index shifts inside the sweep tile at n = 14
    for rep in 0..12 {
        for q in 2..n {
            c.push_back(Hadamard::new(q));
            c.push_back(RotationZ::new(q, 0.1 * (rep * n + q) as f64));
        }
        for q in 2..n - 1 {
            c.push_back(CNOT::new(q, q + 1));
        }
    }
    c.push_back(Measurement::z(2));

    let plan = c.compile_with(&qclab_core::program::PlanOptions::default());
    let bc = plan.bytecode();
    assert!(
        bc.stream_len() < plan.ops().len(),
        "a tile-resident chain must compress into windows: {} instrs for {} ops",
        bc.stream_len(),
        plan.ops().len()
    );

    let init = CVec::basis_state(1 << n, 0);
    for remap in [true, false] {
        let byte = c.simulate_with(&init, &opts(true, remap)).unwrap();
        let interp = c.simulate_with(&init, &opts(false, remap)).unwrap();
        assert_bit_identical(&byte, &interp, "deep sweepable chain");
    }
}

/// Mid-circuit measurements and resets interleaved with gates: the
/// executor must branch/collapse at exactly the same points as the
/// interpreter, including under a permuted layout.
#[test]
fn measure_reset_heavy_circuit_is_bit_identical() {
    let mut c = QCircuit::new(N);
    for rep in 0..6 {
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, N - 1));
        c.push_back(RotationX::new(N - 1, 0.4 + rep as f64));
        c.push_back(Measurement::x(0));
        c.push_back(CircuitItem::Barrier(vec![0, N - 1]));
        c.push_back(CircuitItem::Reset(N - 1));
        c.push_back(Measurement::y(1));
        c.push_back(CNOT::new(1, 2));
    }
    run_both(&c, true, "measure/reset heavy");
    run_both(&c, false, "measure/reset heavy, remap off");
}

/// Fixed-seed determinism across every supported batch width, including
/// widths that do not divide the shot count, plus the width the result
/// actually reports.
#[test]
fn batch_width_never_leaks_into_results() {
    let mut c = QCircuit::new(6);
    for q in 0..6 {
        c.push_back(Hadamard::new(q));
    }
    for q in 0..5 {
        c.push_back(CNOT::new(q, q + 1));
    }
    c.push_back(Measurement::z(0));
    c.push_back(CircuitItem::Reset(3));
    c.push_back(Hadamard::new(3));
    c.push_back(Measurement::z(3));
    c.push_back(Measurement::z(5));

    for seed in [1u64, 7, 42] {
        let serial = run_trajectories(&c, &shot_config(seed, 100, 1)).unwrap();
        assert_eq!(serial.shot_batch(), 1);
        for batch in [3usize, 8, 64] {
            let batched = run_trajectories(&c, &shot_config(seed, 100, batch)).unwrap();
            assert_eq!(batched.shot_batch(), batch as u64, "seed {seed}");
            assert_eq!(
                serial.counts(),
                batched.counts(),
                "seed {seed} batch {batch}"
            );
            assert_eq!(
                serial.injected_errors(),
                batched.injected_errors(),
                "seed {seed} batch {batch}"
            );
            assert_eq!(
                serial.norm_stats(),
                batched.norm_stats(),
                "seed {seed} batch {batch}"
            );
        }
    }
}

/// Disabling a kernel specialization the bytecode operands were
/// classified under must route execution back to the interpreter (and
/// therefore still produce identical results), not execute mismatched
/// operands.
#[test]
fn specialization_ablations_fall_back_to_the_interpreter() {
    let mut c = QCircuit::new(N);
    for q in 0..N - 1 {
        c.push_back(Hadamard::new(q));
        c.push_back(SwapGate::new(q, q + 1));
        c.push_back(RotationZ::new(q, 0.3 * q as f64));
    }
    c.push_back(Measurement::z(0));
    let init = CVec::basis_state(1 << N, 0);
    let reference = c.simulate_with(&init, &opts(false, true)).unwrap();
    for (diag, swap) in [(false, true), (true, false), (false, false)] {
        let ablated = SimOptions {
            backend: Backend::Kernel,
            kernel: KernelConfig {
                bytecode: true,
                use_diagonal_kernel: diag,
                use_swap_kernel: swap,
                ..KernelConfig::default()
            },
            ..SimOptions::default()
        };
        let sim = c.simulate_with(&init, &ablated).unwrap();
        assert_eq!(
            sim.results(),
            reference.results(),
            "ablation (diag={diag}, swap={swap}) diverged"
        );
        assert_eq!(sim.probabilities(), reference.probabilities());
    }
}
