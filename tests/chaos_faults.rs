//! Fault-injection (chaos) suite — compiled only with the `chaos`
//! feature (`cargo test --features chaos --test chaos_faults`).
//!
//! The `sim::control::chaos` hook fires exactly one forced fault —
//! cancellation, synthetic allocation refusal, or panic — at a chosen
//! op boundary inside whichever executor reaches it first. Each test
//! arms a fault, proves the run fails the way the fault dictates, and
//! then proves the *same process* recovers completely: an identical
//! follow-up run reproduces the no-fault baseline bit for bit, and the
//! global plan cache is never left poisoned.
//!
//! The hook state is process-global, so every test serializes on one
//! mutex and disarms on entry.

#![cfg(feature = "chaos")]

use qclab::prelude::*;
use qclab_core::program::{compile, plan_cache_stats, BackendRequest, PlanOptions};
use qclab_core::sim::control::chaos::{self, Fault};
use qclab_core::sim::control::StopCause;
use qclab_core::sim::density::{run_noisy, DensityState, NoiseModel};
use qclab_core::sim::sparse::{self, SparseOptions, SparseState};
use qclab_core::sim::stabilizer::run_program;
use qclab_core::sim::trajectory::{run_trajectories, NoiseSpec, PauliChannel, TrajectoryConfig};
use qclab_core::sim::SimOptions;
use qclab_core::QclabError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

/// Serializes the tests: the chaos hook is process-global state.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // a failed assertion in one test must not wedge the rest
    let guard = CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    chaos::disarm();
    guard
}

/// A 3-qubit H/CNOT workload with terminal measurements.
fn workload() -> QCircuit {
    let mut c = QCircuit::new(3);
    for _ in 0..3 {
        for q in 0..3 {
            c.push_back(Hadamard::new(q));
        }
        c.push_back(CNOT::new(0, 1));
        c.push_back(CNOT::new(1, 2));
    }
    for q in 0..3 {
        c.push_back(Measurement::z(q));
    }
    c
}

/// Runs `run` under each fault class at op boundary `at` and asserts
/// the clean unwind: Cancel surfaces as `Cancelled`, Refuse as
/// `ResourceExhausted`, Panic unwinds but is containable — and after
/// every fault the identical call reproduces `baseline`.
fn assert_recovers<T: PartialEq + std::fmt::Debug>(
    run: impl Fn() -> Result<T, QclabError>,
    baseline: &T,
    at: u64,
) {
    chaos::arm(Fault::Cancel, at);
    assert!(
        matches!(run(), Err(QclabError::Cancelled(_))),
        "armed Cancel must surface as Cancelled"
    );
    assert_eq!(&run().unwrap(), baseline, "recovery after Cancel");

    chaos::arm(Fault::Refuse, at);
    assert!(
        matches!(run(), Err(QclabError::ResourceExhausted { .. })),
        "armed Refuse must surface as ResourceExhausted"
    );
    assert_eq!(&run().unwrap(), baseline, "recovery after Refuse");

    chaos::arm(Fault::Panic, at);
    assert!(
        catch_unwind(AssertUnwindSafe(&run)).is_err(),
        "armed Panic must unwind"
    );
    assert_eq!(&run().unwrap(), baseline, "recovery after Panic");
}

#[test]
fn dense_executor_unwinds_cleanly_under_every_fault() {
    let _g = lock();
    let c = workload();
    let run = || {
        c.simulate_bitstring_with("000", &SimOptions::default())
            .map(|s| {
                (
                    s.results()
                        .iter()
                        .map(|r| r.to_string())
                        .collect::<Vec<_>>(),
                    s.probabilities(),
                )
            })
    };
    let baseline = run().unwrap();
    // the fused dense program pokes once per sweep window plus once per
    // measurement, so keep the boundary indices within that budget
    for at in [0, 2] {
        assert_recovers(run, &baseline, at);
    }
}

#[test]
fn sparse_executor_unwinds_cleanly_under_every_fault() {
    let _g = lock();
    let c = workload();
    let program = c.compile_with(&PlanOptions::sparse());
    let run = || {
        sparse::execute_controlled(
            &program,
            SparseState::from_bitstring("000").unwrap(),
            &SparseOptions::default(),
            &qclab_core::sim::control::ExecutionControl::none(),
        )
        .map(|s| {
            (
                s.results()
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>(),
                s.probabilities(),
            )
        })
    };
    let baseline = run().unwrap();
    for at in [0, 3] {
        assert_recovers(run, &baseline, at);
    }
}

#[test]
fn density_executor_unwinds_cleanly_under_every_fault() {
    let _g = lock();
    let c = workload();
    let psi = CVec::basis_state(8, 0);
    let rho = DensityState::from_pure(&psi);
    let noise = NoiseModel { after_gate: None };
    let run = || {
        run_noisy(&c, &rho, &noise).map(|s| {
            // purity/fidelity pin the final state closely enough for a
            // bit-identity check of the deterministic evolution
            (s.purity().to_bits(), s.fidelity_with_pure(&psi).to_bits())
        })
    };
    let baseline = run().unwrap();
    for at in [0, 4] {
        assert_recovers(run, &baseline, at);
    }
}

#[test]
fn stabilizer_executor_unwinds_cleanly_under_every_fault() {
    let _g = lock();
    let c = workload();
    let program = c.compile_with(&PlanOptions::unfused());
    let run = || {
        // fresh RNG per run: recovery must be deterministic in the seed
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(17);
        run_program(&program, &mut rng).map(|r| r.record)
    };
    let baseline = run().unwrap();
    for at in [0, 2] {
        assert_recovers(run, &baseline, at);
    }
}

#[test]
fn trajectory_ensemble_unwinds_cleanly_under_every_fault() {
    let _g = lock();
    let c = workload();
    // per-shot noisy path, serial: the fault fires inside a shot and
    // must not leak into the next run through the reused buffers
    let config = TrajectoryConfig {
        shots: 30,
        seed: 13,
        noise: NoiseSpec {
            after_gate: Some(PauliChannel::Depolarizing(0.05)),
            ..NoiseSpec::default()
        },
        parallel: false,
        // pin the state-vector per-shot path: the fault tick counts
        // below are calibrated to its op cadence (the frame sampler
        // has its own leg below)
        frames: false,
        ..TrajectoryConfig::default()
    };
    let run = || run_trajectories(&c, &config);
    let baseline = run().unwrap();
    assert!(!baseline.is_partial());

    // a forced cancellation mid-ensemble is a *partial result*, not an
    // error: completed shots are kept and flagged
    chaos::arm(Fault::Cancel, 40);
    let partial = run().unwrap();
    assert_eq!(partial.stop_cause(), Some(StopCause::Cancelled));
    assert!(partial.shots() < 30);
    let tallied: u64 = partial.counts().values().sum();
    assert_eq!(tallied, partial.shots());
    let again = run().unwrap();
    assert_eq!(again.counts(), baseline.counts(), "recovery after Cancel");

    // a refusal is not a stop cause — it surfaces as the error it is
    chaos::arm(Fault::Refuse, 40);
    assert!(matches!(run(), Err(QclabError::ResourceExhausted { .. })));
    let again = run().unwrap();
    assert_eq!(again.counts(), baseline.counts(), "recovery after Refuse");

    // a panic mid-shot unwinds through the buffer arena and leaves it
    // reusable: the next ensemble is bit-identical to the baseline
    chaos::arm(Fault::Panic, 40);
    assert!(catch_unwind(AssertUnwindSafe(&run)).is_err());
    let again = run().unwrap();
    assert_eq!(again.counts(), baseline.counts(), "recovery after Panic");
    assert_eq!(again.injected_errors(), baseline.injected_errors());
}

#[test]
fn frame_sampler_unwinds_cleanly_under_every_fault() {
    let _g = lock();
    let c = workload();
    // all-Clifford + Pauli noise: the default config routes this
    // through the Pauli-frame sampler; serial so the fault lands at a
    // deterministic tick
    let config = TrajectoryConfig {
        shots: 30,
        seed: 13,
        noise: NoiseSpec {
            after_gate: Some(PauliChannel::Depolarizing(0.05)),
            ..NoiseSpec::default()
        },
        parallel: false,
        ..TrajectoryConfig::default()
    };
    let run = || run_trajectories(&c, &config);
    let baseline = run().unwrap();
    assert_eq!(
        baseline.path(),
        qclab_core::sim::trajectory::ShotPath::PauliFrame
    );
    assert!(!baseline.is_partial());

    // tick 5 lands inside the one-time reference run, tick 25 inside
    // the frame batch (the 18-op workload ticks 18 times per phase) —
    // both must surface as a clean partial result, then fully recover
    for at in [5, 25] {
        chaos::arm(Fault::Cancel, at);
        let partial = run().unwrap();
        assert_eq!(partial.stop_cause(), Some(StopCause::Cancelled));
        assert!(partial.shots() < 30);
        let tallied: u64 = partial.counts().values().sum();
        assert_eq!(tallied, partial.shots());
        let again = run().unwrap();
        assert_eq!(again.counts(), baseline.counts(), "recovery after Cancel");

        chaos::arm(Fault::Refuse, at);
        assert!(matches!(run(), Err(QclabError::ResourceExhausted { .. })));
        let again = run().unwrap();
        assert_eq!(again.counts(), baseline.counts(), "recovery after Refuse");

        chaos::arm(Fault::Panic, at);
        assert!(catch_unwind(AssertUnwindSafe(&run)).is_err());
        let again = run().unwrap();
        assert_eq!(again.counts(), baseline.counts(), "recovery after Panic");
        assert_eq!(again.injected_errors(), baseline.injected_errors());
    }
}

#[test]
fn forced_refusal_under_auto_degrades_to_sparse() {
    let _g = lock();
    let c = workload();
    let opts = SimOptions::default();
    let dense_baseline = c
        .simulate_bitstring_routed("000", &opts, BackendRequest::Auto)
        .unwrap();
    assert!(!dense_baseline.is_sparse(), "small workload routes dense");

    // the single-shot refusal hits the dense run; the Auto router
    // falls back to the sparse executor, which runs fault-free
    chaos::arm(Fault::Refuse, 0);
    let rescued = c
        .simulate_bitstring_routed("000", &opts, BackendRequest::Auto)
        .unwrap();
    assert!(rescued.is_sparse(), "refused dense run must degrade");
    // same distribution either way
    let mut dense: Vec<(String, f64)> = dense_baseline
        .results()
        .iter()
        .map(|r| r.to_string())
        .zip(dense_baseline.probabilities())
        .collect();
    let mut sparse: Vec<(String, f64)> = rescued
        .results()
        .iter()
        .map(|r| r.to_string())
        .zip(rescued.probabilities())
        .collect();
    dense.sort_by(|a, b| a.0.cmp(&b.0));
    sparse.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(dense.len(), sparse.len());
    for ((rd, pd), (rs, ps)) in dense.iter().zip(&sparse) {
        assert_eq!(rd, rs);
        assert!((pd - ps).abs() < 1e-12);
    }

    // under a pinned Dense request the refusal surfaces instead
    chaos::arm(Fault::Refuse, 0);
    assert!(matches!(
        c.simulate_bitstring_routed("000", &opts, BackendRequest::Dense),
        Err(QclabError::ResourceExhausted { .. })
    ));
}

#[test]
fn plan_cache_survives_forced_panics() {
    let _g = lock();
    let c = workload();
    let opts = PlanOptions::default();
    let before = compile(&c, &opts);

    // panic inside an executor (which holds no cache lock) and inside a
    // compile-adjacent path: afterwards the cache must still serve the
    // same Arc and its stats must be consistent
    for _ in 0..3 {
        chaos::arm(Fault::Panic, 0);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            c.simulate_bitstring_with("000", &SimOptions::default())
        }));
    }
    chaos::disarm();

    let after = compile(&c, &opts);
    assert!(
        Arc::ptr_eq(&before, &after),
        "plan cache must keep serving the pre-panic entry"
    );
    let stats = plan_cache_stats();
    assert!(stats.entries >= 1);

    // and a full differential run still matches a fresh computation
    let a = c
        .simulate_bitstring_with("000", &SimOptions::default())
        .unwrap();
    let b = c
        .simulate_bitstring_with("000", &SimOptions::default())
        .unwrap();
    assert_eq!(a.results(), b.results());
    assert_eq!(a.probabilities(), b.probabilities());
}
