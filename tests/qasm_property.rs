//! Property tests: OpenQASM export/import round trips preserve the
//! circuit unitary on randomly generated circuits.

mod common;

use common::circuit;
use proptest::prelude::*;
use qclab::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Export → import → compare unitaries.
    #[test]
    fn qasm_round_trip_preserves_unitary(c in circuit(3, 10)) {
        let qasm = to_qasm(&c).unwrap();
        let back = from_qasm(&qasm).unwrap();
        prop_assert_eq!(back.nb_qubits(), c.nb_qubits());
        let m1 = c.to_matrix().unwrap();
        let m2 = back.to_matrix().unwrap();
        prop_assert!(
            m1.approx_eq(&m2, 1e-8),
            "round trip changed the unitary:\n{}",
            qasm
        );
    }

    /// The exported text always parses (no emitter/parser mismatch).
    #[test]
    fn exported_qasm_always_parses(c in circuit(4, 14)) {
        let qasm = to_qasm(&c).unwrap();
        prop_assert!(from_qasm(&qasm).is_ok(), "unparseable export:\n{qasm}");
    }
}

#[test]
fn angle_precision_survives_round_trip() {
    // 17 significant digits are enough to reproduce any f64 exactly
    let theta = 0.123_456_789_012_345_68_f64;
    let mut c = QCircuit::new(1);
    c.push_back(RotationZ::new(0, theta));
    let back = from_qasm(&to_qasm(&c).unwrap()).unwrap();
    match &back.items()[0] {
        CircuitItem::Gate(Gate::RotationZ { theta: t, .. }) => {
            assert_eq!(*t, theta, "angle changed in round trip");
        }
        other => panic!("unexpected item {other:?}"),
    }
}

#[test]
fn symbolic_pi_angles_round_trip_exactly() {
    for theta in [
        std::f64::consts::PI,
        std::f64::consts::FRAC_PI_2,
        -std::f64::consts::FRAC_PI_4,
        3.0 * std::f64::consts::PI / 4.0,
    ] {
        let mut c = QCircuit::new(1);
        c.push_back(PhaseGate::new(0, theta));
        let back = from_qasm(&to_qasm(&c).unwrap()).unwrap();
        match &back.items()[0] {
            CircuitItem::Gate(Gate::Phase { theta: t, .. }) => {
                assert!((t - theta).abs() < 1e-15);
            }
            other => panic!("unexpected item {other:?}"),
        }
    }
}
