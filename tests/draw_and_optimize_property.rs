//! Property tests for the renderers (never panic, structural invariants
//! hold on arbitrary circuits) and the optimizer (semantics-preserving
//! and idempotent).

mod common;

use common::circuit;
use proptest::prelude::*;
use qclab::prelude::*;
use qclab_core::optimize::optimize;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ASCII renderer handles any circuit and keeps basic structure:
    /// 3 rows per qubit, a wire label per qubit, trimmed lines.
    #[test]
    fn ascii_renderer_total(c in circuit(4, 14)) {
        let art = draw_circuit(&c);
        let lines: Vec<&str> = art.lines().collect();
        prop_assert_eq!(lines.len(), 3 * c.nb_qubits());
        for q in 0..c.nb_qubits() {
            let label = format!("q{q}: ");
            prop_assert!(lines[3 * q + 1].starts_with(&label));
        }
        for line in &lines {
            prop_assert_eq!(*line, line.trim_end());
        }
    }

    /// The LaTeX exporter emits one quantikz row per qubit with equal
    /// column counts.
    #[test]
    fn latex_rows_are_rectangular(c in circuit(4, 14)) {
        let body = qclab_draw::latex::render_body(&qclab_draw::layout(&c));
        let rows: Vec<&str> = body.lines().collect();
        prop_assert_eq!(rows.len(), c.nb_qubits());
        let cols: Vec<usize> = rows.iter().map(|r| r.matches('&').count()).collect();
        for w in cols.windows(2) {
            prop_assert_eq!(w[0], w[1], "ragged quantikz rows:\n{}", body);
        }
    }

    /// Optimization preserves the circuit unitary exactly.
    #[test]
    fn optimizer_preserves_unitary(c in circuit(3, 16)) {
        let (opt, _) = optimize(&c);
        prop_assert!(opt.nb_gates() <= c.nb_gates());
        let m1 = c.to_matrix().unwrap();
        let m2 = opt.to_matrix().unwrap();
        prop_assert!(m1.approx_eq(&m2, 1e-9), "optimizer changed the unitary");
    }

    /// Optimization is idempotent: a second run changes nothing.
    #[test]
    fn optimizer_is_idempotent(c in circuit(3, 16)) {
        let (once, _) = optimize(&c);
        let (twice, stats) = optimize(&once);
        prop_assert_eq!(once.nb_gates(), twice.nb_gates());
        prop_assert_eq!(stats.pairs_cancelled, 0);
        prop_assert_eq!(stats.rotations_fused, 0);
        prop_assert_eq!(stats.identities_removed, 0);
    }

    /// Optimizing then drawing still works (pipeline smoke test).
    #[test]
    fn optimize_then_render(c in circuit(4, 10)) {
        let (opt, _) = optimize(&c);
        if opt.is_empty() {
            return Ok(());
        }
        let art = draw_circuit(&opt);
        prop_assert!(!art.is_empty());
    }
}

#[test]
fn optimizer_shrinks_redundant_qft_pair() {
    // QFT followed by its inverse collapses entirely
    let mut c = qclab_algorithms::qft(4);
    for item in qclab_algorithms::iqft(4).items() {
        c.push_back(item.clone());
    }
    let (opt, _) = qclab_core::optimize::optimize(&c);
    assert_eq!(opt.nb_gates(), 0, "QFT·QFT† should fully cancel");
}
