//! Concurrency contract of the global plan cache: compilation is
//! single-flight. N threads racing on one fingerprint must produce
//! exactly one lowering (one recorded miss), and every thread must
//! receive the *same* `Arc<CompiledProgram>` — concurrent misses that
//! each re-lower and last-write-win would break both counts and
//! sharing.
//!
//! Everything lives in ONE test function: the cache and its counters
//! are process-global, and the parallel test runner would race them
//! across `#[test]`s. (Separate integration-test *files* are separate
//! processes, so this file cannot race `plan_cache_lru.rs`.)

use qclab::prelude::*;
use qclab_core::program::{self, PlanOptions};
use std::sync::{Arc, Barrier};

fn tagged_circuit(tag: f64) -> QCircuit {
    let mut c = QCircuit::new(4);
    c.push_back(Hadamard::new(0));
    c.push_back(RotationZ::new(1, tag));
    c.push_back(CNOT::new(0, 2));
    c.push_back(CNOT::new(2, 3));
    c.push_back(Measurement::z(3));
    c
}

#[test]
fn concurrent_compiles_are_single_flight() {
    const THREADS: usize = 16;
    const ROUNDS: usize = 20;

    program::clear_plan_cache();

    // same fingerprint from all threads: one miss per round, one Arc
    for round in 0..ROUNDS {
        let tag = 0.1 + round as f64;
        program::clear_plan_cache();
        let before = program::plan_cache_stats();
        let barrier = Arc::new(Barrier::new(THREADS));
        let plans: Vec<Arc<qclab_core::CompiledProgram>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        let circuit = tagged_circuit(tag);
                        barrier.wait();
                        program::compile(&circuit, &PlanOptions::default())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let after = program::plan_cache_stats();
        assert_eq!(
            after.misses,
            before.misses + 1,
            "round {round}: exactly one thread may lower; the rest must \
             wait on the in-flight slot"
        );
        assert_eq!(
            after.hits,
            before.hits + THREADS as u64 - 1,
            "round {round}: every waiter must be served as a hit"
        );
        for (i, plan) in plans.iter().enumerate() {
            assert!(
                Arc::ptr_eq(plan, &plans[0]),
                "round {round}: thread {i} got a different Arc — duplicate \
                 lowering under contention"
            );
        }
    }

    // distinct fingerprints under contention: no deadlock, no sharing,
    // and one lowering each
    program::clear_plan_cache();
    let before = program::plan_cache_stats();
    let barrier = Arc::new(Barrier::new(THREADS));
    let plans: Vec<Arc<qclab_core::CompiledProgram>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let circuit = tagged_circuit(100.0 + i as f64);
                    barrier.wait();
                    program::compile(&circuit, &PlanOptions::default())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let after = program::plan_cache_stats();
    assert_eq!(
        after.misses,
        before.misses + THREADS as u64,
        "distinct circuits must each lower once"
    );
    for i in 0..THREADS {
        for j in (i + 1)..THREADS {
            assert!(
                !Arc::ptr_eq(&plans[i], &plans[j]),
                "distinct fingerprints must not share a plan"
            );
        }
    }

    // mixed: half the threads compile fingerprint A, half fingerprint B
    program::clear_plan_cache();
    let before = program::plan_cache_stats();
    let barrier = Arc::new(Barrier::new(THREADS));
    let plans: Vec<(usize, Arc<qclab_core::CompiledProgram>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let which = i % 2;
                    let circuit = tagged_circuit(200.0 + which as f64);
                    barrier.wait();
                    (which, program::compile(&circuit, &PlanOptions::default()))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let after = program::plan_cache_stats();
    assert_eq!(
        after.misses,
        before.misses + 2,
        "two fingerprints → two lowerings, regardless of contention"
    );
    let first_a = plans.iter().find(|(w, _)| *w == 0).unwrap();
    let first_b = plans.iter().find(|(w, _)| *w == 1).unwrap();
    for (which, plan) in &plans {
        let expect = if *which == 0 { &first_a.1 } else { &first_b.1 };
        assert!(Arc::ptr_eq(plan, expect), "same fingerprint, same Arc");
    }
    assert!(!Arc::ptr_eq(&first_a.1, &first_b.1));

    program::clear_plan_cache();
}
