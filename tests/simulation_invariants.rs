//! Property tests on the measurement/branching machinery: probabilities
//! form a distribution, collapse is idempotent, counts are consistent,
//! and reduced states match partial traces.

mod common;

use common::{circuit, state};
use proptest::prelude::*;
use qclab::prelude::*;

const N: usize = 3;

/// Appends measurements on `k` qubits to a copy of the circuit.
fn with_measurements(c: &QCircuit, k: usize) -> QCircuit {
    let mut out = c.clone();
    for q in 0..k {
        out.push_back(Measurement::z(q));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Branch probabilities sum to one and every branch state is a unit
    /// vector supported on its observed outcome.
    #[test]
    fn branch_probabilities_form_distribution(
        c in circuit(N, 10),
        init in state(N),
        k in 1usize..=N,
    ) {
        let sim = with_measurements(&c, k).simulate(&init).unwrap();
        let total: f64 = sim.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total probability {total}");
        for b in sim.branches() {
            prop_assert!((b.state().norm() - 1.0).abs() < 1e-9);
            prop_assert_eq!(b.result().len(), k);
            // measuring the same qubits again must reproduce the result
            // deterministically
            for (pos, ch) in b.result().chars().enumerate() {
                let bit = ch.to_digit(10).unwrap() as usize;
                let p = b.state().qubit_probability(pos, bit);
                prop_assert!((p - 1.0).abs() < 1e-9, "collapse not idempotent");
            }
        }
    }

    /// Branch results are unique and sorted lexicographically (by
    /// construction of the splitting order).
    #[test]
    fn branch_results_are_unique(c in circuit(N, 8), init in state(N)) {
        let sim = with_measurements(&c, N).simulate(&init).unwrap();
        let results = sim.results();
        let mut sorted = results.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), results.len(), "duplicate branch results");
    }

    /// Sampled counts always sum to the number of shots and only contain
    /// observed outcomes.
    #[test]
    fn counts_sum_to_shots(c in circuit(N, 8), init in state(N), seed in any::<u64>()) {
        let sim = with_measurements(&c, N).simulate(&init).unwrap();
        let counts = sim.counts(500, seed);
        let total: u64 = counts.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(total, 500);
        let results = sim.results();
        for (outcome, _) in &counts {
            prop_assert!(results.contains(&outcome.as_str()));
        }
    }

    /// Measurement statistics match the state's Born probabilities.
    #[test]
    fn measurement_matches_born_rule(c in circuit(N, 10), init in state(N)) {
        // simulate without measurement to get the pre-measurement state
        let pre = c.simulate(&init).unwrap();
        let pre_state = pre.states()[0].clone();
        // then measure qubit 0
        let mut mc = c.clone();
        mc.push_back(Measurement::z(0));
        let sim = mc.simulate(&init).unwrap();
        let p0_expected = pre_state.qubit_probability(0, 0);
        let p0_observed: f64 = sim
            .branches()
            .iter()
            .filter(|b| b.result() == "0")
            .map(|b| b.probability())
            .sum();
        prop_assert!((p0_observed - p0_expected).abs() < 1e-9);
    }

    /// For product-preserving circuits, the reduced state from the
    /// simulation equals the partial-trace reduction of the branch state.
    #[test]
    fn reduced_states_match_partial_trace(c in circuit(N, 8), init in state(N)) {
        let mut mc = c.clone();
        mc.push_back(Measurement::z(0));
        let sim = mc.simulate(&init).unwrap();
        if let Ok(reduced) = sim.reduced_states() {
            for (b, r) in sim.branches().iter().zip(&reduced) {
                let rho = DensityMatrix::from_pure(b.state());
                let keep: Vec<usize> = (1..N).collect();
                let red_rho = rho.partial_trace_keep(&keep);
                // fidelity of the claimed pure reduced state with the
                // partial trace must be 1
                let f = red_rho.fidelity_with_pure(r);
                prop_assert!((f - 1.0).abs() < 1e-8, "fidelity {f}");
            }
        }
    }
}

#[test]
fn deterministic_chain_of_measurements() {
    // measure the same qubit repeatedly: one extra branch never appears
    let mut c = QCircuit::new(2);
    c.push_back(Hadamard::new(0));
    c.push_back(Measurement::z(0));
    c.push_back(Measurement::z(0));
    c.push_back(Measurement::z(0));
    let sim = c.simulate_bitstring("00").unwrap();
    assert_eq!(sim.results(), &["000", "111"]);
}
