//! Quantum error correction with distance-3 repetition codes
//! (paper Sec. 5.4).
//!
//! Builds the paper's 5-qubit bit-flip circuit — encode, inject an error,
//! extract the syndrome into two ancillas, measure them mid-circuit, and
//! correct with multi-controlled X gates — plus the dual phase-flip code
//! obtained by conjugating with Hadamards.

use qclab_core::prelude::*;
use qclab_math::CVec;

/// Which single-qubit error (if any) to inject between encoding and
/// syndrome extraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedError {
    /// No error: the syndrome must read `00`.
    None,
    /// Bit flip (X) on the given physical qubit (0, 1 or 2).
    BitFlip(usize),
    /// Phase flip (Z) on the given physical qubit — only correctable by
    /// the phase-flip code.
    PhaseFlip(usize),
}

/// The paper's bit-flip repetition-code circuit on 5 qubits: data qubits
/// 0–2, ancillas 3–4. `error` selects the injected fault.
pub fn bit_flip_circuit(error: InjectedError) -> QCircuit {
    let mut qec = QCircuit::new(5);
    // encode |v> into α|000> + β|111>
    qec.push_back(CNOT::new(0, 1));
    qec.push_back(CNOT::new(0, 2));
    // inject the error
    match error {
        InjectedError::None => {}
        InjectedError::BitFlip(q) => {
            assert!(q < 3, "error must hit a data qubit");
            qec.push_back(PauliX::new(q));
        }
        InjectedError::PhaseFlip(q) => {
            assert!(q < 3, "error must hit a data qubit");
            qec.push_back(PauliZ::new(q));
        }
    }
    // syndrome extraction: ancilla 3 compares q0/q1, ancilla 4 q0/q2
    qec.push_back(CNOT::new(0, 3));
    qec.push_back(CNOT::new(1, 3));
    qec.push_back(CNOT::new(0, 4));
    qec.push_back(CNOT::new(2, 4));
    // mid-circuit syndrome measurement
    qec.push_back(Measurement::z(3));
    qec.push_back(Measurement::z(4));
    // correction: the paper's three multi-controlled X gates
    qec.push_back(MCX::new(&[3, 4], 2, &[0, 1]));
    qec.push_back(MCX::new(&[3, 4], 1, &[1, 0]));
    qec.push_back(MCX::new(&[3, 4], 0, &[1, 1]));
    qec
}

/// The dual phase-flip code: the bit-flip circuit conjugated with
/// Hadamards on the data qubits, correcting a single Z error.
pub fn phase_flip_circuit(error: InjectedError) -> QCircuit {
    let mut qec = QCircuit::new(5);
    qec.push_back(CNOT::new(0, 1));
    qec.push_back(CNOT::new(0, 2));
    for q in 0..3 {
        qec.push_back(Hadamard::new(q));
    }
    match error {
        InjectedError::None => {}
        InjectedError::PhaseFlip(q) => {
            assert!(q < 3);
            qec.push_back(PauliZ::new(q));
        }
        InjectedError::BitFlip(q) => {
            assert!(q < 3);
            qec.push_back(PauliX::new(q));
        }
    }
    for q in 0..3 {
        qec.push_back(Hadamard::new(q));
    }
    qec.push_back(CNOT::new(0, 3));
    qec.push_back(CNOT::new(1, 3));
    qec.push_back(CNOT::new(0, 4));
    qec.push_back(CNOT::new(2, 4));
    qec.push_back(Measurement::z(3));
    qec.push_back(Measurement::z(4));
    qec.push_back(MCX::new(&[3, 4], 2, &[0, 1]));
    qec.push_back(MCX::new(&[3, 4], 1, &[1, 0]));
    qec.push_back(MCX::new(&[3, 4], 0, &[1, 1]));
    qec
}

/// The ancilla-reuse variant of the bit-flip code (paper footnote 3 and
/// refs [9, 13]): a **single** ancilla extracts both syndrome bits, with
/// a reset between the two parity measurements. The correction is not a
/// coherent multi-controlled gate — it is applied classically per branch
/// by [`correct_by_pauli_frame`], exactly the "Pauli frame" software
/// correction the paper's footnote describes.
pub fn bit_flip_circuit_ancilla_reuse(error: InjectedError) -> QCircuit {
    let mut qec = QCircuit::new(4);
    qec.push_back(CNOT::new(0, 1));
    qec.push_back(CNOT::new(0, 2));
    match error {
        InjectedError::None => {}
        InjectedError::BitFlip(q) => {
            assert!(q < 3);
            qec.push_back(PauliX::new(q));
        }
        InjectedError::PhaseFlip(q) => {
            assert!(q < 3);
            qec.push_back(PauliZ::new(q));
        }
    }
    // first parity check (q0 ⊕ q1) into the single ancilla
    qec.push_back(CNOT::new(0, 3));
    qec.push_back(CNOT::new(1, 3));
    qec.push_back(Measurement::z(3));
    // reuse: reset and extract the second parity (q0 ⊕ q2)
    qec.push_back(CircuitItem::Reset(3));
    qec.push_back(CNOT::new(0, 3));
    qec.push_back(CNOT::new(2, 3));
    qec.push_back(Measurement::z(3));
    qec
}

/// Applies the Pauli-frame correction to each branch of an
/// ancilla-reuse run: the two recorded syndrome bits select which data
/// qubit (if any) to flip, and the X is applied in software to the
/// branch state. Returns `(syndrome, corrected state)` per branch.
pub fn correct_by_pauli_frame(sim: &qclab_core::Simulation) -> Vec<(String, CVec)> {
    let n = sim.nb_qubits();
    sim.branches()
        .iter()
        .map(|b| {
            let syndrome = b.result().to_string();
            let flip = match syndrome.as_str() {
                "11" => Some(0),
                "10" => Some(1),
                "01" => Some(2),
                _ => None,
            };
            let mut state = b.state().clone();
            if let Some(q) = flip {
                qclab_core::sim::kernel::apply_gate(&qclab_core::Gate::PauliX(q), &mut state, n);
            }
            (syndrome, state)
        })
        .collect()
}

/// Runs a repetition-code circuit on `|v> ⊗ |0000>` and returns the
/// simulation. `v` is the single-qubit state to protect.
pub fn protect(circuit: &QCircuit, v: &CVec) -> Result<qclab_core::Simulation, QclabError> {
    assert_eq!(v.len(), 2, "protect expects a single-qubit state");
    let rest = CVec::basis_state(1 << (circuit.nb_qubits() - 1), 0);
    let initial = v.kron(&rest);
    circuit.simulate(&initial)
}

/// Distance-`d` bit-flip repetition code as a sampling workload for the
/// trajectory engine: encode `|0⟩` into `|0…0⟩ + noise`, optionally
/// inject one deterministic fault, and measure every data qubit in Z.
/// The measurement record is decoded classically by [`majority_decode`].
///
/// `distance` must be odd (ties are undecodable) and `error`, when not
/// [`InjectedError::None`], must hit a qubit `< distance`.
pub fn repetition_code_circuit(distance: usize, error: InjectedError) -> QCircuit {
    assert!(distance >= 1, "distance must be at least 1");
    assert!(distance % 2 == 1, "distance must be odd");
    let mut c = QCircuit::new(distance);
    // encode |0> -> |0...0>: the CNOT fan-out is the identity on |0...0>
    // but keeps the circuit shape faithful to the encoded memory
    for q in 1..distance {
        c.push_back(CNOT::new(0, q));
    }
    match error {
        InjectedError::None => {}
        InjectedError::BitFlip(q) => {
            assert!(q < distance, "error must hit a data qubit");
            c.push_back(PauliX::new(q));
        }
        InjectedError::PhaseFlip(q) => {
            assert!(q < distance, "error must hit a data qubit");
            c.push_back(PauliZ::new(q));
        }
    }
    for q in 0..distance {
        c.push_back(Measurement::z(q));
    }
    c
}

/// Majority-vote decoder for a repetition-code measurement record:
/// returns the logical bit (`0` or `1`) carried by the record.
pub fn majority_decode(record: &str) -> u8 {
    let ones = record.chars().filter(|&c| c == '1').count();
    u8::from(2 * ones > record.len())
}

/// Monte-Carlo logical error rate of the distance-`d` repetition code
/// under independent bit-flip noise of strength `p` before each
/// measurement, estimated with `shots` trajectories of the fault
/// injection engine ([`qclab_core::sim::trajectory`]). The logical
/// qubit starts in `|0⟩`, so any record that majority-decodes to `1`
/// is a logical failure.
///
/// Deterministic in `(distance, p, shots, seed)`. Converges to
/// [`analytic_logical_error_rate`] as `O(1/√shots)`; for `p < 1/2` the
/// rate falls with growing distance.
pub fn logical_error_rate(
    distance: usize,
    p: f64,
    shots: u64,
    seed: u64,
) -> Result<f64, QclabError> {
    use qclab_core::sim::trajectory::{
        run_trajectories, NoiseSpec, PauliChannel, TrajectoryConfig,
    };
    let circuit = repetition_code_circuit(distance, InjectedError::None);
    let config = TrajectoryConfig {
        seed,
        shots,
        noise: NoiseSpec {
            before_measure: Some(PauliChannel::BitFlip(p)),
            ..NoiseSpec::default()
        },
        ..TrajectoryConfig::default()
    };
    let result = run_trajectories(&circuit, &config)?;
    let failures: u64 = result
        .counts()
        .iter()
        .filter(|(record, _)| majority_decode(record) == 1)
        .map(|(_, &count)| count)
        .sum();
    Ok(failures as f64 / result.shots() as f64)
}

/// Exact logical error rate of the distance-`d` repetition code under
/// i.i.d. bit-flip noise of strength `p`:
/// `Σ_{k > d/2} C(d, k) · p^k · (1−p)^{d−k}`.
pub fn analytic_logical_error_rate(distance: usize, p: f64) -> f64 {
    let d = distance;
    let mut rate = 0.0;
    for k in (d / 2 + 1)..=d {
        // C(d, k) built incrementally to stay exact for small d
        let mut binom = 1.0;
        for i in 0..k {
            binom *= (d - i) as f64 / (k - i) as f64;
        }
        rate += binom * p.powi(k as i32) * (1.0 - p).powi((d - k) as i32);
    }
    rate
}

/// A single-qubit Pauli error for [`shor_code_circuit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PauliError {
    X(usize),
    Y(usize),
    Z(usize),
}

/// The full Shor nine-qubit code with coherent syndrome extraction and
/// correction: protects against an **arbitrary** single-qubit error
/// (the composition of the bit-flip and phase-flip repetition codes).
///
/// Register layout: data qubits 0–8 (three blocks of three), bit-flip
/// ancillas 9–14 (two per block), phase-flip ancillas 15–16.
/// The circuit encodes, injects `error`, extracts and corrects both
/// error types with multi-controlled gates, and finally **decodes** back
/// onto qubit 0, so callers can check the reduced state of qubit 0
/// directly.
pub fn shor_code_circuit(error: Option<PauliError>) -> QCircuit {
    let mut c = QCircuit::new(17);

    // ---- encode: phase-level repetition, then bit-level per block
    c.push_back(CNOT::new(0, 3));
    c.push_back(CNOT::new(0, 6));
    for b in [0usize, 3, 6] {
        c.push_back(Hadamard::new(b));
        c.push_back(CNOT::new(b, b + 1));
        c.push_back(CNOT::new(b, b + 2));
    }

    // ---- inject the error
    match error {
        None => {}
        Some(PauliError::X(q)) => {
            assert!(q < 9);
            c.push_back(PauliX::new(q));
        }
        Some(PauliError::Z(q)) => {
            assert!(q < 9);
            c.push_back(PauliZ::new(q));
        }
        Some(PauliError::Y(q)) => {
            assert!(q < 9);
            c.push_back(PauliY::new(q));
        }
    }

    // ---- bit-flip syndrome + correction per block
    for (b, anc) in [(0usize, 9usize), (3, 11), (6, 13)] {
        let (a1, a2) = (anc, anc + 1);
        c.push_back(CNOT::new(b, a1));
        c.push_back(CNOT::new(b + 1, a1));
        c.push_back(CNOT::new(b, a2));
        c.push_back(CNOT::new(b + 2, a2));
        c.push_back(MCX::new(&[a1, a2], b + 2, &[0, 1]));
        c.push_back(MCX::new(&[a1, a2], b + 1, &[1, 0]));
        c.push_back(MCX::new(&[a1, a2], b, &[1, 1]));
    }

    // ---- phase-flip syndrome: X-parity of blocks (0,1) and (1,2),
    // extracted with |+>-ancillas controlling CNOTs into the data
    let (p1, p2) = (15usize, 16usize);
    c.push_back(Hadamard::new(p1));
    for q in 0..6 {
        c.push_back(CNOT::new(p1, q));
    }
    c.push_back(Hadamard::new(p1));
    c.push_back(Hadamard::new(p2));
    for q in 3..9 {
        c.push_back(CNOT::new(p2, q));
    }
    c.push_back(Hadamard::new(p2));

    // correction: Z on one qubit of the flagged block
    c.push_back(MCZ::new(&[p1, p2], 0, &[1, 0]));
    c.push_back(MCZ::new(&[p1, p2], 3, &[1, 1]));
    c.push_back(MCZ::new(&[p1, p2], 6, &[0, 1]));

    // ---- decode (reverse of the encoding)
    for b in [0usize, 3, 6] {
        c.push_back(CNOT::new(b, b + 2));
        c.push_back(CNOT::new(b, b + 1));
        c.push_back(Hadamard::new(b));
    }
    c.push_back(CNOT::new(0, 6));
    c.push_back(CNOT::new(0, 3));
    c
}

/// Runs the Shor code on `|v>` and returns the fidelity of the decoded
/// qubit 0 with `v` (ancillas and spent data qubits traced out via
/// contraction — they are in product states after decoding).
pub fn shor_code_fidelity(v: &CVec, error: Option<PauliError>) -> f64 {
    let circuit = shor_code_circuit(error);
    let sim = protect(&circuit, v).expect("shor code simulation");
    assert_eq!(sim.branches().len(), 1, "no measurements -> single branch");
    let state = sim.states()[0];
    let rho = qclab_math::DensityMatrix::single_qubit_from_pure(state, 0);
    rho.fidelity_with_pure(v)
}

/// Memory-error experiment on the repetition code, run on the
/// density-matrix simulator: every data qubit passes through a bit-flip
/// channel of strength `p`, the syndrome is extracted and corrected
/// **coherently** (the paper's multi-controlled-X construction, no
/// measurement needed), and the logical qubit is decoded.
///
/// Returns `(unprotected fidelity, protected fidelity)` with the input
/// state `v`: the unprotected baseline sends a bare qubit through the
/// same channel. For ideal gates the protected fidelity is exactly
/// `1 − 3p² + 2p³` (the code corrects any single flip), so the
/// encoded qubit beats the bare one for every `p < 1/2`.
pub fn memory_error_experiment(p: f64, v: &CVec) -> (f64, f64) {
    use qclab_core::sim::density::{DensityState, NoiseChannel};
    assert_eq!(v.len(), 2);

    // unprotected: one qubit through the channel
    let mut bare = DensityState::from_pure(v);
    bare.apply_channel(0, &NoiseChannel::BitFlip(p));
    let f_bare = bare.fidelity_with_pure(v);

    // protected: encode, noise on the data qubits, coherent correction,
    // decode, trace out everything but the logical qubit
    let mut ds = DensityState::from_pure(&v.kron(&CVec::basis_state(16, 0)));
    let apply = |ds: &mut DensityState, g: qclab_core::Gate| ds.apply_gate(&g);
    apply(&mut ds, CNOT::new(0, 1));
    apply(&mut ds, CNOT::new(0, 2));
    for q in 0..3 {
        ds.apply_channel(q, &NoiseChannel::BitFlip(p));
    }
    apply(&mut ds, CNOT::new(0, 3));
    apply(&mut ds, CNOT::new(1, 3));
    apply(&mut ds, CNOT::new(0, 4));
    apply(&mut ds, CNOT::new(2, 4));
    apply(&mut ds, MCX::new(&[3, 4], 2, &[0, 1]));
    apply(&mut ds, MCX::new(&[3, 4], 1, &[1, 0]));
    apply(&mut ds, MCX::new(&[3, 4], 0, &[1, 1]));
    // decode back onto qubit 0
    apply(&mut ds, CNOT::new(0, 2));
    apply(&mut ds, CNOT::new(0, 1));

    let rho = ds.to_density_matrix().partial_trace_keep(&[0]);
    let f_protected = rho.fidelity_with_pure(v);
    (f_bare, f_protected)
}

/// Checks that the logical state survived: the data qubits of every
/// branch must carry `α|000> + β|111>` (ancillas are in their measured
/// states). Returns the worst-case fidelity across branches.
pub fn logical_fidelity(sim: &qclab_core::Simulation, v: &CVec) -> f64 {
    let mut worst: f64 = 1.0;
    for b in sim.branches() {
        // expected full state: α|000,anc> + β|111,anc>
        let state = b.state();
        // contract the ancillas with their measured values
        let red = qclab_core::reduced_statevector(state, &[3, 4], b.result())
            .expect("ancillas must be collapsed");
        // red is the 3-qubit data state; expected α|000> + β|111>
        let mut expected = CVec::zeros(8);
        expected[0] = v[0];
        expected[7] = v[1];
        let f = red.fidelity(&expected);
        worst = worst.min(f);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_math::scalar::{c, cr};

    const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    fn paper_v() -> CVec {
        CVec(vec![cr(INV_SQRT2), c(0.0, INV_SQRT2)])
    }

    #[test]
    fn paper_example_syndrome_is_11() {
        // bit flip on q0: both ancillas fire
        let sim = protect(&bit_flip_circuit(InjectedError::BitFlip(0)), &paper_v()).unwrap();
        assert_eq!(sim.results(), &["11"]);
        assert!((sim.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn syndromes_identify_each_error_location() {
        // ancilla 3 = q0⊕q1, ancilla 4 = q0⊕q2
        let cases = [
            (InjectedError::None, "00"),
            (InjectedError::BitFlip(0), "11"),
            (InjectedError::BitFlip(1), "10"),
            (InjectedError::BitFlip(2), "01"),
        ];
        for (error, syndrome) in cases {
            let sim = protect(&bit_flip_circuit(error), &paper_v()).unwrap();
            assert_eq!(sim.results(), &[syndrome], "wrong syndrome for {error:?}");
        }
    }

    #[test]
    fn bit_flip_code_restores_the_logical_state() {
        for error in [
            InjectedError::None,
            InjectedError::BitFlip(0),
            InjectedError::BitFlip(1),
            InjectedError::BitFlip(2),
        ] {
            let sim = protect(&bit_flip_circuit(error), &paper_v()).unwrap();
            let f = logical_fidelity(&sim, &paper_v());
            assert!(f > 1.0 - 1e-10, "fidelity {f} after {error:?}");
        }
    }

    #[test]
    fn bit_flip_code_does_not_correct_phase_errors() {
        let sim = protect(&bit_flip_circuit(InjectedError::PhaseFlip(0)), &paper_v()).unwrap();
        let f = logical_fidelity(&sim, &paper_v());
        assert!(f < 1.0 - 1e-3, "phase error should not be correctable");
    }

    #[test]
    fn phase_flip_code_corrects_phase_errors() {
        for q in 0..3 {
            let sim =
                protect(&phase_flip_circuit(InjectedError::PhaseFlip(q)), &paper_v()).unwrap();
            let f = logical_fidelity(&sim, &paper_v());
            assert!(f > 1.0 - 1e-10, "fidelity {f} after Z on q{q}");
        }
    }

    #[test]
    fn ancilla_reuse_produces_same_syndromes() {
        let cases = [
            (InjectedError::None, "00"),
            (InjectedError::BitFlip(0), "11"),
            (InjectedError::BitFlip(1), "10"),
            (InjectedError::BitFlip(2), "01"),
        ];
        for (error, syndrome) in cases {
            let sim = protect(&bit_flip_circuit_ancilla_reuse(error), &paper_v()).unwrap();
            assert_eq!(sim.results(), &[syndrome], "wrong syndrome for {error:?}");
            assert!((sim.probabilities()[0] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pauli_frame_correction_restores_state() {
        for error in [
            InjectedError::None,
            InjectedError::BitFlip(0),
            InjectedError::BitFlip(1),
            InjectedError::BitFlip(2),
        ] {
            let sim = protect(&bit_flip_circuit_ancilla_reuse(error), &paper_v()).unwrap();
            let corrected = correct_by_pauli_frame(&sim);
            for (syndrome, state) in corrected {
                // expected: (α|000> + β|111>) ⊗ |0 or syndrome-bit ancilla>
                // the ancilla holds the *second* syndrome bit after its
                // final measurement
                let anc_bit = syndrome.chars().nth(1).unwrap().to_digit(10).unwrap() as usize;
                let mut expected = CVec::zeros(16);
                expected[anc_bit] = paper_v()[0]; // |000,anc>
                expected[0b1110 | anc_bit] = paper_v()[1]; // |111,anc>
                let f = state.fidelity(&expected);
                assert!(
                    f > 1.0 - 1e-10,
                    "Pauli-frame correction failed for {error:?} (fidelity {f})"
                );
            }
        }
    }

    #[test]
    fn ancilla_reuse_does_not_split_on_reset() {
        // reset follows a measurement, so the ancilla is deterministic
        // and no spurious branches appear
        let sim = protect(
            &bit_flip_circuit_ancilla_reuse(InjectedError::BitFlip(0)),
            &paper_v(),
        )
        .unwrap();
        assert_eq!(sim.branches().len(), 1);
    }

    #[test]
    fn shor_code_identity_when_no_error() {
        let f = shor_code_fidelity(&paper_v(), None);
        assert!(f > 1.0 - 1e-10, "fidelity {f} without error");
    }

    #[test]
    fn shor_code_corrects_all_bit_flips() {
        for q in 0..9 {
            let f = shor_code_fidelity(&paper_v(), Some(PauliError::X(q)));
            assert!(f > 1.0 - 1e-10, "X on q{q}: fidelity {f}");
        }
    }

    #[test]
    fn shor_code_corrects_phase_flips() {
        // one per block is enough to cover all three phase syndromes;
        // within a block all Z errors act identically on the code space
        for q in [0usize, 4, 8] {
            let f = shor_code_fidelity(&paper_v(), Some(PauliError::Z(q)));
            assert!(f > 1.0 - 1e-10, "Z on q{q}: fidelity {f}");
        }
    }

    #[test]
    fn shor_code_corrects_y_errors() {
        // Y = iXZ exercises both correction layers at once
        for q in [0usize, 5] {
            let f = shor_code_fidelity(&paper_v(), Some(PauliError::Y(q)));
            assert!(f > 1.0 - 1e-10, "Y on q{q}: fidelity {f}");
        }
    }

    #[test]
    fn memory_experiment_matches_analytic_formula() {
        // for |v> with <v|X|v> = 0, bare fidelity is exactly 1 - p and
        // protected fidelity is exactly 1 - 3p² + 2p³
        for p in [0.0, 0.02, 0.1, 0.25, 0.4] {
            let (bare, protected) = memory_error_experiment(p, &paper_v());
            assert!((bare - (1.0 - p)).abs() < 1e-10, "bare at p = {p}");
            let analytic = 1.0 - 3.0 * p * p + 2.0 * p * p * p;
            assert!(
                (protected - analytic).abs() < 1e-10,
                "protected {protected} vs analytic {analytic} at p = {p}"
            );
        }
    }

    #[test]
    fn code_beats_bare_qubit_below_half() {
        for p in [0.01, 0.1, 0.3, 0.49] {
            let (bare, protected) = memory_error_experiment(p, &paper_v());
            assert!(protected > bare, "no QEC gain at p = {p}");
        }
        // and loses above the pseudo-threshold p = 1/2
        let (bare, protected) = memory_error_experiment(0.6, &paper_v());
        assert!(protected < bare);
    }

    #[test]
    fn majority_decoder_votes_correctly() {
        assert_eq!(majority_decode("000"), 0);
        assert_eq!(majority_decode("010"), 0);
        assert_eq!(majority_decode("110"), 1);
        assert_eq!(majority_decode("11011"), 1);
        assert_eq!(majority_decode("10010"), 0);
    }

    #[test]
    fn repetition_code_corrects_single_injected_flip() {
        // a lone deterministic X is always outvoted at any distance
        for d in [3usize, 5] {
            for q in 0..d {
                let c = repetition_code_circuit(d, InjectedError::BitFlip(q));
                let sim = c.simulate(&CVec::basis_state(1 << d, 0)).unwrap();
                assert_eq!(sim.results().len(), 1);
                assert_eq!(majority_decode(sim.results()[0]), 0, "d={d}, flip on q{q}");
            }
        }
    }

    #[test]
    fn logical_error_rate_is_zero_without_noise() {
        let rate = logical_error_rate(3, 0.0, 200, 7).unwrap();
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn logical_error_rate_falls_with_distance() {
        // p = 0.1: analytic rates are 0.1 (bare), 0.028 (d=3), 0.00856
        // (d=5) — the gaps dwarf the 4000-shot sampling error
        let p = 0.1;
        let r3 = logical_error_rate(3, p, 4000, 11).unwrap();
        let r5 = logical_error_rate(5, p, 4000, 11).unwrap();
        assert!(r3 < p, "d=3 rate {r3} should beat the bare error rate {p}");
        assert!(r5 < r3, "d=5 rate {r5} should beat d=3 rate {r3}");
    }

    #[test]
    fn logical_error_rate_matches_analytic_formula() {
        let (d, p) = (3, 0.2);
        let rate = logical_error_rate(d, p, 8000, 3).unwrap();
        let analytic = analytic_logical_error_rate(d, p);
        assert!((analytic - 0.104).abs() < 1e-12, "analytic formula sanity");
        assert!(
            (rate - analytic).abs() < 0.015,
            "sampled {rate} vs analytic {analytic}"
        );
    }

    #[test]
    fn logical_error_rate_is_deterministic_in_the_seed() {
        let a = logical_error_rate(3, 0.15, 500, 42).unwrap();
        let b = logical_error_rate(3, 0.15, 500, 42).unwrap();
        let c = logical_error_rate(3, 0.15, 500, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should sample different noise");
    }

    #[test]
    fn protects_arbitrary_superpositions() {
        let mut v = CVec(vec![c(0.6, 0.1), c(-0.3, 0.74)]);
        v.normalize();
        let sim = protect(&bit_flip_circuit(InjectedError::BitFlip(1)), &v).unwrap();
        assert!(logical_fidelity(&sim, &v) > 1.0 - 1e-10);
    }
}
