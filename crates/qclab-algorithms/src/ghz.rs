//! GHZ / Bell state preparation circuits.
//!
//! The Bell circuit is the paper's running example (circuit (1)); the GHZ
//! ladder generalizes it to `n` qubits and is the standard workload for
//! the backend-scaling benchmarks (one Hadamard plus a CNOT chain).

use qclab_core::prelude::*;

/// The paper's circuit (1): `H(0)`, `CNOT(0,1)`, measurements on both
/// qubits.
pub fn bell_circuit() -> QCircuit {
    let mut c = QCircuit::new(2);
    c.push_back(Hadamard::new(0));
    c.push_back(CNOT::new(0, 1));
    c.push_back(Measurement::z(0));
    c.push_back(Measurement::z(1));
    c
}

/// The `n`-qubit GHZ preparation: `H(0)` followed by a CNOT ladder.
/// No measurements — callers add them or inspect the state directly.
pub fn ghz_circuit(nb_qubits: usize) -> QCircuit {
    let mut c = QCircuit::new(nb_qubits);
    c.push_back(Hadamard::new(0));
    for q in 1..nb_qubits {
        c.push_back(CNOT::new(q - 1, q));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn bell_circuit_reproduces_paper_results() {
        let sim = bell_circuit().simulate_bitstring("00").unwrap();
        assert_eq!(sim.results(), &["00", "11"]);
        for p in sim.probabilities() {
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn ghz_state_has_two_equal_amplitudes() {
        for n in 2..=10 {
            let sim = ghz_circuit(n).simulate_bitstring(&"0".repeat(n)).unwrap();
            let s = sim.states()[0];
            let dim = 1usize << n;
            assert!((s[0].re - INV_SQRT2).abs() < 1e-12);
            assert!((s[dim - 1].re - INV_SQRT2).abs() < 1e-12);
            for i in 1..dim - 1 {
                assert!(s[i].norm() < 1e-12);
            }
        }
    }

    #[test]
    fn measured_ghz_is_perfectly_correlated() {
        let mut c = ghz_circuit(4);
        for q in 0..4 {
            c.push_back(Measurement::z(q));
        }
        let sim = c.simulate_bitstring("0000").unwrap();
        assert_eq!(sim.results(), &["0000", "1111"]);
    }
}
