//! Quantum amplitude estimation and quantum counting.
//!
//! Runs phase estimation on the Grover iterate `Q = D·O`: its
//! eigenphases `±2θ` encode the amplitude `a = sin²θ` of the marked
//! subspace, so `t` counting qubits estimate `a` — and hence the number
//! of marked items `M = N·a` — to precision `O(2^{-t})` with a single
//! (controlled, repeated) oracle. Composes the toolbox's sub-circuit,
//! custom-gate and QFT machinery into the textbook Brassard et al.
//! construction.

use crate::grover::{grover_diffuser, grover_oracle};
use crate::qft::iqft;
use qclab_core::prelude::*;

/// Result of an amplitude-estimation run.
#[derive(Clone, Debug)]
pub struct AmplitudeEstimate {
    /// The most likely measured phase index.
    pub phase_index: usize,
    /// The estimated amplitude `a = cos²(π·y/2^t)` (see the phase-
    /// convention note in [`estimate_amplitude`]).
    pub amplitude: f64,
    /// The probability of the reported outcome.
    pub probability: f64,
}

/// The Grover iterate `Q = diffuser · oracle` for `marked` as one
/// unitary gate on the search register (built via `to_matrix` — search
/// registers are small by construction).
fn grover_iterate(nb_search: usize, marked: &[&str]) -> Result<Gate, QclabError> {
    let mut c = QCircuit::new(nb_search);
    // multi-marked oracle: one phase flip per marked string
    for m in marked {
        let mut oracle = grover_oracle(nb_search, m);
        oracle.un_block();
        c.push_back(oracle);
    }
    let mut diffuser = grover_diffuser(nb_search);
    diffuser.un_block();
    c.push_back(diffuser);
    let matrix = c.to_matrix()?;
    Ok(Gate::Custom {
        name: "Q".into(),
        qubits: (0..nb_search).collect(),
        matrix,
    })
}

/// Estimates the fraction of marked states among `2^nb_search` items
/// with `t` counting qubits. `marked` lists the marked bitstrings.
pub fn estimate_amplitude(
    nb_search: usize,
    marked: &[&str],
    t: usize,
) -> Result<AmplitudeEstimate, QclabError> {
    assert!(t > 0 && nb_search > 0);
    let n = t + nb_search;
    let mut c = QCircuit::new(n);

    // counting register in uniform superposition; search register too
    // (the |ψ> = A|0> state of standard AE with A = H^{⊗n})
    for q in 0..t {
        c.push_back(Hadamard::new(q));
    }
    for q in t..n {
        c.push_back(Hadamard::new(q));
    }

    // controlled powers Q^(2^(t-1-k)) from counting qubit k
    let q_gate = grover_iterate(nb_search, marked)?;
    let base = q_gate.target_matrix();
    for k in 0..t {
        let reps = 1u32 << (t - 1 - k);
        let powered = base.pow(reps);
        let gate = Gate::Custom {
            name: format!("Q^{reps}"),
            qubits: (t..n).collect(),
            matrix: powered,
        }
        .controlled(k, 1);
        c.push_back(gate);
    }

    // inverse QFT on the counting register, then measure it
    let mut iq = iqft(t);
    iq.as_block("IQFT†");
    c.push_back(iq);
    for q in 0..t {
        c.push_back(Measurement::z(q));
    }

    let zeros = "0".repeat(n);
    let sim = c.simulate_bitstring(&zeros)?;

    // most probable counting-register outcome
    let (result, probability) = sim
        .results()
        .into_iter()
        .zip(sim.probabilities())
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(r, p)| (r.to_string(), p))
        .unwrap();
    let y = qclab_math::bits::bitstring_to_index(&result).unwrap();
    // our diffuser is I − 2|s⟩⟨s| (the negative of the textbook
    // reflection), so Q's eigenphases are π ± 2θ rather than ±2θ:
    // a = sin²θ = cos²(π·y/2^t)
    let phi = std::f64::consts::PI * y as f64 / (1u64 << t) as f64;
    Ok(AmplitudeEstimate {
        phase_index: y,
        amplitude: phi.cos().powi(2),
        probability,
    })
}

/// Quantum counting: the estimated number of marked items.
pub fn count_marked(nb_search: usize, marked: &[&str], t: usize) -> Result<f64, QclabError> {
    let est = estimate_amplitude(nb_search, marked, t)?;
    Ok(est.amplitude * (1u64 << nb_search) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_a_single_marked_item() {
        // N = 8, M = 1: a = 1/8
        let m = count_marked(3, &["101"], 6).unwrap();
        assert!(
            (m - 1.0).abs() < 0.2,
            "counted {m} marked items, expected 1"
        );
    }

    #[test]
    fn counts_multiple_marked_items() {
        // N = 8, M = 2 and M = 4 (a = 1/4 and 1/2 — the latter is an
        // exactly representable phase)
        let m = count_marked(3, &["000", "111"], 6).unwrap();
        assert!((m - 2.0).abs() < 0.3, "counted {m}, expected 2");

        let m = count_marked(2, &["00", "11"], 5).unwrap();
        assert!((m - 2.0).abs() < 0.15, "counted {m}, expected 2");
    }

    #[test]
    fn zero_marked_items_gives_zero_amplitude() {
        let est = estimate_amplitude(2, &[], 4).unwrap();
        assert!(est.amplitude < 1e-10);
        // eigenvalue −1 of the bare (negated) diffuser: phase 1/2
        assert_eq!(est.phase_index, 8);
        assert!((est.probability - 1.0).abs() < 1e-9);
    }

    #[test]
    fn precision_improves_with_counting_qubits() {
        // a = 1/8 is not exactly representable: more counting qubits
        // must not hurt the estimate
        let coarse = (count_marked(3, &["010"], 4).unwrap() - 1.0).abs();
        let fine = (count_marked(3, &["010"], 7).unwrap() - 1.0).abs();
        assert!(fine <= coarse + 1e-9, "coarse {coarse}, fine {fine}");
        assert!(fine < 0.1);
    }
}
