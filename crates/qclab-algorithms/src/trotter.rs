//! Trotterized Hamiltonian simulation.
//!
//! Builds quantum circuits approximating `exp(−iHt)` for a Hamiltonian
//! given as a sum of Pauli strings — the workload class of the F3C
//! compiler the paper cites (time evolution of spin chains). Each string
//! exponential `exp(−iθP)` is synthesized exactly with the textbook
//! construction: rotate every support qubit into the Z basis, accumulate
//! the parity on the last support qubit with a CNOT ladder, apply
//! `RZ(2θ)`, and undo. First- and second-order (Strang) product
//! formulas are provided.

use qclab_core::observable::{Observable, Pauli, PauliString};
use qclab_core::prelude::*;

/// The product-formula order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrotterOrder {
    /// `Π_k exp(−i c_k P_k dt)` — error `O(dt²)` per step.
    First,
    /// Strang splitting: forward half-step then reversed half-step —
    /// error `O(dt³)` per step.
    Second,
}

/// Appends the exact circuit for `exp(−i·theta·P)` to `circuit`.
///
/// `P` must be a non-identity Pauli string; the identity contributes
/// only a global phase and is skipped.
pub fn push_pauli_exponential(circuit: &mut QCircuit, string: &PauliString, theta: f64) {
    let n = string.nb_qubits();
    assert_eq!(circuit.nb_qubits(), n, "register size mismatch");
    let support = string.support();
    if support.is_empty() || theta.abs() < 1e-15 {
        return;
    }

    // basis changes into Z
    for &(q, p) in &support {
        match p {
            Pauli::X => {
                circuit.push_back(Hadamard::new(q));
            }
            Pauli::Y => {
                // V† = H·S† (S† first in circuit order) maps Y to Z
                circuit.push_back(SdgGate::new(q));
                circuit.push_back(Hadamard::new(q));
            }
            _ => {}
        }
    }
    // parity ladder onto the last support qubit
    let target = support.last().unwrap().0;
    for w in support.windows(2) {
        circuit.push_back(CNOT::new(w[0].0, w[1].0));
    }
    // exp(−iθ Z..Z) = RZ(2θ) on the parity qubit
    circuit.push_back(RotationZ::new(target, 2.0 * theta));
    // undo ladder and basis changes
    for w in support.windows(2).rev() {
        circuit.push_back(CNOT::new(w[0].0, w[1].0));
    }
    for &(q, p) in support.iter().rev() {
        match p {
            Pauli::X => {
                circuit.push_back(Hadamard::new(q));
            }
            Pauli::Y => {
                circuit.push_back(Hadamard::new(q));
                circuit.push_back(SGate::new(q));
            }
            _ => {}
        }
    }
}

/// One Trotter step of size `dt` for the observable `h`.
pub fn trotter_step(h: &Observable, dt: f64, order: TrotterOrder) -> QCircuit {
    let n = h.nb_qubits();
    let mut c = QCircuit::new(n);
    match order {
        TrotterOrder::First => {
            for (coeff, string) in h.terms() {
                push_pauli_exponential(&mut c, string, coeff * dt);
            }
        }
        TrotterOrder::Second => {
            for (coeff, string) in h.terms() {
                push_pauli_exponential(&mut c, string, coeff * dt / 2.0);
            }
            for (coeff, string) in h.terms().iter().rev() {
                push_pauli_exponential(&mut c, string, coeff * dt / 2.0);
            }
        }
    }
    c
}

/// The full evolution circuit `≈ exp(−i·h·t)` with `steps` Trotter steps.
pub fn evolve(h: &Observable, t: f64, steps: usize, order: TrotterOrder) -> QCircuit {
    assert!(steps > 0);
    let step = trotter_step(h, t / steps as f64, order);
    let mut c = QCircuit::new(h.nb_qubits());
    for _ in 0..steps {
        for item in step.items() {
            c.push_back(item.clone());
        }
    }
    c
}

/// The exact evolution operator `exp(−i·h·t)` by dense diagonalization
/// (small registers; used to validate the Trotter circuits).
pub fn exact_evolution(h: &Observable, t: f64) -> qclab_math::CMat {
    qclab_math::eig::hermitian_evolution(&h.matrix(), t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_math::CVec;

    fn op_distance(a: &qclab_math::CMat, b: &qclab_math::CMat) -> f64 {
        // distance up to global phase: minimize over the phase of the
        // largest entry
        let mut best = (0usize, 0usize);
        let mut mag = 0.0;
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                if a[(i, j)].norm() > mag {
                    mag = a[(i, j)].norm();
                    best = (i, j);
                }
            }
        }
        let phase = a[best] / b[best];
        let phase = phase / qclab_math::scalar::cr(phase.norm());
        b.scale(phase).max_abs_diff(a)
    }

    #[test]
    fn single_x_term_is_an_rx_rotation() {
        let h = Observable::new(1).term(0.5, "X");
        let c = trotter_step(&h, 0.8, TrotterOrder::First);
        let got = c.to_matrix().unwrap();
        // exp(-i 0.5·0.8 X) = RX(0.8)
        let want = qclab_core::gates::matrices::rotation_x(0.8);
        assert!(got.approx_eq(&want, 1e-12));
    }

    #[test]
    fn zz_term_is_an_rzz_rotation() {
        let h = Observable::new(2).term(1.0, "ZZ");
        let c = trotter_step(&h, 0.6, TrotterOrder::First);
        let got = c.to_matrix().unwrap();
        let want = qclab_core::gates::matrices::rotation_zz(1.2);
        assert!(got.approx_eq(&want, 1e-12));
    }

    #[test]
    fn arbitrary_string_matches_dense_exponential() {
        for s in ["XYZ", "YY", "ZXY", "XIX"] {
            let n = s.len();
            let h = Observable::new(n).term(0.7, s);
            let circuit = trotter_step(&h, 0.9, TrotterOrder::First);
            let got = circuit.to_matrix().unwrap();
            let want = exact_evolution(&h, 0.9);
            assert!(
                op_distance(&got, &want) < 1e-10,
                "exp of {s} wrong by {}",
                op_distance(&got, &want)
            );
        }
    }

    #[test]
    fn single_term_hamiltonian_is_exact_at_any_dt() {
        // one term: no Trotter error at all
        let h = Observable::new(2).term(-1.3, "XY");
        let got = evolve(&h, 2.5, 1, TrotterOrder::First).to_matrix().unwrap();
        let want = exact_evolution(&h, 2.5);
        assert!(op_distance(&got, &want) < 1e-10);
    }

    fn tfim_error(steps: usize, order: TrotterOrder) -> f64 {
        let h = Observable::ising_chain(3, 1.0, 0.7);
        let t = 1.0;
        let circuit = evolve(&h, t, steps, order);
        let exact = exact_evolution(&h, t);
        let init = CVec::basis_state(8, 3);
        let sim = circuit.simulate(&init).unwrap();
        let approx_state = sim.states()[0];
        let exact_state = CVec(exact.matvec(&init));
        1.0 - approx_state.fidelity(&exact_state)
    }

    #[test]
    fn first_order_error_shrinks_linearly_in_step_size() {
        let e4 = tfim_error(4, TrotterOrder::First);
        let e8 = tfim_error(8, TrotterOrder::First);
        let e16 = tfim_error(16, TrotterOrder::First);
        assert!(e8 < e4 && e16 < e8, "no convergence: {e4} {e8} {e16}");
        // fidelity error of a 1st-order formula scales ~1/steps²;
        // allow a loose factor on the asymptotic ratio
        assert!(e16 < e8 / 2.0, "convergence too slow: {e8} -> {e16}");
    }

    #[test]
    fn second_order_beats_first_order() {
        let e1 = tfim_error(8, TrotterOrder::First);
        let e2 = tfim_error(8, TrotterOrder::Second);
        assert!(
            e2 < e1 / 5.0,
            "Strang splitting not better: first {e1}, second {e2}"
        );
    }

    #[test]
    fn evolution_is_unitary_and_reversible() {
        let h = Observable::ising_chain(3, 0.8, 0.5);
        let fwd = evolve(&h, 0.7, 5, TrotterOrder::Second);
        let m = fwd.to_matrix().unwrap();
        assert!(m.is_unitary(1e-10));
        // forward then adjoint = identity
        let bwd = fwd.adjoint().unwrap().to_matrix().unwrap();
        assert!(bwd.matmul(&m).is_identity(1e-10));
    }
}
