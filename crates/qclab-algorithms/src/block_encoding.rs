//! FABLE-style block encodings (Camps & Van Beeumen, cited by the paper
//! as one of the compilers built on QCLAB).
//!
//! A *block encoding* embeds a (scaled) matrix `A` into the top-left
//! block of a larger unitary, the basic primitive of quantum linear
//! algebra. This module implements the FABLE construction for real
//! matrices with `|a_ij| ≤ 1`:
//!
//! ```text
//! U = (H^{⊗n} on ancilla) · O_A · SWAP(ancilla, system) · (H^{⊗n} on ancilla)
//! ```
//!
//! where the oracle `O_A` is one big uniformly controlled RY on a flag
//! qubit (`θ_kj = 2·acos(a_kj)`), synthesized with the Gray-code
//! multiplexor. The resulting `(2n+1)`-qubit unitary satisfies
//! `⟨0,0,i| U |0,0,j⟩ = a_ij / 2^n`.
//!
//! FABLE's headline feature — *approximate* encodings by thresholding
//! the Gray-transformed rotation angles, followed by CNOT cancellation —
//! is exposed through `compress_tol` and the circuit optimizer.

use qclab_core::optimize::optimize;
use qclab_core::prelude::*;
use qclab_core::synthesis::{ucr_with_tol, UcrAxis};
use qclab_math::CMat;

/// A block-encoded matrix: the circuit plus its layout metadata.
#[derive(Clone, Debug)]
pub struct BlockEncoding {
    /// The `(2n + 1)`-qubit encoding circuit: flag qubit 0, ancilla
    /// register qubits `1..=n`, system register qubits `n+1..=2n`.
    pub circuit: QCircuit,
    /// System register size `n`.
    pub nb_system: usize,
    /// Subnormalization: the encoded block equals `A · scale`
    /// (`scale = 2^{-n}` for FABLE).
    pub scale: f64,
}

/// Builds the FABLE block encoding of a real square matrix whose entries
/// lie in `[-1, 1]`. `compress_tol = 0.0` gives the exact encoding;
/// positive values drop small Gray-domain rotations (approximate
/// encoding, fewer gates).
pub fn fable(a: &CMat, compress_tol: f64) -> Result<BlockEncoding, QclabError> {
    if !a.is_square() {
        return Err(QclabError::DimensionMismatch {
            expected: a.rows(),
            actual: a.cols(),
        });
    }
    let dim = a.rows();
    if !dim.is_power_of_two() || dim < 2 {
        return Err(QclabError::InvalidGateSpec(format!(
            "block encoding needs a 2^n (n ≥ 1) dimension, got {dim}"
        )));
    }
    let n = dim.trailing_zeros() as usize;
    for r in 0..dim {
        for c in 0..dim {
            let z = a[(r, c)];
            if z.im.abs() > 1e-12 {
                return Err(QclabError::InvalidGateSpec(
                    "FABLE block encoding supports real matrices only".into(),
                ));
            }
            if z.re.abs() > 1.0 + 1e-12 {
                return Err(QclabError::InvalidGateSpec(format!(
                    "entry ({r},{c}) = {} outside [-1, 1] — rescale first",
                    z.re
                )));
            }
        }
    }

    let total = 2 * n + 1;
    let flag = 0usize;
    let ancilla: Vec<usize> = (1..=n).collect();
    let system: Vec<usize> = (n + 1..=2 * n).collect();

    let mut circuit = QCircuit::new(total);
    for &q in &ancilla {
        circuit.push_back(Hadamard::new(q));
    }

    // oracle: flag rotated by θ_kj = 2·acos(a_kj); control pattern index
    // = k·2^n + j (ancilla bits above system bits, matching the control
    // ordering [ancilla..., system...])
    let mut controls = ancilla.clone();
    controls.extend_from_slice(&system);
    let mut angles = vec![0.0f64; dim * dim];
    for k in 0..dim {
        for j in 0..dim {
            angles[k * dim + j] = 2.0 * a[(k, j)].re.clamp(-1.0, 1.0).acos();
        }
    }
    let oracle = ucr_with_tol(&controls, flag, UcrAxis::Y, &angles, total, compress_tol);
    for item in oracle.items() {
        circuit.push_back(item.clone());
    }

    // swap ancilla and system registers
    for (&qa, &qs) in ancilla.iter().zip(system.iter()) {
        circuit.push_back(SwapGate::new(qa, qs));
    }
    for &q in &ancilla {
        circuit.push_back(Hadamard::new(q));
    }

    // collect the CNOT pairs left behind by dropped rotations
    let (circuit, _) = optimize(&circuit);

    Ok(BlockEncoding {
        circuit,
        nb_system: n,
        scale: 1.0 / dim as f64,
    })
}

/// Extracts the encoded block from the circuit unitary and rescales it:
/// ideally returns `A` itself. Exponential cost — verification only.
pub fn encoded_block(enc: &BlockEncoding) -> Result<CMat, QclabError> {
    let u = enc.circuit.to_matrix()?;
    let dim = 1usize << enc.nb_system;
    Ok(CMat::from_fn(dim, dim, |i, j| {
        u[(i, j)] / qclab_math::scalar::cr(enc.scale)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_math::scalar::{c, cr};

    fn random_real(dim: usize, seed: u64) -> CMat {
        let mut s = seed | 1;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s as f64 / u64::MAX as f64 * 2.0 - 1.0
        };
        CMat::from_fn(dim, dim, |_, _| cr(rnd()))
    }

    #[test]
    fn exact_encoding_of_random_matrices() {
        for (dim, seed) in [(2usize, 3u64), (4, 7), (8, 11)] {
            let a = random_real(dim, seed);
            let enc = fable(&a, 0.0).unwrap();
            assert_eq!(enc.circuit.nb_qubits(), 2 * enc.nb_system + 1);
            let block = encoded_block(&enc).unwrap();
            assert!(
                block.approx_eq(&a, 1e-9),
                "block encoding deviates for dim {dim}"
            );
        }
    }

    #[test]
    fn encodes_identity_and_diagonal() {
        let a = CMat::identity(4);
        let enc = fable(&a, 0.0).unwrap();
        assert!(encoded_block(&enc).unwrap().approx_eq(&a, 1e-9));

        let d = CMat::diag(&[cr(0.5), cr(-0.25), cr(1.0), cr(0.0)]);
        let enc = fable(&d, 0.0).unwrap();
        assert!(encoded_block(&enc).unwrap().approx_eq(&d, 1e-9));
    }

    #[test]
    fn circuit_is_unitary_by_construction() {
        let a = random_real(4, 21);
        let enc = fable(&a, 0.0).unwrap();
        assert!(enc.circuit.to_matrix().unwrap().is_unitary(1e-9));
    }

    #[test]
    fn compression_trades_gates_for_accuracy() {
        // a rank-structured matrix compresses well: constant matrices
        // concentrate all weight in a single Gray coefficient
        let a = CMat::from_fn(8, 8, |_, _| cr(0.3));
        let exact = fable(&a, 0.0).unwrap();
        let compressed = fable(&a, 1e-8).unwrap();
        assert!(
            compressed.circuit.nb_gates() < exact.circuit.nb_gates(),
            "compression did not reduce gates ({} vs {})",
            compressed.circuit.nb_gates(),
            exact.circuit.nb_gates()
        );
        let block = encoded_block(&compressed).unwrap();
        assert!(block.approx_eq(&a, 1e-6));
    }

    #[test]
    fn aggressive_compression_bounds_error() {
        let a = random_real(4, 5);
        let enc = fable(&a, 0.05).unwrap();
        let block = encoded_block(&enc).unwrap();
        // thresholding at 0.05 in angle space keeps entries roughly right
        assert!(
            block.max_abs_diff(&a) < 0.5,
            "approximate encoding too far off: {}",
            block.max_abs_diff(&a)
        );
    }

    #[test]
    fn input_validation() {
        // non-square
        assert!(fable(&CMat::zeros(2, 4), 0.0).is_err());
        // bad dimension
        assert!(fable(&CMat::identity(3), 0.0).is_err());
        // complex entries
        let mut m = CMat::identity(2);
        m[(0, 1)] = c(0.0, 0.5);
        m[(1, 0)] = c(0.0, -0.5);
        assert!(fable(&m, 0.0).is_err());
        // out-of-range entries
        let mut m = CMat::identity(2);
        m[(0, 0)] = cr(2.0);
        assert!(fable(&m, 0.0).is_err());
    }

    #[test]
    fn applying_the_encoding_to_a_state() {
        // U (|0,0> ⊗ |ψ>) projected on the flag/ancilla-zero subspace
        // equals A|ψ> / 2^n
        let a = random_real(4, 9);
        let enc = fable(&a, 0.0).unwrap();
        let n = enc.nb_system;
        let psi = qclab_math::CVec(vec![cr(0.5), cr(0.5), c(0.0, 0.5), cr(0.5)]);
        let mut full = qclab_math::CVec::zeros(1 << (2 * n + 1));
        for (j, amp) in psi.iter().enumerate() {
            full[j] = *amp; // flag = 0, ancilla = 0, system = j
        }
        let sim = enc.circuit.simulate(&full).unwrap();
        let out = sim.states()[0];
        let expected = a.matvec(&psi);
        for i in 0..(1 << n) {
            let got = out[i] / cr(enc.scale);
            assert!((got - expected[i]).norm() < 1e-9);
        }
    }
}
