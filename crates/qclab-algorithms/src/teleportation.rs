//! Quantum teleportation (paper Sec. 5.1).
//!
//! Builds the three-qubit teleportation circuit `qtc` of the paper —
//! including its mid-circuit measurements — and provides an end-to-end
//! [`teleport`] helper that prepares the `|v> ⊗ bell` initial state,
//! simulates, and verifies the received state on qubit 2.

use qclab_core::prelude::*;
use qclab_core::Simulation;
use qclab_math::scalar::cr;
use qclab_math::CVec;

const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// The teleportation circuit of the paper: Bell measurement on the sender
/// pair (q0, q1) followed by classically controlled corrections on the
/// receiver q2 (implemented as controlled gates, as the paper does).
pub fn teleportation_circuit() -> QCircuit {
    let mut qtc = QCircuit::new(3);
    qtc.push_back(CNOT::new(0, 1));
    qtc.push_back(Hadamard::new(0));
    qtc.push_back(Measurement::z(0));
    qtc.push_back(Measurement::z(1));
    qtc.push_back(CNOT::new(1, 2));
    qtc.push_back(CZ::new(0, 2));
    qtc
}

/// The Bell state `(|00> + |11>)/√2` shared between sender and receiver.
pub fn bell_pair() -> CVec {
    CVec(vec![cr(INV_SQRT2), cr(0.0), cr(0.0), cr(INV_SQRT2)])
}

/// The outcome of one teleportation run.
pub struct TeleportOutcome {
    /// The full simulation (4 branches, one per Bell-measurement result).
    pub simulation: Simulation,
    /// The state received on qubit 2 for each branch, extracted with
    /// `reducedStatevector` as in the paper.
    pub received: Vec<CVec>,
}

/// Teleports `v` (a single-qubit state) and returns the simulation along
/// with the received state per measurement branch.
pub fn teleport(v: &CVec) -> Result<TeleportOutcome, QclabError> {
    assert_eq!(v.len(), 2, "teleport expects a single-qubit state");
    let initial = v.kron(&bell_pair());
    let simulation = teleportation_circuit().simulate(&initial)?;
    let mut received = Vec::with_capacity(simulation.branches().len());
    for b in simulation.branches() {
        let red = reduced_statevector(b.state(), &[0, 1], b.result())?;
        received.push(red);
    }
    Ok(TeleportOutcome {
        simulation,
        received,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_math::scalar::c;

    fn paper_v() -> CVec {
        CVec(vec![cr(INV_SQRT2), c(0.0, INV_SQRT2)])
    }

    #[test]
    fn paper_run_has_four_equal_branches() {
        let out = teleport(&paper_v()).unwrap();
        assert_eq!(out.simulation.results(), &["00", "01", "10", "11"]);
        for p in out.simulation.probabilities() {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_first_branch_state_vector() {
        // paper: the '00' branch state is (1/√2, i/√2, 0, 0, 0, 0, 0, 0)
        let out = teleport(&paper_v()).unwrap();
        let s = out.simulation.states()[0];
        assert!((s[0].re - INV_SQRT2).abs() < 1e-12);
        assert!((s[1].im - INV_SQRT2).abs() < 1e-12);
        for i in 2..8 {
            assert!(s[i].norm() < 1e-12);
        }
    }

    #[test]
    fn every_branch_receives_v() {
        let out = teleport(&paper_v()).unwrap();
        for red in &out.received {
            assert!(
                red.approx_eq_up_to_phase(&paper_v(), 1e-10),
                "teleported state differs: {red:?}"
            );
        }
    }

    #[test]
    fn teleports_arbitrary_states() {
        for (a, b) in [(0.3, 0.2), (0.9, -0.1), (0.0, 1.0)] {
            let mut v = CVec(vec![c(a, b), c(0.4, -0.6)]);
            v.normalize();
            let out = teleport(&v).unwrap();
            for red in &out.received {
                assert!(red.approx_eq_up_to_phase(&v, 1e-10));
            }
        }
    }

    #[test]
    fn circuit_structure_matches_paper() {
        let c = teleportation_circuit();
        assert_eq!(c.nb_qubits(), 3);
        assert_eq!(c.nb_gates(), 4);
        assert_eq!(c.nb_measurements(), 2);
    }
}
