//! Grover's search algorithm (paper Sec. 5.3), generalized to `n` qubits.
//!
//! The paper builds the 2-qubit instance searching for `|11>` from an
//! oracle block and a diffuser block. This module constructs the same
//! modular circuit for any register size and marked bitstring, using the
//! paper's `asBlock` feature so the top-level circuit draws as
//! `H — oracle — diffuser — M`.

use qclab_core::prelude::*;
use qclab_math::bits;

/// Oracle flipping the phase of the marked basis state `|marked>`.
///
/// Implemented as a multi-controlled Z whose control states spell the
/// marked bits (open controls for zeros); for the paper's `|11>` this is
/// exactly the single `CZ(0, 1)`.
pub fn grover_oracle(nb_qubits: usize, marked: &str) -> QCircuit {
    assert_eq!(marked.len(), nb_qubits, "marked bitstring length mismatch");
    let bits: Vec<u8> = marked
        .chars()
        .map(|c| match c {
            '0' => 0u8,
            '1' => 1,
            other => panic!("invalid marked bit '{other}'"),
        })
        .collect();

    let mut oracle = QCircuit::new(nb_qubits);
    let target = nb_qubits - 1;

    if nb_qubits == 1 {
        // phase flip of |b> on one qubit
        if bits[0] == 1 {
            oracle.push_back(PauliZ::new(0));
        } else {
            oracle.push_back(PauliX::new(0));
            oracle.push_back(PauliZ::new(0));
            oracle.push_back(PauliX::new(0));
        }
        oracle.as_block("oracle");
        return oracle;
    }

    // Z on the target only acts on |1>; if the marked target bit is 0,
    // conjugate the target with X
    let flip_target = bits[target] == 0;
    if flip_target {
        oracle.push_back(PauliX::new(target));
    }
    let controls: Vec<usize> = (0..target).collect();
    let states: Vec<u8> = bits[..target].to_vec();
    oracle.push_back(MCZ::new(&controls, target, &states));
    if flip_target {
        oracle.push_back(PauliX::new(target));
    }
    oracle.as_block("oracle");
    oracle
}

/// The diffuser (inversion about the mean): `H^n X^n MCZ X^n H^n`.
///
/// For two qubits this is unitarily identical to the paper's
/// `H Z Z CZ H` construction (they differ by a global phase only).
pub fn grover_diffuser(nb_qubits: usize) -> QCircuit {
    let mut diffuser = QCircuit::new(nb_qubits);
    for q in 0..nb_qubits {
        diffuser.push_back(Hadamard::new(q));
    }
    for q in 0..nb_qubits {
        diffuser.push_back(PauliX::new(q));
    }
    if nb_qubits == 1 {
        diffuser.push_back(PauliZ::new(0));
    } else {
        let controls: Vec<usize> = (0..nb_qubits - 1).collect();
        let states = vec![1u8; controls.len()];
        diffuser.push_back(MCZ::new(&controls, nb_qubits - 1, &states));
    }
    for q in 0..nb_qubits {
        diffuser.push_back(PauliX::new(q));
    }
    for q in 0..nb_qubits {
        diffuser.push_back(Hadamard::new(q));
    }
    diffuser.as_block("diffuser");
    diffuser
}

/// The paper's exact 2-qubit diffuser (`H Z Z CZ H` form) for comparison
/// and for reproducing the listing verbatim.
pub fn paper_diffuser_2q() -> QCircuit {
    let mut diffuser = QCircuit::new(2);
    diffuser.push_back(Hadamard::new(0));
    diffuser.push_back(Hadamard::new(1));
    diffuser.push_back(PauliZ::new(0));
    diffuser.push_back(PauliZ::new(1));
    diffuser.push_back(CZ::new(0, 1));
    diffuser.push_back(Hadamard::new(0));
    diffuser.push_back(Hadamard::new(1));
    diffuser.as_block("diffuser");
    diffuser
}

/// Oracle flipping the phase of **several** marked states at once (one
/// multi-controlled Z per marked string).
pub fn grover_oracle_multi(nb_qubits: usize, marked: &[&str]) -> QCircuit {
    let mut oracle = QCircuit::new(nb_qubits);
    for m in marked {
        let mut single = grover_oracle(nb_qubits, m);
        single.un_block();
        for item in single.items() {
            oracle.push_back(item.clone());
        }
    }
    oracle.as_block("oracle");
    oracle
}

/// Success probability of measuring **any** marked state after
/// `iterations` rounds with the multi-marked oracle.
pub fn success_probability_multi(
    nb_qubits: usize,
    marked: &[&str],
    iterations: usize,
) -> Result<f64, QclabError> {
    let oracle = grover_oracle_multi(nb_qubits, marked);
    let diffuser = grover_diffuser(nb_qubits);
    let mut gc = QCircuit::new(nb_qubits);
    for q in 0..nb_qubits {
        gc.push_back(Hadamard::new(q));
    }
    for _ in 0..iterations {
        gc.push_back(oracle.clone());
        gc.push_back(diffuser.clone());
    }
    let sim = gc.simulate_bitstring(&"0".repeat(nb_qubits))?;
    let state = sim.states()[0];
    let mut p = 0.0;
    for m in marked {
        let idx = bits::bitstring_to_index(m)
            .ok_or_else(|| QclabError::InvalidBitstring(m.to_string()))?;
        p += state[idx].norm_sqr();
    }
    Ok(p)
}

/// The optimal iteration count `⌊π/4 · √(2^n)⌋` (at least 1).
pub fn optimal_iterations(nb_qubits: usize) -> usize {
    let n = (1usize << nb_qubits) as f64;
    ((std::f64::consts::FRAC_PI_4 * n.sqrt()).floor() as usize).max(1)
}

/// Builds the full Grover circuit: `H^n (oracle diffuser)^k` plus final
/// measurements on every qubit.
pub fn grover_circuit(nb_qubits: usize, marked: &str, iterations: usize) -> QCircuit {
    let oracle = grover_oracle(nb_qubits, marked);
    let diffuser = grover_diffuser(nb_qubits);
    let mut gc = QCircuit::new(nb_qubits);
    for q in 0..nb_qubits {
        gc.push_back(Hadamard::new(q));
    }
    for _ in 0..iterations {
        gc.push_back(oracle.clone());
        gc.push_back(diffuser.clone());
    }
    for q in 0..nb_qubits {
        gc.push_back(Measurement::z(q));
    }
    gc
}

/// Success probability of measuring the marked state after `iterations`
/// Grover rounds (no measurement sampling — exact from the state vector).
pub fn success_probability(
    nb_qubits: usize,
    marked: &str,
    iterations: usize,
) -> Result<f64, QclabError> {
    let oracle = grover_oracle(nb_qubits, marked);
    let diffuser = grover_diffuser(nb_qubits);
    let mut gc = QCircuit::new(nb_qubits);
    for q in 0..nb_qubits {
        gc.push_back(Hadamard::new(q));
    }
    for _ in 0..iterations {
        gc.push_back(oracle.clone());
        gc.push_back(diffuser.clone());
    }
    let zeros = "0".repeat(nb_qubits);
    let sim = gc.simulate_bitstring(&zeros)?;
    let state = sim.states()[0];
    let idx = bits::bitstring_to_index(marked)
        .ok_or_else(|| QclabError::InvalidBitstring(marked.to_string()))?;
    Ok(state[idx].norm_sqr())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_two_qubit_search_succeeds_with_certainty() {
        // paper Sec. 5.3: one iteration finds '11' with probability 1
        let gc = grover_circuit(2, "11", 1);
        let sim = gc.simulate_bitstring("00").unwrap();
        assert_eq!(sim.results(), &["11"]);
        assert!((sim.probabilities()[0] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn paper_oracle_is_a_single_cz() {
        let oracle = grover_oracle(2, "11");
        assert_eq!(oracle.nb_gates(), 1);
        // phase flip exactly on |11>
        let m = oracle.to_matrix().unwrap();
        for i in 0..4 {
            let expect = if i == 3 { -1.0 } else { 1.0 };
            assert!((m[(i, i)].re - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn generic_oracle_flips_only_the_marked_state() {
        for marked in ["00", "01", "10", "000", "101", "110"] {
            let n = marked.len();
            let oracle = grover_oracle(n, marked);
            let m = oracle.to_matrix().unwrap();
            let idx = bits::bitstring_to_index(marked).unwrap();
            for i in 0..(1 << n) {
                let expect = if i == idx { -1.0 } else { 1.0 };
                assert!(
                    (m[(i, i)].re - expect).abs() < 1e-12,
                    "oracle for {marked} wrong at diagonal {i}"
                );
            }
        }
    }

    #[test]
    fn diffuser_matches_paper_construction_up_to_phase() {
        let ours = grover_diffuser(2).to_matrix().unwrap();
        let paper = paper_diffuser_2q().to_matrix().unwrap();
        // equal up to global phase
        let ratio = paper[(0, 0)] / ours[(0, 0)];
        assert!((ratio.norm() - 1.0).abs() < 1e-12);
        assert!(ours.scale(ratio).approx_eq(&paper, 1e-12));
    }

    #[test]
    fn three_qubit_search_peaks_at_optimal_iterations() {
        let k = optimal_iterations(3); // = 2
        assert_eq!(k, 2);
        let p = success_probability(3, "101", k).unwrap();
        assert!(p > 0.9, "3-qubit success prob {p} too low");
        // and one extra iteration overshoots
        let p_over = success_probability(3, "101", k + 2).unwrap();
        assert!(p_over < p);
    }

    #[test]
    fn success_probability_grows_then_oscillates() {
        let p1 = success_probability(4, "1011", 1).unwrap();
        let p3 = success_probability(4, "1011", 3).unwrap();
        assert!(p3 > p1);
        let k = optimal_iterations(4);
        let pk = success_probability(4, "1011", k).unwrap();
        assert!(pk > 0.9);
    }

    #[test]
    fn multi_marked_search_follows_sin_law() {
        // M marked among N: success after k rounds is
        // sin²((2k+1)·asin(√(M/N)))
        let n = 5;
        let marked = ["00000", "10101", "11111", "01010"];
        let m = marked.len() as f64;
        let nn = (1u64 << n) as f64;
        let theta = (m / nn).sqrt().asin();
        for k in [1usize, 2, 3] {
            let p = success_probability_multi(n, &marked, k).unwrap();
            let analytic = ((2 * k + 1) as f64 * theta).sin().powi(2);
            assert!(
                (p - analytic).abs() < 1e-9,
                "k = {k}: simulated {p}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn multi_marked_optimal_iterations() {
        // M = 4 of N = 32: k_opt = floor(pi/4 * sqrt(N/M)) = 2
        let n = 5;
        let marked = ["00001", "00111", "11100", "10000"];
        let p = success_probability_multi(n, &marked, 2).unwrap();
        assert!(p > 0.9, "multi-marked search too weak: {p}");
    }

    #[test]
    fn single_qubit_grover_degenerate_case() {
        // N = 2: sin²((2k+1)·π/4) with k = 1 gives exactly 1/2 — Grover
        // offers no advantage on a single qubit
        let p = success_probability(1, "1", 1).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }
}
