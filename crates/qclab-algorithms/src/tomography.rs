//! Single-qubit state tomography (paper Sec. 5.2).
//!
//! Reconstructs the density matrix of an unknown single-qubit state from
//! repeated measurements in the X, Y and Z bases:
//!
//! ```text
//! ρ_est = (S0·I + S1·X + S2·Y + S3·Z) / 2
//! ```
//!
//! with the `S_i` estimated from `counts`. Mirrors the paper's workflow
//! exactly: one single-measurement circuit per basis, `shots` samples,
//! coefficients from the count differences.

use qclab_core::prelude::*;
use qclab_math::dense::CMat;
use qclab_math::scalar::{c, cr};
use qclab_math::{CVec, DensityMatrix};

/// Counts and derived statistics of one tomography run.
#[derive(Clone, Debug)]
pub struct Tomography {
    /// `(count of 0, count of 1)` in the X basis.
    pub counts_x: (u64, u64),
    /// `(count of 0, count of 1)` in the Y basis.
    pub counts_y: (u64, u64),
    /// `(count of 0, count of 1)` in the Z basis.
    pub counts_z: (u64, u64),
    /// Coefficients `S0..S3` of the Pauli expansion.
    pub s: [f64; 4],
    /// The reconstructed density matrix.
    pub rho_est: DensityMatrix,
}

/// Builds the single-measurement circuit for one basis, e.g.
/// `meas_x = qclab.QCircuit(1); meas_x.push_back(Measurement(0,'x'))`.
pub fn measurement_circuit(basis: char) -> QCircuit {
    let mut circuit = QCircuit::new(1);
    let m = match basis {
        'x' => Measurement::x(0),
        'y' => Measurement::y(0),
        'z' => Measurement::z(0),
        other => panic!("unknown basis '{other}'"),
    };
    circuit.push_back(m);
    circuit
}

fn basis_counts(
    state: &CVec,
    basis: char,
    shots: u64,
    seed: u64,
) -> Result<(u64, u64), QclabError> {
    let sim = measurement_circuit(basis).simulate(state)?;
    let counts = sim.counts(shots, seed);
    let mut n0 = 0;
    let mut n1 = 0;
    for (result, n) in counts {
        match result.as_str() {
            "0" => n0 = n,
            "1" => n1 = n,
            other => panic!("unexpected outcome '{other}'"),
        }
    }
    Ok((n0, n1))
}

/// Runs the full tomography experiment on `state` with `shots`
/// repetitions per basis (MATLAB `rng(seed)` analog: each basis uses a
/// deterministic sub-seed derived from `seed`).
pub fn tomography(state: &CVec, shots: u64, seed: u64) -> Result<Tomography, QclabError> {
    assert_eq!(state.len(), 2, "tomography expects a single-qubit state");
    let counts_x = basis_counts(state, 'x', shots, seed)?;
    let counts_y = basis_counts(state, 'y', shots, seed.wrapping_add(1))?;
    let counts_z = basis_counts(state, 'z', shots, seed.wrapping_add(2))?;

    let prob = |(n0, n1): (u64, u64)| {
        let total = (n0 + n1) as f64;
        (n0 as f64 / total, n1 as f64 / total)
    };
    let (px0, px1) = prob(counts_x);
    let (py0, py1) = prob(counts_y);
    let (pz0, pz1) = prob(counts_z);

    let s = [pz0 + pz1, px0 - px1, py0 - py1, pz0 - pz1];

    // ρ_est = (S0 I + S1 X + S2 Y + S3 Z) / 2
    let rho = CMat::mat2(
        cr((s[0] + s[3]) / 2.0),
        c(s[1] / 2.0, -s[2] / 2.0),
        c(s[1] / 2.0, s[2] / 2.0),
        cr((s[0] - s[3]) / 2.0),
    );

    Ok(Tomography {
        counts_x,
        counts_y,
        counts_z,
        s,
        rho_est: DensityMatrix::from_matrix(rho),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_math::scalar::cr;

    const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    fn paper_v() -> CVec {
        CVec(vec![cr(INV_SQRT2), c(0.0, INV_SQRT2)])
    }

    #[test]
    fn paper_experiment_shape() {
        // |v> lies on the +Y axis: S2 ≈ 1, S1 ≈ 0, S3 ≈ 0, S0 = 1 exactly
        let t = tomography(&paper_v(), 1000, 1).unwrap();
        assert_eq!(t.counts_x.0 + t.counts_x.1, 1000);
        assert!((t.s[0] - 1.0).abs() < 1e-12);
        assert!(t.s[1].abs() < 0.1, "S1 = {}", t.s[1]);
        assert!((t.s[2] - 1.0).abs() < 0.1, "S2 = {}", t.s[2]);
        assert!(t.s[3].abs() < 0.1, "S3 = {}", t.s[3]);
    }

    #[test]
    fn trace_distance_to_true_state_is_small() {
        // the paper reports 0.006 for its RNG; ours differs but must land
        // in the same statistical ballpark for 1000 shots
        let t = tomography(&paper_v(), 1000, 1).unwrap();
        let rho_true = DensityMatrix::from_pure(&paper_v());
        let d = rho_true.trace_distance(&t.rho_est);
        assert!(d < 0.06, "trace distance {d} unexpectedly large");
    }

    #[test]
    fn accuracy_improves_with_shots() {
        let rho_true = DensityMatrix::from_pure(&paper_v());
        let d_small = rho_true.trace_distance(&tomography(&paper_v(), 100, 7).unwrap().rho_est);
        let d_large = rho_true.trace_distance(&tomography(&paper_v(), 100_000, 7).unwrap().rho_est);
        assert!(
            d_large < d_small.max(0.02),
            "more shots did not help: {d_small} -> {d_large}"
        );
        assert!(d_large < 0.02);
    }

    #[test]
    fn basis_states_reconstruct_exactly_on_z() {
        // |0> measured in Z is deterministic, so S3 = 1 exactly
        let t = tomography(&CVec::basis_state(2, 0), 500, 3).unwrap();
        assert_eq!(t.counts_z, (500, 0));
        assert!((t.s[3] - 1.0).abs() < 1e-12);
        assert!((t.rho_est.matrix()[(0, 0)].re - 1.0).abs() < 0.1);
    }

    #[test]
    fn estimate_has_unit_trace() {
        let t = tomography(&paper_v(), 1000, 42).unwrap();
        assert!((t.rho_est.trace().re - 1.0).abs() < 1e-12);
        assert!(t.rho_est.matrix().is_hermitian(1e-12));
    }

    #[test]
    fn counts_are_reproducible() {
        let a = tomography(&paper_v(), 1000, 1).unwrap();
        let b = tomography(&paper_v(), 1000, 1).unwrap();
        assert_eq!(a.counts_x, b.counts_x);
        assert_eq!(a.counts_y, b.counts_y);
        assert_eq!(a.counts_z, b.counts_z);
    }
}
