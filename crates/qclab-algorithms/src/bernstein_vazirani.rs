//! Bernstein–Vazirani algorithm.
//!
//! Recovers a hidden bitstring `s` from a single query to the oracle
//! `f(x) = s·x mod 2`. A classic demonstration of the circuit model and a
//! deterministic workload for integration tests: the measurement result
//! must equal `s` with probability 1.

use qclab_core::prelude::*;

/// Builds the BV circuit for the hidden string `secret` over
/// `secret.len() + 1` qubits (last qubit is the phase ancilla). Includes
/// final measurements on the data qubits.
pub fn bernstein_vazirani(secret: &str) -> QCircuit {
    let n = secret.len();
    assert!(n > 0, "secret must be non-empty");
    let mut c = QCircuit::new(n + 1);
    let ancilla = n;
    // ancilla in |->
    c.push_back(PauliX::new(ancilla));
    c.push_back(Hadamard::new(ancilla));
    for q in 0..n {
        c.push_back(Hadamard::new(q));
    }
    // oracle: CNOT from every secret-1 qubit into the ancilla
    let mut oracle = QCircuit::new(n + 1);
    for (q, ch) in secret.chars().enumerate() {
        match ch {
            '1' => {
                oracle.push_back(CNOT::new(q, ancilla));
            }
            '0' => {}
            other => panic!("invalid secret bit '{other}'"),
        }
    }
    oracle.as_block("Uf");
    c.push_back(oracle);
    for q in 0..n {
        c.push_back(Hadamard::new(q));
    }
    for q in 0..n {
        c.push_back(Measurement::z(q));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_the_secret_deterministically() {
        for secret in ["1", "101", "0000", "1111", "110010"] {
            let c = bernstein_vazirani(secret);
            let zeros = "0".repeat(secret.len() + 1);
            let sim = c.simulate_bitstring(&zeros).unwrap();
            assert_eq!(sim.results(), &[secret], "failed for secret {secret}");
            assert!((sim.probabilities()[0] - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn single_query_structure() {
        // the oracle appears exactly once (as one block item)
        let c = bernstein_vazirani("101");
        let blocks = c
            .items()
            .iter()
            .filter(|i| matches!(i, qclab_core::CircuitItem::SubCircuit { .. }))
            .count();
        assert_eq!(blocks, 1);
    }
}
