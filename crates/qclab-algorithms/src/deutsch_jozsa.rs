//! Deutsch–Jozsa algorithm.
//!
//! Distinguishes constant from balanced boolean functions with one oracle
//! query: measuring all-zeros means constant, anything else balanced.

use qclab_core::prelude::*;

/// The oracle flavours supported by [`deutsch_jozsa`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DjOracle {
    /// `f(x) = 0` for all x.
    ConstantZero,
    /// `f(x) = 1` for all x.
    ConstantOne,
    /// `f(x) = s·x mod 2` for a non-zero mask — balanced.
    BalancedMask(String),
}

/// Builds the DJ circuit on `n + 1` qubits for the given oracle, with
/// measurements on the data qubits.
pub fn deutsch_jozsa(n: usize, oracle: &DjOracle) -> QCircuit {
    assert!(n > 0);
    let mut c = QCircuit::new(n + 1);
    let ancilla = n;
    c.push_back(PauliX::new(ancilla));
    c.push_back(Hadamard::new(ancilla));
    for q in 0..n {
        c.push_back(Hadamard::new(q));
    }

    let mut uf = QCircuit::new(n + 1);
    match oracle {
        DjOracle::ConstantZero => {}
        DjOracle::ConstantOne => {
            uf.push_back(PauliX::new(ancilla));
        }
        DjOracle::BalancedMask(mask) => {
            assert_eq!(mask.len(), n, "mask length mismatch");
            assert!(
                mask.contains('1'),
                "all-zero mask is constant, not balanced"
            );
            for (q, ch) in mask.chars().enumerate() {
                if ch == '1' {
                    uf.push_back(CNOT::new(q, ancilla));
                }
            }
        }
    }
    uf.as_block("Uf");
    c.push_back(uf);

    for q in 0..n {
        c.push_back(Hadamard::new(q));
    }
    for q in 0..n {
        c.push_back(Measurement::z(q));
    }
    c
}

/// Interprets a DJ measurement result: `true` means the function is
/// constant.
pub fn is_constant(result: &str) -> bool {
    result.chars().all(|c| c == '0')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_oracles_measure_all_zeros() {
        for oracle in [DjOracle::ConstantZero, DjOracle::ConstantOne] {
            let c = deutsch_jozsa(3, &oracle);
            let sim = c.simulate_bitstring("0000").unwrap();
            assert_eq!(sim.results().len(), 1);
            assert!(is_constant(sim.results()[0]), "oracle {oracle:?}");
            assert!((sim.probabilities()[0] - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn balanced_oracles_never_measure_all_zeros() {
        for mask in ["100", "011", "111"] {
            let c = deutsch_jozsa(3, &DjOracle::BalancedMask(mask.into()));
            let sim = c.simulate_bitstring("0000").unwrap();
            for (r, p) in sim.results().iter().zip(sim.probabilities()) {
                if p > 1e-12 {
                    assert!(!is_constant(r), "balanced {mask} produced zeros");
                }
            }
        }
    }

    #[test]
    fn balanced_mask_result_equals_mask() {
        // for linear oracles DJ degenerates to Bernstein–Vazirani
        let c = deutsch_jozsa(4, &DjOracle::BalancedMask("1010".into()));
        let sim = c.simulate_bitstring("00000").unwrap();
        assert_eq!(sim.results(), &["1010"]);
    }
}
