//! Arbitrary state preparation (Möttönen et al.).
//!
//! Synthesizes a circuit that maps `|0…0⟩` to any given state vector,
//! using the Gray-code uniformly controlled rotations of
//! [`qclab_core::synthesis`]. The construction runs the *disentangling*
//! direction numerically — rotate the last qubit to `|0⟩` with one
//! uniformly controlled RZ and RY per level, recurse on the remaining
//! register — and emits the adjoint sequence as the preparation circuit.
//! Cost: `O(2^n)` CNOTs and rotations, the known optimal scaling for
//! generic states.

use qclab_core::prelude::*;
use qclab_core::synthesis::{ucr, UcrAxis};
use qclab_math::CVec;

/// Angles of one disentangling level.
struct LevelAngles {
    theta: Vec<f64>, // RY angles per control pattern
    omega: Vec<f64>, // RZ angles per control pattern
}

/// Builds a circuit preparing `psi` (up to global phase) from `|0…0⟩`.
///
/// Fails if `psi` is not normalized (within 1e-6) or has non-power-of-two
/// length.
pub fn prepare_state(psi: &CVec) -> Result<QCircuit, QclabError> {
    let n = psi.nb_qubits();
    let norm = psi.norm();
    if (norm - 1.0).abs() > 1e-6 {
        return Err(QclabError::NotNormalized { norm });
    }
    if n == 0 {
        return Ok(QCircuit::new(1));
    }

    // disentangle from the last qubit upwards, recording angles
    let mut levels: Vec<LevelAngles> = Vec::with_capacity(n);
    let mut amps: Vec<qclab_math::C64> = psi.0.clone();
    for m in (1..=n).rev() {
        let half = 1usize << (m - 1);
        let mut theta = vec![0.0f64; half];
        let mut omega = vec![0.0f64; half];
        let mut next = Vec::with_capacity(half);
        for p in 0..half {
            let a = amps[2 * p];
            let b = amps[2 * p + 1];
            let r = (a.norm_sqr() + b.norm_sqr()).sqrt();
            if r < 1e-15 {
                next.push(qclab_math::scalar::zero());
                continue;
            }
            let t = 2.0 * b.norm().atan2(a.norm());
            let arg_a = if a.norm() > 1e-15 {
                a.im.atan2(a.re)
            } else {
                0.0
            };
            let arg_b = if b.norm() > 1e-15 {
                b.im.atan2(b.re)
            } else {
                0.0
            };
            let w = arg_b - arg_a;
            let gamma = (arg_a + arg_b) / 2.0;
            theta[p] = t;
            omega[p] = w;
            next.push(qclab_math::scalar::cis(gamma) * qclab_math::scalar::cr(r));
        }
        levels.push(LevelAngles { theta, omega });
        amps = next;
    }
    levels.reverse(); // levels[m-1] now belongs to target qubit m-1

    // preparation = adjoint of the disentangling sequence: per level,
    // UCRY(+θ) then UCRZ(+ω), from qubit 0 outwards
    let mut circuit = QCircuit::new(n);
    for (m, level) in levels.iter().enumerate() {
        let controls: Vec<usize> = (0..m).collect();
        let target = m;
        if level.theta.iter().any(|t| t.abs() > 1e-14) {
            let sub = ucr(&controls, target, UcrAxis::Y, &level.theta, n);
            for item in sub.items() {
                circuit.push_back(item.clone());
            }
        }
        if level.omega.iter().any(|w| w.abs() > 1e-14) {
            let sub = ucr(&controls, target, UcrAxis::Z, &level.omega, n);
            for item in sub.items() {
                circuit.push_back(item.clone());
            }
        }
    }
    Ok(circuit)
}

/// Convenience: prepares `psi` and verifies the result by simulation,
/// returning the achieved fidelity (should be 1 up to rounding).
pub fn prepare_and_verify(psi: &CVec) -> Result<(QCircuit, f64), QclabError> {
    let circuit = prepare_state(psi)?;
    let zeros = CVec::basis_state(psi.len(), 0);
    let sim = circuit.simulate(&zeros)?;
    let fidelity = sim.states()[0].fidelity(psi);
    Ok((circuit, fidelity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_math::scalar::{c, cr};

    const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    fn assert_prepares(psi: &CVec) {
        let (circuit, fidelity) = prepare_and_verify(psi).unwrap();
        assert!(
            fidelity > 1.0 - 1e-10,
            "fidelity {fidelity} for {psi:?} with circuit of {} gates",
            circuit.nb_gates()
        );
    }

    #[test]
    fn prepares_basis_states() {
        for n in 1..=4 {
            for i in 0..(1usize << n) {
                assert_prepares(&CVec::basis_state(1 << n, i));
            }
        }
    }

    #[test]
    fn prepares_the_paper_states() {
        // |v> = (1/√2, i/√2)
        assert_prepares(&CVec(vec![cr(INV_SQRT2), c(0.0, INV_SQRT2)]));
        // the Bell state
        assert_prepares(&CVec(vec![cr(INV_SQRT2), cr(0.0), cr(0.0), cr(INV_SQRT2)]));
    }

    #[test]
    fn prepares_ghz_and_w_states() {
        let n = 4;
        let dim = 1usize << n;
        let mut ghz = CVec::zeros(dim);
        ghz[0] = cr(INV_SQRT2);
        ghz[dim - 1] = cr(INV_SQRT2);
        assert_prepares(&ghz);

        let mut w = CVec::zeros(dim);
        let a = cr(1.0 / (n as f64).sqrt());
        for q in 0..n {
            w[1 << q] = a;
        }
        assert_prepares(&w);
    }

    #[test]
    fn prepares_dense_complex_states() {
        let mut s = 0xDEADBEEFu64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s as f64 / u64::MAX as f64 - 0.5
        };
        for n in 1..=5 {
            let dim = 1usize << n;
            let v = CVec((0..dim).map(|_| c(rnd(), rnd())).collect()).normalized();
            assert_prepares(&v);
        }
    }

    #[test]
    fn real_positive_states_need_no_rz() {
        let psi = CVec(vec![cr(0.5), cr(0.5), cr(0.5), cr(0.5)]);
        let circuit = prepare_state(&psi).unwrap();
        for item in circuit.items() {
            if let qclab_core::CircuitItem::Gate(g) = item {
                assert!(
                    !matches!(g, Gate::RotationZ { .. }),
                    "unexpected RZ for a real state"
                );
            }
        }
        assert_prepares(&psi);
    }

    #[test]
    fn gate_count_is_linear_in_dimension() {
        let n = 6;
        let dim = 1usize << n;
        let v = CVec((0..dim).map(|i| c(1.0 + i as f64, 0.3)).collect()).normalized();
        let circuit = prepare_state(&v).unwrap();
        // UCRY + UCRZ per level: at most 4 · 2^n gates overall
        assert!(
            circuit.nb_gates() <= 4 * dim,
            "gate count {} too high",
            circuit.nb_gates()
        );
    }

    #[test]
    fn rejects_unnormalized_input() {
        let v = CVec(vec![cr(1.0), cr(1.0)]);
        assert!(matches!(
            prepare_state(&v),
            Err(QclabError::NotNormalized { .. })
        ));
    }
}
