//! Variational quantum eigensolver (VQE) on qclab primitives.
//!
//! Demonstrates the prototyping workflow the paper positions QCLAB for:
//! a hardware-efficient ansatz built from `RY` rotations and a CNOT
//! ladder, energies evaluated through the [`Observable`] machinery, and
//! the deterministic **Rotosolve** coordinate optimizer, which exploits
//! the fact that the energy is sinusoidal in each rotation angle:
//! `E(θ_d) = A + R·cos(θ_d − φ)`, so each coordinate is minimized
//! exactly from three evaluations.

use qclab_core::observable::Observable;
use qclab_core::prelude::*;
use qclab_math::CVec;

/// Builds the hardware-efficient ansatz: `layers + 1` rounds of per-qubit
/// `RY(θ)` rotations with a CNOT ladder between rounds.
/// `params.len()` must equal `nb_qubits * (layers + 1)`.
pub fn ansatz(nb_qubits: usize, layers: usize, params: &[f64]) -> QCircuit {
    assert_eq!(
        params.len(),
        nb_qubits * (layers + 1),
        "ansatz expects {} parameters",
        nb_qubits * (layers + 1)
    );
    let mut c = QCircuit::new(nb_qubits);
    let mut p = params.iter();
    for layer in 0..=layers {
        for q in 0..nb_qubits {
            c.push_back(RotationY::new(q, *p.next().unwrap()));
        }
        if layer < layers {
            for q in 0..nb_qubits.saturating_sub(1) {
                c.push_back(CNOT::new(q, q + 1));
            }
        }
    }
    c
}

/// Energy `⟨0…0| U(θ)† O U(θ) |0…0⟩` of the ansatz state.
pub fn energy(
    nb_qubits: usize,
    layers: usize,
    params: &[f64],
    observable: &Observable,
) -> Result<f64, QclabError> {
    let circuit = ansatz(nb_qubits, layers, params);
    let init = CVec::basis_state(1 << nb_qubits, 0);
    let sim = circuit.simulate(&init)?;
    Ok(observable.expectation(sim.states()[0]))
}

/// Result of a [`vqe_minimize`] run.
#[derive(Clone, Debug)]
pub struct VqeResult {
    /// Optimized parameters.
    pub params: Vec<f64>,
    /// Final energy.
    pub energy: f64,
    /// Energy after each full Rotosolve sweep.
    pub history: Vec<f64>,
}

/// Minimizes the observable's energy over the ansatz parameters with
/// Rotosolve coordinate descent (`sweeps` full passes, deterministic,
/// gradient-free). Starts from all-zero parameters.
pub fn vqe_minimize(
    nb_qubits: usize,
    layers: usize,
    observable: &Observable,
    sweeps: usize,
) -> Result<VqeResult, QclabError> {
    let nb_params = nb_qubits * (layers + 1);
    let mut params = vec![0.0f64; nb_params];
    let mut history = Vec::with_capacity(sweeps);

    for _ in 0..sweeps {
        for d in 0..nb_params {
            // E(θ_d) = A + B cos θ_d + C sin θ_d; sample at 0, π/2, π
            let orig = params[d];
            params[d] = 0.0;
            let e0 = energy(nb_qubits, layers, &params, observable)?;
            params[d] = std::f64::consts::FRAC_PI_2;
            let e90 = energy(nb_qubits, layers, &params, observable)?;
            params[d] = std::f64::consts::PI;
            let e180 = energy(nb_qubits, layers, &params, observable)?;

            let a = (e0 + e180) / 2.0;
            let b = (e0 - e180) / 2.0;
            let cc = e90 - a;
            // E = A + R cos(θ − φ) with φ = atan2(C, B); minimum at φ + π
            let theta_min = cc.atan2(b) + std::f64::consts::PI;
            params[d] = theta_min;
            let _ = orig;
        }
        history.push(energy(nb_qubits, layers, &params, observable)?);
    }

    let final_energy = energy(nb_qubits, layers, &params, observable)?;
    Ok(VqeResult {
        params,
        energy: final_energy,
        history,
    })
}

/// Exact ground-state energy of the observable by dense diagonalization
/// (small registers only), for validating VQE results.
pub fn exact_ground_energy(observable: &Observable) -> f64 {
    let m = observable.matrix();
    qclab_math::eig::hermitian_eigenvalues(&m)[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ansatz_parameter_count_and_structure() {
        let params = vec![0.1; 6];
        let c = ansatz(2, 2, &params);
        // 3 rounds of 2 RYs + 2 ladders of 1 CNOT
        assert_eq!(c.nb_gates(), 6 + 2);
    }

    #[test]
    #[should_panic(expected = "expects 6 parameters")]
    fn ansatz_rejects_wrong_parameter_count() {
        ansatz(2, 2, &[0.0; 5]);
    }

    #[test]
    fn zero_parameters_give_all_zero_state_energy() {
        // θ = 0 everywhere: the state stays |0..0>
        let obs = Observable::ising_chain(3, 1.0, 0.0);
        let e = energy(3, 1, &[0.0; 6], &obs).unwrap();
        assert!((e + 2.0).abs() < 1e-12); // -J(n-1) = -2
    }

    #[test]
    fn rotosolve_finds_tfim_ground_state() {
        // transverse-field Ising on 3 qubits: ground state is real, so
        // the RY ansatz can represent it
        let obs = Observable::ising_chain(3, 1.0, 0.5);
        let exact = exact_ground_energy(&obs);
        let result = vqe_minimize(3, 2, &obs, 8).unwrap();
        assert!(
            result.energy <= exact + 1e-4,
            "VQE energy {} vs exact {exact}",
            result.energy
        );
        // variational principle: never below the true ground energy
        assert!(result.energy >= exact - 1e-9);
    }

    #[test]
    fn sweeps_monotonically_improve() {
        let obs = Observable::ising_chain(2, 1.0, 0.3);
        let result = vqe_minimize(2, 1, &obs, 5).unwrap();
        for w in result.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-10, "energy went up: {:?}", result.history);
        }
    }

    #[test]
    fn pure_field_hamiltonian() {
        // H = -Σ X_i: ground state |+..+>, energy -n, reachable with RY(π/2)
        let obs = Observable::ising_chain(2, 0.0, 1.0);
        let result = vqe_minimize(2, 1, &obs, 4).unwrap();
        assert!((result.energy + 2.0).abs() < 1e-8);
    }
}
