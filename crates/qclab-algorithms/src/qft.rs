//! Quantum Fourier transform circuits.
//!
//! The QFT is the canonical structured workload for the benchmark harness
//! (dense in controlled-phase gates, the class QCLAB's derived compilers
//! care about) and the substrate for phase estimation.

use qclab_core::prelude::*;
use qclab_math::scalar::{cis, C64};
use qclab_math::CMat;

/// Builds the `n`-qubit QFT: Hadamards with cascading controlled phases,
/// followed by the bit-reversal SWAP network.
pub fn qft(nb_qubits: usize) -> QCircuit {
    let mut c = QCircuit::new(nb_qubits);
    for q in 0..nb_qubits {
        c.push_back(Hadamard::new(q));
        for k in q + 1..nb_qubits {
            let theta = std::f64::consts::PI / (1u64 << (k - q)) as f64;
            c.push_back(CPhase::new(k, q, theta));
        }
    }
    for q in 0..nb_qubits / 2 {
        c.push_back(SwapGate::new(q, nb_qubits - 1 - q));
    }
    c
}

/// The inverse QFT (adjoint of [`qft`]).
pub fn iqft(nb_qubits: usize) -> QCircuit {
    qft(nb_qubits).adjoint().expect("QFT is unitary")
}

/// The exact DFT matrix `F[j][k] = ω^{jk} / √N` with `ω = e^{2πi/N}`,
/// for validating the circuit.
pub fn dft_matrix(nb_qubits: usize) -> CMat {
    let n = 1usize << nb_qubits;
    let scale = 1.0 / (n as f64).sqrt();
    CMat::from_fn(n, n, |j, k| {
        let w: C64 = cis(2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64);
        C64::new(w.re * scale, w.im * scale)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qft_matches_dft_matrix() {
        for n in 1..=5 {
            let m = qft(n).to_matrix().unwrap();
            let f = dft_matrix(n);
            assert!(m.approx_eq(&f, 1e-10), "QFT({n}) != DFT matrix");
        }
    }

    #[test]
    fn iqft_inverts_qft() {
        for n in 1..=4 {
            let mut c = qft(n);
            for item in iqft(n).items() {
                c.push_back(item.clone());
            }
            assert!(c.to_matrix().unwrap().is_identity(1e-10));
        }
    }

    #[test]
    fn qft_of_basis_state_is_uniform_in_magnitude() {
        let n = 4;
        let c = qft(n);
        let sim = c.simulate_bitstring("0101").unwrap();
        let state = sim.states()[0];
        let expect = 1.0 / (1u64 << n) as f64;
        for amp in state.iter() {
            assert!((amp.norm_sqr() - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn qft_gate_count() {
        // n Hadamards + n(n-1)/2 controlled phases + floor(n/2) swaps
        let n = 5;
        let c = qft(n);
        assert_eq!(c.nb_gates(), n + n * (n - 1) / 2 + n / 2);
    }

    #[test]
    fn qft_on_zero_gives_uniform_superposition() {
        let c = qft(3);
        let sim = c.simulate_bitstring("000").unwrap();
        let state = sim.states()[0];
        let amp = 1.0 / (8f64).sqrt();
        for z in state.iter() {
            assert!((z.re - amp).abs() < 1e-12);
            assert!(z.im.abs() < 1e-12);
        }
    }
}
