//! # qclab-algorithms
//!
//! Quantum algorithm constructors built on `qclab-core`, covering the
//! four worked examples of the QCLAB paper (Sec. 5) plus the standard
//! algorithms used as benchmark workloads:
//!
//! * [`teleportation`] — paper Sec. 5.1 (mid-circuit measurements),
//! * [`tomography`] — paper Sec. 5.2 (multi-basis measurement, `counts`),
//! * [`grover`] — paper Sec. 5.3 (modular blocks), generalized to `n`
//!   qubits with a success-probability sweep,
//! * [`qec`] — paper Sec. 5.4 (repetition codes, multi-controlled gates),
//! * [`qft`], [`phase_estimation`], [`ghz`], [`bernstein_vazirani`],
//!   [`deutsch_jozsa`] — further standard circuits.

pub mod amplitude_estimation;
pub mod bernstein_vazirani;
pub mod block_encoding;
pub mod deutsch_jozsa;
pub mod ghz;
pub mod grover;
pub mod phase_estimation;
pub mod qec;
pub mod qft;
pub mod state_preparation;
pub mod teleportation;
pub mod tomography;
pub mod trotter;
pub mod vqe;

pub use amplitude_estimation::{count_marked, estimate_amplitude, AmplitudeEstimate};
pub use bernstein_vazirani::bernstein_vazirani as bernstein_vazirani_circuit;
pub use block_encoding::{encoded_block, fable, BlockEncoding};
pub use deutsch_jozsa::{deutsch_jozsa as deutsch_jozsa_circuit, DjOracle};
pub use ghz::{bell_circuit, ghz_circuit};
pub use grover::{grover_circuit, grover_diffuser, grover_oracle, optimal_iterations};
pub use phase_estimation::{estimate_phase, phase_estimation_circuit};
pub use qec::{
    analytic_logical_error_rate, bit_flip_circuit, bit_flip_circuit_ancilla_reuse,
    correct_by_pauli_frame, logical_error_rate, majority_decode, phase_flip_circuit,
    repetition_code_circuit, shor_code_circuit, shor_code_fidelity, InjectedError, PauliError,
};
pub use qft::{iqft, qft};
pub use state_preparation::{prepare_and_verify, prepare_state};
pub use teleportation::{teleport, teleportation_circuit};
pub use tomography::{tomography, Tomography};
pub use trotter::{evolve, exact_evolution, trotter_step, TrotterOrder};
pub use vqe::{ansatz, energy, exact_ground_energy, vqe_minimize, VqeResult};
