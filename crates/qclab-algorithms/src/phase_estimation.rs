//! Quantum phase estimation.
//!
//! Estimates the eigenphase `φ` of a single-qubit unitary `U|ψ> =
//! e^{2πiφ}|ψ>` with `t` counting qubits: controlled powers of `U`
//! followed by an inverse QFT on the counting register. Exercises the
//! custom-gate and sub-circuit machinery on a numerically meaningful
//! workload.

use crate::qft::iqft;
use qclab_core::prelude::*;
use qclab_math::CMat;

/// Builds the QPE circuit: `t` counting qubits (0..t-1) and one target
/// qubit `t`. `u` is the 2x2 unitary whose phase is estimated; the target
/// must be prepared in an eigenstate by the caller (or use
/// [`estimate_phase`] for the diagonal case).
pub fn phase_estimation_circuit(t: usize, u: &CMat) -> Result<QCircuit, QclabError> {
    assert!(t > 0, "need at least one counting qubit");
    let mut c = QCircuit::new(t + 1);
    for q in 0..t {
        c.push_back(Hadamard::new(q));
    }
    // counting qubit q controls U^(2^(t-1-q))
    for q in 0..t {
        let reps = 1u32 << (t - 1 - q);
        let upow = u.pow(reps);
        let gate = CustomGate::new(&format!("U^{reps}"), &[t], upow)?;
        c.push_back(gate.controlled(q, 1));
    }
    // inverse QFT on the counting register
    let mut iq = iqft(t);
    iq.as_block("IQFT†");
    c.push_back(iq);
    for q in 0..t {
        c.push_back(Measurement::z(q));
    }
    Ok(c)
}

/// Runs QPE for the phase of the `|1>` eigenstate of a diagonal unitary
/// `diag(1, e^{2πiφ})` and returns the most likely estimate of `φ`.
pub fn estimate_phase(t: usize, phi: f64) -> Result<f64, QclabError> {
    let u = qclab_core::gates::matrices::phase(2.0 * std::f64::consts::PI * phi);
    let circuit = phase_estimation_circuit(t, &u)?;
    // initial state: counting register |0..0>, target |1> (the eigenstate)
    let init = qclab_math::CVec::from_bitstring(&format!("{}1", "0".repeat(t)))
        .ok_or_else(|| QclabError::InvalidBitstring("init".into()))?;
    let sim = circuit.simulate(&init)?;
    // most probable outcome
    let (best, _) = sim
        .results()
        .iter()
        .zip(sim.probabilities())
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(r, p)| (r.to_string(), p))
        .unwrap();
    let k = qclab_math::bits::bitstring_to_index(&best).unwrap();
    Ok(k as f64 / (1u64 << t) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_dyadic_phases_are_recovered_exactly() {
        for (t, phi) in [(3, 0.25), (3, 0.625), (4, 0.3125), (5, 0.03125)] {
            let est = estimate_phase(t, phi).unwrap();
            assert!(
                (est - phi).abs() < 1e-12,
                "t={t}, phi={phi}: estimated {est}"
            );
        }
    }

    #[test]
    fn non_dyadic_phase_is_approximated() {
        let phi = 0.3;
        let est = estimate_phase(6, phi).unwrap();
        assert!((est - phi).abs() < 1.0 / 64.0 + 1e-12, "estimate {est}");
    }

    #[test]
    fn deterministic_case_has_single_branch() {
        let u = qclab_core::gates::matrices::phase(std::f64::consts::PI); // φ = 1/2
        let c = phase_estimation_circuit(3, &u).unwrap();
        let init = qclab_math::CVec::from_bitstring("0001").unwrap();
        let sim = c.simulate(&init).unwrap();
        // φ = 0.5 = 0.100₂: outcome '100' with certainty
        assert_eq!(sim.results(), &["100"]);
        assert!((sim.probabilities()[0] - 1.0).abs() < 1e-10);
    }
}
