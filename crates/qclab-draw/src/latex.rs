//! LaTeX (quantikz) export — QCLAB's `toTex` (paper Sec. 4).
//!
//! Generates a standalone, compilable LaTeX document using the `quantikz`
//! package ("the ability to generate executable LaTeX code"). The same
//! column layout as the ASCII renderer keeps both outputs consistent.

use crate::layout::{layout, Glyph, Layout};
use qclab_core::QCircuit;
use std::fmt::Write;

/// Escapes characters that are special in LaTeX gate labels.
fn escape(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for ch in label.chars() {
        match ch {
            '#' | '%' | '&' | '_' | '{' | '}' => {
                out.push('\\');
                out.push(ch);
            }
            '†' => out.push_str("^\\dagger"),
            '√' => out.push_str("\\sqrt{}"),
            other => out.push(other),
        }
    }
    out
}

/// Produces the quantikz body (one `&`-separated row per qubit).
#[allow(clippy::needless_range_loop)] // wire-indexed grid fills
pub fn render_body(l: &Layout) -> String {
    // grid of cells, default \qw
    let mut grid: Vec<Vec<String>> = vec![vec![String::from("\\qw"); l.nb_columns]; l.nb_qubits];

    for item in &l.items {
        let col = item.column;
        if let Some(label) = &item.big_box {
            let wires = item.span.1 - item.span.0 + 1;
            grid[item.span.0][col] = format!("\\gate[wires={wires}]{{{}}}", escape(label));
            for q in item.span.0 + 1..=item.span.1 {
                // cells covered by a multi-wire gate stay empty
                grid[q][col] = String::new();
            }
            continue;
        }
        // distance to the next glyph below, for \ctrl arguments
        let wires: Vec<usize> = item.glyphs.keys().copied().collect();
        for (&q, glyph) in &item.glyphs {
            let cell = match glyph {
                Glyph::Box(label) => format!("\\gate{{{}}}", escape(label)),
                Glyph::Meter(basis) => {
                    if basis.is_empty() {
                        "\\meter{}".to_string()
                    } else {
                        format!("\\meter{{{}}}", escape(basis))
                    }
                }
                Glyph::Reset => "\\gate{\\ket{0}}".to_string(),
                Glyph::Control(filled) => {
                    // point the control at the nearest other wire of the item
                    let target = wires
                        .iter()
                        .copied()
                        .filter(|&w| w != q)
                        .min_by_key(|&w| w.abs_diff(q))
                        .unwrap_or(q);
                    let d = target as isize - q as isize;
                    if *filled {
                        format!("\\ctrl{{{d}}}")
                    } else {
                        format!("\\octrl{{{d}}}")
                    }
                }
                Glyph::Cross => {
                    // first cross links to the partner, second terminates
                    let partner = wires
                        .iter()
                        .copied()
                        .filter(|&w| w != q)
                        .min_by_key(|&w| w.abs_diff(q));
                    match partner {
                        Some(p) if q < p => format!("\\swap{{{}}}", p as isize - q as isize),
                        _ => "\\targX{}".to_string(),
                    }
                }
                Glyph::Barrier => "\\qw\\slice{}".to_string(),
            };
            grid[q][col] = cell;
        }
    }

    let mut out = String::new();
    for (q, row) in grid.iter().enumerate() {
        let _ = write!(out, "\\lstick{{$q_{{{q}}}$}}");
        for cell in row {
            if cell.is_empty() {
                out.push_str(" &");
            } else {
                let _ = write!(out, " & {cell}");
            }
        }
        out.push_str(" & \\qw \\\\\n");
    }
    out
}

/// Produces a complete standalone LaTeX document (`circuit.toTex()`).
pub fn to_tex(circuit: &QCircuit) -> String {
    let body = render_body(&layout(circuit));
    format!(
        "\\documentclass{{standalone}}\n\
         \\usepackage{{tikz}}\n\
         \\usetikzlibrary{{quantikz}}\n\
         \\begin{{document}}\n\
         \\begin{{quantikz}}\n\
         {body}\
         \\end{{quantikz}}\n\
         \\end{{document}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_core::gates::factories::*;
    use qclab_core::Measurement;

    fn bell() -> QCircuit {
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(Measurement::z(0));
        c.push_back(Measurement::z(1));
        c
    }

    #[test]
    fn document_structure() {
        let tex = to_tex(&bell());
        assert!(tex.starts_with("\\documentclass{standalone}"));
        assert!(tex.contains("\\begin{quantikz}"));
        assert!(tex.contains("\\end{quantikz}"));
        assert!(tex.contains("\\end{document}"));
    }

    #[test]
    fn paper_circuit_cells() {
        let tex = to_tex(&bell());
        assert!(tex.contains("\\gate{H}"));
        assert!(tex.contains("\\ctrl{1}"));
        assert!(tex.contains("\\targ") || tex.contains("\\gate{X}"));
        assert_eq!(tex.matches("\\meter{}").count(), 2);
        assert!(tex.contains("\\lstick{$q_{0}$}"));
        assert!(tex.contains("\\lstick{$q_{1}$}"));
    }

    #[test]
    fn control_distance_is_signed() {
        // control below the target: negative distance
        let mut c = QCircuit::new(2);
        c.push_back(CNOT::new(1, 0));
        let tex = to_tex(&c);
        assert!(tex.contains("\\ctrl{-1}"), "{tex}");
    }

    #[test]
    fn open_control_uses_octrl() {
        let mut c = QCircuit::new(2);
        c.push_back(CNOT::with_control_state(0, 1, 0));
        assert!(to_tex(&c).contains("\\octrl{1}"));
    }

    #[test]
    fn swap_cells() {
        let mut c = QCircuit::new(3);
        c.push_back(SwapGate::new(0, 2));
        let tex = to_tex(&c);
        assert!(tex.contains("\\swap{2}"));
        assert!(tex.contains("\\targX{}"));
    }

    #[test]
    fn block_uses_multiwire_gate() {
        let mut sub = QCircuit::new(2);
        sub.push_back(CZ::new(0, 1));
        sub.as_block("diffuser");
        let mut c = QCircuit::new(2);
        c.push_back(sub);
        let tex = to_tex(&c);
        assert!(tex.contains("\\gate[wires=2]{diffuser}"), "{tex}");
    }

    #[test]
    fn labels_are_escaped() {
        let mut c = QCircuit::new(1);
        c.push_back(SdgGate::new(0)); // label "S†"
        let tex = to_tex(&c);
        assert!(tex.contains("S^\\dagger"), "{tex}");
    }

    #[test]
    fn measurement_basis_label() {
        let mut c = QCircuit::new(1);
        c.push_back(Measurement::y(0));
        assert!(to_tex(&c).contains("\\meter{y}"));
    }

    #[test]
    fn rows_match_qubits_and_end_with_linebreaks() {
        let body = render_body(&crate::layout::layout(&bell()));
        assert_eq!(body.lines().count(), 2);
        for line in body.lines() {
            assert!(line.ends_with("\\\\"));
        }
    }
}
