//! # qclab-draw
//!
//! Visualization of qclab circuits (paper Sec. 4): terminal "musical
//! score" diagrams ([`draw_circuit`], QCLAB's `draw`) and executable
//! quantikz LaTeX ([`to_tex`], QCLAB's `toTex`). Both renderers share the
//! greedy column [`layout`](layout::layout), so the pictures agree.
//!
//! ```
//! use qclab_core::prelude::*;
//! use qclab_draw::draw_circuit;
//!
//! let mut circuit = QCircuit::new(2);
//! circuit.push_back(Hadamard::new(0));
//! circuit.push_back(CNOT::new(0, 1));
//! let art = draw_circuit(&circuit);
//! assert!(art.contains("┤ H ├"));
//! ```

pub mod ascii;
pub mod latex;
pub mod layout;

pub use ascii::draw_circuit;
pub use latex::to_tex;
pub use layout::{layout, Glyph, Layout, PlacedItem};
