//! Column layout shared by the ASCII and LaTeX renderers.
//!
//! Circuit items are packed greedily into columns, exactly like
//! [`QCircuit::depth`] counts layers: an item occupies the full span of
//! wires between its lowest and highest qubit, and lands in the first
//! column where that span is free. Sub-circuits marked
//! [`as_block`](QCircuit::as_block) become a single spanning box; other
//! sub-circuits are inlined transparently (paper Sec. 5.3: `asBlock` /
//! `unBlock`).

use qclab_core::circuit::CircuitItem;
use qclab_core::measurement::Basis;
use qclab_core::{Gate, QCircuit};
use std::collections::BTreeMap;

/// What is drawn on one wire of one placed item.
#[derive(Clone, Debug, PartialEq)]
pub enum Glyph {
    /// A boxed gate label (`┤ H ├`).
    Box(String),
    /// A control dot; `true` = filled (control state 1).
    Control(bool),
    /// One half of a SWAP (`×`).
    Cross,
    /// A measurement box; the string is the basis label (`z`, `x`, …).
    Meter(String),
    /// A reset box (`|0>`).
    Reset,
    /// A barrier tick.
    Barrier,
}

/// An item placed on the layout grid.
#[derive(Clone, Debug)]
pub struct PlacedItem {
    /// Column index (0-based).
    pub column: usize,
    /// Wire span `(lowest qubit, highest qubit)` including connectors.
    pub span: (usize, usize),
    /// Per-wire glyphs. Wires inside the span without a glyph get a
    /// vertical connector.
    pub glyphs: BTreeMap<usize, Glyph>,
    /// If set, the item is drawn as one box spanning all wires of `span`
    /// with this label (blocks and contiguous multi-qubit customs).
    pub big_box: Option<String>,
}

/// A laid-out circuit.
#[derive(Clone, Debug)]
pub struct Layout {
    pub nb_qubits: usize,
    pub nb_columns: usize,
    pub items: Vec<PlacedItem>,
}

struct Builder {
    level: Vec<usize>,
    items: Vec<PlacedItem>,
}

impl Builder {
    fn place(&mut self, span: (usize, usize), glyphs: BTreeMap<usize, Glyph>, big: Option<String>) {
        let (lo, hi) = span;
        let column = (lo..=hi).map(|q| self.level[q]).max().unwrap_or(0);
        for q in lo..=hi {
            self.level[q] = column + 1;
        }
        self.items.push(PlacedItem {
            column,
            span,
            glyphs,
            big_box: big,
        });
    }

    fn add_gate(&mut self, gate: &Gate) {
        let mut glyphs = BTreeMap::new();
        match gate {
            Gate::Swap(a, b) => {
                glyphs.insert(*a, Glyph::Cross);
                glyphs.insert(*b, Glyph::Cross);
            }
            Gate::Custom { name, qubits, .. } => {
                // a qubit-less custom gate (degenerate but constructible)
                // has nothing to draw
                let (Some(&lo), Some(&hi)) = (qubits.iter().min(), qubits.iter().max()) else {
                    return;
                };
                if qubits.len() > 1 && hi - lo + 1 == qubits.len() {
                    // contiguous multi-qubit custom gate: one spanning box
                    self.place((lo, hi), BTreeMap::new(), Some(name.clone()));
                    return;
                }
                for &q in qubits {
                    glyphs.insert(q, Glyph::Box(name.clone()));
                }
            }
            Gate::Controlled {
                controls,
                control_states,
                target,
            } => {
                for (&c, &s) in controls.iter().zip(control_states.iter()) {
                    glyphs.insert(c, Glyph::Control(s == 1));
                }
                match &**target {
                    Gate::Swap(a, b) => {
                        glyphs.insert(*a, Glyph::Cross);
                        glyphs.insert(*b, Glyph::Cross);
                    }
                    inner => {
                        for q in inner.targets() {
                            glyphs.insert(q, Glyph::Box(inner.name()));
                        }
                    }
                }
            }
            g => {
                for q in g.targets() {
                    glyphs.insert(q, Glyph::Box(g.name()));
                }
            }
        }
        let (Some(&lo), Some(&hi)) = (glyphs.keys().min(), glyphs.keys().max()) else {
            return; // no glyphs — nothing to place
        };
        self.place((lo, hi), glyphs, None);
    }

    fn add_items(&mut self, circuit: &QCircuit, offset: usize) {
        for item in circuit.items() {
            match item {
                CircuitItem::Gate(g) => {
                    let g = if offset == 0 {
                        g.clone()
                    } else {
                        g.shifted(offset)
                    };
                    self.add_gate(&g);
                }
                CircuitItem::Measurement(m) => {
                    let q = m.qubit() + offset;
                    let label = match m.basis() {
                        Basis::Z => String::new(),
                        b => b.label(),
                    };
                    let mut glyphs = BTreeMap::new();
                    glyphs.insert(q, Glyph::Meter(label));
                    self.place((q, q), glyphs, None);
                }
                CircuitItem::Reset(q) => {
                    let q = q + offset;
                    let mut glyphs = BTreeMap::new();
                    glyphs.insert(q, Glyph::Reset);
                    self.place((q, q), glyphs, None);
                }
                CircuitItem::Barrier(qs) => {
                    if qs.is_empty() {
                        continue;
                    }
                    let mut glyphs = BTreeMap::new();
                    for &q in qs {
                        glyphs.insert(q + offset, Glyph::Barrier);
                    }
                    let lo = *glyphs.keys().min().unwrap();
                    let hi = *glyphs.keys().max().unwrap();
                    self.place((lo, hi), glyphs, None);
                }
                CircuitItem::SubCircuit {
                    offset: sub_off,
                    circuit: sub,
                } => {
                    let base = offset + sub_off;
                    if sub.draws_as_block() {
                        let label = sub.name().unwrap_or("block").to_string();
                        self.place(
                            (base, base + sub.nb_qubits() - 1),
                            BTreeMap::new(),
                            Some(label),
                        );
                    } else {
                        self.add_items(sub, base);
                    }
                }
            }
        }
    }
}

/// Lays out a circuit for rendering.
pub fn layout(circuit: &QCircuit) -> Layout {
    let mut b = Builder {
        level: vec![0; circuit.nb_qubits()],
        items: Vec::new(),
    };
    b.add_items(circuit, 0);
    Layout {
        nb_qubits: circuit.nb_qubits(),
        nb_columns: b.level.iter().copied().max().unwrap_or(0),
        items: b.items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_core::gates::factories::*;
    use qclab_core::Measurement;

    #[test]
    fn bell_circuit_layout() {
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(Measurement::z(0));
        c.push_back(Measurement::z(1));
        let l = layout(&c);
        assert_eq!(l.nb_columns, 3);
        assert_eq!(l.items.len(), 4);
        assert_eq!(l.items[0].column, 0);
        assert_eq!(l.items[1].column, 1);
        // both measurements pack into column 2
        assert_eq!(l.items[2].column, 2);
        assert_eq!(l.items[3].column, 2);
    }

    #[test]
    fn parallel_gates_share_a_column() {
        let mut c = QCircuit::new(3);
        c.push_back(Hadamard::new(0));
        c.push_back(Hadamard::new(2));
        let l = layout(&c);
        assert_eq!(l.nb_columns, 1);
        assert_eq!(l.items[0].column, 0);
        assert_eq!(l.items[1].column, 0);
    }

    #[test]
    fn cnot_spans_blocking_middle_wire() {
        let mut c = QCircuit::new(3);
        c.push_back(CNOT::new(0, 2));
        c.push_back(Hadamard::new(1)); // must move to column 1
        let l = layout(&c);
        assert_eq!(l.items[1].column, 1);
        assert_eq!(l.items[0].span, (0, 2));
        assert_eq!(l.items[0].glyphs[&0], Glyph::Control(true));
        assert_eq!(l.items[0].glyphs[&2], Glyph::Box("X".into()));
    }

    #[test]
    fn open_control_glyph() {
        let mut c = QCircuit::new(2);
        c.push_back(CNOT::with_control_state(1, 0, 0));
        let l = layout(&c);
        assert_eq!(l.items[0].glyphs[&1], Glyph::Control(false));
    }

    #[test]
    fn block_subcircuit_becomes_big_box() {
        let mut sub = QCircuit::new(2);
        sub.push_back(CZ::new(0, 1));
        sub.as_block("oracle");
        let mut c = QCircuit::new(3);
        c.push_back_at(1, sub).unwrap();
        let l = layout(&c);
        assert_eq!(l.items.len(), 1);
        assert_eq!(l.items[0].big_box.as_deref(), Some("oracle"));
        assert_eq!(l.items[0].span, (1, 2));
    }

    #[test]
    fn unblocked_subcircuit_is_inlined() {
        let mut sub = QCircuit::new(2);
        sub.push_back(CZ::new(0, 1));
        let mut c = QCircuit::new(3);
        c.push_back_at(1, sub).unwrap();
        let l = layout(&c);
        assert!(l.items[0].big_box.is_none());
        assert_eq!(l.items[0].glyphs[&1], Glyph::Control(true));
    }

    #[test]
    fn swap_and_barrier_glyphs() {
        let mut c = QCircuit::new(2);
        c.push_back(SwapGate::new(0, 1));
        c.push_back(qclab_core::CircuitItem::Barrier(vec![0, 1]));
        let l = layout(&c);
        assert_eq!(l.items[0].glyphs[&0], Glyph::Cross);
        assert_eq!(l.items[1].glyphs[&1], Glyph::Barrier);
    }

    #[test]
    fn measurement_basis_labels() {
        let mut c = QCircuit::new(1);
        c.push_back(Measurement::x(0));
        c.push_back(Measurement::z(0));
        let l = layout(&c);
        assert_eq!(l.items[0].glyphs[&0], Glyph::Meter("x".into()));
        assert_eq!(l.items[1].glyphs[&0], Glyph::Meter(String::new()));
    }
}
