//! Terminal (Unicode box-drawing) circuit rendering — QCLAB's `draw`
//! command (paper Sec. 4).
//!
//! Each qubit occupies three text rows (box top, wire, box bottom); items
//! are placed by the shared [`crate::layout`] and connected with vertical
//! lines, producing the "musical score" diagrams the paper shows in the
//! MATLAB command window.

use crate::layout::{layout, Glyph, Layout, PlacedItem};
use qclab_core::QCircuit;

/// Cell classification used to pick connector characters.
#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Empty,
    Wire,
    BoxTop,
    BoxBottom,
    Inside,
    Symbol,
}

struct Canvas {
    chars: Vec<Vec<char>>,
    kinds: Vec<Vec<Kind>>,
}

impl Canvas {
    fn new(rows: usize, width: usize) -> Self {
        Canvas {
            chars: vec![vec![' '; width]; rows],
            kinds: vec![vec![Kind::Empty; width]; rows],
        }
    }

    fn put(&mut self, y: usize, x: usize, ch: char, kind: Kind) {
        self.chars[y][x] = ch;
        self.kinds[y][x] = kind;
    }
}

/// Width in columns a glyph needs.
fn glyph_width(g: &Glyph) -> usize {
    match g {
        Glyph::Box(label) => label.chars().count() + 4,
        Glyph::Meter(basis) => meter_label(basis).chars().count() + 4,
        Glyph::Reset => 3 + 4,
        Glyph::Control(_) | Glyph::Cross | Glyph::Barrier => 1,
    }
}

fn meter_label(basis: &str) -> String {
    if basis.is_empty() {
        "M".to_string()
    } else {
        format!("M{basis}")
    }
}

fn item_width(item: &PlacedItem) -> usize {
    if let Some(label) = &item.big_box {
        return label.chars().count() + 4;
    }
    item.glyphs.values().map(glyph_width).max().unwrap_or(1)
}

/// Draws a box spanning wires `q_lo..=q_hi`, centered at `xc`, and
/// returns nothing; the label is centered on the middle wire row.
#[allow(clippy::too_many_arguments)]
fn draw_box(canvas: &mut Canvas, q_lo: usize, q_hi: usize, xc: usize, label: &str) {
    let w = label.chars().count() + 4;
    let xl = xc - w / 2;
    let xr = xl + w - 1;
    let y_top = 3 * q_lo;
    let y_bot = 3 * q_hi + 2;

    for x in xl..=xr {
        let (tc, bc) = if x == xl {
            ('┌', '└')
        } else if x == xr {
            ('┐', '┘')
        } else {
            ('─', '─')
        };
        canvas.put(y_top, x, tc, Kind::BoxTop);
        canvas.put(y_bot, x, bc, Kind::BoxBottom);
    }
    for y in y_top + 1..y_bot {
        for x in xl..=xr {
            let is_wire_row = (y % 3) == 1;
            if x == xl {
                canvas.put(y, x, if is_wire_row { '┤' } else { '│' }, Kind::Symbol);
            } else if x == xr {
                canvas.put(y, x, if is_wire_row { '├' } else { '│' }, Kind::Symbol);
            } else {
                canvas.put(y, x, ' ', Kind::Inside);
            }
        }
    }
    // center the label on the middle wire row of the span
    let mid_q = (q_lo + q_hi) / 2;
    let y_label = 3 * mid_q + 1;
    let start = xc - label.chars().count() / 2;
    for (i, ch) in label.chars().enumerate() {
        canvas.put(y_label, start + i, ch, Kind::Inside);
    }
}

/// Renders a laid-out circuit to text.
pub fn render(l: &Layout) -> String {
    let margin = format!("q{}: ", l.nb_qubits - 1).chars().count();
    const GAP: usize = 1;
    const MIN_COL: usize = 3;

    // column widths
    let mut col_w = vec![MIN_COL; l.nb_columns.max(1)];
    for item in &l.items {
        col_w[item.column] = col_w[item.column].max(item_width(item));
    }
    // x position of each column
    let mut col_x = Vec::with_capacity(col_w.len());
    let mut x = margin + GAP;
    for w in &col_w {
        col_x.push(x);
        x += w + GAP;
    }
    let width = x + GAP;
    let rows = 3 * l.nb_qubits;
    let mut canvas = Canvas::new(rows, width);

    // wires
    for q in 0..l.nb_qubits {
        let y = 3 * q + 1;
        for xx in margin..width {
            canvas.put(y, xx, '─', Kind::Wire);
        }
        let label = format!("q{q}: ");
        for (i, ch) in label.chars().enumerate() {
            canvas.put(y, i, ch, Kind::Symbol);
        }
    }

    // items: boxes and symbols first
    for item in &l.items {
        let xc = col_x[item.column] + col_w[item.column] / 2;
        if let Some(label) = &item.big_box {
            draw_box(&mut canvas, item.span.0, item.span.1, xc, label);
            continue;
        }
        for (&q, glyph) in &item.glyphs {
            let y = 3 * q + 1;
            match glyph {
                Glyph::Box(label) => draw_box(&mut canvas, q, q, xc, label),
                Glyph::Meter(basis) => draw_box(&mut canvas, q, q, xc, &meter_label(basis)),
                Glyph::Reset => draw_box(&mut canvas, q, q, xc, "|0>"),
                Glyph::Control(filled) => {
                    canvas.put(y, xc, if *filled { '●' } else { '○' }, Kind::Symbol)
                }
                Glyph::Cross => canvas.put(y, xc, '×', Kind::Symbol),
                Glyph::Barrier => {
                    canvas.put(y, xc, '╫', Kind::Symbol);
                    canvas.put(y - 1, xc, '║', Kind::Symbol);
                    canvas.put(y + 1, xc, '║', Kind::Symbol);
                }
            }
        }
        // connector between the outermost glyph wires
        if item.span.1 > item.span.0 && item.glyphs.len() > 1 {
            let y_lo = 3 * item.span.0 + 1;
            let y_hi = 3 * item.span.1 + 1;
            for y in y_lo + 1..y_hi {
                let ch = match canvas.kinds[y][xc] {
                    Kind::Empty => '│',
                    Kind::Wire => '┼',
                    Kind::BoxTop => '┴',
                    Kind::BoxBottom => '┬',
                    Kind::Inside | Kind::Symbol => continue,
                };
                canvas.put(y, xc, ch, Kind::Symbol);
            }
        }
    }

    let mut out = String::with_capacity(rows * width);
    for row in &canvas.chars {
        let line: String = row.iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Draws a circuit as terminal art (QCLAB's `circuit.draw()`).
pub fn draw_circuit(circuit: &QCircuit) -> String {
    render(&layout(circuit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_core::gates::factories::*;
    use qclab_core::Measurement;

    fn bell() -> QCircuit {
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(Measurement::z(0));
        c.push_back(Measurement::z(1));
        c
    }

    #[test]
    fn paper_circuit_rendering_structure() {
        let art = draw_circuit(&bell());
        assert!(art.contains("┤ H ├"), "missing H box:\n{art}");
        assert!(art.contains("┤ X ├"), "missing CNOT target box:\n{art}");
        assert!(art.contains("┤ M ├"), "missing measurement boxes:\n{art}");
        assert!(art.contains('●'), "missing control dot:\n{art}");
        assert!(art.contains("q0: ") && art.contains("q1: "));
    }

    #[test]
    fn control_dot_aligns_with_target_connector() {
        let art = draw_circuit(&bell());
        let lines: Vec<&str> = art.lines().collect();
        let dot_x = lines[1].chars().position(|c| c == '●').unwrap();
        // the connector entering the target box top edge sits below the dot
        let top_edge: Vec<char> = lines[3].chars().collect();
        assert_eq!(top_edge[dot_x], '┴', "connector misaligned:\n{art}");
        let wire1: Vec<char> = lines[4].chars().collect();
        // the X label is centered above the same column
        assert_eq!(wire1[dot_x], 'X');
    }

    #[test]
    fn nonadjacent_gate_crosses_middle_wire() {
        let mut c = QCircuit::new(3);
        c.push_back(CNOT::new(0, 2));
        let art = draw_circuit(&c);
        let lines: Vec<&str> = art.lines().collect();
        let dot_x = lines[1].chars().position(|c| c == '●').unwrap();
        let mid_wire: Vec<char> = lines[4].chars().collect();
        assert_eq!(
            mid_wire[dot_x], '┼',
            "middle wire should be crossed:\n{art}"
        );
    }

    #[test]
    fn open_control_renders_hollow_dot() {
        let mut c = QCircuit::new(2);
        c.push_back(CNOT::with_control_state(0, 1, 0));
        let art = draw_circuit(&c);
        assert!(art.contains('○'));
    }

    #[test]
    fn swap_and_barrier_and_reset() {
        let mut c = QCircuit::new(2);
        c.push_back(SwapGate::new(0, 1));
        c.push_back(qclab_core::CircuitItem::Barrier(vec![0, 1]));
        c.push_back(qclab_core::CircuitItem::Reset(0));
        let art = draw_circuit(&c);
        assert_eq!(art.matches('×').count(), 2);
        assert!(art.contains('╫'));
        assert!(art.contains("|0>"));
    }

    #[test]
    fn block_draws_as_named_box() {
        let mut oracle = QCircuit::new(2);
        oracle.push_back(CZ::new(0, 1));
        oracle.as_block("oracle");
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(oracle);
        let art = draw_circuit(&c);
        assert!(art.contains("oracle"), "missing block label:\n{art}");
        // block box spans both wires: left edge appears on both wire rows
        let lines: Vec<&str> = art.lines().collect();
        let label_x = lines.iter().find_map(|l| l.find("oracle")).unwrap();
        let _ = label_x;
        assert!(art.matches('┤').count() >= 3); // H box + both block wire entries
    }

    #[test]
    fn measurement_basis_shown_in_box() {
        let mut c = QCircuit::new(1);
        c.push_back(Measurement::x(0));
        let art = draw_circuit(&c);
        assert!(art.contains("Mx"), "basis label missing:\n{art}");
    }

    #[test]
    fn rotation_gate_label() {
        let mut c = QCircuit::new(1);
        c.push_back(RotationX::new(0, 1.0));
        let art = draw_circuit(&c);
        assert!(art.contains("RX"));
    }

    #[test]
    fn every_line_is_trimmed() {
        let art = draw_circuit(&bell());
        for line in art.lines() {
            assert_eq!(line, line.trim_end());
        }
    }
}
