//! Complex vectors used as quantum state vectors.
//!
//! [`CVec`] is a thin newtype over `Vec<C64>` with the inner-product space
//! operations a state-vector simulator needs, plus qubit-aware helpers
//! (basis states from bitstrings, per-qubit probabilities) following the
//! qubit-0-most-significant convention of [`crate::bits`].

use crate::bits;
use crate::scalar::{chop, cr, format_matlab, zero, C64};
use std::fmt;
use std::ops::{Deref, DerefMut, Index, IndexMut};

/// A complex column vector.
#[derive(Clone, PartialEq)]
pub struct CVec(pub Vec<C64>);

impl CVec {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        CVec(vec![zero(); n])
    }

    /// Creates the computational basis state `|i>` in dimension `dim`.
    pub fn basis_state(dim: usize, i: usize) -> Self {
        assert!(i < dim, "basis index {i} out of range for dimension {dim}");
        let mut v = CVec::zeros(dim);
        v[i] = cr(1.0);
        v
    }

    /// Creates the `n`-qubit basis state for a bitstring like `"010"`
    /// (qubit 0 first). Returns `None` on invalid characters.
    pub fn from_bitstring(s: &str) -> Option<Self> {
        let idx = bits::bitstring_to_index(s)?;
        Some(CVec::basis_state(1usize << s.len(), idx))
    }

    /// Length of the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the vector has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of qubits for a state vector of this length; panics if the
    /// length is not a power of two.
    pub fn nb_qubits(&self) -> usize {
        let n = self.len();
        assert!(
            n.is_power_of_two(),
            "state vector length {n} is not a power of two"
        );
        n.trailing_zeros() as usize
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.0.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Normalizes in place to unit norm; panics on the zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        let inv = 1.0 / n;
        for z in self.0.iter_mut() {
            *z *= inv;
        }
    }

    /// Returns a normalized copy.
    pub fn normalized(&self) -> CVec {
        let mut v = self.clone();
        v.normalize();
        v
    }

    /// Inner product `<self | rhs>` (conjugate-linear in `self`).
    pub fn inner(&self, rhs: &CVec) -> C64 {
        assert_eq!(self.len(), rhs.len(), "inner product length mismatch");
        self.0
            .iter()
            .zip(rhs.0.iter())
            .map(|(a, b)| a.conj() * b)
            .sum()
    }

    /// Fidelity `|<self|rhs>|^2` between two pure states.
    pub fn fidelity(&self, rhs: &CVec) -> f64 {
        self.inner(rhs).norm_sqr()
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CVec) -> CVec {
        let mut out = Vec::with_capacity(self.len() * rhs.len());
        for &a in self.0.iter() {
            for &b in rhs.0.iter() {
                out.push(a * b);
            }
        }
        CVec(out)
    }

    /// Probability of finding qubit `q` in `|bit>` when measuring this
    /// state (no collapse).
    pub fn qubit_probability(&self, q: usize, bit: usize) -> f64 {
        let n = self.nb_qubits();
        self.0
            .iter()
            .enumerate()
            .filter(|(i, _)| bits::qubit_bit(*i, q, n) == bit)
            .map(|(_, z)| z.norm_sqr())
            .sum()
    }

    /// The full probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.0.iter().map(|z| z.norm_sqr()).collect()
    }

    /// `true` if two states are equal up to a global phase, within `tol`.
    pub fn approx_eq_up_to_phase(&self, rhs: &CVec, tol: f64) -> bool {
        if self.len() != rhs.len() {
            return false;
        }
        let ip = self.inner(rhs);
        let (a, b) = (self.norm(), rhs.norm());
        if a == 0.0 || b == 0.0 {
            return a == b;
        }
        (ip.norm() - a * b).abs() <= tol
    }

    /// Entrywise approximate equality within `tol`.
    pub fn approx_eq(&self, rhs: &CVec, tol: f64) -> bool {
        self.len() == rhs.len()
            && self
                .0
                .iter()
                .zip(rhs.0.iter())
                .all(|(a, b)| (a - b).norm() <= tol)
    }

    /// Returns a copy with sub-`tol` components clamped to zero.
    pub fn chopped(&self, tol: f64) -> CVec {
        CVec(self.0.iter().map(|&z| chop(z, tol)).collect())
    }
}

impl Deref for CVec {
    type Target = [C64];
    fn deref(&self) -> &[C64] {
        &self.0
    }
}

impl DerefMut for CVec {
    fn deref_mut(&mut self) -> &mut [C64] {
        &mut self.0
    }
}

impl Index<usize> for CVec {
    type Output = C64;
    #[inline]
    fn index(&self, i: usize) -> &C64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for CVec {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut C64 {
        &mut self.0[i]
    }
}

impl From<Vec<C64>> for CVec {
    fn from(v: Vec<C64>) -> Self {
        CVec(v)
    }
}

impl fmt::Debug for CVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CVec [")?;
        for z in self.0.iter() {
            writeln!(f, "  {}", format_matlab(*z, 4))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for CVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{c, cr};

    const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn basis_state_from_bitstring() {
        let v = CVec::from_bitstring("10").unwrap();
        assert_eq!(v.len(), 4);
        assert_eq!(v[2], cr(1.0));
        assert_eq!(v.norm(), 1.0);
        assert!(CVec::from_bitstring("2").is_none());
    }

    #[test]
    fn nb_qubits_of_power_of_two() {
        assert_eq!(CVec::zeros(8).nb_qubits(), 3);
        assert_eq!(CVec::zeros(1).nb_qubits(), 0);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn nb_qubits_panics_on_bad_length() {
        let _ = CVec::zeros(3).nb_qubits();
    }

    #[test]
    fn kron_of_paper_initial_state() {
        // Paper Sec. 5.1: initial_state = kron(v, bell).
        let v = CVec(vec![cr(INV_SQRT2), c(0.0, INV_SQRT2)]);
        let bell = CVec(vec![cr(INV_SQRT2), cr(0.0), cr(0.0), cr(INV_SQRT2)]);
        let init = v.kron(&bell);
        assert_eq!(init.len(), 8);
        assert!((init.norm() - 1.0).abs() < 1e-15);
        assert!((init[0].re - 0.5).abs() < 1e-15);
        assert!((init[3].re - 0.5).abs() < 1e-15);
        assert!((init[4].im - 0.5).abs() < 1e-15);
        assert!((init[7].im - 0.5).abs() < 1e-15);
    }

    #[test]
    fn qubit_probability_of_plus_state() {
        // |+0>: qubit 0 has P(0)=P(1)=0.5, qubit 1 has P(0)=1.
        let v = CVec(vec![cr(INV_SQRT2), cr(0.0), cr(INV_SQRT2), cr(0.0)]);
        assert!((v.qubit_probability(0, 0) - 0.5).abs() < 1e-15);
        assert!((v.qubit_probability(0, 1) - 0.5).abs() < 1e-15);
        assert!((v.qubit_probability(1, 0) - 1.0).abs() < 1e-15);
        assert!(v.qubit_probability(1, 1).abs() < 1e-15);
    }

    #[test]
    fn inner_product_conjugate_linearity() {
        let u = CVec(vec![c(0.0, 1.0), cr(0.0)]);
        let v = CVec(vec![cr(1.0), cr(0.0)]);
        // <iu0|v> = conj(i) * 1 = -i
        assert_eq!(u.inner(&v), c(0.0, -1.0));
        assert_eq!(v.inner(&u), c(0.0, 1.0));
    }

    #[test]
    fn normalize_and_fidelity() {
        let mut v = CVec(vec![cr(3.0), c(0.0, 4.0)]);
        assert!((v.norm() - 5.0).abs() < 1e-15);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-15);
        assert!((v.fidelity(&v) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn phase_equivalence() {
        let v = CVec(vec![cr(INV_SQRT2), c(0.0, INV_SQRT2)]);
        let w = CVec(v.0.iter().map(|z| z * c(0.0, 1.0)).collect());
        assert!(v.approx_eq_up_to_phase(&w, 1e-12));
        assert!(!v.approx_eq(&w, 1e-12));
        let orth = CVec(vec![cr(INV_SQRT2), c(0.0, -INV_SQRT2)]);
        assert!(!v.approx_eq_up_to_phase(&orth, 1e-12));
    }

    #[test]
    fn probabilities_sum_to_one_for_unit_state() {
        let v = CVec(vec![cr(0.5), cr(0.5), cr(0.5), c(0.0, 0.5)]);
        let p: f64 = v.probabilities().iter().sum();
        assert!((p - 1.0).abs() < 1e-15);
    }
}
