//! Density matrices, partial trace, trace distance and fidelity.
//!
//! The tomography example of the paper (Sec. 5.2) reconstructs a density
//! matrix from measurement statistics and reports the **trace distance**
//! to the true state; the teleportation example uses **reduced states** of
//! subsets of qubits. Both live here.

use crate::bits;
use crate::dense::CMat;
use crate::eig::{hermitian_eigenvalues, hermitian_trace_norm};
use crate::scalar::{cr, C64};
use crate::vector::CVec;

/// A density matrix `ρ` on `n` qubits (a `2^n x 2^n` PSD matrix of trace 1).
#[derive(Clone, Debug, PartialEq)]
pub struct DensityMatrix {
    mat: CMat,
    nb_qubits: usize,
}

impl DensityMatrix {
    /// Builds `ρ = |ψ⟩⟨ψ|` from a pure state.
    pub fn from_pure(psi: &CVec) -> Self {
        let nb_qubits = psi.nb_qubits();
        DensityMatrix {
            mat: CMat::outer(psi, psi),
            nb_qubits,
        }
    }

    /// Builds a mixture `Σ p_i |ψ_i⟩⟨ψ_i|`. Probabilities need not be
    /// normalized; they are rescaled to sum to 1.
    pub fn from_mixture(states: &[(f64, CVec)]) -> Self {
        assert!(!states.is_empty(), "empty mixture");
        let nb_qubits = states[0].1.nb_qubits();
        let dim = 1usize << nb_qubits;
        let total: f64 = states.iter().map(|(p, _)| p).sum();
        assert!(total > 0.0, "mixture weights sum to zero");
        let mut m = CMat::zeros(dim, dim);
        for (p, psi) in states {
            assert_eq!(psi.len(), dim, "mixture state dimension mismatch");
            let proj = CMat::outer(psi, psi).scale(cr(p / total));
            m = &m + &proj;
        }
        DensityMatrix { mat: m, nb_qubits }
    }

    /// Wraps an existing matrix as a density matrix. Panics if the
    /// dimension is not a power of two; physical validity is *not* checked
    /// (tomography estimates can be slightly unphysical — exactly the
    /// situation of the paper's `ρ_est`).
    pub fn from_matrix(mat: CMat) -> Self {
        assert!(mat.is_square(), "density matrix must be square");
        let dim = mat.rows();
        assert!(
            dim.is_power_of_two(),
            "density matrix dimension {dim} is not a power of two"
        );
        DensityMatrix {
            mat,
            nb_qubits: dim.trailing_zeros() as usize,
        }
    }

    /// The maximally mixed state `I / 2^n`.
    pub fn maximally_mixed(nb_qubits: usize) -> Self {
        let dim = 1usize << nb_qubits;
        DensityMatrix {
            mat: CMat::identity(dim).scale(cr(1.0 / dim as f64)),
            nb_qubits,
        }
    }

    /// Number of qubits.
    pub fn nb_qubits(&self) -> usize {
        self.nb_qubits
    }

    /// Hilbert-space dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.mat.rows()
    }

    /// Borrows the underlying matrix.
    pub fn matrix(&self) -> &CMat {
        &self.mat
    }

    /// Trace of `ρ` (1 for a physical state).
    pub fn trace(&self) -> C64 {
        self.mat.trace()
    }

    /// Purity `Tr(ρ²)`; 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        self.mat.matmul(&self.mat).trace().re
    }

    /// Checks physical validity: Hermitian, unit trace, PSD — all within
    /// `tol`.
    pub fn is_physical(&self, tol: f64) -> bool {
        if !self.mat.is_hermitian(tol) {
            return false;
        }
        if (self.trace().re - 1.0).abs() > tol || self.trace().im.abs() > tol {
            return false;
        }
        hermitian_eigenvalues(&self.mat).iter().all(|&l| l >= -tol)
    }

    /// Trace distance `D(ρ, σ) = ||ρ - σ||_1 / 2`, the paper's tomography
    /// quality metric.
    pub fn trace_distance(&self, other: &DensityMatrix) -> f64 {
        assert_eq!(self.dim(), other.dim(), "trace distance dimension mismatch");
        let diff = &self.mat - &other.mat;
        0.5 * hermitian_trace_norm(&diff)
    }

    /// Fidelity with a pure state: `F = ⟨ψ|ρ|ψ⟩`.
    pub fn fidelity_with_pure(&self, psi: &CVec) -> f64 {
        assert_eq!(self.dim(), psi.len(), "fidelity dimension mismatch");
        let rho_psi = self.mat.matvec(psi);
        psi.inner(&CVec(rho_psi)).re
    }

    /// Expectation value `Tr(ρ A)` of a Hermitian observable.
    pub fn expectation(&self, observable: &CMat) -> f64 {
        assert_eq!(self.dim(), observable.rows());
        self.mat.matmul(observable).trace().re
    }

    /// Partial trace keeping only `keep` qubits (indices in the original
    /// register, qubit 0 = most significant). The kept qubits appear in the
    /// result in ascending original order.
    pub fn partial_trace_keep(&self, keep: &[usize]) -> DensityMatrix {
        let n = self.nb_qubits;
        let mut keep_sorted: Vec<usize> = keep.to_vec();
        keep_sorted.sort_unstable();
        keep_sorted.dedup();
        assert!(
            keep_sorted.iter().all(|&q| q < n),
            "partial trace: qubit index out of range"
        );
        let traced: Vec<usize> = (0..n).filter(|q| !keep_sorted.contains(q)).collect();
        let k = keep_sorted.len();
        let kd = 1usize << k;
        let td = 1usize << traced.len();

        let mut out = CMat::zeros(kd, kd);
        for r in 0..kd {
            for c in 0..kd {
                let mut acc = C64::new(0.0, 0.0);
                for t in 0..td {
                    // assemble the full-register indices that share the
                    // traced-qubit pattern t
                    let mut i = bits::scatter_bits(0, r, &keep_sorted, n);
                    i = bits::scatter_bits(i, t, &traced, n);
                    let mut j = bits::scatter_bits(0, c, &keep_sorted, n);
                    j = bits::scatter_bits(j, t, &traced, n);
                    acc += self.mat[(i, j)];
                }
                out[(r, c)] = acc;
            }
        }
        DensityMatrix {
            mat: out,
            nb_qubits: k,
        }
    }

    /// The reduced density matrix of one qubit of a **pure** state,
    /// computed directly from the state vector in `O(2^n)` — unlike
    /// [`partial_trace_keep`](Self::partial_trace_keep), no `2^n x 2^n`
    /// matrix is ever formed, so this works on large registers.
    pub fn single_qubit_from_pure(psi: &CVec, qubit: usize) -> DensityMatrix {
        let n = psi.nb_qubits();
        assert!(qubit < n);
        let s = bits::qubit_shift(qubit, n);
        let mut r00 = C64::new(0.0, 0.0);
        let mut r01 = C64::new(0.0, 0.0);
        let mut r11 = C64::new(0.0, 0.0);
        for k in 0..(psi.len() >> 1) {
            let i0 = bits::insert_bit(k, s);
            let i1 = i0 | (1 << s);
            let (a, b) = (psi[i0], psi[i1]);
            r00 += a * a.conj();
            r11 += b * b.conj();
            r01 += a * b.conj();
        }
        let mut m = CMat::zeros(2, 2);
        m[(0, 0)] = r00;
        m[(0, 1)] = r01;
        m[(1, 0)] = r01.conj();
        m[(1, 1)] = r11;
        DensityMatrix {
            mat: m,
            nb_qubits: 1,
        }
    }

    /// Bloch vector `(⟨X⟩, ⟨Y⟩, ⟨Z⟩)` of a single-qubit state.
    pub fn bloch_vector(&self) -> (f64, f64, f64) {
        assert_eq!(self.nb_qubits, 1, "bloch_vector requires a 1-qubit state");
        let x = 2.0 * self.mat[(0, 1)].re;
        let y = -2.0 * self.mat[(0, 1)].im;
        let z = self.mat[(0, 0)].re - self.mat[(1, 1)].re;
        (x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{c, cr};

    const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    fn paper_v() -> CVec {
        // |v> = (1/sqrt2, i/sqrt2), the state used throughout the paper
        CVec(vec![cr(INV_SQRT2), c(0.0, INV_SQRT2)])
    }

    #[test]
    fn pure_state_density_matrix_of_paper_v() {
        let rho = DensityMatrix::from_pure(&paper_v());
        // paper Sec. 5.2: rho_v = [[0.5, -0.5i], [0.5i, 0.5]]
        assert!((rho.matrix()[(0, 0)].re - 0.5).abs() < 1e-15);
        assert!((rho.matrix()[(0, 1)].im + 0.5).abs() < 1e-15);
        assert!((rho.matrix()[(1, 0)].im - 0.5).abs() < 1e-15);
        assert!((rho.matrix()[(1, 1)].re - 0.5).abs() < 1e-15);
        assert!(rho.is_physical(1e-12));
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_estimated_density_matrix_trace_distance() {
        // the concrete rho_est from paper Sec. 5.2 and its distance 0.006
        let rho = DensityMatrix::from_pure(&paper_v());
        let est = DensityMatrix::from_matrix(CMat::mat2(
            cr(0.494),
            c(0.029, -0.5),
            c(0.029, 0.5),
            cr(0.506),
        ));
        let d = rho.trace_distance(&est);
        // eigenvalues of the difference: ±sqrt(0.006² + 0.029²) ≈ ±0.0296,
        // so D ≈ 0.0296; the paper's 0.006 rounds the S-coefficients first.
        // We check our metric against the exact closed form for 2x2:
        let expected = (0.006f64.powi(2) + 0.029f64.powi(2)).sqrt();
        assert!((d - expected).abs() < 1e-12);
    }

    #[test]
    fn maximally_mixed_properties() {
        let mm = DensityMatrix::maximally_mixed(2);
        assert!(mm.is_physical(1e-12));
        assert!((mm.purity() - 0.25).abs() < 1e-12);
        assert!((mm.trace().re - 1.0).abs() < 1e-15);
    }

    #[test]
    fn mixture_of_orthogonal_states() {
        let zero = CVec::basis_state(2, 0);
        let one = CVec::basis_state(2, 1);
        let rho = DensityMatrix::from_mixture(&[(0.5, zero), (0.5, one)]);
        assert!(rho
            .matrix()
            .approx_eq(&CMat::identity(2).scale(cr(0.5)), 1e-15));
    }

    #[test]
    fn trace_distance_extremes() {
        let zero = DensityMatrix::from_pure(&CVec::basis_state(2, 0));
        let one = DensityMatrix::from_pure(&CVec::basis_state(2, 1));
        assert!((zero.trace_distance(&one) - 1.0).abs() < 1e-12);
        assert!(zero.trace_distance(&zero).abs() < 1e-12);
    }

    #[test]
    fn partial_trace_of_product_state() {
        // |v> ⊗ |0>: tracing out qubit 1 gives rho_v.
        let psi = paper_v().kron(&CVec::basis_state(2, 0));
        let rho = DensityMatrix::from_pure(&psi);
        let red = rho.partial_trace_keep(&[0]);
        let expect = DensityMatrix::from_pure(&paper_v());
        assert!(red.matrix().approx_eq(expect.matrix(), 1e-14));
    }

    #[test]
    fn partial_trace_of_bell_state_is_maximally_mixed() {
        let bell = CVec(vec![cr(INV_SQRT2), cr(0.0), cr(0.0), cr(INV_SQRT2)]);
        let rho = DensityMatrix::from_pure(&bell);
        for q in 0..2 {
            let red = rho.partial_trace_keep(&[q]);
            assert!(red
                .matrix()
                .approx_eq(DensityMatrix::maximally_mixed(1).matrix(), 1e-14));
        }
    }

    #[test]
    fn partial_trace_preserves_trace() {
        let psi = CVec(vec![cr(0.5), cr(0.5), c(0.0, 0.5), c(0.5, 0.0)]);
        let rho = DensityMatrix::from_pure(&psi.normalized());
        let red = rho.partial_trace_keep(&[1]);
        assert!((red.trace().re - 1.0).abs() < 1e-14);
        assert!(red.is_physical(1e-12));
    }

    #[test]
    fn single_qubit_reduction_matches_partial_trace() {
        let psi = CVec(vec![cr(0.5), c(0.0, 0.5), cr(0.5), c(0.5, 0.0)]).normalized();
        let rho = DensityMatrix::from_pure(&psi);
        for q in 0..2 {
            let fast = DensityMatrix::single_qubit_from_pure(&psi, q);
            let slow = rho.partial_trace_keep(&[q]);
            assert!(fast.matrix().approx_eq(slow.matrix(), 1e-14));
        }
    }

    #[test]
    fn single_qubit_reduction_of_entangled_state_is_mixed() {
        let bell = CVec(vec![cr(INV_SQRT2), cr(0.0), cr(0.0), cr(INV_SQRT2)]);
        let red = DensityMatrix::single_qubit_from_pure(&bell, 1);
        assert!((red.purity() - 0.5).abs() < 1e-14);
    }

    #[test]
    fn bloch_vector_of_paper_v_points_along_y() {
        let rho = DensityMatrix::from_pure(&paper_v());
        let (x, y, z) = rho.bloch_vector();
        assert!(x.abs() < 1e-14);
        assert!((y - 1.0).abs() < 1e-14);
        assert!(z.abs() < 1e-14);
    }

    #[test]
    fn expectation_values_match_probabilities() {
        let rho = DensityMatrix::from_pure(&paper_v());
        let z = CMat::mat2(cr(1.0), cr(0.0), cr(0.0), cr(-1.0));
        // <Z> = P(0) - P(1) = 0 for |v>
        assert!(rho.expectation(&z).abs() < 1e-14);
    }

    #[test]
    fn fidelity_with_pure() {
        let rho = DensityMatrix::from_pure(&paper_v());
        assert!((rho.fidelity_with_pure(&paper_v()) - 1.0).abs() < 1e-14);
        let orth = CVec(vec![cr(INV_SQRT2), c(0.0, -INV_SQRT2)]);
        assert!(rho.fidelity_with_pure(&orth).abs() < 1e-14);
    }
}
