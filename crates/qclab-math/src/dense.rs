//! Dense complex matrices.
//!
//! [`CMat`] is a row-major dense matrix over [`C64`]. It provides exactly
//! the operations the rest of the workspace needs — products, adjoints,
//! Kronecker products, and structural predicates (unitary / Hermitian /
//! identity) — implemented directly so the numerical behaviour is fully
//! under our control, as the paper's "numerical stability" emphasis asks.

use crate::scalar::{approx_eq_c, c, cr, zero, C64, DEFAULT_TOL};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major complex matrix.
#[derive(Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMat {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![zero(); rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = cr(1.0);
        }
        m
    }

    /// Builds a matrix from a closure mapping `(row, col)` to an entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for cl in 0..cols {
                data.push(f(r, cl));
            }
        }
        CMat { rows, cols, data }
    }

    /// Builds a matrix from nested row slices. Panics on ragged input.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        let r = rows.len();
        let cols = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows in CMat::from_rows");
            data.extend_from_slice(row);
        }
        CMat {
            rows: r,
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector. Panics if
    /// `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(data.len(), rows * cols, "CMat::from_vec size mismatch");
        CMat { rows, cols, data }
    }

    /// Builds a 2x2 matrix from entries in reading order.
    pub fn mat2(a: C64, b: C64, cc: C64, d: C64) -> Self {
        CMat::from_vec(2, 2, vec![a, b, cc, d])
    }

    /// Builds a square diagonal matrix from the given diagonal.
    pub fn diag(d: &[C64]) -> Self {
        let n = d.len();
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = d[i];
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutably borrow the flat row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Matrix product `self * rhs`. Panics on dimension mismatch.
    pub fn matmul(&self, rhs: &CMat) -> CMat {
        assert_eq!(
            self.cols, rhs.rows,
            "CMat::matmul dimension mismatch {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = CMat::zeros(self.rows, rhs.cols);
        // ikj loop order: the inner loop walks both `rhs` and `out` rows
        // contiguously, which is markedly faster than the naive ijk order.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == zero() {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`. Panics on dimension mismatch.
    pub fn matvec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(self.cols, v.len(), "CMat::matvec dimension mismatch");
        let mut out = vec![zero(); self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = zero();
            for (&a, &x) in row.iter().zip(v.iter()) {
                acc += a * x;
            }
            *o = acc;
        }
        out
    }

    /// Conjugate transpose (the dagger).
    pub fn dagger(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |r, cl| self[(cl, r)].conj())
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |r, cl| self[(cl, r)])
    }

    /// Elementwise complex conjugate.
    pub fn conj(&self) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: C64) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z * s).collect(),
        }
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMat) -> CMat {
        let rows = self.rows * rhs.rows;
        let cols = self.cols * rhs.cols;
        let mut out = CMat::zeros(rows, cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == zero() {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest absolute entry of `self - rhs`; the distance used by the
    /// structural predicates below.
    pub fn max_abs_diff(&self, rhs: &CMat) -> f64 {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| (a - b).norm())
            .fold(0.0, f64::max)
    }

    /// Entrywise approximate equality within `tol`.
    pub fn approx_eq(&self, rhs: &CMat, tol: f64) -> bool {
        self.rows == rhs.rows && self.cols == rhs.cols && self.max_abs_diff(rhs) <= tol
    }

    /// `true` if `self† self = I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.dagger()
            .matmul(self)
            .approx_eq(&CMat::identity(self.rows), tol)
    }

    /// `true` if `self = self†` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..=i {
                if !approx_eq_c(self[(i, j)], self[(j, i)].conj(), tol) {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if the matrix is the identity within `tol`.
    pub fn is_identity(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&CMat::identity(self.rows), tol)
    }

    /// `true` if the matrix is diagonal within `tol`.
    pub fn is_diagonal(&self, tol: f64) -> bool {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j && self[(i, j)].norm() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Returns column `j` as a vector.
    pub fn col(&self, j: usize) -> Vec<C64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns row `i` as a slice.
    pub fn row(&self, i: usize) -> &[C64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix power by repeated squaring (square matrices only).
    pub fn pow(&self, mut e: u32) -> CMat {
        assert!(self.is_square(), "pow of a non-square matrix");
        let mut base = self.clone();
        let mut acc = CMat::identity(self.rows);
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.matmul(&base);
            }
            e >>= 1;
            if e > 0 {
                base = base.matmul(&base);
            }
        }
        acc
    }

    /// Outer product `u v†` of two vectors, as a matrix.
    pub fn outer(u: &[C64], v: &[C64]) -> CMat {
        CMat::from_fn(u.len(), v.len(), |i, j| u[i] * v[j].conj())
    }

    /// Embeds `self` (a `d x d` matrix) into `I_left ⊗ self ⊗ I_right`.
    pub fn embed(&self, left_dim: usize, right_dim: usize) -> CMat {
        let il = CMat::identity(left_dim);
        let ir = CMat::identity(right_dim);
        il.kron(self).kron(&ir)
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = C64;
    #[inline]
    fn index(&self, (r, cl): (usize, usize)) -> &C64 {
        debug_assert!(r < self.rows && cl < self.cols);
        &self.data[r * self.cols + cl]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (r, cl): (usize, usize)) -> &mut C64 {
        debug_assert!(r < self.rows && cl < self.cols);
        &mut self.data[r * self.cols + cl]
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, rhs: &CMat) -> CMat {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, rhs: &CMat) -> CMat {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Neg for &CMat {
    type Output = CMat;
    fn neg(self) -> CMat {
        self.scale(c(-1.0, 0.0))
    }
}

impl Mul for &CMat {
    type Output = CMat;
    fn mul(self, rhs: &CMat) -> CMat {
        self.matmul(rhs)
    }
}

impl fmt::Debug for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                let z = self[(i, j)];
                write!(f, "{:+.4}{:+.4}i ", z.re, z.im)?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Convenience: checks unitarity with the default tolerance.
pub fn assert_unitary(m: &CMat) {
    assert!(
        m.is_unitary(DEFAULT_TOL.max(1e-10)),
        "matrix is not unitary: U†U deviates from I by {}",
        m.dagger().matmul(m).max_abs_diff(&CMat::identity(m.rows()))
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{c, cr};

    fn pauli_x() -> CMat {
        CMat::mat2(cr(0.0), cr(1.0), cr(1.0), cr(0.0))
    }

    fn pauli_y() -> CMat {
        CMat::mat2(cr(0.0), c(0.0, -1.0), c(0.0, 1.0), cr(0.0))
    }

    fn pauli_z() -> CMat {
        CMat::mat2(cr(1.0), cr(0.0), cr(0.0), cr(-1.0))
    }

    #[test]
    fn identity_is_identity() {
        assert!(CMat::identity(4).is_identity(0.0));
        assert!(CMat::identity(4).is_unitary(0.0));
        assert!(CMat::identity(4).is_diagonal(0.0));
    }

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        // XY = iZ
        assert!(x.matmul(&y).approx_eq(&z.scale(c(0.0, 1.0)), 1e-15));
        // X^2 = I
        assert!(x.matmul(&x).is_identity(1e-15));
        // anticommutation {X, Z} = 0
        let anti = &x.matmul(&z) + &z.matmul(&x);
        assert!(anti.approx_eq(&CMat::zeros(2, 2), 1e-15));
    }

    #[test]
    fn paulis_are_unitary_and_hermitian() {
        for m in [pauli_x(), pauli_y(), pauli_z()] {
            assert!(m.is_unitary(1e-15));
            assert!(m.is_hermitian(1e-15));
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = pauli_y();
        let v = vec![c(0.3, 0.1), c(-0.2, 0.7)];
        let mv = m.matvec(&v);
        let vm = CMat::from_vec(2, 1, v.clone());
        let prod = m.matmul(&vm);
        assert!(approx_eq_c(mv[0], prod[(0, 0)], 1e-15));
        assert!(approx_eq_c(mv[1], prod[(1, 0)], 1e-15));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let i2 = CMat::identity(2);
        let k = i2.kron(&x);
        assert_eq!(k.rows(), 4);
        assert_eq!(k.cols(), 4);
        // I ⊗ X = block diag(X, X)
        assert!(approx_eq_c(k[(0, 1)], cr(1.0), 0.0));
        assert!(approx_eq_c(k[(2, 3)], cr(1.0), 0.0));
        assert!(approx_eq_c(k[(0, 3)], cr(0.0), 0.0));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let a = pauli_x();
        let b = pauli_y();
        let cm = pauli_z();
        let d = CMat::identity(2);
        let lhs = a.kron(&b).matmul(&cm.kron(&d));
        let rhs = a.matmul(&cm).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-14));
    }

    #[test]
    fn dagger_involution_and_product_rule() {
        let a = pauli_y();
        let b = pauli_x();
        assert!(a.dagger().dagger().approx_eq(&a, 0.0));
        // (AB)† = B†A†
        let lhs = a.matmul(&b).dagger();
        let rhs = b.dagger().matmul(&a.dagger());
        assert!(lhs.approx_eq(&rhs, 1e-15));
    }

    #[test]
    fn trace_and_frobenius() {
        let z = pauli_z();
        assert!(approx_eq_c(z.trace(), cr(0.0), 0.0));
        assert!((z.frobenius_norm() - 2f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn pow_repeated_squaring() {
        let x = pauli_x();
        assert!(x.pow(0).is_identity(0.0));
        assert!(x.pow(1).approx_eq(&x, 0.0));
        assert!(x.pow(2).is_identity(1e-15));
        assert!(x.pow(7).approx_eq(&x, 1e-15));
    }

    #[test]
    fn outer_product_projector() {
        let v = vec![cr(1.0 / 2f64.sqrt()), c(0.0, 1.0 / 2f64.sqrt())];
        let p = CMat::outer(&v, &v);
        // projector: P^2 = P, trace 1, Hermitian
        assert!(p.matmul(&p).approx_eq(&p, 1e-15));
        assert!(approx_eq_c(p.trace(), cr(1.0), 1e-15));
        assert!(p.is_hermitian(1e-15));
    }

    #[test]
    fn embed_matches_manual_kron() {
        let x = pauli_x();
        let e = x.embed(2, 4);
        assert_eq!(e.rows(), 16);
        let manual = CMat::identity(2).kron(&x).kron(&CMat::identity(4));
        assert!(e.approx_eq(&manual, 0.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = CMat::zeros(2, 3);
        let b = CMat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn operators_add_sub_neg() {
        let x = pauli_x();
        let z = pauli_z();
        let s = &x + &z;
        let d = &s - &z;
        assert!(d.approx_eq(&x, 1e-15));
        let n = -&x;
        assert!((&n + &x).approx_eq(&CMat::zeros(2, 2), 0.0));
    }
}
