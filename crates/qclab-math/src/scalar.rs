//! Complex scalar type and tolerance-aware comparisons.
//!
//! All of qclab works in double precision. The toolbox the paper describes
//! emphasizes numerical stability, so comparisons throughout the workspace
//! go through the helpers here rather than ad-hoc `==` on floats.

use num_complex::Complex64;

/// The complex scalar used throughout qclab (MATLAB `double` analog).
pub type C64 = Complex64;

/// Default absolute tolerance for floating-point comparisons.
///
/// Chosen as `1e-12`: far above the `f64` epsilon accumulated by the deepest
/// circuits exercised in the test suite, far below any physically meaningful
/// amplitude difference.
pub const DEFAULT_TOL: f64 = 1e-12;

/// Returns the imaginary unit `i`.
#[inline]
pub fn im() -> C64 {
    C64::new(0.0, 1.0)
}

/// Returns `1 + 0i`.
#[inline]
pub fn one() -> C64 {
    C64::new(1.0, 0.0)
}

/// Returns `0 + 0i`.
#[inline]
pub fn zero() -> C64 {
    C64::new(0.0, 0.0)
}

/// Shorthand constructor for a complex number from real and imaginary parts.
#[inline]
pub fn c(re: f64, im: f64) -> C64 {
    C64::new(re, im)
}

/// Shorthand constructor for a purely real complex number.
#[inline]
pub fn cr(re: f64) -> C64 {
    C64::new(re, 0.0)
}

/// `exp(i theta)` — the unit phase factor used by rotation and phase gates.
#[inline]
pub fn cis(theta: f64) -> C64 {
    C64::new(theta.cos(), theta.sin())
}

/// Absolute comparison of two real numbers within `tol`.
#[inline]
pub fn approx_eq_f(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Absolute comparison of two complex numbers within `tol` (per component).
#[inline]
pub fn approx_eq_c(a: C64, b: C64, tol: f64) -> bool {
    approx_eq_f(a.re, b.re, tol) && approx_eq_f(a.im, b.im, tol)
}

/// Rounds denormal noise to zero: any component with magnitude below `tol`
/// is clamped to exactly `0.0`.
///
/// This mirrors MATLAB-style "chop" output cleaning used when printing
/// state vectors, and keeps deterministic text output stable across
/// backends that accumulate rounding differently.
#[inline]
pub fn chop(a: C64, tol: f64) -> C64 {
    let re = if a.re.abs() < tol { 0.0 } else { a.re };
    let im = if a.im.abs() < tol { 0.0 } else { a.im };
    C64::new(re, im)
}

/// Formats a complex number the way MATLAB's command window does:
/// `0.7071 + 0.0000i`, with a fixed number of decimal places.
pub fn format_matlab(a: C64, decimals: usize) -> String {
    let sign = if a.im.is_sign_negative() { '-' } else { '+' };
    format!(
        "{:.*} {} {:.*}i",
        decimals,
        a.re,
        sign,
        decimals,
        a.im.abs()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cis_matches_euler() {
        let theta = 0.7342;
        let z = cis(theta);
        assert!(approx_eq_f(z.re, theta.cos(), 1e-15));
        assert!(approx_eq_f(z.im, theta.sin(), 1e-15));
        assert!(approx_eq_f(z.norm(), 1.0, 1e-15));
    }

    #[test]
    fn chop_clamps_small_components() {
        let z = chop(c(1e-14, 0.5), 1e-12);
        assert_eq!(z.re, 0.0);
        assert_eq!(z.im, 0.5);
    }

    #[test]
    fn chop_keeps_large_components() {
        let z = chop(c(0.3, -0.4), 1e-12);
        assert_eq!(z, c(0.3, -0.4));
    }

    #[test]
    fn approx_eq_c_componentwise() {
        assert!(approx_eq_c(c(1.0, 2.0), c(1.0 + 1e-13, 2.0 - 1e-13), 1e-12));
        assert!(!approx_eq_c(c(1.0, 2.0), c(1.0 + 1e-10, 2.0), 1e-12));
    }

    #[test]
    fn matlab_format_positive_and_negative_imag() {
        assert_eq!(
            format_matlab(c(std::f64::consts::FRAC_1_SQRT_2, 0.0), 4),
            "0.7071 + 0.0000i"
        );
        assert_eq!(format_matlab(c(0.0, -0.5), 4), "0.0000 - 0.5000i");
    }
}
