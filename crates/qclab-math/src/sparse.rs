//! Compressed-sparse-row complex matrices.
//!
//! QCLAB's MATLAB implementation applies a gate by building the **sparse**
//! extended unitary `I ⊗ U' ⊗ I` for the whole register and multiplying it
//! with the state vector (paper Sec. 3.2). [`CsrMat`] is that sparse
//! representation: the `kron` backend of `qclab-core` builds one per gate
//! and uses [`CsrMat::matvec`].

use crate::dense::CMat;
use crate::scalar::{zero, C64};

/// A complex matrix in compressed-sparse-row format.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMat {
    rows: usize,
    cols: usize,
    /// Row pointer array, length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Column index of each stored entry, ordered by row then column.
    col_idx: Vec<usize>,
    /// The stored values, aligned with `col_idx`.
    values: Vec<C64>,
}

impl CsrMat {
    /// Builds a CSR matrix from (row, col, value) triplets.
    ///
    /// Duplicate coordinates are summed; explicit zeros are dropped.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, C64)>,
    ) -> Self {
        let mut entries: Vec<(usize, usize, C64)> = triplets
            .into_iter()
            .inspect(|&(r, c, _)| {
                assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
            })
            .collect();
        entries.sort_by_key(|&(r, c, _)| (r, c));

        // merge consecutive duplicates, then build the row pointer array
        let mut merged: Vec<(usize, usize, C64)> = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            match merged.last_mut() {
                Some((lr, lc, lv)) if *lr == r && *lc == c => *lv += v,
                _ => merged.push((r, c, v)),
            }
        }

        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(merged.len());
        let mut values: Vec<C64> = Vec::with_capacity(merged.len());
        for (r, c, v) in merged {
            col_idx.push(c);
            values.push(v);
            row_ptr[r + 1] = col_idx.len();
        }
        for i in 1..row_ptr.len() {
            row_ptr[i] = row_ptr[i].max(row_ptr[i - 1]);
        }

        let mut m = CsrMat {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        };
        m.prune(0.0);
        m
    }

    /// The sparse identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        CsrMat {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![C64::new(1.0, 0.0); n],
        }
    }

    /// Converts a dense matrix to CSR, dropping entries with magnitude
    /// `<= drop_tol`.
    pub fn from_dense(m: &CMat, drop_tol: f64) -> Self {
        let mut trips = Vec::new();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let v = m[(r, c)];
                if v.norm() > drop_tol {
                    trips.push((r, c, v));
                }
            }
        }
        CsrMat::from_triplets(m.rows(), m.cols(), trips)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Removes stored entries with magnitude `<= tol`.
    pub fn prune(&mut self, tol: f64) {
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.values[k].norm() > tol {
                    col_idx.push(self.col_idx[k]);
                    values.push(self.values[k]);
                }
            }
            row_ptr[r + 1] = col_idx.len();
        }
        self.row_ptr = row_ptr;
        self.col_idx = col_idx;
        self.values = values;
    }

    /// Reads entry `(r, c)` (O(row nnz)).
    pub fn get(&self, r: usize, c: usize) -> C64 {
        assert!(r < self.rows && c < self.cols);
        for k in self.row_ptr[r]..self.row_ptr[r + 1] {
            if self.col_idx[k] == c {
                return self.values[k];
            }
        }
        zero()
    }

    /// Sparse matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(self.cols, v.len(), "CsrMat::matvec dimension mismatch");
        let mut out = vec![zero(); self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let mut acc = zero();
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * v[self.col_idx[k]];
            }
            *o = acc;
        }
        out
    }

    /// Sparse-sparse matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &CsrMat) -> CsrMat {
        assert_eq!(self.cols, rhs.rows, "CsrMat::matmul dimension mismatch");
        // classic Gustavson row-by-row product with a dense accumulator row
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut acc: Vec<C64> = vec![zero(); rhs.cols];
        let mut marked: Vec<bool> = vec![false; rhs.cols];
        let mut touched: Vec<usize> = Vec::new();

        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let a = self.values[k];
                let mid = self.col_idx[k];
                for kk in rhs.row_ptr[mid]..rhs.row_ptr[mid + 1] {
                    let c = rhs.col_idx[kk];
                    if !marked[c] {
                        marked[c] = true;
                        touched.push(c);
                    }
                    acc[c] += a * rhs.values[kk];
                }
            }
            touched.sort_unstable();
            for &c in touched.iter() {
                if acc[c] != zero() {
                    col_idx.push(c);
                    values.push(acc[c]);
                }
                acc[c] = zero();
                marked[c] = false;
            }
            touched.clear();
            row_ptr[r + 1] = col_idx.len();
        }

        CsrMat {
            rows: self.rows,
            cols: rhs.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Kronecker product `self ⊗ rhs` (stays sparse).
    pub fn kron(&self, rhs: &CsrMat) -> CsrMat {
        let rows = self.rows * rhs.rows;
        let cols = self.cols * rhs.cols;
        let nnz = self.nnz() * rhs.nnz();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for ra in 0..self.rows {
            for rb in 0..rhs.rows {
                for ka in self.row_ptr[ra]..self.row_ptr[ra + 1] {
                    let a = self.values[ka];
                    let ca = self.col_idx[ka];
                    for kb in rhs.row_ptr[rb]..rhs.row_ptr[rb + 1] {
                        col_idx.push(ca * rhs.cols + rhs.col_idx[kb]);
                        values.push(a * rhs.values[kb]);
                    }
                }
                row_ptr.push(col_idx.len());
            }
        }
        CsrMat {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> CsrMat {
        let mut trips = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                trips.push((self.col_idx[k], r, self.values[k].conj()));
            }
        }
        CsrMat::from_triplets(self.cols, self.rows, trips)
    }

    /// Densifies the matrix.
    pub fn to_dense(&self) -> CMat {
        let mut m = CMat::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                m[(r, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{c, cr};

    fn sparse_x() -> CsrMat {
        CsrMat::from_triplets(2, 2, [(0, 1, cr(1.0)), (1, 0, cr(1.0))])
    }

    fn sparse_z() -> CsrMat {
        CsrMat::from_triplets(2, 2, [(0, 0, cr(1.0)), (1, 1, cr(-1.0))])
    }

    #[test]
    fn triplets_build_and_get() {
        let m = sparse_x();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), cr(1.0));
        assert_eq!(m.get(0, 0), cr(0.0));
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let m = CsrMat::from_triplets(2, 2, [(0, 0, cr(1.0)), (0, 0, cr(2.0))]);
        assert_eq!(m.get(0, 0), cr(3.0));
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn zero_triplets_dropped() {
        let m = CsrMat::from_triplets(2, 2, [(0, 0, cr(0.0)), (1, 1, cr(2.0))]);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn identity_matvec_is_identity() {
        let i = CsrMat::identity(4);
        let v = vec![cr(1.0), c(0.0, 2.0), cr(3.0), cr(4.0)];
        assert_eq!(i.matvec(&v), v);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sparse_x().kron(&sparse_z());
        let d = m.to_dense();
        let v: Vec<C64> = (0..4).map(|i| c(i as f64, -(i as f64))).collect();
        let sv = m.matvec(&v);
        let dv = d.matvec(&v);
        for (a, b) in sv.iter().zip(dv.iter()) {
            assert!((a - b).norm() < 1e-15);
        }
    }

    #[test]
    fn sparse_matmul_matches_dense() {
        let a = sparse_x().kron(&CsrMat::identity(2));
        let b = CsrMat::identity(2).kron(&sparse_z());
        let prod = a.matmul(&b);
        let dense_prod = a.to_dense().matmul(&b.to_dense());
        assert!(prod.to_dense().approx_eq(&dense_prod, 1e-15));
    }

    #[test]
    fn kron_matches_dense_kron() {
        let a = sparse_x();
        let b = sparse_z();
        let k = a.kron(&b);
        let dk = a.to_dense().kron(&b.to_dense());
        assert!(k.to_dense().approx_eq(&dk, 0.0));
        assert_eq!(k.nnz(), 4);
    }

    #[test]
    fn dagger_matches_dense() {
        let m = CsrMat::from_triplets(2, 3, [(0, 2, c(1.0, 2.0)), (1, 0, c(0.0, -1.0))]);
        let d = m.dagger();
        assert_eq!(d.rows(), 3);
        assert_eq!(d.cols(), 2);
        assert!(d.to_dense().approx_eq(&m.to_dense().dagger(), 0.0));
    }

    #[test]
    fn from_dense_round_trip() {
        let d = CMat::mat2(cr(0.0), c(1.0, 1.0), cr(0.5), cr(0.0));
        let s = CsrMat::from_dense(&d, 0.0);
        assert_eq!(s.nnz(), 2);
        assert!(s.to_dense().approx_eq(&d, 0.0));
    }

    #[test]
    fn prune_removes_small_entries() {
        let mut m = CsrMat::from_triplets(2, 2, [(0, 0, cr(1e-15)), (1, 1, cr(1.0))]);
        m.prune(1e-12);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 1), cr(1.0));
    }

    #[test]
    fn unitarity_of_sparse_gate_product() {
        // (X ⊗ Z) is unitary: U† U = I.
        let u = sparse_x().kron(&sparse_z());
        let prod = u.dagger().matmul(&u);
        assert!(prod.to_dense().is_identity(1e-15));
    }
}
