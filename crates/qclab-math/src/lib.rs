//! # qclab-math
//!
//! Complex linear-algebra substrate for the `qclab` workspace.
//!
//! QCLAB, the MATLAB toolbox this workspace reproduces, leans on MATLAB's
//! built-in dense and sparse complex linear algebra. This crate provides the
//! equivalent foundation in pure Rust:
//!
//! * [`scalar`] — the `C64` complex scalar and tolerance-aware comparisons,
//! * [`dense`] — dense complex matrices ([`CMat`]) with the operations a
//!   state-vector simulator needs (products, adjoints, Kronecker products,
//!   unitarity checks),
//! * [`vector`] — complex vectors ([`CVec`]) used as quantum state vectors,
//! * [`sparse`] — compressed-sparse-row matrices ([`CsrMat`]) mirroring the
//!   sparse extended-unitary representation QCLAB builds for gate
//!   application,
//! * [`eig`] — a cyclic Jacobi eigensolver for Hermitian matrices,
//! * [`density`] — density matrices, trace distance and fidelity,
//! * [`bits`] — the bit-manipulation helpers QCLAB uses to index basis
//!   states during measurement and collapse.
//!
//! Everything here is deterministic and allocation-conscious; the simulator
//! hot paths in `qclab-core` build directly on these types.

pub mod bits;
pub mod dense;
pub mod density;
pub mod eig;
pub mod scalar;
pub mod sparse;
pub mod vector;

pub use dense::CMat;
pub use density::DensityMatrix;
pub use scalar::{approx_eq_c, approx_eq_f, C64, DEFAULT_TOL};
pub use sparse::CsrMat;
pub use vector::CVec;
