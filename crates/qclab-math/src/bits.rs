//! Bit-manipulation helpers for basis-state indexing.
//!
//! QCLAB indexes the `2^n`-dimensional state vector with the convention that
//! **qubit 0 is the most significant bit**: the paper builds
//! `initial_state = kron(v, bell)` with `v` living on qubit 0, which is
//! exactly this ordering. All index juggling for gate application,
//! measurement and collapse funnels through this module so the convention
//! lives in one place.

/// Returns the bit of qubit `q` inside basis-state index `i` of an
/// `n`-qubit register (qubit 0 = most significant).
#[inline]
pub fn qubit_bit(i: usize, q: usize, n: usize) -> usize {
    debug_assert!(q < n);
    (i >> (n - 1 - q)) & 1
}

/// The bit position (shift amount) of qubit `q` in an `n`-qubit index.
#[inline]
pub fn qubit_shift(q: usize, n: usize) -> usize {
    debug_assert!(q < n);
    n - 1 - q
}

/// Sets the bit of qubit `q` in index `i` to `bit` (0 or 1).
#[inline]
pub fn set_qubit_bit(i: usize, q: usize, n: usize, bit: usize) -> usize {
    debug_assert!(bit <= 1);
    let shift = qubit_shift(q, n);
    (i & !(1 << shift)) | (bit << shift)
}

/// Inserts a 0 bit at bit position `pos` (counting from the least
/// significant bit), shifting the higher bits left.
///
/// This is the standard trick for enumerating all indices with a fixed
/// value on one qubit: iterate `k` over `0..2^(n-1)` and insert the
/// qubit's bit at its position.
#[inline]
pub fn insert_bit(k: usize, pos: usize) -> usize {
    let low_mask = (1usize << pos) - 1;
    ((k & !low_mask) << 1) | (k & low_mask)
}

/// Extracts the bits of `i` at the given qubit positions (qubit order
/// preserved, first listed qubit becomes the most significant result bit).
pub fn gather_bits(i: usize, qubits: &[usize], n: usize) -> usize {
    let mut out = 0usize;
    for &q in qubits {
        out = (out << 1) | qubit_bit(i, q, n);
    }
    out
}

/// Scatters the bits of `sub` (first listed qubit = most significant bit of
/// `sub`) onto the qubit positions of `i`, leaving all other bits intact.
pub fn scatter_bits(i: usize, sub: usize, qubits: &[usize], n: usize) -> usize {
    let mut out = i;
    for (idx, &q) in qubits.iter().enumerate() {
        let bit = (sub >> (qubits.len() - 1 - idx)) & 1;
        out = set_qubit_bit(out, q, n, bit);
    }
    out
}

/// Maps basis-state index `i` through a qubit permutation: the bit that
/// lives on qubit `q` of `i` moves to qubit `perm[q]` of the result.
///
/// With `perm` read as a logical→physical map this converts a
/// *logical* basis index into the *physical* index of the same basis
/// state after qubit relabeling (see `qclab_core::program` — the
/// locality pass). The identity permutation is the identity map.
pub fn permute_index(i: usize, perm: &[usize], n: usize) -> usize {
    debug_assert_eq!(perm.len(), n);
    let mut out = 0usize;
    for (q, &p) in perm.iter().enumerate() {
        out |= qubit_bit(i, q, n) << qubit_shift(p, n);
    }
    out
}

/// Parses a bitstring like `"010"` (qubit 0 first) into a basis-state index.
///
/// Returns `None` if the string contains characters other than `'0'`/`'1'`.
pub fn bitstring_to_index(s: &str) -> Option<usize> {
    let mut i = 0usize;
    for ch in s.chars() {
        i = (i << 1)
            | match ch {
                '0' => 0,
                '1' => 1,
                _ => return None,
            };
    }
    Some(i)
}

/// Formats basis-state index `i` of an `n`-qubit register as a bitstring
/// with qubit 0 first, e.g. `index_to_bitstring(2, 2) == "10"`.
pub fn index_to_bitstring(i: usize, n: usize) -> String {
    (0..n)
        .map(|q| if qubit_bit(i, q, n) == 1 { '1' } else { '0' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit0_is_most_significant() {
        // |10> on 2 qubits = index 2: qubit 0 carries the 1.
        assert_eq!(qubit_bit(2, 0, 2), 1);
        assert_eq!(qubit_bit(2, 1, 2), 0);
    }

    #[test]
    fn set_bit_round_trips() {
        for n in 1..6 {
            for i in 0..(1usize << n) {
                for q in 0..n {
                    let b = qubit_bit(i, q, n);
                    assert_eq!(set_qubit_bit(i, q, n, b), i);
                    let flipped = set_qubit_bit(i, q, n, 1 - b);
                    assert_eq!(qubit_bit(flipped, q, n), 1 - b);
                    assert_eq!(set_qubit_bit(flipped, q, n, b), i);
                }
            }
        }
    }

    #[test]
    fn insert_bit_enumerates_zero_subspace() {
        // n = 3, qubit at bit position 1: indices with that bit zero are
        // 0,1,4,5.
        let got: Vec<usize> = (0..4).map(|k| insert_bit(k, 1)).collect();
        assert_eq!(got, vec![0, 1, 4, 5]);
    }

    #[test]
    fn insert_bit_at_zero_doubles() {
        let got: Vec<usize> = (0..4).map(|k| insert_bit(k, 0)).collect();
        assert_eq!(got, vec![0, 2, 4, 6]);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let n = 5;
        let qubits = [3, 0, 4];
        for i in 0..(1usize << n) {
            let sub = gather_bits(i, &qubits, n);
            assert_eq!(scatter_bits(i, sub, &qubits, n), i);
        }
    }

    #[test]
    fn scatter_overwrites_only_listed_qubits() {
        let n = 4;
        // start from all ones, write 00 onto qubits 1 and 2 -> |1001> = 9.
        let i = 0b1111;
        assert_eq!(scatter_bits(i, 0b00, &[1, 2], n), 0b1001);
    }

    #[test]
    fn permute_index_moves_qubit_bits() {
        let n = 3;
        // identity is a no-op
        for i in 0..(1usize << n) {
            assert_eq!(permute_index(i, &[0, 1, 2], n), i);
        }
        // rotate qubits 0->1->2->0: the bit on logical qubit q lands on
        // physical qubit perm[q]
        let perm = [1, 2, 0];
        for i in 0..(1usize << n) {
            let j = permute_index(i, &perm, n);
            for (q, &p) in perm.iter().enumerate() {
                assert_eq!(qubit_bit(j, p, n), qubit_bit(i, q, n));
            }
        }
        // permuting is a bijection
        let mut seen = vec![false; 1 << n];
        for i in 0..(1usize << n) {
            seen[permute_index(i, &perm, n)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn permute_index_inverse_round_trips() {
        let n = 4;
        let perm = [2, 0, 3, 1];
        let mut inv = [0usize; 4];
        for (q, &p) in perm.iter().enumerate() {
            inv[p] = q;
        }
        for i in 0..(1usize << n) {
            assert_eq!(permute_index(permute_index(i, &perm, n), &inv, n), i);
        }
    }

    #[test]
    fn bitstring_conversions() {
        assert_eq!(bitstring_to_index("00"), Some(0));
        assert_eq!(bitstring_to_index("10"), Some(2));
        assert_eq!(bitstring_to_index("11"), Some(3));
        assert_eq!(bitstring_to_index("1x"), None);
        assert_eq!(index_to_bitstring(2, 2), "10");
        assert_eq!(index_to_bitstring(5, 4), "0101");
    }

    #[test]
    fn bitstring_round_trip() {
        for n in 1..8 {
            for i in 0..(1usize << n) {
                let s = index_to_bitstring(i, n);
                assert_eq!(bitstring_to_index(&s), Some(i));
                assert_eq!(s.len(), n);
            }
        }
    }
}
