//! Hermitian eigensolver (cyclic complex Jacobi).
//!
//! Needed for the tomography experiment of the paper (trace distance between
//! density matrices requires the eigenvalues of a Hermitian difference) and
//! for validating density matrices (positive semi-definiteness).
//!
//! The solver is the classical cyclic Jacobi iteration extended to complex
//! Hermitian matrices: each off-diagonal entry `a_pq = r·e^{iφ}` is zeroed
//! by a unitary plane rotation `J = D·R` with `D = diag(1, e^{-iφ})`
//! (which makes the pivot real) followed by a real Givens rotation `R`.
//! Jacobi is slower than tridiagonalization-based methods but is famously
//! numerically robust and forgiving — the right trade-off for the small
//! matrices (≤ a few hundred) this workspace diagonalizes.

use crate::dense::CMat;
use crate::scalar::{cis, cr};

/// Result of a Hermitian eigendecomposition `A = V Λ V†`.
#[derive(Clone, Debug)]
pub struct HermitianEig {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: CMat,
}

/// Froebenius norm of the strictly off-diagonal part.
fn off_norm(a: &CMat) -> f64 {
    let n = a.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += a[(i, j)].norm_sqr();
            }
        }
    }
    s.sqrt()
}

/// Computes the full eigendecomposition of a Hermitian matrix.
///
/// Panics if `a` is not square; the Hermitian property is assumed (only the
/// Hermitian part of the input influences the result since updates keep the
/// working matrix Hermitian).
pub fn hermitian_eig(a: &CMat) -> HermitianEig {
    assert!(a.is_square(), "hermitian_eig requires a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = CMat::identity(n);

    if n <= 1 {
        return HermitianEig {
            values: (0..n).map(|i| m[(i, i)].re).collect(),
            vectors: v,
        };
    }

    let scale = a.frobenius_norm().max(1.0);
    let tol = 1e-14 * scale;
    const MAX_SWEEPS: usize = 100;

    for _ in 0..MAX_SWEEPS {
        if off_norm(&m) <= tol {
            break;
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = m[(p, q)];
                let r = apq.norm();
                if r <= tol / (n as f64) {
                    continue;
                }
                let phi = apq.im.atan2(apq.re);
                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;

                // real Jacobi rotation zeroing the (now real) pivot r
                let tau = (aqq - app) / (2.0 * r);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // J differs from I at the (p,q) block:
                //   J[p][p] = c          J[p][q] = s
                //   J[q][p] = -s·e^{-iφ} J[q][q] = c·e^{-iφ}
                let e_miphi = cis(-phi);
                let e_piphi = cis(phi);

                // column update  M <- M J
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = mkp * cr(c) - mkq * (cr(s) * e_miphi);
                    m[(k, q)] = mkp * cr(s) + mkq * (cr(c) * e_miphi);
                }
                // row update  M <- J† M
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = mpk * cr(c) - mqk * (cr(s) * e_piphi);
                    m[(q, k)] = mpk * cr(s) + mqk * (cr(c) * e_piphi);
                }
                // restore exact Hermitian structure on the pivot entries
                m[(p, q)] = cr(0.0);
                m[(q, p)] = cr(0.0);
                m[(p, p)] = cr(m[(p, p)].re);
                m[(q, q)] = cr(m[(q, q)].re);

                // accumulate eigenvectors  V <- V J
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = vkp * cr(c) - vkq * (cr(s) * e_miphi);
                    v[(k, q)] = vkp * cr(s) + vkq * (cr(c) * e_miphi);
                }
            }
        }
    }

    // sort ascending, permuting eigenvector columns alongside
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(i, i)].re.total_cmp(&m[(j, j)].re));
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)].re).collect();
    let vectors = CMat::from_fn(n, n, |r, cl| v[(r, order[cl])]);

    HermitianEig { values, vectors }
}

/// Eigenvalues only, ascending.
pub fn hermitian_eigenvalues(a: &CMat) -> Vec<f64> {
    hermitian_eig(a).values
}

/// The trace norm `||A||_1 = Σ |λ_i|` of a Hermitian matrix.
pub fn hermitian_trace_norm(a: &CMat) -> f64 {
    hermitian_eigenvalues(a).iter().map(|l| l.abs()).sum()
}

/// The unitary time-evolution operator `exp(−i·t·H)` of a Hermitian
/// matrix, computed through the eigendecomposition:
/// `V · diag(e^{−iλt}) · V†`.
pub fn hermitian_evolution(h: &CMat, t: f64) -> CMat {
    let e = hermitian_eig(h);
    let d: Vec<crate::scalar::C64> = e.values.iter().map(|&l| cis(-l * t)).collect();
    e.vectors
        .matmul(&CMat::diag(&d))
        .matmul(&e.vectors.dagger())
}

/// General Hermitian matrix function `f(H) = V · diag(f(λ)) · V†`.
pub fn hermitian_function(h: &CMat, f: impl Fn(f64) -> crate::scalar::C64) -> CMat {
    let e = hermitian_eig(h);
    let d: Vec<crate::scalar::C64> = e.values.iter().map(|&l| f(l)).collect();
    e.vectors
        .matmul(&CMat::diag(&d))
        .matmul(&e.vectors.dagger())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{c, cr, C64};

    fn reconstruct(e: &HermitianEig) -> CMat {
        let lambda = CMat::diag(&e.values.iter().map(|&l| cr(l)).collect::<Vec<C64>>());
        e.vectors.matmul(&lambda).matmul(&e.vectors.dagger())
    }

    #[test]
    fn pauli_x_eigenvalues() {
        let x = CMat::mat2(cr(0.0), cr(1.0), cr(1.0), cr(0.0));
        let e = hermitian_eig(&x);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!(e.vectors.is_unitary(1e-12));
        assert!(reconstruct(&e).approx_eq(&x, 1e-12));
    }

    #[test]
    fn pauli_y_complex_pivot() {
        let y = CMat::mat2(cr(0.0), c(0.0, -1.0), c(0.0, 1.0), cr(0.0));
        let e = hermitian_eig(&y);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!(reconstruct(&e).approx_eq(&y, 1e-12));
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let d = CMat::diag(&[cr(-2.0), cr(0.5), cr(3.0)]);
        let e = hermitian_eig(&d);
        assert!((e.values[0] + 2.0).abs() < 1e-14);
        assert!((e.values[1] - 0.5).abs() < 1e-14);
        assert!((e.values[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn random_hermitian_reconstruction() {
        // deterministic pseudo-random Hermitian matrix
        let n = 6;
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut rnd = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        let mut a = CMat::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = cr(rnd());
            for j in 0..i {
                let z = c(rnd(), rnd());
                a[(i, j)] = z;
                a[(j, i)] = z.conj();
            }
        }
        let e = hermitian_eig(&a);
        assert!(e.vectors.is_unitary(1e-10));
        assert!(reconstruct(&e).approx_eq(&a, 1e-10));
        // eigenvalues ascending
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // trace preserved
        let tr: f64 = e.values.iter().sum();
        assert!((tr - a.trace().re).abs() < 1e-10);
    }

    #[test]
    fn trace_norm_of_difference() {
        // rho - sigma for two pure qubit states has eigenvalues ±d.
        let v = [cr(1.0), cr(0.0)];
        let w = [cr(0.0), cr(1.0)];
        let rho = CMat::outer(&v, &v);
        let sigma = CMat::outer(&w, &w);
        let diff = &rho - &sigma;
        // orthogonal states: trace distance 1 => trace norm 2
        assert!((hermitian_trace_norm(&diff) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn evolution_of_pauli_x_is_rx() {
        // exp(-i θ/2 X) must equal the RX(θ) rotation matrix
        let x = CMat::mat2(cr(0.0), cr(1.0), cr(1.0), cr(0.0));
        let theta = 0.83;
        let u = hermitian_evolution(&x, theta / 2.0);
        let (co, si) = ((theta / 2.0).cos(), (theta / 2.0).sin());
        let rx = CMat::mat2(cr(co), c(0.0, -si), c(0.0, -si), cr(co));
        assert!(u.approx_eq(&rx, 1e-12));
        assert!(u.is_unitary(1e-12));
    }

    #[test]
    fn evolution_composes_additively() {
        let h = CMat::mat2(cr(1.0), c(0.2, -0.4), c(0.2, 0.4), cr(-0.5));
        let u1 = hermitian_evolution(&h, 0.3);
        let u2 = hermitian_evolution(&h, 0.7);
        let u = hermitian_evolution(&h, 1.0);
        assert!(u2.matmul(&u1).approx_eq(&u, 1e-11));
    }

    #[test]
    fn hermitian_function_sqrt() {
        // f(H) = H² recovered through the eigenbasis
        let h = CMat::mat2(cr(2.0), c(0.5, 0.1), c(0.5, -0.1), cr(1.0));
        let sq = hermitian_function(&h, |l| cr(l * l));
        assert!(sq.approx_eq(&h.matmul(&h), 1e-11));
    }

    #[test]
    fn eigenvectors_satisfy_eigen_equation() {
        let y = CMat::mat2(cr(2.0), c(0.3, -0.4), c(0.3, 0.4), cr(-1.0));
        let e = hermitian_eig(&y);
        for k in 0..2 {
            let vk = e.vectors.col(k);
            let av = y.matvec(&vk);
            for i in 0..2 {
                let lv = vk[i] * cr(e.values[k]);
                assert!((av[i] - lv).norm() < 1e-12);
            }
        }
    }
}
