//! `qclab serve` — the CLI front end of the multi-tenant scheduler
//! ([`qclab_core::service`]).
//!
//! Jobs arrive as newline-delimited JSON on stdin (or on a Unix socket
//! with `--socket PATH`), and per-job results stream back one JSON line
//! each, in completion order. The wire contract:
//!
//! Request lines:
//!
//! ```json
//! {"id":"j1","qasm":"OPENQASM 2.0; ...","shots":1000,"seed":7}
//! {"id":"j2","file":"bell.qasm","shots":500,"seed":1,"timeout_ms":2000}
//! {"cancel":"j1"}
//! ```
//!
//! `qasm` (inline source) and `file` (path) are alternatives; `seed`
//! defaults to 1, `timeout_ms` is optional. A `cancel` line aborts the
//! named job: still-queued jobs resolve immediately with
//! `error.kind = "cancelled"`, running jobs stop at the next control
//! check and keep their completed shots as a partial result.
//!
//! Response lines:
//!
//! ```json
//! {"id":"j1","ok":true,"shots":1000,"requested_shots":1000,
//!  "path":"alias-sampled (prefix 3 ops)","injected_errors":0,
//!  "counts":{"00":493,"11":507},
//!  "telemetry":{"queue_ms":0.4,"run_ms":2.1,"wall_ms":2.5,
//!               "dedup_hit":true,"coalesced":3}}
//! {"id":"j2","ok":false,
//!  "error":{"kind":"timeout","code":7,"message":"stopped after 210 of 500 shots"},
//!  "partial":{ ...same shape as a success result... }}
//! ```
//!
//! `error.kind`/`error.code` mirror the CLI exit-code contract
//! (2 usage, 3 io, 4 qasm-parse, 5 simulation, 6 resource, 7
//! timeout/cancelled): a bad job resolves with an error line — it never
//! kills the server or any other tenant's job.

use crate::{json_escape, CliError, EngineOpts, EXIT_IO, EXIT_USAGE};
use qclab_core::service::{
    ErrorKind, JobHandle, JobOutput, JobResult, JobSpec, Scheduler, ServiceConfig,
};
use qclab_core::sim::trajectory::TrajectoryConfig;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Parsed `serve` flags.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeOpts {
    pub workers: Option<usize>,
    pub queue_depth: usize,
    pub window_ms: u64,
    pub max_batch: usize,
    pub coalesce: bool,
    pub global_mem_mib: u64,
    pub socket: Option<String>,
    pub engine: EngineOpts,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            workers: None,
            queue_depth: 1024,
            window_ms: 1,
            max_batch: 64,
            coalesce: true,
            global_mem_mib: 8192,
            socket: None,
            engine: EngineOpts::default(),
        }
    }
}

impl ServeOpts {
    fn service_config(&self) -> ServiceConfig {
        let mut base = TrajectoryConfig {
            kernel: self.engine.kernel(),
            limits: self.engine.limits(),
            backend: self.engine.backend,
            frames: self.engine.frames,
            ..TrajectoryConfig::default()
        };
        if let Some(b) = self.engine.shot_batch {
            base.shot_batch = b;
        }
        // the worker pool is the parallelism; nested per-job threading
        // would oversubscribe it (and standalone replays for the
        // bit-identity contract use this same serial base)
        base.parallel = false;
        base.kernel.allow_parallel = false;
        let defaults = ServiceConfig::default();
        ServiceConfig {
            workers: self.workers.unwrap_or(defaults.workers),
            queue_depth: self.queue_depth,
            batch_window: Duration::from_millis(self.window_ms),
            max_batch: self.max_batch,
            coalesce: self.coalesce,
            global_state_bytes: self.global_mem_mib.saturating_mul(1 << 20),
            base,
        }
    }
}

// ---------------------------------------------------------------------
// minimal JSON
// ---------------------------------------------------------------------

/// A parsed JSON value. Hand-rolled: the job schema is a flat object of
/// strings and integers, and the workspace vendors no JSON crate.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Parses one JSON document (the whole input must be consumed).
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = JsonParser {
        b: src.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing characters at byte {}", p.i));
    }
    Ok(v)
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.i)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            // surrogate pairs are out of scope for the
                            // job schema; reject rather than mis-decode
                            let c = char::from_u32(code)
                                .ok_or(format!("\\u{code:04x} is not a scalar value"))?;
                            out.push(c);
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or(format!("invalid number at byte {start}"))
    }
}

// ---------------------------------------------------------------------
// result serialization
// ---------------------------------------------------------------------

/// The success-result JSON object (also the `partial` payload shape).
fn output_json(o: &JobOutput) -> String {
    let mut counts = String::new();
    for (i, (record, n)) in o.counts.iter().enumerate() {
        if i > 0 {
            counts.push(',');
        }
        counts.push_str(&format!("\"{}\":{n}", json_escape(record)));
    }
    let t = &o.telemetry;
    format!(
        "{{\"id\":\"{}\",\"ok\":true,\"shots\":{},\"requested_shots\":{},\
         \"path\":\"{}\",\"injected_errors\":{},\"counts\":{{{counts}}},\
         \"telemetry\":{{\"queue_ms\":{:.3},\"run_ms\":{:.3},\"wall_ms\":{:.3},\
         \"dedup_hit\":{},\"coalesced\":{}}}}}",
        json_escape(&o.id),
        o.shots,
        o.requested_shots,
        json_escape(&o.path),
        o.injected_errors,
        t.queue_ms,
        t.run_ms,
        t.wall_ms,
        t.dedup_hit,
        t.coalesced,
    )
}

/// One response line (no trailing newline) for a resolved job.
fn result_line(result: &JobResult) -> String {
    match result {
        Ok(o) => output_json(o),
        Err(e) => error_line(&e.id, e.kind, &e.message, e.partial.as_ref()),
    }
}

/// One error response line; `error.kind`/`error.code` follow the CLI
/// exit-code contract.
fn error_line(id: &str, kind: ErrorKind, message: &str, partial: Option<&JobOutput>) -> String {
    let partial = match partial {
        Some(p) => output_json(p),
        None => "null".into(),
    };
    format!(
        "{{\"id\":\"{}\",\"ok\":false,\"error\":{{\"kind\":\"{}\",\"code\":{},\
         \"message\":\"{}\"}},\"partial\":{partial}}}",
        json_escape(id),
        kind.wire_name(),
        kind.exit_code(),
        json_escape(message),
    )
}

// ---------------------------------------------------------------------
// the serve loop
// ---------------------------------------------------------------------

/// Decoded request line.
#[derive(Debug)]
enum Request {
    Submit(JobSpec),
    Cancel(String),
}

fn decode_request(line: &str) -> Result<Request, (String, ErrorKind, String)> {
    let fail = |id: &str, kind, msg: String| Err((id.to_string(), kind, msg));
    let doc = match parse_json(line) {
        Ok(d) => d,
        Err(e) => return fail("", ErrorKind::Io, format!("bad JSON job line: {e}")),
    };
    if let Some(target) = doc.get("cancel") {
        return match target.as_str() {
            Some(id) => Ok(Request::Cancel(id.to_string())),
            None => fail("", ErrorKind::Usage, "'cancel' must name a job id".into()),
        };
    }
    let id = match doc.get("id").and_then(Json::as_str) {
        Some(id) if !id.is_empty() => id.to_string(),
        _ => {
            return fail(
                "",
                ErrorKind::Usage,
                "job needs a non-empty string 'id'".into(),
            )
        }
    };
    let qasm = match (
        doc.get("qasm").and_then(Json::as_str),
        doc.get("file").and_then(Json::as_str),
    ) {
        (Some(src), None) => src.to_string(),
        (None, Some(path)) => match std::fs::read_to_string(path) {
            Ok(src) => src,
            Err(e) => return fail(&id, ErrorKind::Io, format!("cannot read {path}: {e}")),
        },
        (Some(_), Some(_)) => {
            return fail(
                &id,
                ErrorKind::Usage,
                "give either 'qasm' or 'file', not both".into(),
            )
        }
        (None, None) => {
            return fail(
                &id,
                ErrorKind::Usage,
                "job needs 'qasm' (inline source) or 'file' (path)".into(),
            )
        }
    };
    let circuit = match qclab_qasm::from_qasm(&qasm) {
        Ok(c) => c,
        Err(e) => return fail(&id, ErrorKind::classify(&e), e.to_string()),
    };
    let shots = match doc.get("shots").map(|v| v.as_u64()) {
        Some(Some(n)) => n,
        Some(None) => {
            return fail(
                &id,
                ErrorKind::Usage,
                "'shots' must be a non-negative integer".into(),
            )
        }
        None => return fail(&id, ErrorKind::Usage, "job needs integer 'shots'".into()),
    };
    let seed = match doc.get("seed").map(|v| v.as_u64()) {
        Some(Some(n)) => n,
        None => 1,
        Some(None) => {
            return fail(
                &id,
                ErrorKind::Usage,
                "'seed' must be a non-negative integer".into(),
            )
        }
    };
    let timeout_ms = match doc.get("timeout_ms").map(|v| v.as_u64()) {
        Some(Some(n)) => Some(n),
        None => None,
        Some(None) => {
            return fail(
                &id,
                ErrorKind::Usage,
                "'timeout_ms' must be a non-negative integer".into(),
            )
        }
    };
    let mut spec = JobSpec::new(id, circuit, shots, seed);
    spec.timeout_ms = timeout_ms;
    Ok(Request::Submit(spec))
}

/// Jobs whose results have not yet been collected, keyed by id.
type Pending = Arc<Mutex<HashMap<String, JobHandle>>>;

/// Polls pending handles and streams each resolved job as one JSON
/// line, until the reader signals end-of-input and the map drains.
fn collect_results(pending: &Pending, out: &Sender<String>, input_done: &Mutex<bool>) {
    loop {
        let mut finished: Vec<String> = Vec::new();
        let empty = {
            let mut map = pending.lock().unwrap();
            let done: Vec<String> = map
                .iter()
                .filter_map(|(id, h)| h.try_wait().map(|r| (id.clone(), r)))
                .map(|(id, r)| {
                    finished.push(result_line(&r));
                    id
                })
                .collect();
            for id in done {
                map.remove(&id);
            }
            map.is_empty()
        };
        for line in finished {
            if out.send(line).is_err() {
                return;
            }
        }
        if empty && *input_done.lock().unwrap() {
            return;
        }
        std::thread::sleep(Duration::from_micros(500));
    }
}

/// Reads request lines from `input`, submits jobs, and streams results
/// to `write`. Shared by stdin mode and each socket connection.
fn handle_stream(sched: &Scheduler, input: impl Read, write: Box<dyn Write + Send>) -> (u64, u64) {
    let pending: Pending = Arc::new(Mutex::new(HashMap::new()));
    let input_done = Arc::new(Mutex::new(false));
    let (tx, rx) = channel::<String>();
    let writer = {
        let mut write = write;
        std::thread::spawn(move || {
            // each line flushes: tenants block on results, not buffers
            for line in rx {
                if writeln!(write, "{line}")
                    .and_then(|_| write.flush())
                    .is_err()
                {
                    return;
                }
            }
        })
    };
    let collector = {
        let pending = Arc::clone(&pending);
        let tx = tx.clone();
        let input_done = Arc::clone(&input_done);
        std::thread::spawn(move || collect_results(&pending, &tx, &input_done))
    };
    let mut accepted = 0u64;
    let mut failed = 0u64;
    for line in BufReader::new(input).lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match decode_request(&line) {
            Err((id, kind, msg)) => {
                failed += 1;
                let _ = tx.send(error_line(&id, kind, &msg, None));
            }
            Ok(Request::Cancel(id)) => {
                let map = pending.lock().unwrap();
                match map.get(&id) {
                    Some(handle) => handle.cancel(),
                    None => {
                        let _ = tx.send(error_line(
                            &id,
                            ErrorKind::Usage,
                            "cancel target is not a pending job",
                            None,
                        ));
                    }
                }
            }
            Ok(Request::Submit(spec)) => {
                let mut map = pending.lock().unwrap();
                if map.contains_key(&spec.id) {
                    failed += 1;
                    let _ = tx.send(error_line(
                        &spec.id,
                        ErrorKind::Usage,
                        "a job with this id is already pending",
                        None,
                    ));
                    continue;
                }
                match sched.submit(spec) {
                    Ok(handle) => {
                        accepted += 1;
                        map.insert(handle.id.clone(), handle);
                    }
                    Err(e) => {
                        failed += 1;
                        let _ = tx.send(result_line(&Err(e)));
                    }
                }
            }
        }
    }
    *input_done.lock().unwrap() = true;
    let _ = collector.join();
    drop(tx);
    let _ = writer.join();
    (accepted, failed)
}

/// Runs `qclab serve`. Stdin mode processes jobs until EOF and returns
/// a human-readable summary (stderr-style, returned for main to print);
/// socket mode accepts connections until the process is terminated.
pub fn run_serve(opts: &ServeOpts) -> Result<String, CliError> {
    let sched = Scheduler::new(opts.service_config());
    match &opts.socket {
        None => {
            let stdin = std::io::stdin();
            let (accepted, failed) =
                handle_stream(&sched, stdin.lock(), Box::new(std::io::stdout()));
            let stats = sched.stats();
            sched.shutdown();
            Ok(format!(
                "serve: {accepted} job(s) accepted, {failed} refused; {} completed, {} cancelled, \
                 {} dedup hit(s), {} coalesced into {} group(s)\n",
                stats.completed,
                stats.cancelled,
                stats.dedup_hits,
                stats.coalesce_hits,
                stats.groups
            ))
        }
        Some(path) => {
            use std::os::unix::net::UnixListener;
            // a stale socket file from a previous run blocks bind
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path).map_err(|e| CliError {
                code: EXIT_IO,
                msg: format!("cannot bind socket {path}: {e}"),
                stdout: None,
            })?;
            let sched = Arc::new(sched);
            eprintln!("qclab serve: listening on {path}");
            for conn in listener.incoming() {
                let conn = conn.map_err(|e| CliError {
                    code: EXIT_IO,
                    msg: format!("accept failed on {path}: {e}"),
                    stdout: None,
                })?;
                let write = conn.try_clone().map_err(|e| CliError {
                    code: EXIT_IO,
                    msg: format!("cannot clone socket connection: {e}"),
                    stdout: None,
                })?;
                let sched = Arc::clone(&sched);
                std::thread::spawn(move || {
                    handle_stream(&sched, conn, Box::new(write));
                });
            }
            unreachable!("incoming() iterates forever");
        }
    }
}

/// Parses serve-specific flags out of the raw argument slice; returns
/// the remaining (engine-level) arguments for the common flag parser.
pub fn parse_serve_flags(args: &[String]) -> Result<(ServeOpts, Vec<String>), CliError> {
    let usage_err = |msg: String| CliError {
        code: EXIT_USAGE,
        msg: format!("{msg}\n{}", crate::usage()),
        stdout: None,
    };
    let mut opts = ServeOpts::default();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> Result<String, CliError> {
            it.next()
                .cloned()
                .ok_or_else(|| usage_err(format!("{a} requires a {what}")))
        };
        let parse_nonzero = |flag: &str, v: String| -> Result<u64, CliError> {
            let n: u64 = v
                .parse()
                .map_err(|_| usage_err(format!("{flag} value '{v}' is not an integer")))?;
            if n == 0 {
                return Err(usage_err(format!("{flag} must be at least 1")));
            }
            Ok(n)
        };
        match a.as_str() {
            "--workers" => {
                opts.workers = Some(parse_nonzero("--workers", value("count")?)? as usize)
            }
            "--queue-depth" => {
                opts.queue_depth = parse_nonzero("--queue-depth", value("count")?)? as usize
            }
            "--window-ms" => {
                let v = value("millisecond count")?;
                opts.window_ms = v
                    .parse()
                    .map_err(|_| usage_err(format!("--window-ms value '{v}' is not an integer")))?;
            }
            "--max-batch" => {
                opts.max_batch = parse_nonzero("--max-batch", value("count")?)? as usize
            }
            "--no-coalesce" => opts.coalesce = false,
            "--global-mem-mib" => {
                opts.global_mem_mib = parse_nonzero("--global-mem-mib", value("MiB count")?)?
            }
            "--socket" => opts.socket = Some(value("path")?),
            _ => rest.push(a.clone()),
        }
    }
    Ok((opts, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_round_trips_job_lines() {
        let doc = parse_json(
            r#"{"id":"j1","qasm":"OPENQASM 2.0;\nqreg q[1];","shots":100,"seed":7,"timeout_ms":null}"#,
        )
        .unwrap();
        assert_eq!(doc.get("id").unwrap().as_str(), Some("j1"));
        assert_eq!(
            doc.get("qasm").unwrap().as_str(),
            Some("OPENQASM 2.0;\nqreg q[1];")
        );
        assert_eq!(doc.get("shots").unwrap().as_u64(), Some(100));
        assert_eq!(doc.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(doc.get("timeout_ms"), Some(&Json::Null));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn json_parser_rejects_malformed_lines() {
        assert!(parse_json("{\"id\":").is_err());
        assert!(parse_json("{\"id\" \"x\"}").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("{\"n\":1e}").is_err());
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let doc = parse_json(r#"{"a":[1,2,{"b":"qA\"\n"}],"c":true,"d":-2.5}"#).unwrap();
        let Json::Arr(items) = doc.get("a").unwrap() else {
            panic!("expected array");
        };
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].get("b").unwrap().as_str(), Some("qA\"\n"));
        assert_eq!(doc.get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("d"), Some(&Json::Num(-2.5)));
        assert_eq!(doc.get("d").unwrap().as_u64(), None);
    }

    #[test]
    fn decode_request_classifies_errors_by_kind() {
        let bad_json = decode_request("{nope").unwrap_err();
        assert_eq!(bad_json.1, ErrorKind::Io);
        let no_id = decode_request(r#"{"qasm":"x","shots":1}"#).unwrap_err();
        assert_eq!(no_id.1, ErrorKind::Usage);
        let bad_qasm =
            decode_request(r#"{"id":"j","qasm":"this is not qasm","shots":1}"#).unwrap_err();
        assert_eq!(bad_qasm.1, ErrorKind::QasmParse);
        assert_eq!(bad_qasm.0, "j");
        let both = decode_request(r#"{"id":"j","qasm":"x","file":"y","shots":1}"#).unwrap_err();
        assert_eq!(both.1, ErrorKind::Usage);
    }

    #[test]
    fn decode_request_accepts_a_job() {
        let line = r#"{"id":"bell","qasm":"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\nmeasure q -> c;","shots":64,"seed":3,"timeout_ms":500}"#;
        match decode_request(line).unwrap() {
            Request::Submit(spec) => {
                assert_eq!(spec.id, "bell");
                assert_eq!(spec.shots, 64);
                assert_eq!(spec.seed, 3);
                assert_eq!(spec.timeout_ms, Some(500));
                assert_eq!(spec.circuit.nb_qubits(), 2);
            }
            Request::Cancel(_) => panic!("expected a submit"),
        }
        match decode_request(r#"{"cancel":"bell"}"#).unwrap() {
            Request::Cancel(id) => assert_eq!(id, "bell"),
            Request::Submit(_) => panic!("expected a cancel"),
        }
    }

    #[test]
    fn serve_flags_parse_and_pass_engine_flags_through() {
        let raw: Vec<String> = [
            "--workers",
            "4",
            "--queue-depth",
            "16",
            "--window-ms",
            "0",
            "--max-batch",
            "8",
            "--no-coalesce",
            "--global-mem-mib",
            "512",
            "--no-simd",
            "--max-qubits",
            "20",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (opts, rest) = parse_serve_flags(&raw).unwrap();
        assert_eq!(opts.workers, Some(4));
        assert_eq!(opts.queue_depth, 16);
        assert_eq!(opts.window_ms, 0);
        assert_eq!(opts.max_batch, 8);
        assert!(!opts.coalesce);
        assert_eq!(opts.global_mem_mib, 512);
        assert_eq!(rest, vec!["--no-simd", "--max-qubits", "20"]);
        assert!(parse_serve_flags(&["--workers".to_string(), "0".to_string()]).is_err());
        assert!(parse_serve_flags(&["--workers".to_string()]).is_err());
    }
}
