//! `qclab` — command-line front end for the toolbox.
//!
//! ```text
//! qclab draw     circuit.qasm              terminal rendering
//! qclab tex      circuit.qasm              quantikz LaTeX to stdout
//! qclab simulate circuit.qasm [BITSTRING]  branch results/probabilities
//! qclab counts   circuit.qasm SHOTS        sampled outcome frequencies
//! qclab sample   circuit.qasm SHOTS        trajectory sampling (noise!)
//! qclab compile  circuit.qasm              lowered op schedule + plan stats
//! qclab stats    circuit.qasm              gate/depth/measurement counts
//! ```
//!
//! Engine flags (position-independent after the command name):
//!
//! * `--no-fuse` — disable the gate-fusion pre-pass (`simulate`,
//!   `counts`, `sample`, `compile`),
//! * `--no-simd` — force the scalar kernels (`simulate`, `counts`,
//!   `sample`),
//! * `--no-remap` — disable the locality pass (logical→physical qubit
//!   remapping and the cache-blocked sweep), reproducing the pre-remap
//!   engine bit for bit (`simulate`, `counts`, `sample`, `compile`),
//! * `--max-qubits N` — refuse registers above `N` qubits instead of
//!   relying on the 4 GiB default memory cap (any command that
//!   simulates),
//! * `--backend auto|dense|sparse` — pick the state representation
//!   (`simulate`, `counts`, `sample`, `compile`). `dense` (the default)
//!   keeps today's state-vector engine, `sparse` pins the hashmap
//!   executor, and `auto` lets the compile-time support estimate route
//!   each program — opening low-entanglement registers the dense guard
//!   refuses (30+ qubits),
//! * `--seed N` — RNG seed for `counts` and `sample`,
//! * `--shots N` — alternative to the positional shot count,
//! * `--noise CH:P` / `--idle-noise CH:P` / `--measure-noise CH:P` —
//!   Pauli noise for `sample`, where `CH` is `bitflip`, `phaseflip` or
//!   `depolarizing` and `P` the error probability per location,
//! * `--no-fast-path` — force the plain per-shot trajectory engine for
//!   `sample` (disables deterministic-prefix forking and
//!   terminal-measurement alias sampling; results are drawn from the
//!   same distribution either way),
//! * `--no-frames` — disable the Pauli-frame sampler for `sample`
//!   (noisy Clifford circuits fall back to the state-vector trajectory
//!   engine; same distribution, different per-shot bits). For `compile`
//!   the flag changes the reported noisy shot path,
//! * `--no-bytecode` — execute the op schedule through the interpreter
//!   instead of the compiled bytecode stream (`simulate`, `counts`,
//!   `sample`); results are bit-identical either way,
//! * `--shot-batch N` — trajectory shot-batch width for `sample`
//!   (default 64): the noisy per-shot engine advances `N` shot states
//!   through one bytecode pass per batch instead of re-walking the
//!   schedule per shot. Results are independent of the batch width,
//! * `--timeout-ms N` — wall-clock deadline for the run (`simulate`,
//!   `counts`, `sample`). A run that exceeds it stops at the next op
//!   boundary and exits with code `7`; `sample` additionally prints the
//!   shots completed so far as a partial-result JSON document on stdout.
//!   `--timeout-ms 0` is rejected as a usage error: an already-expired
//!   deadline is a bad invocation, not a timeout.
//!
//! Errors go to stderr with a distinct exit code per failure class:
//! `2` usage, `3` I/O, `4` QASM parse, `5` simulation, `6` resource
//! limits, `7` timeout/cancellation (partial results may be printed).
//!
//! Mirrors the workflow of the paper: construct (or import) a circuit,
//! inspect it, simulate it, and sample repeated experiments.

mod serve;

use qclab_core::program::BackendRequest;
use qclab_core::sim::control::ExecutionControl;
use qclab_core::sim::guard::{ResourceLimits, SPARSE_ENTRY_BYTES};
use qclab_core::sim::kernel::KernelConfig;
use qclab_core::sim::trajectory::{
    run_trajectories, NoiseSpec, PauliChannel, TrajectoryConfig, TrajectoryResult,
};
use qclab_core::sim::{DispatchedSimulation, SimOptions};
use qclab_core::{QCircuit, QclabError};
use std::process::ExitCode;
use std::time::Duration;

/// Exit code for command-line misuse (bad flags, bad noise specs).
const EXIT_USAGE: u8 = 2;
/// Exit code for file-system failures.
const EXIT_IO: u8 = 3;
/// Exit code for OpenQASM parse/import failures.
const EXIT_PARSE: u8 = 4;
/// Exit code for simulation failures (bad state, bad observable, …).
const EXIT_SIM: u8 = 5;
/// Exit code for resource-limit refusals.
const EXIT_RESOURCE: u8 = 6;
/// Exit code for deadline/cancellation stops (`--timeout-ms`). Partial
/// results, when available, are printed on stdout before exiting.
const EXIT_TIMEOUT: u8 = 7;

/// A failure carrying its exit code; the message goes to stderr. A
/// timed-out run may also carry a partial-result document for stdout.
#[derive(Debug, PartialEq)]
struct CliError {
    code: u8,
    msg: String,
    stdout: Option<String>,
}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError {
        code: EXIT_USAGE,
        msg: format!("{}\n{}", msg.into(), usage()),
        stdout: None,
    }
}

impl From<QclabError> for CliError {
    fn from(e: QclabError) -> Self {
        let code = match &e {
            QclabError::QasmParse { .. } => EXIT_PARSE,
            QclabError::ResourceExhausted { .. } => EXIT_RESOURCE,
            QclabError::InvalidNoiseSpec(_) => EXIT_USAGE,
            QclabError::Cancelled(_) | QclabError::DeadlineExceeded(_) => EXIT_TIMEOUT,
            _ => EXIT_SIM,
        };
        CliError {
            code,
            msg: e.to_string(),
            stdout: None,
        }
    }
}

/// Engine options shared by the simulating commands.
#[derive(Clone, Copy, Debug, PartialEq)]
struct EngineOpts {
    fuse: bool,
    simd: bool,
    remap: bool,
    bytecode: bool,
    frames: bool,
    shot_batch: Option<usize>,
    max_qubits: Option<usize>,
    backend: BackendRequest,
    timeout_ms: Option<u64>,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            fuse: true,
            simd: true,
            remap: true,
            bytecode: true,
            frames: true,
            shot_batch: None,
            max_qubits: None,
            backend: BackendRequest::Dense,
            timeout_ms: None,
        }
    }
}

impl EngineOpts {
    fn kernel(&self) -> KernelConfig {
        KernelConfig {
            fuse: self.fuse,
            allow_simd: self.simd,
            remap: self.remap,
            bytecode: self.bytecode,
            ..KernelConfig::default()
        }
    }

    fn limits(&self) -> ResourceLimits {
        match self.max_qubits {
            Some(n) => ResourceLimits::with_max_qubits(n),
            None => ResourceLimits::default(),
        }
    }

    /// The deadline (if any) starts ticking here, at options
    /// construction — i.e. when the command begins executing.
    fn control(&self) -> ExecutionControl {
        match self.timeout_ms {
            Some(ms) => ExecutionControl::with_timeout(Duration::from_millis(ms)),
            None => ExecutionControl::none(),
        }
    }

    fn sim_opts(&self) -> SimOptions {
        SimOptions {
            kernel: self.kernel(),
            limits: self.limits(),
            control: self.control(),
            ..SimOptions::default()
        }
    }
}

/// A parsed command line.
#[derive(Debug, PartialEq)]
enum Command {
    Draw {
        path: String,
    },
    Tex {
        path: String,
    },
    Simulate {
        path: String,
        init: Option<String>,
        opts: EngineOpts,
    },
    Counts {
        path: String,
        shots: u64,
        seed: u64,
        opts: EngineOpts,
    },
    Sample {
        path: String,
        shots: u64,
        seed: u64,
        noise: NoiseSpec,
        fast_path: bool,
        opts: EngineOpts,
    },
    Compile {
        path: String,
        opts: EngineOpts,
    },
    Stats {
        path: String,
    },
    Serve {
        opts: serve::ServeOpts,
    },
}

fn usage() -> String {
    "usage:\n  qclab draw     <file.qasm>\n  qclab tex      <file.qasm>\n  \
     qclab simulate [flags] <file.qasm> [initial-bitstring]\n  \
     qclab counts   [flags] <file.qasm> <shots>\n  \
     qclab sample   [flags] <file.qasm> <shots>\n  \
     qclab compile  [flags] <file.qasm>\n  qclab stats    <file.qasm>\n  \
     qclab serve    [flags]\n\
     flags:\n  --no-fuse               disable gate fusion\n  \
     --no-simd               force scalar kernels\n  \
     --no-remap              disable the qubit-locality pass\n  \
     --no-bytecode           interpret the op schedule instead of compiled bytecode\n  \
     --shot-batch <n>        trajectory shot-batch width (sample; default 64)\n  \
     --max-qubits <n>        refuse larger registers\n  \
     --backend <b>           state representation: auto|dense|sparse (simulate/counts/sample/compile)\n  \
     --seed <n>              RNG seed (counts/sample)\n  \
     --shots <n>             shot count (counts/sample)\n  \
     --noise <ch:p>          after-gate noise (sample); ch = bitflip|phaseflip|depolarizing\n  \
     --idle-noise <ch:p>     idle-qubit noise (sample)\n  \
     --measure-noise <ch:p>  pre-measurement noise (sample)\n  \
     --no-fast-path          force the per-shot engine (sample)\n  \
     --no-frames             disable the Pauli-frame sampler (sample/compile)\n  \
     --timeout-ms <n>        wall-clock deadline; exit 7 with partial results (simulate/counts/sample)\n\
     serve flags (jobs are newline-delimited JSON on stdin or the socket):\n  \
     --workers <n>           worker threads (default: CPU count, capped at 16)\n  \
     --queue-depth <n>       max queued jobs; overflow is rejected (default 1024)\n  \
     --window-ms <n>         batching window for same-circuit coalescing (default 1)\n  \
     --max-batch <n>         max jobs coalesced into one run (default 64)\n  \
     --no-coalesce           run every job alone (plan-cache dedup still applies)\n  \
     --global-mem-mib <n>    admission budget for concurrent state memory (default 8192)\n  \
     --socket <path>         serve a Unix socket instead of stdin"
        .to_string()
}

/// Parses `bitflip:0.01`-style channel specs.
fn parse_channel(spec: &str) -> Result<PauliChannel, CliError> {
    let (name, prob) = spec
        .split_once(':')
        .ok_or_else(|| usage_err(format!("noise spec '{spec}' must look like 'bitflip:0.01'")))?;
    let p: f64 = prob
        .parse()
        .map_err(|_| usage_err(format!("noise probability '{prob}' is not a number")))?;
    let channel = match name {
        "bitflip" | "x" => PauliChannel::BitFlip(p),
        "phaseflip" | "z" => PauliChannel::PhaseFlip(p),
        "depolarizing" | "dep" => PauliChannel::Depolarizing(p),
        other => {
            return Err(usage_err(format!(
                "unknown noise channel '{other}' (expected bitflip, phaseflip or depolarizing)"
            )))
        }
    };
    channel.validate()?;
    Ok(channel)
}

/// Flag values accumulated while scanning the argument vector.
#[derive(Default)]
struct Flags {
    opts: EngineOpts,
    seed: Option<u64>,
    shots: Option<u64>,
    noise: NoiseSpec,
    no_fast_path: bool,
    used: Vec<&'static str>,
}

/// Parses the argument vector (without the program name). Flags may
/// appear anywhere after the command name; the remaining arguments are
/// positional.
fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let cmd = args
        .first()
        .ok_or_else(|| usage_err("missing command"))?
        .clone();
    // serve owns scheduler-level flags the other commands must not see;
    // peel them off first and run the common parser on the remainder
    let mut serve_opts = None;
    let tail: Vec<String>;
    let scan: &[String] = if cmd == "serve" {
        let (so, remaining) = serve::parse_serve_flags(&args[1..])?;
        serve_opts = Some(so);
        tail = remaining;
        &tail
    } else {
        &args[1..]
    };
    let mut flags = Flags::default();
    let mut rest: Vec<String> = Vec::new();
    let mut it = scan.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> Result<String, CliError> {
            it.next()
                .cloned()
                .ok_or_else(|| usage_err(format!("{a} requires a {what}")))
        };
        match a.as_str() {
            "--no-fuse" => {
                flags.opts.fuse = false;
                flags.used.push("--no-fuse");
            }
            "--no-simd" => {
                flags.opts.simd = false;
                flags.used.push("--no-simd");
            }
            "--no-remap" => {
                flags.opts.remap = false;
                flags.used.push("--no-remap");
            }
            "--no-bytecode" => {
                flags.opts.bytecode = false;
                flags.used.push("--no-bytecode");
            }
            "--shot-batch" => {
                let v = value("batch size")?;
                let b: usize = v.parse().map_err(|_| {
                    usage_err(format!("--shot-batch value '{v}' is not a batch size"))
                })?;
                if b == 0 {
                    return Err(usage_err("--shot-batch must be at least 1"));
                }
                flags.opts.shot_batch = Some(b);
                flags.used.push("--shot-batch");
            }
            "--max-qubits" => {
                let v = value("qubit count")?;
                flags.opts.max_qubits = Some(v.parse().map_err(|_| {
                    usage_err(format!("--max-qubits value '{v}' is not a qubit count"))
                })?);
                flags.used.push("--max-qubits");
            }
            "--backend" => {
                let v = value("backend name")?;
                flags.opts.backend = match v.as_str() {
                    "auto" => BackendRequest::Auto,
                    "dense" => BackendRequest::Dense,
                    "sparse" => BackendRequest::Sparse,
                    other => {
                        return Err(usage_err(format!(
                            "unknown backend '{other}' (expected auto, dense or sparse)"
                        )))
                    }
                };
                flags.used.push("--backend");
            }
            "--seed" => {
                let v = value("seed")?;
                flags.seed = Some(
                    v.parse()
                        .map_err(|_| usage_err(format!("--seed value '{v}' is not an integer")))?,
                );
                flags.used.push("--seed");
            }
            "--shots" => {
                let v = value("shot count")?;
                flags.shots =
                    Some(v.parse().map_err(|_| {
                        usage_err(format!("--shots value '{v}' is not an integer"))
                    })?);
                flags.used.push("--shots");
            }
            "--noise" => {
                flags.noise.after_gate = Some(parse_channel(&value("channel spec")?)?);
                flags.used.push("--noise");
            }
            "--idle-noise" => {
                flags.noise.idle = Some(parse_channel(&value("channel spec")?)?);
                flags.used.push("--idle-noise");
            }
            "--measure-noise" => {
                flags.noise.before_measure = Some(parse_channel(&value("channel spec")?)?);
                flags.used.push("--measure-noise");
            }
            "--no-fast-path" => {
                flags.no_fast_path = true;
                flags.used.push("--no-fast-path");
            }
            "--no-frames" => {
                flags.opts.frames = false;
                flags.used.push("--no-frames");
            }
            "--timeout-ms" => {
                let v = value("millisecond count")?;
                let ms: u64 = v.parse().map_err(|_| {
                    usage_err(format!(
                        "--timeout-ms value '{v}' is not a millisecond count"
                    ))
                })?;
                if ms == 0 {
                    // A zero deadline is already expired before the run
                    // starts; reporting it as a timeout (exit 7) would
                    // dress a bad invocation up as a partial result.
                    return Err(usage_err("--timeout-ms must be at least 1"));
                }
                flags.opts.timeout_ms = Some(ms);
                flags.used.push("--timeout-ms");
            }
            other if other.starts_with("--") => {
                return Err(usage_err(format!("unknown option '{other}'")));
            }
            _ => rest.push(a.clone()),
        }
    }

    // flag/command compatibility
    let allowed: &[&str] = match cmd.as_str() {
        "simulate" => &[
            "--no-fuse",
            "--no-simd",
            "--no-remap",
            "--no-bytecode",
            "--max-qubits",
            "--backend",
            "--timeout-ms",
        ],
        "counts" => &[
            "--no-fuse",
            "--no-simd",
            "--no-remap",
            "--no-bytecode",
            "--max-qubits",
            "--backend",
            "--seed",
            "--shots",
            "--timeout-ms",
        ],
        "sample" => &[
            "--no-fuse",
            "--no-simd",
            "--no-remap",
            "--no-bytecode",
            "--shot-batch",
            "--max-qubits",
            "--backend",
            "--seed",
            "--shots",
            "--noise",
            "--idle-noise",
            "--measure-noise",
            "--no-fast-path",
            "--no-frames",
            "--timeout-ms",
        ],
        "compile" => &[
            "--no-fuse",
            "--no-remap",
            "--max-qubits",
            "--backend",
            "--no-frames",
        ],
        "serve" => &[
            "--no-fuse",
            "--no-simd",
            "--no-remap",
            "--no-bytecode",
            "--no-frames",
            "--shot-batch",
            "--max-qubits",
            "--backend",
        ],
        _ => &[],
    };
    if let Some(bad) = flags.used.iter().find(|f| !allowed.contains(f)) {
        return Err(usage_err(format!("{bad} does not apply to '{cmd}'")));
    }

    if cmd == "serve" {
        if let Some(stray) = rest.first() {
            return Err(usage_err(format!(
                "serve takes no positional arguments (got '{stray}'); jobs arrive on stdin or --socket"
            )));
        }
        let mut opts = serve_opts.expect("serve pre-pass ran");
        opts.engine = flags.opts;
        return Ok(Command::Serve { opts });
    }

    let path = rest
        .first()
        .cloned()
        .ok_or_else(|| usage_err("missing .qasm file"))?;
    let shots_at = |idx: usize| -> Result<u64, CliError> {
        match (flags.shots, rest.get(idx)) {
            (Some(n), None) => Ok(n),
            (None, Some(s)) => s
                .parse()
                .map_err(|_| usage_err(format!("shot count '{s}' is not an integer"))),
            (Some(_), Some(_)) => Err(usage_err(
                "shot count given both positionally and via --shots",
            )),
            (None, None) => Err(usage_err("missing shot count")),
        }
    };
    match cmd.as_str() {
        "draw" => Ok(Command::Draw { path }),
        "tex" => Ok(Command::Tex { path }),
        "stats" => Ok(Command::Stats { path }),
        "simulate" => Ok(Command::Simulate {
            path,
            init: rest.get(1).cloned(),
            opts: flags.opts,
        }),
        "counts" => Ok(Command::Counts {
            path,
            shots: shots_at(1)?,
            seed: flags.seed.unwrap_or(1),
            opts: flags.opts,
        }),
        "sample" => Ok(Command::Sample {
            path,
            shots: shots_at(1)?,
            seed: flags.seed.unwrap_or(1),
            noise: flags.noise,
            fast_path: !flags.no_fast_path,
            opts: flags.opts,
        }),
        "compile" => Ok(Command::Compile {
            path,
            opts: flags.opts,
        }),
        other => Err(usage_err(format!("unknown command '{other}'"))),
    }
}

fn load(path: &str) -> Result<QCircuit, CliError> {
    let src = std::fs::read_to_string(path).map_err(|e| CliError {
        code: EXIT_IO,
        msg: format!("cannot read {path}: {e}"),
        stdout: None,
    })?;
    qclab_qasm::from_qasm(&src).map_err(|e| {
        let mut c = CliError::from(e);
        c.msg = format!("{path}: {}", c.msg);
        c
    })
}

fn simulate(circuit: &QCircuit, init: Option<&str>, opts: &EngineOpts) -> Result<String, CliError> {
    let zeros = "0".repeat(circuit.nb_qubits());
    let bits = init.unwrap_or(&zeros);
    let sim = circuit.simulate_bitstring_routed(bits, &opts.sim_opts(), opts.backend)?;
    let mut out = String::new();
    match &sim {
        DispatchedSimulation::Dense(sim) => {
            out.push_str(&format!(
                "simulated {} qubits from |{}>: {} branch(es)\n",
                circuit.nb_qubits(),
                bits,
                sim.branches().len()
            ));
        }
        DispatchedSimulation::Sparse(sim) => {
            out.push_str(&format!(
                "simulated {} qubits from |{}>: {} branch(es) (sparse backend, peak {} live entr{})\n",
                circuit.nb_qubits(),
                bits,
                sim.branches().len(),
                sim.peak_entries(),
                if sim.peak_entries() == 1 { "y" } else { "ies" }
            ));
        }
    }
    for (result, p) in sim.results().iter().zip(sim.probabilities()) {
        if result.is_empty() {
            out.push_str(&format!("  (no measurements)  p = {p:.6}\n"));
        } else {
            out.push_str(&format!("  '{result}'  p = {p:.6}\n"));
        }
    }
    Ok(out)
}

fn counts(
    circuit: &QCircuit,
    shots: u64,
    seed: u64,
    opts: &EngineOpts,
) -> Result<String, CliError> {
    let zeros = "0".repeat(circuit.nb_qubits());
    let sim = circuit.simulate_bitstring_routed(&zeros, &opts.sim_opts(), opts.backend)?;
    let mut out = if sim.is_sparse() {
        format!("counts over {shots} shots (seed {seed}, sparse backend):\n")
    } else {
        format!("counts over {shots} shots (seed {seed}):\n")
    };
    for (result, n) in sim.counts(shots, seed) {
        out.push_str(&format!("  '{result}': {n}\n"));
    }
    Ok(out)
}

fn sample(
    circuit: &QCircuit,
    shots: u64,
    seed: u64,
    noise: NoiseSpec,
    fast_path: bool,
    opts: &EngineOpts,
) -> Result<String, CliError> {
    let mut config = TrajectoryConfig {
        seed,
        shots,
        noise,
        kernel: opts.kernel(),
        limits: opts.limits(),
        fast_path,
        frames: opts.frames,
        backend: opts.backend,
        control: opts.control(),
        ..TrajectoryConfig::default()
    };
    if let Some(b) = opts.shot_batch {
        config.shot_batch = b;
    }
    let t_start = std::time::Instant::now();
    let result = run_trajectories(circuit, &config)?;
    let wall_ms = t_start.elapsed().as_secs_f64() * 1e3;
    if let Some(cause) = result.stop_cause() {
        return Err(CliError {
            code: EXIT_TIMEOUT,
            msg: format!(
                "sample stopped early ({cause}): {}/{} shots completed",
                result.shots(),
                result.requested_shots()
            ),
            stdout: Some(partial_json(&result, wall_ms)),
        });
    }
    let mut out = format!(
        "sampled {shots} trajectories (seed {seed}, {} injected error(s), path: {}):\n",
        result.injected_errors(),
        result.path()
    );
    for (record, n) in result.counts() {
        let label = if record.is_empty() {
            "(no measurements)".to_string()
        } else {
            format!("'{record}'")
        };
        out.push_str(&format!(
            "  {label}: {n}  ({:.4})\n",
            *n as f64 / shots.max(1) as f64
        ));
    }
    let stats = result.norm_stats();
    if stats.renormalizations > 0 {
        out.push_str(&format!(
            "norm watchdog: {} renormalization(s), max drift {:.3e}\n",
            stats.renormalizations, stats.max_drift
        ));
    }
    Ok(out)
}

/// Escapes a string for inclusion in a JSON document. Measurement
/// records are plain `0`/`1` strings today, but the contract should not
/// silently break if record labels ever grow richer.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a stopped trajectory run as the partial-result JSON document
/// printed on stdout alongside exit code 7. Counts cover the completed
/// shots only; the cause is `"cancelled"` or `"deadline exceeded"`;
/// `wall_ms` is the measured run time, so a caller juggling many
/// invocations gets the same timing telemetry `qclab serve` streams.
fn partial_json(result: &TrajectoryResult, wall_ms: f64) -> String {
    let cause = result
        .stop_cause()
        .map(|c| c.to_string())
        .unwrap_or_default();
    let mut out = format!(
        "{{\"partial\":true,\"cause\":\"{}\",\"shots_requested\":{},\"shots_completed\":{},\"wall_ms\":{:.3},\"counts\":{{",
        json_escape(&cause),
        result.requested_shots(),
        result.shots(),
        wall_ms
    );
    for (i, (record, n)) in result.counts().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{n}", json_escape(record)));
    }
    out.push_str("}}\n");
    out
}

/// Renders a byte count like `64 B` / `16.0 MiB`; `None` means the
/// register is too wide for a dense state vector at all.
fn fmt_bytes(bytes: Option<u128>) -> String {
    let Some(b) = bytes else {
        return "beyond addressable memory".to_string();
    };
    const UNITS: [&str; 4] = ["KiB", "MiB", "GiB", "TiB"];
    if b < 1024 {
        return format!("{b} B");
    }
    let mut value = b as f64 / 1024.0;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.1} {}", UNITS[unit])
}

/// `qclab compile`: lowers the circuit through the shared pipeline and
/// prints the plan — op counts before/after fusion, fences, the guard's
/// state-byte estimate, the sparse support bound, the backend the
/// requested routing resolves to, and the op schedule itself. The same
/// backend resolution the simulating commands perform gates the report
/// (exit 6), so "compiles here" means "would simulate here" under the
/// same `--backend` request.
fn compile_report(circuit: &QCircuit, opts: &EngineOpts) -> Result<String, CliError> {
    let kernel = opts.kernel();
    let program = circuit.compile_with(&qclab_core::PlanOptions::from(&kernel));
    let stats = program.stats();
    let choice = qclab_core::program::resolve_backend(
        opts.backend,
        stats,
        circuit.nb_qubits(),
        &opts.limits(),
    )?;
    let mut out = format!(
        "compiled {} qubits (fingerprint {:016x}, fusion {}, remap {}):\n",
        program.nb_qubits(),
        program.fingerprint(),
        if program.options().fuse { "on" } else { "off" },
        if program.options().remap { "on" } else { "off" },
    );
    out.push_str(&format!(
        "  gates:        {} -> {} ({} fused block(s))\n",
        stats.gates_in, stats.gates_out, stats.fused_blocks
    ));
    out.push_str(&format!(
        "  fences:       {}\n  measurements: {}\n  resets:       {}\n",
        stats.fences, stats.measurements, stats.resets
    ));
    out.push_str(&format!(
        "  state bytes:  {}\n",
        fmt_bytes(stats.state_bytes)
    ));
    out.push_str(&format!(
        "  sparse bound: {} live entr{} ({})\n",
        stats.sparse_entries,
        if stats.sparse_entries == 1 {
            "y"
        } else {
            "ies"
        },
        fmt_bytes(Some(
            stats.sparse_entries.saturating_mul(SPARSE_ENTRY_BYTES)
        ))
    ));
    out.push_str(&format!(
        "  backend:      {choice} (requested {})\n",
        opts.backend
    ));
    let plan = program.shot_plan();
    out.push_str(&format!(
        "  shot plan:    {} deterministic + {} stochastic op(s)\n",
        plan.prefix_ops, plan.suffix_ops
    ));
    out.push_str(&format!(
        "  terminal sampling: {}\n",
        if plan.terminal_measurements {
            format!(
                "eligible ({} measured qubit(s), noiseless runs sample the marginal)",
                plan.measured_qubits.len()
            )
        } else {
            "not eligible (suffix has gates, resets or re-measured qubits)".to_string()
        }
    ));
    // noisy sampling executes the unfused, unrelabeled stream (noise
    // locations live on the source gates), so the Clifford
    // classification and frame eligibility are taken from that plan,
    // not from the fused schedule printed below
    let noisy_plan = circuit.compile_with(&qclab_core::PlanOptions {
        fuse: false,
        remap: false,
        ..qclab_core::PlanOptions::from(&kernel)
    });
    out.push_str(&format!(
        "  clifford:     {}\n",
        if noisy_plan.stats().is_clifford {
            "yes (tableau-expressible)"
        } else {
            "no (contains non-Clifford gates)"
        }
    ));
    // the frame lowering is the authoritative eligibility check: it also
    // refuses custom measurement bases and permutation blocks
    let frame_ready = noisy_plan.frame_program().is_some();
    out.push_str(&format!(
        "  noisy shots:  {}\n",
        if !opts.frames {
            "per-shot trajectories (--no-frames)"
        } else if frame_ready {
            "pauli-frame sampler"
        } else {
            "per-shot trajectories (program is not frame-expressible)"
        }
    ));
    out.push_str(&format!(
        "  locality:     {} window(s) remapped, {} move(s), {} fold(s)\n",
        stats.remap_windows, stats.remap_moves, stats.remap_folds
    ));
    let cache = qclab_core::program::plan_cache_stats();
    out.push_str(&format!(
        "  plan cache:   {} hit(s), {} miss(es), {} entr{} resident\n",
        cache.hits,
        cache.misses,
        cache.entries,
        if cache.entries == 1 { "y" } else { "ies" }
    ));
    out.push_str("schedule:\n");
    for (i, op) in program.ops().iter().enumerate() {
        out.push_str(&format!("  {i:>4}  {op}\n"));
    }
    Ok(out)
}

fn stats(circuit: &QCircuit) -> String {
    format!(
        "qubits:       {}\ngates:        {}\nmeasurements: {}\ndepth:        {}\n",
        circuit.nb_qubits(),
        circuit.nb_gates(),
        circuit.nb_measurements(),
        circuit.depth()
    )
}

fn run(cmd: Command) -> Result<String, CliError> {
    // Fault-injection hook for the panic-containment path: the
    // integration suite sets this variable to prove a panic anywhere in
    // command dispatch becomes a clean exit code instead of an abort.
    if std::env::var_os("QCLAB_INJECT_PANIC").is_some() {
        panic!("injected panic for containment test");
    }
    match cmd {
        Command::Draw { path } => Ok(qclab_draw::draw_circuit(&load(&path)?)),
        Command::Tex { path } => Ok(qclab_draw::to_tex(&load(&path)?)),
        Command::Simulate { path, init, opts } => simulate(&load(&path)?, init.as_deref(), &opts),
        Command::Counts {
            path,
            shots,
            seed,
            opts,
        } => counts(&load(&path)?, shots, seed, &opts),
        Command::Sample {
            path,
            shots,
            seed,
            noise,
            fast_path,
            opts,
        } => sample(&load(&path)?, shots, seed, noise, fast_path, &opts),
        Command::Compile { path, opts } => compile_report(&load(&path)?, &opts),
        Command::Stats { path } => Ok(stats(&load(&path)?)),
        Command::Serve { opts } => serve::run_serve(&opts),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The default panic hook stays installed, so an unwinding thread
    // still prints its message (and a backtrace under RUST_BACKTRACE=1)
    // to stderr before we convert the panic into a clean exit code.
    match std::panic::catch_unwind(|| parse_args(&args).and_then(run)) {
        Ok(Ok(output)) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Ok(Err(e)) => {
            if let Some(payload) = &e.stdout {
                print!("{payload}");
            }
            eprintln!("qclab: {}", e.msg);
            ExitCode::from(e.code)
        }
        Err(_) => {
            eprintln!(
                "qclab: internal error: the command panicked. This is a bug — please report \
                 it with the command line and input circuit that triggered it (rerun with \
                 RUST_BACKTRACE=1 for a backtrace)."
            );
            ExitCode::from(EXIT_SIM)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_bell() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qclab_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bell.qasm");
        std::fs::write(
            &path,
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
             h q[0];\ncx q[0], q[1];\nmeasure q -> c;\n",
        )
        .unwrap();
        path
    }

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_all_commands() {
        assert_eq!(
            parse_args(&args(&["draw", "f.qasm"])).unwrap(),
            Command::Draw {
                path: "f.qasm".into()
            }
        );
        assert_eq!(
            parse_args(&args(&["counts", "f.qasm", "100", "--seed", "7"])).unwrap(),
            Command::Counts {
                path: "f.qasm".into(),
                shots: 100,
                seed: 7,
                opts: EngineOpts::default(),
            }
        );
        assert_eq!(
            parse_args(&args(&["simulate", "f.qasm", "01"])).unwrap(),
            Command::Simulate {
                path: "f.qasm".into(),
                init: Some("01".into()),
                opts: EngineOpts::default(),
            }
        );
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["bogus", "f.qasm"])).is_err());
        assert!(parse_args(&args(&["counts", "f.qasm"])).is_err());
        assert!(parse_args(&args(&["counts", "f.qasm", "x"])).is_err());
    }

    #[test]
    fn parse_engine_flags() {
        // flags are position-independent within simulate/counts/sample
        assert_eq!(
            parse_args(&args(&["simulate", "--no-fuse", "f.qasm"])).unwrap(),
            Command::Simulate {
                path: "f.qasm".into(),
                init: None,
                opts: EngineOpts {
                    fuse: false,
                    ..EngineOpts::default()
                },
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "counts",
                "f.qasm",
                "50",
                "--no-fuse",
                "--no-simd",
                "--max-qubits",
                "20"
            ]))
            .unwrap(),
            Command::Counts {
                path: "f.qasm".into(),
                shots: 50,
                seed: 1,
                opts: EngineOpts {
                    fuse: false,
                    simd: false,
                    max_qubits: Some(20),
                    ..EngineOpts::default()
                },
            }
        );
        // rejected where they have no meaning
        assert!(parse_args(&args(&["draw", "--no-fuse", "f.qasm"])).is_err());
        assert!(parse_args(&args(&["simulate", "--seed", "3", "f.qasm"])).is_err());
        // typo'd options are named in the error, not taken as file paths
        let e = parse_args(&args(&["simulate", "--nofuse", "f.qasm"])).unwrap_err();
        assert!(e.msg.contains("unknown option '--nofuse'"));
        assert_eq!(e.code, EXIT_USAGE);
        // flags that need a value fail cleanly without one
        assert!(parse_args(&args(&["counts", "f.qasm", "50", "--seed"])).is_err());
    }

    #[test]
    fn parse_sample_command_and_noise_specs() {
        let cmd = parse_args(&args(&[
            "sample",
            "f.qasm",
            "--shots",
            "500",
            "--seed",
            "9",
            "--noise",
            "depolarizing:0.01",
            "--measure-noise",
            "bitflip:0.05",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Sample {
                path: "f.qasm".into(),
                shots: 500,
                seed: 9,
                noise: NoiseSpec {
                    after_gate: Some(PauliChannel::Depolarizing(0.01)),
                    idle: None,
                    before_measure: Some(PauliChannel::BitFlip(0.05)),
                },
                fast_path: true,
                opts: EngineOpts::default(),
            }
        );
        // --no-fast-path forces the per-shot engine and is sample-only
        let cmd = parse_args(&args(&["sample", "f.qasm", "10", "--no-fast-path"])).unwrap();
        assert!(matches!(
            cmd,
            Command::Sample {
                fast_path: false,
                ..
            }
        ));
        assert!(parse_args(&args(&["counts", "f.qasm", "10", "--no-fast-path"])).is_err());
        // malformed specs are usage errors
        for bad in ["bitflip", "bitflip:x", "frob:0.1", "bitflip:1.5"] {
            let e = parse_args(&args(&["sample", "f.qasm", "10", "--noise", bad])).unwrap_err();
            assert_eq!(e.code, EXIT_USAGE, "spec '{bad}' should be a usage error");
        }
        // shots given twice is ambiguous
        assert!(parse_args(&args(&["sample", "f.qasm", "10", "--shots", "20"])).is_err());
    }

    #[test]
    fn end_to_end_draw_and_stats() {
        let path = write_bell();
        let p = path.to_str().unwrap().to_string();
        let art = run(Command::Draw { path: p.clone() }).unwrap();
        assert!(art.contains("┤ H ├"));
        let st = run(Command::Stats { path: p }).unwrap();
        assert!(st.contains("qubits:       2"));
        assert!(st.contains("gates:        2"));
    }

    #[test]
    fn end_to_end_simulate_and_counts() {
        let path = write_bell();
        let p = path.to_str().unwrap().to_string();
        let sim = run(Command::Simulate {
            path: p.clone(),
            init: None,
            opts: EngineOpts::default(),
        })
        .unwrap();
        assert!(sim.contains("'00'"));
        assert!(sim.contains("'11'"));
        // disabling fusion and SIMD must not change the reported branches
        let scalar = run(Command::Simulate {
            path: p.clone(),
            init: None,
            opts: EngineOpts {
                fuse: false,
                simd: false,
                ..EngineOpts::default()
            },
        })
        .unwrap();
        assert_eq!(sim, scalar);
        let cts = run(Command::Counts {
            path: p,
            shots: 100,
            seed: 1,
            opts: EngineOpts::default(),
        })
        .unwrap();
        assert!(cts.contains("counts over 100 shots"));
    }

    #[test]
    fn end_to_end_sample_noiseless_and_noisy() {
        let path = write_bell();
        let p = path.to_str().unwrap().to_string();
        let clean = run(Command::Sample {
            path: p.clone(),
            shots: 200,
            seed: 5,
            noise: NoiseSpec::default(),
            fast_path: true,
            opts: EngineOpts::default(),
        })
        .unwrap();
        assert!(clean.contains("sampled 200 trajectories"));
        assert!(clean.contains("'00'") && clean.contains("'11'"));
        assert!(!clean.contains("'01'") && !clean.contains("'10'"));
        // a noiseless terminal-measurement circuit takes the alias path;
        // the opt-out reports the per-shot engine instead
        assert!(clean.contains("path: alias-sampled"), "output: {clean}");
        let slow = run(Command::Sample {
            path: p.clone(),
            shots: 200,
            seed: 5,
            noise: NoiseSpec::default(),
            fast_path: false,
            opts: EngineOpts::default(),
        })
        .unwrap();
        assert!(slow.contains("path: per-shot"), "output: {slow}");
        // a certain bit-flip before the only measurement flips |0> to '1'
        let dir = std::env::temp_dir().join("qclab_cli_test");
        let one = dir.join("one.qasm");
        std::fs::write(&one, "qreg q[1];\ncreg c[1];\nmeasure q -> c;\n").unwrap();
        let flipped = run(Command::Sample {
            path: one.to_str().unwrap().into(),
            shots: 50,
            seed: 5,
            noise: NoiseSpec {
                before_measure: Some(PauliChannel::BitFlip(1.0)),
                ..NoiseSpec::default()
            },
            fast_path: true,
            opts: EngineOpts::default(),
        })
        .unwrap();
        assert!(flipped.contains("'1': 50"), "output: {flipped}");
        assert!(
            flipped.contains("50 injected error(s)"),
            "output: {flipped}"
        );
    }

    #[test]
    fn parse_and_run_compile_command() {
        assert_eq!(
            parse_args(&args(&["compile", "--no-fuse", "f.qasm"])).unwrap(),
            Command::Compile {
                path: "f.qasm".into(),
                opts: EngineOpts {
                    fuse: false,
                    ..EngineOpts::default()
                },
            }
        );
        // sampling flags have no meaning here
        assert!(parse_args(&args(&["compile", "--seed", "3", "f.qasm"])).is_err());
        assert!(parse_args(&args(&["compile", "--noise", "bitflip:0.1", "f.qasm"])).is_err());

        let path = write_bell();
        let p = path.to_str().unwrap().to_string();
        let fused = run(Command::Compile {
            path: p.clone(),
            opts: EngineOpts::default(),
        })
        .unwrap();
        // h+cx fuse into one block; the two measurements stay
        assert!(
            fused.contains("gates:        2 -> 1 (1 fused block(s))"),
            "{fused}"
        );
        assert!(fused.contains("measurements: 2"), "{fused}");
        assert!(fused.contains("state bytes:  64 B"), "{fused}");
        assert!(fused.contains("fingerprint"), "{fused}");
        // the fused bell circuit is one deterministic op plus two
        // terminal measurements — sample-eligible
        assert!(
            fused.contains("shot plan:    1 deterministic + 2 stochastic op(s)"),
            "{fused}"
        );
        assert!(
            fused.contains("terminal sampling: eligible (2 measured qubit(s)"),
            "{fused}"
        );
        let unfused = run(Command::Compile {
            path: p.clone(),
            opts: EngineOpts {
                fuse: false,
                ..EngineOpts::default()
            },
        })
        .unwrap();
        assert!(
            unfused.contains("gates:        2 -> 2 (0 fused block(s))"),
            "{unfused}"
        );
        // the fingerprint is structural: identical with and without fusion
        let fp = |s: &str| {
            s.split("fingerprint ")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(fp(&fused), fp(&unfused));
        // guard refusal surfaces as the resource exit code
        let e = run(Command::Compile {
            path: p,
            opts: EngineOpts {
                max_qubits: Some(1),
                ..EngineOpts::default()
            },
        })
        .unwrap_err();
        assert_eq!(e.code, EXIT_RESOURCE);
    }

    #[test]
    fn frames_flag_routes_sampling_and_shapes_the_compile_report() {
        // --no-frames applies to sample and compile only
        let cmd = parse_args(&args(&["sample", "f.qasm", "10", "--no-frames"])).unwrap();
        assert!(matches!(cmd, Command::Sample { ref opts, .. } if !opts.frames));
        let cmd = parse_args(&args(&["compile", "--no-frames", "f.qasm"])).unwrap();
        assert!(matches!(cmd, Command::Compile { ref opts, .. } if !opts.frames));
        assert!(parse_args(&args(&["counts", "f.qasm", "10", "--no-frames"])).is_err());
        assert!(parse_args(&args(&["draw", "--no-frames", "f.qasm"])).is_err());

        // a noisy Clifford sample takes the frame engine; the opt-out
        // falls back to the state-vector per-shot engine
        let p = write_bell().to_str().unwrap().to_string();
        let noise = NoiseSpec {
            after_gate: Some(PauliChannel::Depolarizing(0.02)),
            ..NoiseSpec::default()
        };
        let framed = run(Command::Sample {
            path: p.clone(),
            shots: 100,
            seed: 3,
            noise,
            fast_path: true,
            opts: EngineOpts::default(),
        })
        .unwrap();
        assert!(framed.contains("path: pauli-frame"), "output: {framed}");
        let fallback = run(Command::Sample {
            path: p.clone(),
            shots: 100,
            seed: 3,
            noise,
            fast_path: true,
            opts: EngineOpts {
                frames: false,
                ..EngineOpts::default()
            },
        })
        .unwrap();
        assert!(fallback.contains("path: per-shot"), "output: {fallback}");

        // the compile report states the classification and the path the
        // noisy sampler would take, honoring the opt-out
        let report = run(Command::Compile {
            path: p.clone(),
            opts: EngineOpts::default(),
        })
        .unwrap();
        assert!(
            report.contains("clifford:     yes (tableau-expressible)"),
            "{report}"
        );
        assert!(
            report.contains("noisy shots:  pauli-frame sampler"),
            "{report}"
        );
        let report = run(Command::Compile {
            path: p,
            opts: EngineOpts {
                frames: false,
                ..EngineOpts::default()
            },
        })
        .unwrap();
        assert!(
            report.contains("noisy shots:  per-shot trajectories (--no-frames)"),
            "{report}"
        );

        // a T gate declassifies the circuit
        let dir = std::env::temp_dir().join("qclab_cli_test");
        let t = dir.join("tgate.qasm");
        std::fs::write(
            &t,
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\ncreg c[1];\n\
             h q[0];\nt q[0];\nmeasure q -> c;\n",
        )
        .unwrap();
        let report = run(Command::Compile {
            path: t.to_str().unwrap().into(),
            opts: EngineOpts::default(),
        })
        .unwrap();
        assert!(
            report.contains("clifford:     no (contains non-Clifford gates)"),
            "{report}"
        );
        assert!(
            report
                .contains("noisy shots:  per-shot trajectories (program is not frame-expressible)"),
            "{report}"
        );
    }

    #[test]
    fn no_remap_flag_parses_on_engine_commands() {
        let cmd = parse_args(&args(&["simulate", "--no-remap", "f.qasm"])).unwrap();
        assert!(matches!(cmd, Command::Simulate { ref opts, .. } if !opts.remap));
        let cmd = parse_args(&args(&["sample", "f.qasm", "10", "--no-remap"])).unwrap();
        assert!(matches!(cmd, Command::Sample { ref opts, .. } if !opts.remap));
        let cmd = parse_args(&args(&["compile", "--no-remap", "f.qasm"])).unwrap();
        assert!(matches!(cmd, Command::Compile { ref opts, .. } if !opts.remap));
        // no plan is lowered for draw/tex/stats, so the flag is an error there
        assert!(parse_args(&args(&["draw", "--no-remap", "f.qasm"])).is_err());
        assert!(parse_args(&args(&["stats", "--no-remap", "f.qasm"])).is_err());
    }

    #[test]
    fn compile_no_fuse_on_fenced_circuit_succeeds_with_cache_counters() {
        let dir = std::env::temp_dir().join("qclab_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let fenced = dir.join("fenced.qasm");
        std::fs::write(
            &fenced,
            "qreg q[2];\ncreg c[2];\nh q[0];\nbarrier q;\ncx q[0], q[1];\nmeasure q -> c;\n",
        )
        .unwrap();
        let p = fenced.to_str().unwrap().to_string();
        // parse + run must take the success path (exit code 0 in main)
        let cmd = parse_args(&args(&["compile", "--no-fuse", &p])).unwrap();
        let before = qclab_core::program::plan_cache_stats();
        let report = run(cmd).unwrap();
        assert!(report.contains("fusion off, remap on"), "{report}");
        assert!(report.contains("fences:       1"), "{report}");
        // a 2-qubit register is below the tile size: the pass is inert
        assert!(
            report.contains("locality:     0 window(s) remapped, 0 move(s), 0 fold(s)"),
            "{report}"
        );
        assert!(report.contains("plan cache:"), "{report}");
        let after_first = qclab_core::program::plan_cache_stats();
        assert!(after_first.misses > before.misses, "first lowering misses");
        // recompiling the identical file is served from the plan cache
        let cmd = parse_args(&args(&["compile", "--no-fuse", &p])).unwrap();
        run(cmd).unwrap();
        let after_second = qclab_core::program::plan_cache_stats();
        assert!(after_second.hits > after_first.hits, "recompile hits");
    }

    #[test]
    fn max_qubits_flag_is_enforced() {
        let path = write_bell();
        let e = run(Command::Simulate {
            path: path.to_str().unwrap().into(),
            init: None,
            opts: EngineOpts {
                max_qubits: Some(1),
                ..EngineOpts::default()
            },
        })
        .unwrap_err();
        assert_eq!(e.code, EXIT_RESOURCE);
        assert!(e.msg.contains("--max-qubits"), "message: {}", e.msg);
    }

    #[test]
    fn parse_backend_flag() {
        let cmd = parse_args(&args(&["simulate", "--backend", "auto", "f.qasm"])).unwrap();
        assert!(
            matches!(cmd, Command::Simulate { ref opts, .. } if opts.backend == BackendRequest::Auto)
        );
        let cmd = parse_args(&args(&["counts", "f.qasm", "10", "--backend", "sparse"])).unwrap();
        assert!(
            matches!(cmd, Command::Counts { ref opts, .. } if opts.backend == BackendRequest::Sparse)
        );
        let cmd = parse_args(&args(&["compile", "--backend", "dense", "f.qasm"])).unwrap();
        assert!(
            matches!(cmd, Command::Compile { ref opts, .. } if opts.backend == BackendRequest::Dense)
        );
        let cmd = parse_args(&args(&["sample", "f.qasm", "10", "--backend", "auto"])).unwrap();
        assert!(
            matches!(cmd, Command::Sample { ref opts, .. } if opts.backend == BackendRequest::Auto)
        );
        // bad values and non-engine commands are usage errors
        let e = parse_args(&args(&["simulate", "--backend", "magic", "f.qasm"])).unwrap_err();
        assert_eq!(e.code, EXIT_USAGE);
        assert!(e.msg.contains("unknown backend 'magic'"), "{}", e.msg);
        assert!(parse_args(&args(&["draw", "--backend", "auto", "f.qasm"])).is_err());
        assert!(parse_args(&args(&["simulate", "--backend"])).is_err());
    }

    /// Writes a 30-qubit Grover-oracle-shaped circuit: X flips plus a
    /// Toffoli ladder. Pure permutation — one live sparse entry — but a
    /// dense register would need 16 GiB, past the 4 GiB default cap.
    fn write_grover_oracle_30() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qclab_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("oracle30.qasm");
        let mut src = String::from(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[30];\ncreg c[30];\n\
             x q[0];\nx q[1];\n",
        );
        for t in 2..30 {
            src.push_str(&format!("ccx q[{}], q[{}], q[{t}];\n", t - 2, t - 1));
        }
        src.push_str("measure q -> c;\n");
        std::fs::write(&path, src).unwrap();
        path
    }

    #[test]
    fn thirty_qubit_oracle_needs_the_sparse_backend() {
        let p = write_grover_oracle_30().to_str().unwrap().to_string();
        // the dense default refuses the register outright (exit 6) …
        let e = run(Command::Simulate {
            path: p.clone(),
            init: None,
            opts: EngineOpts::default(),
        })
        .unwrap_err();
        assert_eq!(e.code, EXIT_RESOURCE);
        // … and so does `compile` under the same dense request
        let e = run(Command::Compile {
            path: p.clone(),
            opts: EngineOpts::default(),
        })
        .unwrap_err();
        assert_eq!(e.code, EXIT_RESOURCE);
        // --backend auto routes to the sparse executor and completes:
        // the ladder propagates the two X flips through every ccx
        let cmd = parse_args(&args(&["simulate", "--backend", "auto", &p])).unwrap();
        let out = run(cmd).unwrap();
        assert!(out.contains("sparse backend"), "{out}");
        assert!(
            out.contains(&format!("'{}'  p = 1.000000", "1".repeat(30))),
            "{out}"
        );
        // the compile report states the resolved choice
        let cmd = parse_args(&args(&["compile", "--backend", "auto", &p])).unwrap();
        let report = run(cmd).unwrap();
        assert!(report.contains("backend:      sparse"), "{report}");
        assert!(report.contains("(requested auto)"), "{report}");
        assert!(report.contains("sparse bound: 1 live entry"), "{report}");
        // counts and sample work on the same register through the flag
        let cmd = parse_args(&args(&["counts", &p, "20", "--backend", "auto"])).unwrap();
        let cts = run(cmd).unwrap();
        assert!(cts.contains("sparse backend"), "{cts}");
        assert!(cts.contains(&format!("'{}': 20", "1".repeat(30))), "{cts}");
        let cmd = parse_args(&args(&["sample", &p, "20", "--backend", "auto"])).unwrap();
        let smp = run(cmd).unwrap();
        assert!(smp.contains("path: sparse-sampled"), "{smp}");
        assert!(smp.contains(&format!("'{}': 20", "1".repeat(30))), "{smp}");
    }

    #[test]
    fn backend_flag_on_small_circuits_keeps_dense_output() {
        let p = write_bell().to_str().unwrap().to_string();
        // a Bell pair is cheap dense; auto stays on the dense engine and
        // the output is byte-identical to the unrouted default
        let default_out = run(Command::Simulate {
            path: p.clone(),
            init: None,
            opts: EngineOpts::default(),
        })
        .unwrap();
        let auto_out = run(Command::Simulate {
            path: p.clone(),
            init: None,
            opts: EngineOpts {
                backend: BackendRequest::Auto,
                ..EngineOpts::default()
            },
        })
        .unwrap();
        assert_eq!(default_out, auto_out);
        assert!(!auto_out.contains("sparse"), "{auto_out}");
        // pinning sparse works too and agrees on the distribution
        let pinned = run(Command::Simulate {
            path: p,
            init: None,
            opts: EngineOpts {
                backend: BackendRequest::Sparse,
                ..EngineOpts::default()
            },
        })
        .unwrap();
        assert!(pinned.contains("sparse backend"), "{pinned}");
        assert!(pinned.contains("'00'  p = 0.500000"), "{pinned}");
        assert!(pinned.contains("'11'  p = 0.500000"), "{pinned}");
    }

    /// A 2-qubit circuit with 100 unfusable-by-flag ops so the default
    /// check interval (64 ops) is crossed during a dense simulation.
    fn write_long_chain() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qclab_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chain.qasm");
        let mut src = String::from("qreg q[2];\ncreg c[2];\n");
        for i in 0..50 {
            src.push_str(&format!("h q[{}];\ncx q[0], q[1];\n", i % 2));
        }
        src.push_str("measure q -> c;\n");
        std::fs::write(&path, src).unwrap();
        path
    }

    #[test]
    fn parse_timeout_flag() {
        let cmd = parse_args(&args(&["simulate", "--timeout-ms", "500", "f.qasm"])).unwrap();
        assert!(matches!(
            cmd,
            Command::Simulate { ref opts, .. } if opts.timeout_ms == Some(500)
        ));
        let cmd = parse_args(&args(&["counts", "f.qasm", "10", "--timeout-ms", "250"])).unwrap();
        assert!(matches!(
            cmd,
            Command::Counts { ref opts, .. } if opts.timeout_ms == Some(250)
        ));
        let cmd = parse_args(&args(&["sample", "f.qasm", "10", "--timeout-ms", "250"])).unwrap();
        assert!(matches!(
            cmd,
            Command::Sample { ref opts, .. } if opts.timeout_ms == Some(250)
        ));
        // no deadline applies to the non-simulating commands
        assert!(parse_args(&args(&["draw", "--timeout-ms", "5", "f.qasm"])).is_err());
        assert!(parse_args(&args(&["stats", "--timeout-ms", "5", "f.qasm"])).is_err());
        assert!(parse_args(&args(&["compile", "--timeout-ms", "5", "f.qasm"])).is_err());
        // bad values are usage errors
        let e = parse_args(&args(&["simulate", "--timeout-ms", "soon", "f.qasm"])).unwrap_err();
        assert_eq!(e.code, EXIT_USAGE);
        assert!(parse_args(&args(&["simulate", "--timeout-ms"])).is_err());
        // a zero deadline is a bad invocation, not a timeout: it must be
        // rejected up front with the usage code, never reach the engine
        // and come back as exit 7
        let e = parse_args(&args(&["simulate", "--timeout-ms", "0", "f.qasm"])).unwrap_err();
        assert_eq!(e.code, EXIT_USAGE);
        assert!(e.msg.contains("--timeout-ms"), "message: {}", e.msg);
        let e = parse_args(&args(&["sample", "f.qasm", "10", "--timeout-ms", "0"])).unwrap_err();
        assert_eq!(e.code, EXIT_USAGE);
    }

    #[test]
    fn parse_bytecode_and_shot_batch_flags() {
        // bytecode dispatch is on by default and --no-bytecode turns it off
        let cmd = parse_args(&args(&["simulate", "f.qasm"])).unwrap();
        assert!(matches!(
            cmd,
            Command::Simulate { ref opts, .. } if opts.bytecode
        ));
        let cmd = parse_args(&args(&["simulate", "--no-bytecode", "f.qasm"])).unwrap();
        assert!(matches!(
            cmd,
            Command::Simulate { ref opts, .. } if !opts.bytecode && !opts.kernel().bytecode
        ));
        let cmd = parse_args(&args(&["counts", "--no-bytecode", "f.qasm", "10"])).unwrap();
        assert!(matches!(
            cmd,
            Command::Counts { ref opts, .. } if !opts.bytecode
        ));
        // --shot-batch applies to sample only; 0 and garbage are usage errors
        let cmd = parse_args(&args(&[
            "sample",
            "f.qasm",
            "10",
            "--no-bytecode",
            "--shot-batch",
            "8",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Sample { ref opts, .. } if !opts.bytecode && opts.shot_batch == Some(8)
        ));
        let e = parse_args(&args(&["sample", "f.qasm", "10", "--shot-batch", "0"])).unwrap_err();
        assert_eq!(e.code, EXIT_USAGE);
        let e = parse_args(&args(&["sample", "f.qasm", "10", "--shot-batch", "many"])).unwrap_err();
        assert_eq!(e.code, EXIT_USAGE);
        let e = parse_args(&args(&["simulate", "--shot-batch", "8", "f.qasm"])).unwrap_err();
        assert_eq!(e.code, EXIT_USAGE);
        assert!(parse_args(&args(&["draw", "--no-bytecode", "f.qasm"])).is_err());
    }

    #[test]
    fn expired_deadline_stops_dense_simulation_with_timeout_code() {
        let p = write_long_chain().to_str().unwrap().to_string();
        // a 0 ms deadline is already expired at the first interval check
        let e = run(Command::Simulate {
            path: p.clone(),
            init: None,
            opts: EngineOpts {
                fuse: false,
                timeout_ms: Some(0),
                ..EngineOpts::default()
            },
        })
        .unwrap_err();
        assert_eq!(e.code, EXIT_TIMEOUT);
        assert!(e.msg.contains("deadline exceeded"), "message: {}", e.msg);
        // a generous deadline changes nothing about the output
        let plain = run(Command::Simulate {
            path: p.clone(),
            init: None,
            opts: EngineOpts {
                fuse: false,
                ..EngineOpts::default()
            },
        })
        .unwrap();
        let timed = run(Command::Simulate {
            path: p,
            init: None,
            opts: EngineOpts {
                fuse: false,
                timeout_ms: Some(3_600_000),
                ..EngineOpts::default()
            },
        })
        .unwrap();
        assert_eq!(plain, timed);
    }

    #[test]
    fn expired_deadline_makes_sample_partial_with_json_payload() {
        let p = write_bell().to_str().unwrap().to_string();
        // the per-shot engine observes the deadline in each shot's
        // prologue: 0 of 50 shots complete, and the partial contract
        // still produces a payload for stdout
        let e = run(Command::Sample {
            path: p,
            shots: 50,
            seed: 5,
            noise: NoiseSpec::default(),
            fast_path: false,
            opts: EngineOpts {
                timeout_ms: Some(0),
                ..EngineOpts::default()
            },
        })
        .unwrap_err();
        assert_eq!(e.code, EXIT_TIMEOUT);
        assert!(e.msg.contains("0/50 shots completed"), "message: {}", e.msg);
        let payload = e.stdout.expect("partial runs carry a stdout payload");
        assert!(payload.contains("\"partial\":true"), "{payload}");
        assert!(
            payload.contains("\"cause\":\"deadline exceeded\""),
            "{payload}"
        );
        assert!(payload.contains("\"shots_requested\":50"), "{payload}");
        assert!(payload.contains("\"shots_completed\":0"), "{payload}");
    }

    #[test]
    fn generous_deadline_sample_is_bit_identical_to_untimed() {
        let p = write_bell().to_str().unwrap().to_string();
        let base = |timeout_ms| Command::Sample {
            path: p.clone(),
            shots: 200,
            seed: 5,
            noise: NoiseSpec {
                after_gate: Some(PauliChannel::Depolarizing(0.05)),
                ..NoiseSpec::default()
            },
            fast_path: false,
            opts: EngineOpts {
                timeout_ms,
                ..EngineOpts::default()
            },
        };
        // control checks never touch the RNG streams: the timed run's
        // output is byte-identical to the untimed one
        let untimed = run(base(None)).unwrap();
        let timed = run(base(Some(3_600_000))).unwrap();
        assert_eq!(untimed, timed);
    }

    #[test]
    fn json_escape_quotes_and_controls() {
        assert_eq!(json_escape("0110"), "0110");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny\u{1}"), "x\\ny\\u0001");
    }

    #[test]
    fn missing_file_and_bad_qasm_error_cleanly() {
        let e = run(Command::Draw {
            path: "/nonexistent/x.qasm".into(),
        })
        .unwrap_err();
        assert_eq!(e.code, EXIT_IO);
        let dir = std::env::temp_dir().join("qclab_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.qasm");
        std::fs::write(&bad, "qreg q[1]; frobnicate q[0];").unwrap();
        let e = run(Command::Stats {
            path: bad.to_str().unwrap().into(),
        })
        .unwrap_err();
        assert_eq!(e.code, EXIT_PARSE);
        assert!(e.msg.contains("frobnicate"));
    }
}
