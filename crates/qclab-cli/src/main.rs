//! `qclab` — command-line front end for the toolbox.
//!
//! ```text
//! qclab draw     circuit.qasm              terminal rendering
//! qclab tex      circuit.qasm              quantikz LaTeX to stdout
//! qclab simulate circuit.qasm [BITSTRING]  branch results/probabilities
//! qclab counts   circuit.qasm SHOTS [SEED] sampled outcome frequencies
//! qclab stats    circuit.qasm              gate/depth/measurement counts
//! ```
//!
//! `simulate` and `counts` accept `--no-fuse` to disable the gate-fusion
//! pre-pass (useful for timing comparisons and for debugging the fused
//! execution path).
//!
//! Mirrors the workflow of the paper: construct (or import) a circuit,
//! inspect it, simulate it, and sample repeated experiments.

use qclab_core::sim::kernel::KernelConfig;
use qclab_core::sim::SimOptions;
use qclab_core::{QCircuit, QclabError};
use std::process::ExitCode;

/// A parsed command line.
#[derive(Debug, PartialEq)]
enum Command {
    Draw {
        path: String,
    },
    Tex {
        path: String,
    },
    Simulate {
        path: String,
        init: Option<String>,
        fuse: bool,
    },
    Counts {
        path: String,
        shots: u64,
        seed: u64,
        fuse: bool,
    },
    Stats {
        path: String,
    },
}

fn usage() -> String {
    "usage:\n  qclab draw     <file.qasm>\n  qclab tex      <file.qasm>\n  \
     qclab simulate [--no-fuse] <file.qasm> [initial-bitstring]\n  \
     qclab counts   [--no-fuse] <file.qasm> <shots> [seed]\n  qclab stats    <file.qasm>"
        .to_string()
}

/// Parses the argument vector (without the program name). The
/// `--no-fuse` flag may appear anywhere after the command name; the
/// remaining arguments are positional.
fn parse_args(args: &[String]) -> Result<Command, String> {
    let cmd = args.first().ok_or_else(usage)?.clone();
    let mut fuse = true;
    let rest: Vec<String> = args[1..]
        .iter()
        .filter(|a| {
            if *a == "--no-fuse" {
                fuse = false;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    if !fuse && !matches!(cmd.as_str(), "simulate" | "counts") {
        return Err(format!(
            "--no-fuse only applies to simulate/counts\n{}",
            usage()
        ));
    }
    if let Some(opt) = rest.iter().find(|a| a.starts_with("--")) {
        return Err(format!("unknown option '{opt}'\n{}", usage()));
    }
    let path = rest
        .first()
        .ok_or_else(|| format!("missing .qasm file\n{}", usage()))?
        .clone();
    match cmd.as_str() {
        "draw" => Ok(Command::Draw { path }),
        "tex" => Ok(Command::Tex { path }),
        "simulate" => Ok(Command::Simulate {
            path,
            init: rest.get(1).cloned(),
            fuse,
        }),
        "counts" => {
            let shots = rest
                .get(1)
                .ok_or_else(|| format!("missing shot count\n{}", usage()))?
                .parse::<u64>()
                .map_err(|_| "shots must be a non-negative integer".to_string())?;
            let seed = match rest.get(2) {
                Some(s) => s
                    .parse::<u64>()
                    .map_err(|_| "seed must be a non-negative integer".to_string())?,
                None => 1,
            };
            Ok(Command::Counts {
                path,
                shots,
                seed,
                fuse,
            })
        }
        "stats" => Ok(Command::Stats { path }),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

/// Simulation options for the CLI: defaults everywhere except the
/// fusion switch.
fn sim_opts(fuse: bool) -> SimOptions {
    SimOptions {
        kernel: KernelConfig {
            fuse,
            ..KernelConfig::default()
        },
        ..SimOptions::default()
    }
}

fn load(path: &str) -> Result<QCircuit, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    qclab_qasm::from_qasm(&src).map_err(|e| format!("{path}: {e}"))
}

fn simulate(circuit: &QCircuit, init: Option<&str>, fuse: bool) -> Result<String, QclabError> {
    let zeros = "0".repeat(circuit.nb_qubits());
    let bits = init.unwrap_or(&zeros);
    let sim = circuit.simulate_bitstring_with(bits, &sim_opts(fuse))?;
    let mut out = String::new();
    out.push_str(&format!(
        "simulated {} qubits from |{}>: {} branch(es)\n",
        circuit.nb_qubits(),
        bits,
        sim.branches().len()
    ));
    for b in sim.branches() {
        if b.result().is_empty() {
            out.push_str(&format!(
                "  (no measurements)  p = {:.6}\n",
                b.probability()
            ));
        } else {
            out.push_str(&format!("  '{}'  p = {:.6}\n", b.result(), b.probability()));
        }
    }
    Ok(out)
}

fn counts(circuit: &QCircuit, shots: u64, seed: u64, fuse: bool) -> Result<String, QclabError> {
    let zeros = "0".repeat(circuit.nb_qubits());
    let sim = circuit.simulate_bitstring_with(&zeros, &sim_opts(fuse))?;
    let mut out = format!("counts over {shots} shots (seed {seed}):\n");
    for (result, n) in sim.counts(shots, seed) {
        out.push_str(&format!("  '{result}': {n}\n"));
    }
    Ok(out)
}

fn stats(circuit: &QCircuit) -> String {
    format!(
        "qubits:       {}\ngates:        {}\nmeasurements: {}\ndepth:        {}\n",
        circuit.nb_qubits(),
        circuit.nb_gates(),
        circuit.nb_measurements(),
        circuit.depth()
    )
}

fn run(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Draw { path } => Ok(qclab_draw::draw_circuit(&load(&path)?)),
        Command::Tex { path } => Ok(qclab_draw::to_tex(&load(&path)?)),
        Command::Simulate { path, init, fuse } => {
            simulate(&load(&path)?, init.as_deref(), fuse).map_err(|e| e.to_string())
        }
        Command::Counts {
            path,
            shots,
            seed,
            fuse,
        } => counts(&load(&path)?, shots, seed, fuse).map_err(|e| e.to_string()),
        Command::Stats { path } => Ok(stats(&load(&path)?)),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_bell() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qclab_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bell.qasm");
        std::fs::write(
            &path,
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
             h q[0];\ncx q[0], q[1];\nmeasure q -> c;\n",
        )
        .unwrap();
        path
    }

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_all_commands() {
        assert_eq!(
            parse_args(&args(&["draw", "f.qasm"])).unwrap(),
            Command::Draw {
                path: "f.qasm".into()
            }
        );
        assert_eq!(
            parse_args(&args(&["counts", "f.qasm", "100", "7"])).unwrap(),
            Command::Counts {
                path: "f.qasm".into(),
                shots: 100,
                seed: 7,
                fuse: true
            }
        );
        assert_eq!(
            parse_args(&args(&["simulate", "f.qasm", "01"])).unwrap(),
            Command::Simulate {
                path: "f.qasm".into(),
                init: Some("01".into()),
                fuse: true
            }
        );
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["bogus", "f.qasm"])).is_err());
        assert!(parse_args(&args(&["counts", "f.qasm"])).is_err());
        assert!(parse_args(&args(&["counts", "f.qasm", "x"])).is_err());
    }

    #[test]
    fn parse_no_fuse_flag() {
        // the flag is position-independent within simulate/counts
        assert_eq!(
            parse_args(&args(&["simulate", "--no-fuse", "f.qasm"])).unwrap(),
            Command::Simulate {
                path: "f.qasm".into(),
                init: None,
                fuse: false
            }
        );
        assert_eq!(
            parse_args(&args(&["counts", "f.qasm", "50", "--no-fuse"])).unwrap(),
            Command::Counts {
                path: "f.qasm".into(),
                shots: 50,
                seed: 1,
                fuse: false
            }
        );
        // rejected where it has no meaning
        assert!(parse_args(&args(&["draw", "--no-fuse", "f.qasm"])).is_err());
        // typo'd options are named in the error, not taken as file paths
        let e = parse_args(&args(&["simulate", "--nofuse", "f.qasm"])).unwrap_err();
        assert!(e.contains("unknown option '--nofuse'"));
    }

    #[test]
    fn end_to_end_draw_and_stats() {
        let path = write_bell();
        let p = path.to_str().unwrap().to_string();
        let art = run(Command::Draw { path: p.clone() }).unwrap();
        assert!(art.contains("┤ H ├"));
        let st = run(Command::Stats { path: p }).unwrap();
        assert!(st.contains("qubits:       2"));
        assert!(st.contains("gates:        2"));
    }

    #[test]
    fn end_to_end_simulate_and_counts() {
        let path = write_bell();
        let p = path.to_str().unwrap().to_string();
        let sim = run(Command::Simulate {
            path: p.clone(),
            init: None,
            fuse: true,
        })
        .unwrap();
        assert!(sim.contains("'00'"));
        assert!(sim.contains("'11'"));
        // disabling fusion must not change the reported branches
        let unfused = run(Command::Simulate {
            path: p.clone(),
            init: None,
            fuse: false,
        })
        .unwrap();
        assert_eq!(sim, unfused);
        let cts = run(Command::Counts {
            path: p,
            shots: 100,
            seed: 1,
            fuse: true,
        })
        .unwrap();
        assert!(cts.contains("counts over 100 shots"));
    }

    #[test]
    fn missing_file_and_bad_qasm_error_cleanly() {
        assert!(run(Command::Draw {
            path: "/nonexistent/x.qasm".into()
        })
        .is_err());
        let dir = std::env::temp_dir().join("qclab_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.qasm");
        std::fs::write(&bad, "qreg q[1]; frobnicate q[0];").unwrap();
        let e = run(Command::Stats {
            path: bad.to_str().unwrap().into(),
        })
        .unwrap_err();
        assert!(e.contains("frobnicate"));
    }
}
