//! Drives the built `qclab` binary with bad (and good) inputs and pins
//! down the error contract: messages on stderr, nothing on stdout, and
//! one distinct exit code per failure class.

use std::path::PathBuf;
use std::process::{Command, Output};

const EXIT_USAGE: i32 = 2;
const EXIT_IO: i32 = 3;
const EXIT_PARSE: i32 = 4;
const EXIT_SIM: i32 = 5;
const EXIT_RESOURCE: i32 = 6;
const EXIT_TIMEOUT: i32 = 7;

fn qclab(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qclab"))
        .args(args)
        .output()
        .expect("binary must spawn")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn write_qasm(name: &str, src: &str) -> String {
    let dir = std::env::temp_dir().join("qclab_cli_errors");
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join(name);
    std::fs::write(&path, src).unwrap();
    path.to_str().unwrap().to_string()
}

fn bell() -> String {
    write_qasm(
        "bell.qasm",
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
         h q[0];\ncx q[0], q[1];\nmeasure q -> c;\n",
    )
}

/// Asserts the error contract: the given exit code, a stderr message
/// containing `needle`, and an empty stdout.
fn assert_fails(args: &[&str], code: i32, needle: &str) {
    let out = qclab(args);
    assert_eq!(
        out.status.code(),
        Some(code),
        "args {args:?}: stderr was: {}",
        stderr(&out)
    );
    let err = stderr(&out);
    assert!(err.contains(needle), "args {args:?}: stderr was: {err}");
    assert_eq!(stdout(&out), "", "errors must not pollute stdout");
}

#[test]
fn no_arguments_is_a_usage_error() {
    assert_fails(&[], EXIT_USAGE, "usage:");
}

#[test]
fn unknown_command_and_options_are_usage_errors() {
    assert_fails(&["frobnicate", "f.qasm"], EXIT_USAGE, "unknown command");
    assert_fails(
        &["simulate", "--bogus", "f.qasm"],
        EXIT_USAGE,
        "unknown option '--bogus'",
    );
    assert_fails(&["counts", "f.qasm"], EXIT_USAGE, "missing shot count");
    assert_fails(
        &["draw", "--seed", "1", "f.qasm"],
        EXIT_USAGE,
        "does not apply",
    );
}

#[test]
fn bad_noise_specs_are_usage_errors() {
    let bell = bell();
    assert_fails(
        &["sample", &bell, "10", "--noise", "gamma:0.1"],
        EXIT_USAGE,
        "unknown noise channel",
    );
    assert_fails(
        &["sample", &bell, "10", "--noise", "bitflip"],
        EXIT_USAGE,
        "must look like",
    );
    // a probability outside [0, 1] is structurally valid but rejected
    // by channel validation
    assert_fails(
        &["sample", &bell, "10", "--noise", "bitflip:1.5"],
        EXIT_USAGE,
        "invalid noise spec",
    );
}

#[test]
fn missing_file_is_an_io_error() {
    assert_fails(
        &["stats", "/nonexistent/no_such.qasm"],
        EXIT_IO,
        "cannot read",
    );
}

#[test]
fn malformed_qasm_is_a_parse_error() {
    let bad = write_qasm("bad.qasm", "qreg q[1]; frobnicate q[0];");
    assert_fails(&["stats", &bad], EXIT_PARSE, "frobnicate");
    // pathological nesting must error, not crash the process
    let deep = write_qasm(
        "deep.qasm",
        &format!(
            "qreg q[1];\nrx({}0.5{}) q[0];\n",
            "(".repeat(20_000),
            ")".repeat(20_000)
        ),
    );
    assert_fails(&["stats", &deep], EXIT_PARSE, "nesting too deep");
}

#[test]
fn bad_initial_bitstring_is_a_simulation_error() {
    let bell = bell();
    assert_fails(&["simulate", &bell, "01x"], EXIT_SIM, "bitstring");
}

#[test]
fn oversized_register_is_a_resource_error() {
    // 80 qubits can never be allocated; the guard must refuse before
    // touching memory, quickly and with a helpful message
    let big = write_qasm("big.qasm", "qreg q[80];\nh q[0];\n");
    assert_fails(&["simulate", &big], EXIT_RESOURCE, "80-qubit");
    // and the explicit cap rejects circuits above it
    assert_fails(
        &["simulate", "--max-qubits", "1", &bell()],
        EXIT_RESOURCE,
        "--max-qubits",
    );
}

#[test]
fn successful_runs_exit_zero_with_clean_stderr() {
    let bell = bell();
    for args in [
        vec!["stats", bell.as_str()],
        vec!["simulate", "--no-fuse", "--no-simd", bell.as_str()],
        vec!["counts", bell.as_str(), "25", "--seed", "3"],
        vec![
            "sample",
            bell.as_str(),
            "25",
            "--seed",
            "3",
            "--noise",
            "depolarizing:0.02",
        ],
    ] {
        let out = qclab(&args);
        assert_eq!(
            out.status.code(),
            Some(0),
            "args {args:?}: {}",
            stderr(&out)
        );
        assert_eq!(stderr(&out), "", "success must not write to stderr");
        assert!(!stdout(&out).is_empty());
    }
}

#[test]
fn compile_honors_the_full_exit_code_contract() {
    // 2 — usage: a sampling flag has no meaning for compile
    assert_fails(
        &["compile", "--seed", "1", &bell()],
        EXIT_USAGE,
        "does not apply",
    );
    // 3 — io: missing file
    assert_fails(
        &["compile", "/nonexistent/no_such.qasm"],
        EXIT_IO,
        "cannot read",
    );
    // 4 — parse: malformed QASM
    let bad = write_qasm("bad_compile.qasm", "qreg q[1]; frobnicate q[0];");
    assert_fails(&["compile", &bad], EXIT_PARSE, "frobnicate");
    // 6 — resource: the guard refuses before reporting a plan
    assert_fails(
        &["compile", "--max-qubits", "1", &bell()],
        EXIT_RESOURCE,
        "--max-qubits",
    );
    // and the happy path prints the plan on stdout only
    let out = qclab(&["compile", &bell()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_eq!(stderr(&out), "");
    let text = stdout(&out);
    assert!(text.contains("fingerprint"), "{text}");
    assert!(text.contains("fused block"), "{text}");
    assert!(text.contains("schedule:"), "{text}");
    // --no-fuse changes the schedule but not the fingerprint line count
    let unfused = qclab(&["compile", "--no-fuse", &bell()]);
    assert_eq!(unfused.status.code(), Some(0));
    assert!(stdout(&unfused).contains("fusion off"));
}

/// A 2-qubit circuit with enough ops (100) to cross the default
/// op-boundary check interval when fusion is off.
fn long_chain() -> String {
    let mut src = String::from("qreg q[2];\ncreg c[2];\n");
    for i in 0..50 {
        src.push_str(&format!("h q[{}];\ncx q[0], q[1];\n", i % 2));
    }
    src.push_str("measure q -> c;\n");
    write_qasm("chain.qasm", &src)
}

/// An 18-qubit circuit with enough ops (120) that even the first
/// deadline check interval costs far more than a millisecond.
fn heavy_chain() -> String {
    let mut src = String::from("qreg q[18];\ncreg c[18];\n");
    for i in 0..60 {
        src.push_str(&format!(
            "h q[{}];\ncx q[{}], q[{}];\n",
            i % 18,
            i % 18,
            (i + 1) % 18
        ));
    }
    src.push_str("measure q -> c;\n");
    write_qasm("heavy_chain.qasm", &src)
}

#[test]
fn zero_timeout_is_a_usage_error_not_a_timeout() {
    // an already-expired deadline is a bad invocation: reject it with
    // the usage code instead of dressing it up as a timeout (exit 7)
    let chain = long_chain();
    for args in [
        vec!["simulate", "--timeout-ms", "0", chain.as_str()],
        vec!["counts", "--timeout-ms", "0", chain.as_str(), "10"],
        vec!["sample", "--timeout-ms", "0", chain.as_str(), "10"],
    ] {
        assert_fails(&args, EXIT_USAGE, "--timeout-ms must be at least 1");
    }
}

#[test]
fn exceeded_deadline_is_a_timeout_error() {
    // a 1 ms deadline on an 18-qubit, 120-op chain expires before the
    // first interval check completes, on any machine this test runs on
    let chain = heavy_chain();
    assert_fails(
        &["simulate", "--no-fuse", "--timeout-ms", "1", &chain],
        EXIT_TIMEOUT,
        "deadline exceeded",
    );
    // a generous deadline is invisible: same bytes as the untimed run
    let small = long_chain();
    let timed = qclab(&["simulate", &small, "--timeout-ms", "3600000"]);
    let untimed = qclab(&["simulate", &small]);
    assert_eq!(timed.status.code(), Some(0), "{}", stderr(&timed));
    assert_eq!(stdout(&timed), stdout(&untimed));
}

#[test]
fn timed_out_sample_reports_partial_results_on_stdout() {
    // each 18-qubit shot costs far more than the 1 ms deadline, so the
    // run stops after at most a shot or two and reports the rest as
    // missing; the exact count depends on where the deadline lands
    let out = qclab(&[
        "sample",
        &heavy_chain(),
        "20",
        "--no-fast-path",
        "--timeout-ms",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(EXIT_TIMEOUT), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("sample stopped early"), "stderr: {err}");
    assert!(err.contains("/20 shots completed"), "stderr: {err}");
    let json = stdout(&out);
    assert!(json.contains("\"partial\":true"), "stdout: {json}");
    assert!(
        json.contains("\"cause\":\"deadline exceeded\""),
        "stdout: {json}"
    );
    assert!(json.contains("\"shots_requested\":20"), "stdout: {json}");
    assert!(json.contains("\"shots_completed\":"), "stdout: {json}");
}

#[test]
fn timeout_flag_is_rejected_where_meaningless() {
    assert_fails(
        &["draw", "--timeout-ms", "5", &bell()],
        EXIT_USAGE,
        "does not apply",
    );
    assert_fails(
        &["simulate", "--timeout-ms", "soon", &bell()],
        EXIT_USAGE,
        "not a millisecond count",
    );
}

#[test]
fn bytecode_and_batch_flags_change_nothing_but_are_policed() {
    let bell = bell();
    // --no-bytecode routes through the interpreter: identical bytes
    let byte = qclab(&["simulate", &bell]);
    let interp = qclab(&["simulate", "--no-bytecode", &bell]);
    assert_eq!(byte.status.code(), Some(0), "{}", stderr(&byte));
    assert_eq!(interp.status.code(), Some(0), "{}", stderr(&interp));
    assert_eq!(stdout(&byte), stdout(&interp));
    // batch width never shows in the sampled output
    let noisy = |extra: &[&str]| {
        let mut args = vec![
            "sample",
            bell.as_str(),
            "50",
            "--seed",
            "9",
            "--noise",
            "depolarizing:0.05",
            "--no-fast-path",
        ];
        args.extend_from_slice(extra);
        qclab(&args)
    };
    let serial = noisy(&["--shot-batch", "1"]);
    let batched = noisy(&["--shot-batch", "64"]);
    let default = noisy(&[]);
    assert_eq!(serial.status.code(), Some(0), "{}", stderr(&serial));
    assert_eq!(stdout(&serial), stdout(&batched));
    assert_eq!(stdout(&serial), stdout(&default));
    // bad values / wrong commands are usage errors
    assert_fails(
        &["sample", &bell, "10", "--shot-batch", "0"],
        EXIT_USAGE,
        "--shot-batch must be at least 1",
    );
    assert_fails(
        &["simulate", "--shot-batch", "8", &bell],
        EXIT_USAGE,
        "does not apply",
    );
    assert_fails(
        &["draw", "--no-bytecode", &bell],
        EXIT_USAGE,
        "does not apply",
    );
}

#[test]
fn frames_flag_is_policed_and_the_fallback_matches_the_distribution() {
    let bell = bell();
    // --no-frames belongs to sample and compile only
    assert_fails(
        &["counts", &bell, "10", "--no-frames"],
        EXIT_USAGE,
        "does not apply",
    );
    assert_fails(
        &["draw", "--no-frames", &bell],
        EXIT_USAGE,
        "does not apply",
    );
    // a noisy Clifford sample reports the frame path; the opt-out
    // reports the state-vector engine, and both runs exit cleanly
    let framed = qclab(&[
        "sample",
        &bell,
        "200",
        "--seed",
        "9",
        "--noise",
        "depolarizing:0.05",
    ]);
    assert_eq!(framed.status.code(), Some(0), "{}", stderr(&framed));
    assert!(
        stdout(&framed).contains("path: pauli-frame"),
        "stdout: {}",
        stdout(&framed)
    );
    let fallback = qclab(&[
        "sample",
        &bell,
        "200",
        "--seed",
        "9",
        "--noise",
        "depolarizing:0.05",
        "--no-frames",
    ]);
    assert_eq!(fallback.status.code(), Some(0), "{}", stderr(&fallback));
    assert!(
        stdout(&fallback).contains("path: per-shot"),
        "stdout: {}",
        stdout(&fallback)
    );
    // the compile report names the classification and the chosen path
    let report = qclab(&["compile", &bell]);
    assert_eq!(report.status.code(), Some(0), "{}", stderr(&report));
    let text = stdout(&report);
    assert!(text.contains("clifford:     yes"), "{text}");
    assert!(text.contains("noisy shots:  pauli-frame sampler"), "{text}");
}

#[test]
fn panics_in_dispatch_become_a_clean_sim_error() {
    // the injected panic proves the containment wrapper: a bug report
    // message on stderr and the simulation-failure exit code, no abort
    let out = Command::new(env!("CARGO_BIN_EXE_qclab"))
        .args(["stats", &bell()])
        .env("QCLAB_INJECT_PANIC", "1")
        .output()
        .expect("binary must spawn");
    assert_eq!(out.status.code(), Some(EXIT_SIM), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("internal error"), "stderr: {err}");
    assert!(err.contains("report"), "stderr: {err}");
}

#[test]
fn sample_is_deterministic_in_the_seed() {
    let bell = bell();
    let a = qclab(&[
        "sample",
        &bell,
        "100",
        "--seed",
        "7",
        "--noise",
        "bitflip:0.1",
    ]);
    let b = qclab(&[
        "sample",
        &bell,
        "100",
        "--seed",
        "7",
        "--noise",
        "bitflip:0.1",
    ]);
    let c = qclab(&[
        "sample",
        &bell,
        "100",
        "--seed",
        "8",
        "--noise",
        "bitflip:0.1",
    ]);
    assert_eq!(stdout(&a), stdout(&b));
    assert_ne!(stdout(&a), stdout(&c));
}
