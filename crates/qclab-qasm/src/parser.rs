//! Recursive-descent parser for the supported OpenQASM 2.0 subset.
//!
//! Supported grammar: the `OPENQASM 2.0;` header, `include` (accepted and
//! ignored — the `qelib1` gate set is built in), `qreg`/`creg`
//! declarations, gate definitions, gate applications with parameter
//! expressions and register broadcasting, `measure`, `reset` and
//! `barrier`. `if` and `opaque` are rejected with a clear message.

use crate::ast::*;
use crate::lexer::{tokenize, SpannedTok, Tok};
use qclab_core::QclabError;

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    /// Current expression-nesting depth; bounded by [`MAX_EXPR_DEPTH`] so
    /// pathological inputs like `((((…` error out instead of overflowing
    /// the stack.
    depth: usize,
}

/// Maximum expression nesting (parentheses, unary signs, function calls).
/// Far above anything a real program needs, far below stack exhaustion.
const MAX_EXPR_DEPTH: usize = 128;

/// Largest integer literal accepted for register sizes and indices.
/// Keeps `v as usize` exact and leaves headroom for the importer's own
/// register-size checks.
const MAX_UINT: f64 = u32::MAX as f64;

fn perr(line: usize, message: impl Into<String>) -> QclabError {
    QclabError::QasmParse {
        line,
        message: message.into(),
    }
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), QclabError> {
        let line = self.line();
        match self.next() {
            Some(t) if &t == want => Ok(()),
            Some(t) => Err(perr(line, format!("expected {what}, found {t:?}"))),
            None => Err(perr(line, format!("expected {what}, found end of input"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, QclabError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(perr(line, format!("expected {what}, found {t:?}"))),
            None => Err(perr(line, format!("expected {what}, found end of input"))),
        }
    }

    fn expect_uint(&mut self, what: &str) -> Result<usize, QclabError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Number(v)) if v >= 0.0 && v.fract() == 0.0 && v <= MAX_UINT => Ok(v as usize),
            Some(Tok::Number(v)) if v > MAX_UINT => {
                Err(perr(line, format!("{what} {v} is too large")))
            }
            Some(t) => Err(perr(line, format!("expected {what}, found {t:?}"))),
            None => Err(perr(line, format!("expected {what}, found end of input"))),
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    // ---- expressions -------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, QclabError> {
        self.parse_add()
    }

    fn parse_add(&mut self) -> Result<Expr, QclabError> {
        let mut lhs = self.parse_mul()?;
        loop {
            if self.eat(&Tok::Plus) {
                let rhs = self.parse_mul()?;
                lhs = Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.eat(&Tok::Minus) {
                let rhs = self.parse_mul()?;
                lhs = Expr::Bin(BinOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, QclabError> {
        let mut lhs = self.parse_pow()?;
        loop {
            if self.eat(&Tok::Star) {
                let rhs = self.parse_pow()?;
                lhs = Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs));
            } else if self.eat(&Tok::Slash) {
                let rhs = self.parse_pow()?;
                lhs = Expr::Bin(BinOp::Div, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_pow(&mut self) -> Result<Expr, QclabError> {
        let base = self.parse_unary()?;
        if self.eat(&Tok::Caret) {
            // right-associative
            let exp = self.parse_pow()?;
            Ok(Expr::Bin(BinOp::Pow, Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, QclabError> {
        if self.depth >= MAX_EXPR_DEPTH {
            return Err(perr(self.line(), "expression nesting too deep"));
        }
        self.depth += 1;
        let result = self.parse_unary_inner();
        self.depth -= 1;
        result
    }

    fn parse_unary_inner(&mut self) -> Result<Expr, QclabError> {
        if self.eat(&Tok::Minus) {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.eat(&Tok::Plus) {
            return self.parse_unary();
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Expr, QclabError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Number(v)) => Ok(Expr::Num(v)),
            Some(Tok::Ident(name)) => {
                if name == "pi" {
                    Ok(Expr::Pi)
                } else if let Some(f) = Func::from_name(&name) {
                    self.expect(&Tok::LParen, "'(' after function name")?;
                    let arg = self.parse_expr()?;
                    self.expect(&Tok::RParen, "')' after function argument")?;
                    Ok(Expr::Call(f, Box::new(arg)))
                } else {
                    Ok(Expr::Param(name))
                }
            }
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, "closing ')'")?;
                Ok(e)
            }
            Some(t) => Err(perr(line, format!("unexpected token {t:?} in expression"))),
            None => Err(perr(line, "unexpected end of input in expression")),
        }
    }

    // ---- arguments ---------------------------------------------------

    fn parse_arg(&mut self) -> Result<Arg, QclabError> {
        let reg = self.expect_ident("register name")?;
        let index = if self.eat(&Tok::LBracket) {
            let i = self.expect_uint("register index")?;
            self.expect(&Tok::RBracket, "closing ']'")?;
            Some(i)
        } else {
            None
        };
        Ok(Arg { reg, index })
    }

    fn parse_args(&mut self) -> Result<Vec<Arg>, QclabError> {
        let mut args = vec![self.parse_arg()?];
        while self.eat(&Tok::Comma) {
            args.push(self.parse_arg()?);
        }
        Ok(args)
    }

    /// A gate call after its name has been consumed.
    fn parse_gate_call(&mut self, name: String, line: usize) -> Result<GateCall, QclabError> {
        let mut params = Vec::new();
        if self.eat(&Tok::LParen) && !self.eat(&Tok::RParen) {
            params.push(self.parse_expr()?);
            while self.eat(&Tok::Comma) {
                params.push(self.parse_expr()?);
            }
            self.expect(&Tok::RParen, "closing ')' after parameters")?;
        }
        let args = self.parse_args()?;
        self.expect(&Tok::Semicolon, "';' after gate application")?;
        Ok(GateCall {
            name,
            params,
            args,
            line,
        })
    }

    // ---- statements --------------------------------------------------

    fn parse_reg(&mut self) -> Result<(String, usize), QclabError> {
        let name = self.expect_ident("register name")?;
        self.expect(&Tok::LBracket, "'['")?;
        let size = self.expect_uint("register size")?;
        self.expect(&Tok::RBracket, "']'")?;
        self.expect(&Tok::Semicolon, "';'")?;
        Ok((name, size))
    }

    fn parse_gate_def(&mut self) -> Result<GateDef, QclabError> {
        let name = self.expect_ident("gate name")?;
        let mut params = Vec::new();
        if self.eat(&Tok::LParen) && !self.eat(&Tok::RParen) {
            params.push(self.expect_ident("parameter name")?);
            while self.eat(&Tok::Comma) {
                params.push(self.expect_ident("parameter name")?);
            }
            self.expect(&Tok::RParen, "')' after gate parameters")?;
        }
        let mut qargs = vec![self.expect_ident("qubit argument")?];
        while self.eat(&Tok::Comma) {
            qargs.push(self.expect_ident("qubit argument")?);
        }
        self.expect(&Tok::LBrace, "'{' starting gate body")?;
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            let line = self.line();
            let gname = self.expect_ident("gate name in body")?;
            if gname == "barrier" {
                // barriers inside gate bodies are no-ops; skip to ';'
                while self.peek() != Some(&Tok::Semicolon) && self.peek().is_some() {
                    self.pos += 1;
                }
                self.expect(&Tok::Semicolon, "';'")?;
                continue;
            }
            body.push(self.parse_gate_call(gname, line)?);
        }
        self.expect(&Tok::RBrace, "'}' ending gate body")?;
        Ok(GateDef {
            name,
            params,
            qargs,
            body,
        })
    }

    fn parse_program(&mut self) -> Result<Program, QclabError> {
        let mut program = Program::default();

        // optional header: OPENQASM <version>;
        if self.peek() == Some(&Tok::Ident("OPENQASM".into())) {
            self.pos += 1;
            let line = self.line();
            match self.next() {
                Some(Tok::Number(v)) if (v - 2.0).abs() < 1.0 => {}
                Some(t) => return Err(perr(line, format!("unsupported QASM version {t:?}"))),
                None => return Err(perr(line, "missing QASM version")),
            }
            self.expect(&Tok::Semicolon, "';' after version")?;
        }

        while let Some(tok) = self.peek().cloned() {
            let line = self.line();
            match tok {
                Tok::Ident(kw) => {
                    self.pos += 1;
                    match kw.as_str() {
                        "include" => {
                            // the built-in gate table plays the role of
                            // qelib1.inc; the file itself is not read
                            match self.next() {
                                Some(Tok::Str(_)) => {}
                                _ => return Err(perr(line, "expected include file string")),
                            }
                            self.expect(&Tok::Semicolon, "';' after include")?;
                        }
                        "qreg" => {
                            let (name, size) = self.parse_reg()?;
                            program.statements.push(Stmt::Qreg { name, size });
                        }
                        "creg" => {
                            let (name, size) = self.parse_reg()?;
                            program.statements.push(Stmt::Creg { name, size });
                        }
                        "gate" => {
                            let def = self.parse_gate_def()?;
                            program.statements.push(Stmt::GateDef(def));
                        }
                        "measure" => {
                            let qubit = self.parse_arg()?;
                            self.expect(&Tok::Arrow, "'->' in measure")?;
                            let cbit = self.parse_arg()?;
                            self.expect(&Tok::Semicolon, "';' after measure")?;
                            program.statements.push(Stmt::Measure { qubit, cbit, line });
                        }
                        "reset" => {
                            let qubit = self.parse_arg()?;
                            self.expect(&Tok::Semicolon, "';' after reset")?;
                            program.statements.push(Stmt::Reset { qubit, line });
                        }
                        "barrier" => {
                            let args = self.parse_args()?;
                            self.expect(&Tok::Semicolon, "';' after barrier")?;
                            program.statements.push(Stmt::Barrier { args, line });
                        }
                        "if" => {
                            return Err(perr(
                                line,
                                "classically controlled 'if' statements are not supported",
                            ));
                        }
                        "opaque" => {
                            return Err(perr(line, "'opaque' gates are not supported"));
                        }
                        gate_name => {
                            let call = self.parse_gate_call(gate_name.to_string(), line)?;
                            program.statements.push(Stmt::Apply(call));
                        }
                    }
                }
                other => {
                    return Err(perr(line, format!("unexpected token {other:?}")));
                }
            }
        }
        Ok(program)
    }
}

/// Parses OpenQASM 2.0 source into a [`Program`].
pub fn parse(src: &str) -> Result<Program, QclabError> {
    let toks = tokenize(src)?;
    Parser {
        toks,
        pos: 0,
        depth: 0,
    }
    .parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_QASM: &str = r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0], q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
"#;

    #[test]
    fn parses_the_paper_listing() {
        let p = parse(PAPER_QASM).unwrap();
        assert_eq!(p.statements.len(), 6);
        match &p.statements[0] {
            Stmt::Qreg { name, size } => {
                assert_eq!(name, "q");
                assert_eq!(*size, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.statements[3] {
            Stmt::Apply(call) => {
                assert_eq!(call.name, "cx");
                assert_eq!(call.args.len(), 2);
                assert_eq!(call.args[1].index, Some(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_parameters_with_expressions() {
        let p = parse("qreg q[1]; rz(pi/2) q[0]; u3(0.1, -pi, 2*pi) q[0];").unwrap();
        match &p.statements[1] {
            Stmt::Apply(call) => {
                assert_eq!(call.params.len(), 1);
                let v = call.params[0].eval(&Default::default()).unwrap();
                assert!((v - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.statements[2] {
            Stmt::Apply(call) => assert_eq!(call.params.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_gate_definition() {
        let src = "gate rzz(theta) a,b { cx a,b; rz(theta) b; cx a,b; }";
        let p = parse(src).unwrap();
        match &p.statements[0] {
            Stmt::GateDef(def) => {
                assert_eq!(def.name, "rzz");
                assert_eq!(def.params, vec!["theta"]);
                assert_eq!(def.qargs, vec!["a", "b"]);
                assert_eq!(def.body.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn broadcast_argument_without_index() {
        let p = parse("qreg q[3]; h q;").unwrap();
        match &p.statements[1] {
            Stmt::Apply(call) => assert_eq!(call.args[0].index, None),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reset_and_barrier() {
        let p = parse("qreg q[2]; reset q[0]; barrier q[0], q[1];").unwrap();
        assert!(matches!(p.statements[1], Stmt::Reset { .. }));
        match &p.statements[2] {
            Stmt::Barrier { args, .. } => assert_eq!(args.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_if_and_opaque() {
        assert!(parse("if (c==1) x q[0];").is_err());
        assert!(parse("opaque magic q;").is_err());
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse("qreg q[2];\nh q[0]\nx q[1];").unwrap_err();
        match e {
            QclabError::QasmParse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deep_expression_nesting_errors_instead_of_overflowing() {
        for pathological in [
            format!(
                "qreg q[1]; rz({}1{}) q[0];",
                "(".repeat(5000),
                ")".repeat(5000)
            ),
            format!("qreg q[1]; rz({}1) q[0];", "-".repeat(5000)),
            format!("qreg q[1]; rz({}", "(".repeat(100_000)),
            format!(
                "qreg q[1]; rz({}pi(1{}) q[0];",
                "cos(".repeat(5000),
                ")".repeat(5000)
            ),
        ] {
            let e = parse(&pathological).unwrap_err();
            assert!(matches!(e, QclabError::QasmParse { .. }));
        }
        // moderately nested expressions still parse
        let ok = format!("qreg q[1]; rz({}1{}) q[0];", "(".repeat(60), ")".repeat(60));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn oversized_integer_literals_are_rejected() {
        assert!(parse("qreg q[99999999999999999999];").is_err());
        assert!(parse("qreg q[1e300];").is_err());
        assert!(parse("qreg q[2]; h q[18446744073709551616];").is_err());
    }

    #[test]
    fn expression_precedence() {
        let p = parse("qreg q[1]; rz(1+2*3^2) q[0];").unwrap();
        match &p.statements[1] {
            Stmt::Apply(call) => {
                assert_eq!(call.params[0].eval(&Default::default()).unwrap(), 19.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
