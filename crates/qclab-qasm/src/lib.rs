//! # qclab-qasm
//!
//! OpenQASM 2.0 compatibility for qclab circuits (paper Sec. 4): the
//! exporter behind QCLAB's `toQASM`, plus a full lexer/parser/importer so
//! circuits round-trip — which is also how the exporter is tested.
//!
//! ```
//! use qclab_core::prelude::*;
//! use qclab_qasm::{from_qasm, to_qasm};
//!
//! let mut circuit = QCircuit::new(2);
//! circuit.push_back(Hadamard::new(0));
//! circuit.push_back(CNOT::new(0, 1));
//! let qasm = to_qasm(&circuit).unwrap();
//! assert!(qasm.contains("cx q[0], q[1];"));
//!
//! let back = from_qasm(&qasm).unwrap();
//! assert_eq!(back.nb_gates(), 2);
//! ```

pub mod ast;
pub mod emit;
pub mod import;
pub mod lexer;
pub mod parser;

use qclab_core::{QCircuit, QclabError};

/// Serializes a circuit to OpenQASM 2.0 (QCLAB's `circuit.toQASM()`).
pub fn to_qasm(circuit: &QCircuit) -> Result<String, QclabError> {
    emit::circuit_to_qasm(circuit)
}

/// Parses OpenQASM 2.0 source into a circuit.
pub fn from_qasm(src: &str) -> Result<QCircuit, QclabError> {
    import::program_to_circuit(&parser::parse(src)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_core::gates::factories::*;
    use qclab_core::prelude::*;

    /// Round-trip helper: export, re-import, and compare unitaries.
    fn round_trip_unitary(circuit: &QCircuit) {
        let qasm = to_qasm(circuit).unwrap();
        let back = from_qasm(&qasm).unwrap();
        assert_eq!(back.nb_qubits(), circuit.nb_qubits());
        let m1 = circuit.to_matrix().unwrap();
        let m2 = back.to_matrix().unwrap();
        assert!(
            m1.approx_eq(&m2, 1e-10),
            "round trip changed the unitary:\n{qasm}"
        );
    }

    #[test]
    fn round_trip_fixed_gates() {
        let mut c = QCircuit::new(3);
        c.push_back(Hadamard::new(0));
        c.push_back(PauliX::new(1));
        c.push_back(PauliY::new(2));
        c.push_back(PauliZ::new(0));
        c.push_back(SGate::new(1));
        c.push_back(SdgGate::new(2));
        c.push_back(TGate::new(0));
        c.push_back(TdgGate::new(1));
        c.push_back(SXGate::new(2));
        c.push_back(SXdgGate::new(0));
        round_trip_unitary(&c);
    }

    #[test]
    fn round_trip_parametric_gates() {
        let mut c = QCircuit::new(2);
        c.push_back(RotationX::new(0, 0.37));
        c.push_back(RotationY::new(1, -1.2));
        c.push_back(RotationZ::new(0, 2.5));
        c.push_back(PhaseGate::new(1, 0.9));
        c.push_back(U2Gate::new(0, 0.1, 0.2));
        c.push_back(U3Gate::new(1, 1.0, -0.5, 0.25));
        round_trip_unitary(&c);
    }

    #[test]
    fn round_trip_two_qubit_gates() {
        let mut c = QCircuit::new(3);
        c.push_back(SwapGate::new(0, 2));
        c.push_back(ISwapGate::new(1, 2));
        c.push_back(RotationXX::new(0, 1, 0.7));
        c.push_back(RotationYY::new(1, 2, -0.4));
        c.push_back(RotationZZ::new(0, 2, 1.9));
        round_trip_unitary(&c);
    }

    #[test]
    fn round_trip_controlled_gates() {
        let mut c = QCircuit::new(3);
        c.push_back(CNOT::new(0, 1));
        c.push_back(CY::new(1, 2));
        c.push_back(CZ::new(0, 2));
        c.push_back(CH::new(2, 0));
        c.push_back(CRX::new(0, 1, 0.3));
        c.push_back(CRY::new(1, 0, 0.6));
        c.push_back(CRZ::new(2, 1, -0.9));
        c.push_back(CPhase::new(0, 2, 1.1));
        c.push_back(Toffoli::new(0, 1, 2));
        round_trip_unitary(&c);
    }

    #[test]
    fn round_trip_lowered_gates() {
        // gates that the exporter must decompose
        let mut c = QCircuit::new(3);
        c.push_back(CNOT::with_control_state(0, 1, 0));
        c.push_back(Gate::S(2).controlled(0, 1)); // ABC path
        c.push_back(MCZ::new(&[0, 1], 2, &[1, 1]));
        c.push_back(MCX::new(&[1, 2], 0, &[0, 1]));
        round_trip_unitary(&c);
    }

    #[test]
    fn round_trip_deeply_controlled_gates() {
        // 3- and 4-control gates exercised through the Barenco lowering
        let mut c = QCircuit::new(5);
        c.push_back(MCX::new(&[0, 1, 2], 3, &[1, 1, 1]));
        c.push_back(MCX::new(&[0, 1, 4], 2, &[0, 1, 0]));
        c.push_back(MCX::new(&[0, 1, 2, 3], 4, &[1, 0, 1, 1]));
        c.push_back(MCZ::new(&[0, 1, 2], 4, &[1, 1, 0]));
        round_trip_unitary(&c);
    }

    #[test]
    fn round_trip_multi_controlled_rotation() {
        let mut c = QCircuit::new(4);
        c.push_back(
            Gate::RotationY {
                qubit: 3,
                theta: 0.83,
            }
            .controlled(0, 1)
            .controlled(1, 1)
            .controlled(2, 0),
        );
        round_trip_unitary(&c);
    }

    #[test]
    fn round_trip_custom_gate_up_to_phase() {
        let u = qclab_core::gates::matrices::u3(0.7, 0.3, -1.1).scale(qclab_math::scalar::cis(0.4));
        let mut c = QCircuit::new(1);
        c.push_back(CustomGate::new("G", &[0], u).unwrap());
        let qasm = to_qasm(&c).unwrap();
        let back = from_qasm(&qasm).unwrap();
        let m1 = c.to_matrix().unwrap();
        let m2 = back.to_matrix().unwrap();
        // compare up to one global phase
        let ratio = m1[(0, 0)] / m2[(0, 0)];
        assert!((ratio.norm() - 1.0).abs() < 1e-10);
        assert!(m2.scale(ratio).approx_eq(&m1, 1e-10));
    }

    #[test]
    fn round_trip_with_measurements_and_reset() {
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(Measurement::z(0));
        c.push_back(CircuitItem::Reset(0));
        c.push_back(Measurement::x(1));
        let qasm = to_qasm(&c).unwrap();
        let back = from_qasm(&qasm).unwrap();
        // same observable behaviour: simulate both
        let s1 = c.simulate_bitstring("00").unwrap();
        let s2 = back.simulate_bitstring("00").unwrap();
        assert_eq!(s1.results(), s2.results());
        for (p, q) in s1.probabilities().iter().zip(s2.probabilities()) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn grover_circuit_round_trip() {
        // the paper's Grover circuit with blocks flattens into clean QASM
        let mut oracle = QCircuit::new(2);
        oracle.push_back(CZ::new(0, 1));
        let mut diffuser = QCircuit::new(2);
        diffuser.push_back(Hadamard::new(0));
        diffuser.push_back(Hadamard::new(1));
        diffuser.push_back(PauliZ::new(0));
        diffuser.push_back(PauliZ::new(1));
        diffuser.push_back(CZ::new(0, 1));
        diffuser.push_back(Hadamard::new(0));
        diffuser.push_back(Hadamard::new(1));

        let mut gc = QCircuit::new(2);
        gc.push_back(Hadamard::new(0));
        gc.push_back(Hadamard::new(1));
        gc.push_back(oracle);
        gc.push_back(diffuser);
        round_trip_unitary(&gc);
    }
}
