//! Tokenizer for OpenQASM 2.0 source text.
//!
//! Produces a flat token stream with line numbers for error reporting.
//! Handles `//` line comments, string literals (for `include`), reals,
//! integers, identifiers/keywords and the operator/punctuation set of the
//! OpenQASM 2.0 grammar.

use qclab_core::QclabError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`qreg`, `measure`, gate names, …).
    Ident(String),
    /// Numeric literal (integers are also parsed as reals; integer-ness
    /// is re-checked where the grammar requires it).
    Number(f64),
    /// String literal, quotes stripped (only used by `include`).
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semicolon,
    /// `->` in measure statements.
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    /// `==` (accepted but unused: `if` statements are rejected later with
    /// a clear message rather than a lex error).
    EqEq,
}

/// A token paired with its 1-based source line.
#[derive(Clone, Debug, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: usize,
}

/// Tokenizes QASM source. Returns a lex error with line info on an
/// unexpected character or an unterminated string.
pub fn tokenize(src: &str) -> Result<Vec<SpannedTok>, QclabError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;

    let err = |line: usize, msg: String| QclabError::QasmParse { line, message: msg };

    while let Some(&ch) = chars.peek() {
        match ch {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    // line comment
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    out.push(SpannedTok {
                        tok: Tok::Slash,
                        line,
                    });
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == '"' {
                        closed = true;
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                    }
                    s.push(c);
                }
                if !closed {
                    return Err(err(line, "unterminated string literal".into()));
                }
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() || c == '.' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || c == '.' {
                        s.push(c);
                        chars.next();
                    } else if (c == 'e' || c == 'E') && !s.is_empty() {
                        // exponent part; may be followed by a sign
                        s.push(c);
                        chars.next();
                        if let Some(&sign) = chars.peek() {
                            if sign == '+' || sign == '-' {
                                s.push(sign);
                                chars.next();
                            }
                        }
                    } else {
                        break;
                    }
                }
                let v: f64 = s
                    .parse()
                    .map_err(|_| err(line, format!("invalid number '{s}'")))?;
                out.push(SpannedTok {
                    tok: Tok::Number(v),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(s),
                    line,
                });
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    out.push(SpannedTok {
                        tok: Tok::Arrow,
                        line,
                    });
                } else {
                    out.push(SpannedTok {
                        tok: Tok::Minus,
                        line,
                    });
                }
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(SpannedTok {
                        tok: Tok::EqEq,
                        line,
                    });
                } else {
                    return Err(err(line, "unexpected '='".into()));
                }
            }
            _ => {
                chars.next();
                let tok = match ch {
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    ',' => Tok::Comma,
                    ';' => Tok::Semicolon,
                    '+' => Tok::Plus,
                    '*' => Tok::Star,
                    '^' => Tok::Caret,
                    other => {
                        return Err(err(line, format!("unexpected character '{other}'")));
                    }
                };
                out.push(SpannedTok { tok, line });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_statement() {
        assert_eq!(
            toks("qreg q[2];"),
            vec![
                Tok::Ident("qreg".into()),
                Tok::Ident("q".into()),
                Tok::LBracket,
                Tok::Number(2.0),
                Tok::RBracket,
                Tok::Semicolon
            ]
        );
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(
            toks("measure q[0] -> c[0];")[4..6],
            [Tok::RBracket, Tok::Arrow]
        );
        assert_eq!(toks("-1")[0], Tok::Minus);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("h q[0]; // apply hadamard\nx q[1];").len(),
            12 // two gate statements of 6 tokens each
        );
    }

    #[test]
    fn string_literal() {
        assert_eq!(
            toks("include \"qelib1.inc\";"),
            vec![
                Tok::Ident("include".into()),
                Tok::Str("qelib1.inc".into()),
                Tok::Semicolon
            ]
        );
    }

    #[test]
    fn numbers_with_exponent_and_decimal() {
        assert_eq!(toks("2.5e-3")[0], Tok::Number(2.5e-3));
        assert_eq!(toks("0.5")[0], Tok::Number(0.5));
        assert_eq!(toks("3")[0], Tok::Number(3.0));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let spanned = tokenize("h q[0];\n\nx q[1];").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned.last().unwrap().line, 3);
    }

    #[test]
    fn bad_character_errors_with_line() {
        let e = tokenize("h q[0];\n$").unwrap_err();
        match e {
            QclabError::QasmParse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("include \"oops;").is_err());
    }
}
