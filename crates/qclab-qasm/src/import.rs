//! Conversion of a parsed OpenQASM [`Program`] into a [`QCircuit`].
//!
//! Multiple quantum registers are concatenated into one qclab register
//! (offsets assigned in declaration order). User gate definitions are
//! expanded inline — parameters are evaluated and formal qubit arguments
//! substituted, recursively, so the resulting circuit contains only
//! built-in gates. Bare register arguments broadcast across the register
//! as the OpenQASM spec prescribes.

use crate::ast::{Arg, GateCall, Program, Stmt};
use qclab_core::circuit::CircuitItem;
use qclab_core::gates::factories::gate_from_mnemonic;
use qclab_core::{Measurement, QCircuit, QclabError};
use std::collections::HashMap;

fn perr(line: usize, message: impl Into<String>) -> QclabError {
    QclabError::QasmParse {
        line,
        message: message.into(),
    }
}

/// Cap on the combined size of all quantum registers. Far beyond anything
/// simulable (the state-vector guard kicks in near 30 qubits), but low
/// enough that broadcasting over a declared register can never exhaust
/// memory.
pub const MAX_IMPORT_QUBITS: usize = 1 << 20;

struct RegTable {
    /// name -> (offset, size)
    qregs: HashMap<String, (usize, usize)>,
    nb_qubits: usize,
    cregs: HashMap<String, usize>,
}

impl RegTable {
    /// Resolves an indexed argument to an absolute qubit.
    fn resolve(&self, arg: &Arg, line: usize) -> Result<usize, QclabError> {
        let (off, size) = self
            .qregs
            .get(&arg.reg)
            .ok_or_else(|| perr(line, format!("unknown quantum register '{}'", arg.reg)))?;
        let idx = arg
            .index
            .ok_or_else(|| perr(line, format!("register '{}' used without index", arg.reg)))?;
        if idx >= *size {
            return Err(perr(
                line,
                format!("index {idx} out of range for qreg {}[{size}]", arg.reg),
            ));
        }
        Ok(off + idx)
    }

    /// Broadcast width of a call: the common size of all bare registers
    /// (1 if every argument is indexed).
    fn broadcast_width(&self, args: &[Arg], line: usize) -> Result<usize, QclabError> {
        let mut width: Option<usize> = None;
        for a in args {
            if a.index.is_none() {
                let (_, size) = self
                    .qregs
                    .get(&a.reg)
                    .ok_or_else(|| perr(line, format!("unknown quantum register '{}'", a.reg)))?;
                match width {
                    None => width = Some(*size),
                    Some(w) if w == *size => {}
                    Some(w) => {
                        return Err(perr(
                            line,
                            format!("broadcast size mismatch: {w} vs {size}"),
                        ))
                    }
                }
            }
        }
        Ok(width.unwrap_or(1))
    }

    /// Resolves argument `a` for broadcast iteration `k`.
    fn resolve_broadcast(&self, a: &Arg, k: usize, line: usize) -> Result<usize, QclabError> {
        if a.index.is_some() {
            self.resolve(a, line)
        } else {
            self.resolve(
                &Arg {
                    reg: a.reg.clone(),
                    index: Some(k),
                },
                line,
            )
        }
    }
}

/// Expands a gate call into built-in gates, resolving user definitions
/// recursively. `qubits` are the absolute qubit indices of the call.
fn expand_call(
    name: &str,
    params: &[f64],
    qubits: &[usize],
    defs: &HashMap<String, crate::ast::GateDef>,
    line: usize,
    depth: usize,
    out: &mut Vec<qclab_core::Gate>,
) -> Result<(), QclabError> {
    if depth > 64 {
        return Err(perr(line, "gate definition recursion too deep"));
    }
    if let Some(def) = defs.get(name) {
        if def.params.len() != params.len() || def.qargs.len() != qubits.len() {
            return Err(perr(
                line,
                format!(
                    "gate '{name}' expects {} params / {} qubits, got {} / {}",
                    def.params.len(),
                    def.qargs.len(),
                    params.len(),
                    qubits.len()
                ),
            ));
        }
        let bindings: HashMap<String, f64> = def
            .params
            .iter()
            .cloned()
            .zip(params.iter().copied())
            .collect();
        let qmap: HashMap<&str, usize> = def
            .qargs
            .iter()
            .map(String::as_str)
            .zip(qubits.iter().copied())
            .collect();
        for call in &def.body {
            let sub_params: Vec<f64> = call
                .params
                .iter()
                .map(|e| e.eval(&bindings))
                .collect::<Result<_, _>>()?;
            let sub_qubits: Vec<usize> = call
                .args
                .iter()
                .map(|a| {
                    qmap.get(a.reg.as_str()).copied().ok_or_else(|| {
                        perr(call.line, format!("unknown gate argument '{}'", a.reg))
                    })
                })
                .collect::<Result<_, _>>()?;
            expand_call(
                &call.name,
                &sub_params,
                &sub_qubits,
                defs,
                call.line,
                depth + 1,
                out,
            )?;
        }
        Ok(())
    } else {
        let g = gate_from_mnemonic(name, params, qubits).map_err(|e| perr(line, format!("{e}")))?;
        out.push(g);
        Ok(())
    }
}

/// Builds a [`QCircuit`] from a parsed program.
pub fn program_to_circuit(program: &Program) -> Result<QCircuit, QclabError> {
    // first pass: registers and definitions
    let mut table = RegTable {
        qregs: HashMap::new(),
        nb_qubits: 0,
        cregs: HashMap::new(),
    };
    let mut defs: HashMap<String, crate::ast::GateDef> = HashMap::new();
    for stmt in &program.statements {
        match stmt {
            Stmt::Qreg { name, size } => {
                if table.qregs.contains_key(name) {
                    return Err(perr(0, format!("duplicate qreg '{name}'")));
                }
                table.qregs.insert(name.clone(), (table.nb_qubits, *size));
                // checked: a hostile `qreg q[huge]` must error, not
                // overflow (debug) or wrap (release) — and registers past
                // MAX_IMPORT_QUBITS would only die later in broadcasting
                // or simulation, so refuse them with a clear message here
                table.nb_qubits = match table.nb_qubits.checked_add(*size) {
                    Some(total) if total <= MAX_IMPORT_QUBITS => total,
                    _ => {
                        return Err(perr(
                            0,
                            format!("quantum registers exceed {MAX_IMPORT_QUBITS} qubits in total"),
                        ))
                    }
                };
            }
            Stmt::Creg { name, size } => {
                table.cregs.insert(name.clone(), *size);
            }
            Stmt::GateDef(def) => {
                defs.insert(def.name.clone(), def.clone());
            }
            _ => {}
        }
    }
    if table.nb_qubits == 0 {
        return Err(perr(0, "program declares no quantum register"));
    }

    let mut circuit = QCircuit::new(table.nb_qubits);

    // second pass: operations
    for stmt in &program.statements {
        match stmt {
            Stmt::Qreg { .. } | Stmt::Creg { .. } | Stmt::GateDef(_) => {}
            Stmt::Apply(GateCall {
                name,
                params,
                args,
                line,
            }) => {
                let width = table.broadcast_width(args, *line)?;
                let values: Vec<f64> = params
                    .iter()
                    .map(|e| e.eval(&HashMap::new()))
                    .collect::<Result<_, _>>()?;
                for k in 0..width {
                    let qubits: Vec<usize> = args
                        .iter()
                        .map(|a| table.resolve_broadcast(a, k, *line))
                        .collect::<Result<_, _>>()?;
                    let mut gates = Vec::new();
                    expand_call(name, &values, &qubits, &defs, *line, 0, &mut gates)?;
                    for g in gates {
                        circuit
                            .try_push_back(g)
                            .map_err(|e| perr(*line, format!("{e}")))?;
                    }
                }
            }
            Stmt::Measure { qubit, cbit, line } => {
                // classical bit target is validated for existence only —
                // qclab records outcomes per branch, not in cregs
                if !table.cregs.contains_key(&cbit.reg) {
                    return Err(perr(
                        *line,
                        format!("unknown classical register '{}'", cbit.reg),
                    ));
                }
                if qubit.index.is_none() {
                    // broadcast measurement over the whole register
                    let (off, size) = table.qregs[&qubit.reg];
                    for k in 0..size {
                        circuit
                            .try_push_back(Measurement::z(off + k))
                            .map_err(|e| perr(*line, format!("{e}")))?;
                    }
                } else {
                    let q = table.resolve(qubit, *line)?;
                    circuit
                        .try_push_back(Measurement::z(q))
                        .map_err(|e| perr(*line, format!("{e}")))?;
                }
            }
            Stmt::Reset { qubit, line } => {
                let q = table.resolve(qubit, *line)?;
                circuit
                    .try_push_back(CircuitItem::Reset(q))
                    .map_err(|e| perr(*line, format!("{e}")))?;
            }
            Stmt::Barrier { args, line } => {
                let mut qs = Vec::new();
                for a in args {
                    if a.index.is_none() {
                        let (off, size) = *table
                            .qregs
                            .get(&a.reg)
                            .ok_or_else(|| perr(*line, format!("unknown qreg '{}'", a.reg)))?;
                        qs.extend(off..off + size);
                    } else {
                        qs.push(table.resolve(a, *line)?);
                    }
                }
                circuit
                    .try_push_back(CircuitItem::Barrier(qs))
                    .map_err(|e| perr(*line, format!("{e}")))?;
            }
        }
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn import(src: &str) -> QCircuit {
        program_to_circuit(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn paper_listing_builds_paper_circuit() {
        let src = r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0], q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
"#;
        let c = import(src);
        assert_eq!(c.nb_qubits(), 2);
        assert_eq!(c.nb_gates(), 2);
        assert_eq!(c.nb_measurements(), 2);
        let sim = c.simulate_bitstring("00").unwrap();
        assert_eq!(sim.results(), &["00", "11"]);
    }

    #[test]
    fn gate_definition_expansion() {
        let src = "qreg q[2]; gate rzz2(theta) a,b { cx a,b; rz(theta) b; cx a,b; } rzz2(pi/4) q[0], q[1];";
        let c = import(src);
        assert_eq!(c.nb_gates(), 3);
    }

    #[test]
    fn nested_gate_definitions() {
        let src = "qreg q[1]; gate g1 a { h a; } gate g2 a { g1 a; g1 a; } g2 q[0];";
        let c = import(src);
        assert_eq!(c.nb_gates(), 2);
        // H twice = identity
        assert!(c.to_matrix().unwrap().is_identity(1e-12));
    }

    #[test]
    fn broadcast_over_register() {
        let c = import("qreg q[3]; h q;");
        assert_eq!(c.nb_gates(), 3);
        let c = import("qreg q[2]; creg c[2]; measure q -> c;");
        assert_eq!(c.nb_measurements(), 2);
    }

    #[test]
    fn two_qregs_are_concatenated() {
        let c = import("qreg a[1]; qreg b[2]; x a[0]; x b[1];");
        assert_eq!(c.nb_qubits(), 3);
        // second x lands on absolute qubit 2
        let sim = c.simulate_bitstring("000").unwrap();
        assert_eq!(sim.branches().len(), 1);
        let s = sim.states()[0];
        let idx = s.iter().position(|z| z.norm() > 0.5).unwrap();
        assert_eq!(qclab_math::bits::index_to_bitstring(idx, 3), "101");
    }

    #[test]
    fn import_errors() {
        // unknown register
        assert!(program_to_circuit(&parse("qreg q[1]; x r[0];").unwrap()).is_err());
        // index out of range
        assert!(program_to_circuit(&parse("qreg q[1]; x q[4];").unwrap()).is_err());
        // unknown gate
        assert!(program_to_circuit(&parse("qreg q[1]; bogus q[0];").unwrap()).is_err());
        // wrong arity for a defined gate
        assert!(
            program_to_circuit(&parse("qreg q[2]; gate g a { h a; } g q[0], q[1];").unwrap())
                .is_err()
        );
        // no qreg at all
        assert!(program_to_circuit(&parse("creg c[1];").unwrap()).is_err());
        // unknown creg in measure
        assert!(program_to_circuit(&parse("qreg q[1]; measure q[0] -> c[0];").unwrap()).is_err());
    }

    #[test]
    fn reset_and_barrier_import() {
        let c =
            import("qreg q[2]; creg c[2]; h q[0]; reset q[0]; barrier q; measure q[0] -> c[0];");
        assert_eq!(c.len(), 4);
        let sim = c.simulate_bitstring("00").unwrap();
        // reset forces outcome 0 on both branches
        assert!(sim.results().iter().all(|r| *r == "0"));
    }
}
