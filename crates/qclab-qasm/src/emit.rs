//! OpenQASM 2.0 export (`circuit.toQASM()` in QCLAB, paper Sec. 4).
//!
//! Gates with a standard mnemonic are emitted directly. The dialect is the
//! extended `qelib1` gate set understood by modern toolchains (includes
//! `sx`, `crx`, `iswap`, `rxx`, `ryy`, `rzz`). Gates without a mnemonic
//! are lowered:
//!
//! * open controls (control state 0) — conjugated with `x`,
//! * singly-controlled gates outside the native set — ABC decomposition
//!   over `{rz, ry, cx, u1}` via [`qclab_core::decompose`],
//! * doubly-controlled X/Z/SWAP — `ccx` (with basis-change conjugation),
//! * custom single-qubit unitaries — `u3` (exact up to global phase),
//! * X-/Y-/custom-basis measurements — basis change, `measure`, undo.
//!
//! Multi-controlled gates with three or more controls and custom
//! multi-qubit unitaries have no faithful OpenQASM 2 spelling and are
//! reported as errors.

use qclab_core::circuit::CircuitItem;
use qclab_core::decompose::{controlled_to_basic, zyz};
use qclab_core::measurement::Basis;
use qclab_core::{Gate, Measurement, QCircuit, QclabError};
use std::fmt::Write;

fn fmt_angle(theta: f64) -> String {
    // render clean multiples of pi symbolically for readability
    let pi = std::f64::consts::PI;
    let ratio = theta / pi;
    for den in [1i64, 2, 3, 4, 6, 8] {
        let num = ratio * den as f64;
        if (num - num.round()).abs() < 1e-12 && num.round() != 0.0 {
            let num = num.round() as i64;
            return match (num, den) {
                (1, 1) => "pi".to_string(),
                (-1, 1) => "-pi".to_string(),
                (n, 1) => format!("{n}*pi"),
                (1, d) => format!("pi/{d}"),
                (-1, d) => format!("-pi/{d}"),
                (n, d) => format!("{n}*pi/{d}"),
            };
        }
    }
    format!("{theta:.17}")
}

fn unsupported(what: impl Into<String>) -> QclabError {
    QclabError::Unavailable(format!("cannot export to OpenQASM 2.0: {}", what.into()))
}

struct Emitter {
    out: String,
}

impl Emitter {
    fn line(&mut self, s: &str) {
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn emit_simple(&mut self, mnemonic: &str, params: &[f64], qubits: &[usize]) {
        let mut s = String::from(mnemonic);
        if !params.is_empty() {
            let ps: Vec<String> = params.iter().map(|&p| fmt_angle(p)).collect();
            // write! to a String is infallible
            let _ = write!(s, "({})", ps.join(", "));
        }
        let qs: Vec<String> = qubits.iter().map(|q| format!("q[{q}]")).collect();
        let _ = write!(s, " {};", qs.join(", "));
        self.line(&s);
    }

    /// Emits a gate, lowering it if it has no native mnemonic.
    fn emit_gate(&mut self, gate: &Gate) -> Result<(), QclabError> {
        match gate {
            Gate::Identity(q) => self.emit_simple("id", &[], &[*q]),
            Gate::Hadamard(q) => self.emit_simple("h", &[], &[*q]),
            Gate::PauliX(q) => self.emit_simple("x", &[], &[*q]),
            Gate::PauliY(q) => self.emit_simple("y", &[], &[*q]),
            Gate::PauliZ(q) => self.emit_simple("z", &[], &[*q]),
            Gate::S(q) => self.emit_simple("s", &[], &[*q]),
            Gate::Sdg(q) => self.emit_simple("sdg", &[], &[*q]),
            Gate::T(q) => self.emit_simple("t", &[], &[*q]),
            Gate::Tdg(q) => self.emit_simple("tdg", &[], &[*q]),
            Gate::SX(q) => self.emit_simple("sx", &[], &[*q]),
            Gate::SXdg(q) => self.emit_simple("sxdg", &[], &[*q]),
            Gate::RotationX { qubit, theta } => self.emit_simple("rx", &[*theta], &[*qubit]),
            Gate::RotationY { qubit, theta } => self.emit_simple("ry", &[*theta], &[*qubit]),
            Gate::RotationZ { qubit, theta } => self.emit_simple("rz", &[*theta], &[*qubit]),
            Gate::Phase { qubit, theta } => self.emit_simple("u1", &[*theta], &[*qubit]),
            Gate::U2 { qubit, phi, lambda } => self.emit_simple("u2", &[*phi, *lambda], &[*qubit]),
            Gate::U3 {
                qubit,
                theta,
                phi,
                lambda,
            } => self.emit_simple("u3", &[*theta, *phi, *lambda], &[*qubit]),
            Gate::Swap(a, b) => self.emit_simple("swap", &[], &[*a, *b]),
            Gate::ISwap(a, b) => self.emit_simple("iswap", &[], &[*a, *b]),
            Gate::RotationXX { qubits, theta } => {
                self.emit_simple("rxx", &[*theta], &[qubits[0], qubits[1]])
            }
            Gate::RotationYY { qubits, theta } => {
                self.emit_simple("ryy", &[*theta], &[qubits[0], qubits[1]])
            }
            Gate::RotationZZ { qubits, theta } => {
                self.emit_simple("rzz", &[*theta], &[qubits[0], qubits[1]])
            }
            Gate::Custom {
                name,
                qubits,
                matrix,
            } => {
                if qubits.len() != 1 {
                    return Err(unsupported(format!("custom multi-qubit gate '{name}'")));
                }
                // exact up to an unobservable global phase
                let a = zyz(matrix);
                self.emit_simple("rz", &[a.delta], &[qubits[0]]);
                self.emit_simple("ry", &[a.gamma], &[qubits[0]]);
                self.emit_simple("rz", &[a.beta], &[qubits[0]]);
            }
            Gate::Controlled {
                controls,
                control_states,
                target,
            } => self.emit_controlled(controls, control_states, target)?,
        }
        Ok(())
    }

    fn emit_controlled(
        &mut self,
        controls: &[usize],
        control_states: &[u8],
        target: &Gate,
    ) -> Result<(), QclabError> {
        // conjugate open controls with X so the body sees all-ones controls
        let opens: Vec<usize> = controls
            .iter()
            .zip(control_states.iter())
            .filter(|&(_, &s)| s == 0)
            .map(|(&q, _)| q)
            .collect();
        for &q in &opens {
            self.emit_simple("x", &[], &[q]);
        }
        let result = self.emit_closed_controlled(controls, target);
        for &q in &opens {
            self.emit_simple("x", &[], &[q]);
        }
        result
    }

    /// Controlled gate with every control on state 1.
    fn emit_closed_controlled(
        &mut self,
        controls: &[usize],
        target: &Gate,
    ) -> Result<(), QclabError> {
        match (controls.len(), target) {
            (1, Gate::PauliX(t)) => self.emit_simple("cx", &[], &[controls[0], *t]),
            (1, Gate::PauliY(t)) => self.emit_simple("cy", &[], &[controls[0], *t]),
            (1, Gate::PauliZ(t)) => self.emit_simple("cz", &[], &[controls[0], *t]),
            (1, Gate::Hadamard(t)) => self.emit_simple("ch", &[], &[controls[0], *t]),
            (1, Gate::RotationX { qubit, theta }) => {
                self.emit_simple("crx", &[*theta], &[controls[0], *qubit])
            }
            (1, Gate::RotationY { qubit, theta }) => {
                self.emit_simple("cry", &[*theta], &[controls[0], *qubit])
            }
            (1, Gate::RotationZ { qubit, theta }) => {
                self.emit_simple("crz", &[*theta], &[controls[0], *qubit])
            }
            (1, Gate::Phase { qubit, theta }) => {
                self.emit_simple("cu1", &[*theta], &[controls[0], *qubit])
            }
            (1, Gate::Swap(a, b)) => self.emit_simple("cswap", &[], &[controls[0], *a, *b]),
            (1, other) if other.nb_targets() == 1 => {
                // generic singly-controlled 1q gate: ABC decomposition
                let t = other.targets()[0];
                for g in controlled_to_basic(controls[0], 1, t, &other.target_matrix()) {
                    self.emit_gate(&g)?;
                }
            }
            (2, Gate::PauliX(t)) => self.emit_simple("ccx", &[], &[controls[0], controls[1], *t]),
            (2, Gate::PauliZ(t)) => {
                // ccz = H(t) ccx H(t)
                self.emit_simple("h", &[], &[*t]);
                self.emit_simple("ccx", &[], &[controls[0], controls[1], *t]);
                self.emit_simple("h", &[], &[*t]);
            }
            (_, Gate::Swap(a, b)) => {
                // multi-controlled SWAP via SWAP = CX(b,a)·CX(a,b)·CX(b,a):
                // only the middle CX needs the extra controls
                self.emit_simple("cx", &[], &[*b, *a]);
                let inner = Gate::PauliX(*b).controlled(*a, 1);
                let inner = controls.iter().fold(inner, |g, &cq| g.controlled(cq, 1));
                self.emit_gate(&inner)?;
                self.emit_simple("cx", &[], &[*b, *a]);
            }
            (_, other) if other.nb_targets() == 1 => {
                // k >= 2 controls on a general single-qubit gate: lower to
                // singly-controlled gates via the Barenco recursion, then
                // emit each piece (CX natively, controlled-customs via ABC)
                let t = other.targets()[0];
                let states = vec![1u8; controls.len()];
                for g in qclab_core::decompose::multi_controlled_to_singly_controlled(
                    controls,
                    &states,
                    t,
                    &other.target_matrix(),
                ) {
                    self.emit_gate(&g)?;
                }
            }
            (k, other) => {
                return Err(unsupported(format!(
                    "{k}-controlled {}-target gate (decompose it first)",
                    other.nb_targets()
                )));
            }
        }
        Ok(())
    }

    fn emit_measurement(&mut self, m: &Measurement) -> Result<(), QclabError> {
        let q = m.qubit();
        match m.basis() {
            Basis::Z => self.emit_simple_measure(q),
            Basis::X => {
                self.emit_simple("h", &[], &[q]);
                self.emit_simple_measure(q);
                self.emit_simple("h", &[], &[q]);
            }
            Basis::Y => {
                // V† = H·S†, emitted in circuit order: sdg then h
                self.emit_simple("sdg", &[], &[q]);
                self.emit_simple("h", &[], &[q]);
                self.emit_simple_measure(q);
                self.emit_simple("h", &[], &[q]);
                self.emit_simple("s", &[], &[q]);
            }
            Basis::Custom { change, .. } => {
                let a = zyz(&change.dagger());
                self.emit_simple("rz", &[a.delta], &[q]);
                self.emit_simple("ry", &[a.gamma], &[q]);
                self.emit_simple("rz", &[a.beta], &[q]);
                self.emit_simple_measure(q);
                let b = zyz(change);
                self.emit_simple("rz", &[b.delta], &[q]);
                self.emit_simple("ry", &[b.gamma], &[q]);
                self.emit_simple("rz", &[b.beta], &[q]);
            }
        }
        Ok(())
    }

    fn emit_simple_measure(&mut self, q: usize) {
        self.line(&format!("measure q[{q}] -> c[{q}];"));
    }

    fn emit_items(&mut self, circuit: &QCircuit, offset: usize) -> Result<(), QclabError> {
        for item in circuit.items() {
            match item {
                CircuitItem::Gate(g) => {
                    let g = if offset == 0 {
                        g.clone()
                    } else {
                        g.shifted(offset)
                    };
                    self.emit_gate(&g)?;
                }
                CircuitItem::Measurement(m) => {
                    let m = if offset == 0 {
                        m.clone()
                    } else {
                        m.shifted(offset)
                    };
                    self.emit_measurement(&m)?;
                }
                CircuitItem::Reset(q) => self.line(&format!("reset q[{}];", q + offset)),
                CircuitItem::Barrier(qs) => {
                    let args: Vec<String> =
                        qs.iter().map(|q| format!("q[{}]", q + offset)).collect();
                    self.line(&format!("barrier {};", args.join(", ")));
                }
                CircuitItem::SubCircuit {
                    offset: sub_off,
                    circuit: sub,
                } => self.emit_items(sub, offset + sub_off)?,
            }
        }
        Ok(())
    }
}

/// Serializes a circuit to OpenQASM 2.0 source (`circuit.toQASM()`).
pub fn circuit_to_qasm(circuit: &QCircuit) -> Result<String, QclabError> {
    let n = circuit.nb_qubits();
    let mut e = Emitter {
        out: String::with_capacity(64 + circuit.len() * 16),
    };
    e.line("OPENQASM 2.0;");
    e.line("include \"qelib1.inc\";");
    e.line(&format!("qreg q[{n}];"));
    e.line(&format!("creg c[{n}];"));
    e.emit_items(circuit, 0)?;
    Ok(e.out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_core::gates::factories::*;

    #[test]
    fn paper_circuit_qasm_output() {
        // paper Sec. 4: the QASM listing for circuit (1)
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(Measurement::z(0));
        c.push_back(Measurement::z(1));
        let qasm = circuit_to_qasm(&c).unwrap();
        let expected = "OPENQASM 2.0;\n\
                        include \"qelib1.inc\";\n\
                        qreg q[2];\n\
                        creg c[2];\n\
                        h q[0];\n\
                        cx q[0], q[1];\n\
                        measure q[0] -> c[0];\n\
                        measure q[1] -> c[1];\n";
        assert_eq!(qasm, expected);
    }

    #[test]
    fn angle_formatting() {
        assert_eq!(fmt_angle(std::f64::consts::PI), "pi");
        assert_eq!(fmt_angle(-std::f64::consts::PI), "-pi");
        assert_eq!(fmt_angle(std::f64::consts::FRAC_PI_2), "pi/2");
        assert_eq!(fmt_angle(std::f64::consts::PI * 0.75), "3*pi/4");
        assert_eq!(fmt_angle(2.0 * std::f64::consts::PI), "2*pi");
        // non-multiples fall back to full precision decimals
        assert!(fmt_angle(0.123).starts_with("0.123"));
    }

    #[test]
    fn open_control_is_x_conjugated() {
        let mut c = QCircuit::new(2);
        c.push_back(CNOT::with_control_state(0, 1, 0));
        let qasm = circuit_to_qasm(&c).unwrap();
        let body: Vec<&str> = qasm.lines().skip(4).collect();
        assert_eq!(body, vec!["x q[0];", "cx q[0], q[1];", "x q[0];"]);
    }

    #[test]
    fn x_basis_measurement_is_h_conjugated() {
        let mut c = QCircuit::new(1);
        c.push_back(Measurement::x(0));
        let qasm = circuit_to_qasm(&c).unwrap();
        let body: Vec<&str> = qasm.lines().skip(4).collect();
        assert_eq!(body, vec!["h q[0];", "measure q[0] -> c[0];", "h q[0];"]);
    }

    #[test]
    fn toffoli_and_mcz_lowering() {
        let mut c = QCircuit::new(3);
        c.push_back(Toffoli::new(0, 1, 2));
        c.push_back(MCZ::new(&[0, 1], 2, &[1, 1]));
        let qasm = circuit_to_qasm(&c).unwrap();
        assert!(qasm.contains("ccx q[0], q[1], q[2];"));
        assert!(qasm.contains("h q[2];"));
    }

    #[test]
    fn paper_qec_mcx_exports_with_open_controls() {
        // MCX([3,4], 2, [0,1]) -> x-conjugated ccx
        let mut c = QCircuit::new(5);
        c.push_back(MCX::new(&[3, 4], 2, &[0, 1]));
        let qasm = circuit_to_qasm(&c).unwrap();
        let body: Vec<&str> = qasm.lines().skip(4).collect();
        assert_eq!(body, vec!["x q[3];", "ccx q[3], q[4], q[2];", "x q[3];"]);
    }

    #[test]
    fn generic_controlled_gate_is_abc_decomposed() {
        let mut c = QCircuit::new(2);
        c.push_back(Gate::S(1).controlled(0, 1)); // CS has no mnemonic here
        let qasm = circuit_to_qasm(&c).unwrap();
        assert!(qasm.contains("cx q[0], q[1];"));
        assert!(qasm.contains("u1"));
    }

    #[test]
    fn triple_controlled_x_is_lowered_not_rejected() {
        let mut c = QCircuit::new(4);
        c.push_back(MCX::new(&[0, 1, 2], 3, &[1, 1, 1]));
        let qasm = circuit_to_qasm(&c).unwrap();
        // the Barenco lowering leaves only native mnemonics
        for line in qasm.lines().skip(4) {
            let mnemonic = line
                .split_whitespace()
                .next()
                .unwrap()
                .split('(')
                .next()
                .unwrap();
            assert!(
                ["cx", "ccx", "rz", "ry", "u1", "x", "h"].contains(&mnemonic),
                "unexpected mnemonic in lowered output: {line}"
            );
        }
    }

    #[test]
    fn controlled_swap_with_two_controls_is_lowered() {
        let mut c = QCircuit::new(4);
        c.push_back(Gate::Swap(2, 3).controlled(0, 1).controlled(1, 1));
        assert!(circuit_to_qasm(&c).is_ok());
    }

    #[test]
    fn unsupported_exports_are_clean_errors() {
        let mut c = QCircuit::new(2);
        c.push_back(Gate::Custom {
            name: "big".into(),
            qubits: vec![0, 1],
            matrix: qclab_math::CMat::identity(4),
        });
        assert!(circuit_to_qasm(&c).is_err());
    }

    #[test]
    fn subcircuits_are_flattened_with_offsets() {
        let mut sub = QCircuit::new(1);
        sub.push_back(Hadamard::new(0));
        let mut c = QCircuit::new(3);
        c.push_back_at(2, sub).unwrap();
        let qasm = circuit_to_qasm(&c).unwrap();
        assert!(qasm.contains("h q[2];"));
    }
}
