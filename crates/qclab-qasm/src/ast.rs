//! Abstract syntax tree for the supported OpenQASM 2.0 subset, plus the
//! parameter-expression evaluator.

use qclab_core::QclabError;
use std::collections::HashMap;

/// A parameter expression (angle arithmetic over `pi`, literals, formal
/// parameters and the OpenQASM built-in functions).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// The constant `pi`.
    Pi,
    /// A formal gate parameter, resolved at expansion time.
    Param(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Built-in function call (`sin`, `cos`, `tan`, `exp`, `ln`, `sqrt`).
    Call(Func, Box<Expr>),
}

/// Binary operators of the OpenQASM expression grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
}

/// Built-in unary functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Func {
    Sin,
    Cos,
    Tan,
    Exp,
    Ln,
    Sqrt,
}

impl Func {
    /// Parses a function name.
    pub fn from_name(name: &str) -> Option<Func> {
        Some(match name {
            "sin" => Func::Sin,
            "cos" => Func::Cos,
            "tan" => Func::Tan,
            "exp" => Func::Exp,
            "ln" => Func::Ln,
            "sqrt" => Func::Sqrt,
            _ => return None,
        })
    }
}

impl Expr {
    /// Evaluates the expression with the given parameter bindings.
    pub fn eval(&self, params: &HashMap<String, f64>) -> Result<f64, QclabError> {
        Ok(match self {
            Expr::Num(v) => *v,
            Expr::Pi => std::f64::consts::PI,
            Expr::Param(name) => *params.get(name).ok_or_else(|| QclabError::QasmParse {
                line: 0,
                message: format!("unbound parameter '{name}'"),
            })?,
            Expr::Neg(e) => -e.eval(params)?,
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.eval(params)?, b.eval(params)?);
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Pow => a.powf(b),
                }
            }
            Expr::Call(f, e) => {
                let v = e.eval(params)?;
                match f {
                    Func::Sin => v.sin(),
                    Func::Cos => v.cos(),
                    Func::Tan => v.tan(),
                    Func::Exp => v.exp(),
                    Func::Ln => v.ln(),
                    Func::Sqrt => v.sqrt(),
                }
            }
        })
    }
}

/// An argument of a gate application or measurement: a register name with
/// an optional index (`q[3]` or bare `q` for broadcasting).
#[derive(Clone, Debug, PartialEq)]
pub struct Arg {
    pub reg: String,
    pub index: Option<usize>,
}

/// A gate application inside the main program or a gate-definition body.
#[derive(Clone, Debug, PartialEq)]
pub struct GateCall {
    pub name: String,
    pub params: Vec<Expr>,
    pub args: Vec<Arg>,
    pub line: usize,
}

/// A user gate definition (`gate name(params) qargs { body }`).
#[derive(Clone, Debug, PartialEq)]
pub struct GateDef {
    pub name: String,
    pub params: Vec<String>,
    pub qargs: Vec<String>,
    pub body: Vec<GateCall>,
}

/// A top-level statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `qreg name[n];`
    Qreg { name: String, size: usize },
    /// `creg name[n];`
    Creg { name: String, size: usize },
    /// A gate definition.
    GateDef(GateDef),
    /// A gate application.
    Apply(GateCall),
    /// `measure q[i] -> c[j];`
    Measure { qubit: Arg, cbit: Arg, line: usize },
    /// `reset q[i];`
    Reset { qubit: Arg, line: usize },
    /// `barrier args;`
    Barrier { args: Vec<Arg>, line: usize },
}

/// A parsed OpenQASM 2.0 program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    pub statements: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_arithmetic() {
        let e = Expr::Bin(BinOp::Div, Box::new(Expr::Pi), Box::new(Expr::Num(2.0)));
        let v = e.eval(&HashMap::new()).unwrap();
        assert!((v - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn eval_with_params_and_functions() {
        let mut params = HashMap::new();
        params.insert("theta".to_string(), 0.5);
        let e = Expr::Call(
            Func::Sin,
            Box::new(Expr::Bin(
                BinOp::Mul,
                Box::new(Expr::Num(2.0)),
                Box::new(Expr::Param("theta".into())),
            )),
        );
        assert!((e.eval(&params).unwrap() - 1f64.sin()).abs() < 1e-15);
    }

    #[test]
    fn unbound_parameter_is_an_error() {
        let e = Expr::Param("phi".into());
        assert!(e.eval(&HashMap::new()).is_err());
    }

    #[test]
    fn power_and_negation() {
        let e = Expr::Neg(Box::new(Expr::Bin(
            BinOp::Pow,
            Box::new(Expr::Num(2.0)),
            Box::new(Expr::Num(10.0)),
        )));
        assert_eq!(e.eval(&HashMap::new()).unwrap(), -1024.0);
    }

    #[test]
    fn func_name_table() {
        assert_eq!(Func::from_name("sqrt"), Some(Func::Sqrt));
        assert_eq!(Func::from_name("bogus"), None);
    }
}
