//! The [`QCircuit`] type: an ordered container of gates, measurements,
//! resets and nested sub-circuits (paper Sec. 2).
//!
//! Items are appended with [`QCircuit::push_back`], mirroring QCLAB's
//! `circuit.push_back(...)`. Sub-circuits are first-class items — the
//! Grover example of the paper builds `oracle` and `diffuser` circuits and
//! pushes them into the main circuit; [`QCircuit::as_block`] controls
//! whether renderers draw them as opaque boxes.

use crate::error::QclabError;
use crate::gates::Gate;
use crate::measurement::Measurement;
use qclab_math::CMat;

/// One entry of a quantum circuit.
#[derive(Clone, Debug, PartialEq)]
pub enum CircuitItem {
    /// A unitary gate.
    Gate(Gate),
    /// A single-qubit measurement.
    Measurement(Measurement),
    /// Reset of a qubit to `|0>` (measure in Z; flip on outcome 1).
    Reset(usize),
    /// A rendering/no-op barrier across the given qubits.
    Barrier(Vec<usize>),
    /// A nested sub-circuit placed at a qubit offset in this register.
    SubCircuit { offset: usize, circuit: QCircuit },
}

impl From<Gate> for CircuitItem {
    fn from(g: Gate) -> Self {
        CircuitItem::Gate(g)
    }
}

impl From<Measurement> for CircuitItem {
    fn from(m: Measurement) -> Self {
        CircuitItem::Measurement(m)
    }
}

impl From<QCircuit> for CircuitItem {
    fn from(c: QCircuit) -> Self {
        CircuitItem::SubCircuit {
            offset: 0,
            circuit: c,
        }
    }
}

impl CircuitItem {
    /// All qubits the item touches (relative to the containing circuit).
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            CircuitItem::Gate(g) => g.qubits(),
            CircuitItem::Measurement(m) => vec![m.qubit()],
            CircuitItem::Reset(q) => vec![*q],
            CircuitItem::Barrier(qs) => qs.clone(),
            CircuitItem::SubCircuit { offset, circuit } => {
                (*offset..offset + circuit.nb_qubits()).collect()
            }
        }
    }

    /// Validates the item against a register of `nb_qubits`.
    pub fn validate(&self, nb_qubits: usize) -> Result<(), QclabError> {
        match self {
            CircuitItem::Gate(g) => g.validate(nb_qubits),
            CircuitItem::Measurement(m) => m.validate(nb_qubits),
            CircuitItem::Reset(q) => {
                if *q >= nb_qubits {
                    Err(QclabError::QubitOutOfRange {
                        qubit: *q,
                        nb_qubits,
                    })
                } else {
                    Ok(())
                }
            }
            CircuitItem::Barrier(qs) => {
                for &q in qs {
                    if q >= nb_qubits {
                        return Err(QclabError::QubitOutOfRange {
                            qubit: q,
                            nb_qubits,
                        });
                    }
                }
                Ok(())
            }
            CircuitItem::SubCircuit { offset, circuit } => {
                if offset + circuit.nb_qubits() > nb_qubits {
                    return Err(QclabError::SubCircuitOutOfRange {
                        offset: *offset,
                        sub_qubits: circuit.nb_qubits(),
                        nb_qubits,
                    });
                }
                // items of the sub-circuit were validated when pushed
                Ok(())
            }
        }
    }
}

/// A quantum circuit on a fixed-size qubit register.
#[derive(Clone, Debug, PartialEq)]
pub struct QCircuit {
    nb_qubits: usize,
    items: Vec<CircuitItem>,
    name: Option<String>,
    draw_as_block: bool,
}

impl QCircuit {
    /// Creates an empty circuit on `nb_qubits` qubits
    /// (`qclab.QCircuit(n)`).
    pub fn new(nb_qubits: usize) -> Self {
        assert!(nb_qubits > 0, "QCircuit requires at least one qubit");
        QCircuit {
            nb_qubits,
            items: Vec::new(),
            name: None,
            draw_as_block: false,
        }
    }

    /// Number of qubits in the register.
    pub fn nb_qubits(&self) -> usize {
        self.nb_qubits
    }

    /// The circuit's items in order.
    pub fn items(&self) -> &[CircuitItem] {
        &self.items
    }

    /// Number of items (gates, measurements, resets, barriers, blocks).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the circuit has no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends an item; panics if the item does not fit the register.
    /// Returns `&mut self` so pushes can be chained.
    pub fn push_back(&mut self, item: impl Into<CircuitItem>) -> &mut Self {
        self.try_push_back(item).expect("invalid circuit item");
        self
    }

    /// Appends an item, reporting failures instead of panicking.
    pub fn try_push_back(&mut self, item: impl Into<CircuitItem>) -> Result<&mut Self, QclabError> {
        let item = item.into();
        item.validate(self.nb_qubits)?;
        self.items.push(item);
        Ok(self)
    }

    /// Appends a sub-circuit starting at qubit `offset` of this register.
    pub fn push_back_at(
        &mut self,
        offset: usize,
        circuit: QCircuit,
    ) -> Result<&mut Self, QclabError> {
        self.try_push_back(CircuitItem::SubCircuit { offset, circuit })
    }

    /// Inserts an item at position `index`.
    pub fn insert(&mut self, index: usize, item: impl Into<CircuitItem>) -> Result<(), QclabError> {
        let item = item.into();
        item.validate(self.nb_qubits)?;
        assert!(index <= self.items.len(), "insert index out of range");
        self.items.insert(index, item);
        Ok(())
    }

    /// Removes and returns the item at `index`.
    pub fn erase(&mut self, index: usize) -> CircuitItem {
        self.items.remove(index)
    }

    /// Clears all items.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Sets a display name (used when drawn as a block).
    pub fn set_name(&mut self, name: &str) -> &mut Self {
        self.name = Some(name.to_string());
        self
    }

    /// The display name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Marks the circuit to be drawn as an opaque named box
    /// (`circuit.asBlock` in QCLAB). Consumes nothing; toggles a flag.
    pub fn as_block(&mut self, name: &str) -> &mut Self {
        self.draw_as_block = true;
        self.name = Some(name.to_string());
        self
    }

    /// Reverts [`as_block`](Self::as_block) (`circuit.unBlock`).
    pub fn un_block(&mut self) -> &mut Self {
        self.draw_as_block = false;
        self
    }

    /// `true` if renderers should draw this circuit as a box.
    pub fn draws_as_block(&self) -> bool {
        self.draw_as_block
    }

    /// `true` if the circuit (recursively) contains no measurements or
    /// resets, i.e. it implements a unitary.
    pub fn is_unitary_circuit(&self) -> bool {
        self.items.iter().all(|item| match item {
            CircuitItem::Gate(_) | CircuitItem::Barrier(_) => true,
            CircuitItem::Measurement(_) | CircuitItem::Reset(_) => false,
            CircuitItem::SubCircuit { circuit, .. } => circuit.is_unitary_circuit(),
        })
    }

    /// Total number of gates, descending into sub-circuits.
    pub fn nb_gates(&self) -> usize {
        self.items
            .iter()
            .map(|item| match item {
                CircuitItem::Gate(_) => 1,
                CircuitItem::SubCircuit { circuit, .. } => circuit.nb_gates(),
                _ => 0,
            })
            .sum()
    }

    /// Total number of measurements, descending into sub-circuits.
    pub fn nb_measurements(&self) -> usize {
        self.items
            .iter()
            .map(|item| match item {
                CircuitItem::Measurement(_) => 1,
                CircuitItem::SubCircuit { circuit, .. } => circuit.nb_measurements(),
                _ => 0,
            })
            .sum()
    }

    /// Circuit depth: the number of layers when items are packed greedily
    /// to the left, each item occupying the full span of qubits between
    /// its lowest and highest wire (barriers and blocks count as one
    /// column over their span).
    #[allow(clippy::needless_range_loop)] // `level[lo..=hi]` reads clearer
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.nb_qubits];
        for item in &self.items {
            let qs = item.qubits();
            if qs.is_empty() {
                continue;
            }
            let lo = *qs.iter().min().unwrap();
            let hi = *qs.iter().max().unwrap();
            let col = (lo..=hi).map(|q| level[q]).max().unwrap() + 1;
            for q in lo..=hi {
                level[q] = col;
            }
        }
        level.into_iter().max().unwrap_or(0)
    }

    /// The adjoint (inverse) circuit: items reversed and each gate
    /// replaced by its adjoint. Fails if the circuit contains
    /// measurements or resets.
    pub fn adjoint(&self) -> Result<QCircuit, QclabError> {
        if !self.is_unitary_circuit() {
            return Err(QclabError::NonUnitaryCircuit("adjoint".into()));
        }
        let mut out = QCircuit::new(self.nb_qubits);
        out.name = self.name.as_ref().map(|n| format!("{n}†"));
        out.draw_as_block = self.draw_as_block;
        for item in self.items.iter().rev() {
            let adj = match item {
                CircuitItem::Gate(g) => CircuitItem::Gate(g.adjoint()),
                CircuitItem::Barrier(qs) => CircuitItem::Barrier(qs.clone()),
                CircuitItem::SubCircuit { offset, circuit } => CircuitItem::SubCircuit {
                    offset: *offset,
                    circuit: circuit.adjoint()?,
                },
                CircuitItem::Measurement(_) | CircuitItem::Reset(_) => unreachable!(),
            };
            out.items.push(adj);
        }
        Ok(out)
    }

    /// The full `2^n x 2^n` unitary implemented by the circuit, obtained
    /// by applying the circuit to every computational basis state. Fails
    /// if the circuit contains measurements or resets.
    pub fn to_matrix(&self) -> Result<CMat, QclabError> {
        if !self.is_unitary_circuit() {
            return Err(QclabError::NonUnitaryCircuit("to_matrix".into()));
        }
        let dim = crate::sim::guard::ResourceLimits::default().check_matrix(self.nb_qubits)?;
        // lower unfused so the matrix reflects the original gate list —
        // the fusion tests use `to_matrix` as their semantic oracle
        let program = self.compile_with(&crate::program::PlanOptions::unfused());
        let mut out = CMat::zeros(dim, dim);
        for j in 0..dim {
            let mut col = qclab_math::CVec::basis_state(dim, j);
            program.apply_unitary(&mut col);
            for i in 0..dim {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Structural content hash of the circuit: register size plus the
    /// flattened item stream (gate targets/controls/parameter bits,
    /// measurement bases, resets, barriers). Equal circuits hash equal;
    /// a nested sub-circuit hashes like its manual inlining. This is the
    /// plan-cache key — see [`crate::program`].
    pub fn fingerprint(&self) -> u64 {
        crate::program::fingerprint(self)
    }

    /// Lowers the circuit to a [`CompiledProgram`](crate::program::CompiledProgram)
    /// through the global plan cache, with default [`crate::program::PlanOptions`].
    pub fn compile(&self) -> std::sync::Arc<crate::program::CompiledProgram> {
        crate::program::compile(self, &crate::program::PlanOptions::default())
    }

    /// Lowers the circuit with explicit plan options (cached).
    pub fn compile_with(
        &self,
        options: &crate::program::PlanOptions,
    ) -> std::sync::Arc<crate::program::CompiledProgram> {
        crate::program::compile(self, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::factories::*;

    fn bell_circuit() -> QCircuit {
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c
    }

    #[test]
    fn push_back_validates() {
        let mut c = QCircuit::new(2);
        assert!(c.try_push_back(Hadamard::new(0)).is_ok());
        assert!(c.try_push_back(Hadamard::new(2)).is_err());
        assert!(c.try_push_back(Measurement::z(5)).is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid circuit item")]
    fn push_back_panics_on_invalid() {
        QCircuit::new(1).push_back(CNOT::new(0, 1));
    }

    #[test]
    fn counting_and_depth() {
        let mut c = bell_circuit();
        c.push_back(Measurement::z(0));
        c.push_back(Measurement::z(1));
        assert_eq!(c.nb_gates(), 2);
        assert_eq!(c.nb_measurements(), 2);
        // H | CNOT | M M  -> depth 3 (both measurements fit in column 3)
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn depth_packs_parallel_gates() {
        let mut c = QCircuit::new(3);
        c.push_back(Hadamard::new(0));
        c.push_back(Hadamard::new(1));
        c.push_back(Hadamard::new(2));
        assert_eq!(c.depth(), 1);
        c.push_back(CNOT::new(0, 2)); // spans all three wires
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn insert_and_erase() {
        let mut c = bell_circuit();
        c.insert(1, PauliX::new(1)).unwrap();
        assert_eq!(c.len(), 3);
        match c.erase(1) {
            CircuitItem::Gate(g) => assert_eq!(g, PauliX::new(1)),
            other => panic!("unexpected item {other:?}"),
        }
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn subcircuit_push_and_offset_validation() {
        let sub = bell_circuit();
        let mut big = QCircuit::new(4);
        assert!(big.push_back_at(2, sub.clone()).is_ok());
        assert!(big.push_back_at(3, sub).is_err()); // 2 qubits at offset 3 > 4
        assert_eq!(big.nb_gates(), 2);
    }

    #[test]
    fn block_flags() {
        let mut c = bell_circuit();
        assert!(!c.draws_as_block());
        c.as_block("bell");
        assert!(c.draws_as_block());
        assert_eq!(c.name(), Some("bell"));
        c.un_block();
        assert!(!c.draws_as_block());
    }

    #[test]
    fn unitary_circuit_detection() {
        let mut c = bell_circuit();
        assert!(c.is_unitary_circuit());
        c.push_back(Measurement::z(0));
        assert!(!c.is_unitary_circuit());
        assert!(c.adjoint().is_err());
        assert!(c.to_matrix().is_err());
    }

    #[test]
    fn reset_and_barrier_items() {
        let mut c = QCircuit::new(2);
        c.push_back(CircuitItem::Reset(1));
        c.push_back(CircuitItem::Barrier(vec![0, 1]));
        assert!(!c.is_unitary_circuit());
        assert_eq!(c.items()[0].qubits(), vec![1]);
        assert_eq!(c.items()[1].qubits(), vec![0, 1]);
    }
}
