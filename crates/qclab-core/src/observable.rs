//! Pauli-string observables and expectation values.
//!
//! Rounds out the simulator for variational-algorithm workflows: an
//! [`Observable`] is a real linear combination of Pauli strings, and its
//! expectation value `⟨ψ|O|ψ⟩` is evaluated directly on the state vector
//! by applying each string with the in-place kernels — no `2^n x 2^n`
//! matrix is ever formed.
//!
//! ```
//! use qclab_core::observable::Observable;
//! use qclab_math::scalar::cr;
//! use qclab_math::CVec;
//!
//! // <ZZ> = <XX> = 1 on the Bell state
//! let bell = CVec(vec![cr(0.5f64.sqrt()), cr(0.0), cr(0.0), cr(0.5f64.sqrt())]);
//! let obs = Observable::new(2).term(0.5, "ZZ").term(0.5, "XX");
//! assert!((obs.expectation(&bell) - 1.0).abs() < 1e-12);
//! ```

use crate::error::QclabError;
use crate::gates::Gate;
use crate::sim::kernel;
use qclab_math::scalar::cr;
use qclab_math::{CMat, CVec};

/// A single-qubit Pauli operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pauli {
    I,
    X,
    Y,
    Z,
}

impl Pauli {
    fn gate(self, qubit: usize) -> Option<Gate> {
        match self {
            Pauli::I => None,
            Pauli::X => Some(Gate::PauliX(qubit)),
            Pauli::Y => Some(Gate::PauliY(qubit)),
            Pauli::Z => Some(Gate::PauliZ(qubit)),
        }
    }

    fn matrix(self) -> CMat {
        use crate::gates::matrices as m;
        match self {
            Pauli::I => m::identity(),
            Pauli::X => m::pauli_x(),
            Pauli::Y => m::pauli_y(),
            Pauli::Z => m::pauli_z(),
        }
    }
}

/// A Pauli string on `n` qubits, e.g. `XIZ` (X on q0, Z on q2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PauliString {
    paulis: Vec<Pauli>,
}

impl PauliString {
    /// Parses a string of `I/X/Y/Z` characters, one per qubit (qubit 0
    /// first). Returns `None` on other characters or an empty string.
    pub fn parse(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let paulis = s
            .chars()
            .map(|c| match c.to_ascii_uppercase() {
                'I' => Some(Pauli::I),
                'X' => Some(Pauli::X),
                'Y' => Some(Pauli::Y),
                'Z' => Some(Pauli::Z),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?;
        Some(PauliString { paulis })
    }

    /// The identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            paulis: vec![Pauli::I; n],
        }
    }

    /// Builds a string with a single non-identity Pauli at `qubit`.
    pub fn single(n: usize, qubit: usize, p: Pauli) -> Self {
        assert!(qubit < n);
        let mut paulis = vec![Pauli::I; n];
        paulis[qubit] = p;
        PauliString { paulis }
    }

    /// Number of qubits.
    pub fn nb_qubits(&self) -> usize {
        self.paulis.len()
    }

    /// The Pauli acting on `qubit`.
    pub fn pauli_at(&self, qubit: usize) -> Pauli {
        self.paulis[qubit]
    }

    /// The non-identity positions with their Paulis (the string's
    /// support).
    pub fn support(&self) -> Vec<(usize, Pauli)> {
        self.paulis
            .iter()
            .enumerate()
            .filter(|(_, p)| **p != Pauli::I)
            .map(|(q, p)| (q, *p))
            .collect()
    }

    /// The number of non-identity factors (the string's weight).
    pub fn weight(&self) -> usize {
        self.paulis.iter().filter(|p| **p != Pauli::I).count()
    }

    /// Applies the string to `state` in place.
    pub fn apply(&self, state: &mut CVec) {
        let n = self.paulis.len();
        debug_assert_eq!(state.len(), 1usize << n);
        for (q, p) in self.paulis.iter().enumerate() {
            if let Some(g) = p.gate(q) {
                kernel::apply_gate(&g, state, n);
            }
        }
    }

    /// Expectation value `⟨ψ|P|ψ⟩` (real, since Pauli strings are
    /// Hermitian).
    pub fn expectation(&self, state: &CVec) -> f64 {
        let mut applied = state.clone();
        self.apply(&mut applied);
        state.inner(&applied).re
    }

    /// Dense matrix of the string (exponential size — for tests and tiny
    /// registers only).
    pub fn matrix(&self) -> CMat {
        let mut m = CMat::identity(1);
        for p in &self.paulis {
            m = m.kron(&p.matrix());
        }
        m
    }
}

impl std::fmt::Display for PauliString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for p in &self.paulis {
            write!(f, "{:?}", p)?;
        }
        Ok(())
    }
}

/// A Hermitian observable: a real linear combination of Pauli strings.
#[derive(Clone, Debug, PartialEq)]
pub struct Observable {
    nb_qubits: usize,
    terms: Vec<(f64, PauliString)>,
}

impl Observable {
    /// Creates an empty observable (the zero operator) on `n` qubits.
    pub fn new(nb_qubits: usize) -> Self {
        Observable {
            nb_qubits,
            terms: Vec::new(),
        }
    }

    /// Adds `coeff · string`. Panics on a qubit-count mismatch.
    pub fn add_term(&mut self, coeff: f64, string: PauliString) -> &mut Self {
        assert_eq!(
            string.nb_qubits(),
            self.nb_qubits,
            "Pauli string size mismatch"
        );
        self.terms.push((coeff, string));
        self
    }

    /// Convenience: adds `coeff · <parsed string>`. Panics on a malformed
    /// string — use [`try_term`](Self::try_term) for user-supplied input.
    pub fn term(mut self, coeff: f64, s: &str) -> Self {
        let string = PauliString::parse(s).expect("invalid Pauli string");
        self.add_term(coeff, string);
        self
    }

    /// Fallible [`term`](Self::term): reports malformed or mismatched
    /// Pauli strings as errors instead of panicking.
    pub fn try_term(mut self, coeff: f64, s: &str) -> Result<Self, QclabError> {
        let string = PauliString::parse(s)
            .ok_or_else(|| QclabError::InvalidGateSpec(format!("invalid Pauli string '{s}'")))?;
        if string.nb_qubits() != self.nb_qubits {
            return Err(QclabError::DimensionMismatch {
                expected: self.nb_qubits,
                actual: string.nb_qubits(),
            });
        }
        self.terms.push((coeff, string));
        Ok(self)
    }

    /// The terms of the observable.
    pub fn terms(&self) -> &[(f64, PauliString)] {
        &self.terms
    }

    /// Number of qubits.
    pub fn nb_qubits(&self) -> usize {
        self.nb_qubits
    }

    /// Expectation value `⟨ψ|O|ψ⟩`.
    pub fn expectation(&self, state: &CVec) -> f64 {
        self.terms
            .iter()
            .map(|(c, p)| c * p.expectation(state))
            .sum()
    }

    /// Variance `⟨O²⟩ − ⟨O⟩²` in state `ψ`.
    pub fn variance(&self, state: &CVec) -> f64 {
        // O|ψ> computed term by term
        let mut opsi = CVec::zeros(state.len());
        for (c, p) in &self.terms {
            let mut t = state.clone();
            p.apply(&mut t);
            for (o, v) in opsi.iter_mut().zip(t.iter()) {
                *o += v * cr(*c);
            }
        }
        let mean = state.inner(&opsi).re;
        let second_moment = opsi.inner(&opsi).re;
        (second_moment - mean * mean).max(0.0)
    }

    /// The Heisenberg XXZ chain:
    /// `H = J Σ (X_i X_{i+1} + Y_i Y_{i+1} + Δ·Z_i Z_{i+1})`.
    pub fn heisenberg_xxz(n: usize, j: f64, delta: f64) -> Self {
        let mut obs = Observable::new(n);
        for q in 0..n.saturating_sub(1) {
            for (p, w) in [(Pauli::X, j), (Pauli::Y, j), (Pauli::Z, j * delta)] {
                let mut s = PauliString::identity(n);
                s.paulis[q] = p;
                s.paulis[q + 1] = p;
                obs.add_term(w, s);
            }
        }
        obs
    }

    /// The transverse-field Ising Hamiltonian on a chain:
    /// `H = -J Σ Z_i Z_{i+1} - h Σ X_i`.
    pub fn ising_chain(n: usize, j: f64, h: f64) -> Self {
        let mut obs = Observable::new(n);
        for q in 0..n.saturating_sub(1) {
            let mut s = PauliString::identity(n);
            s.paulis[q] = Pauli::Z;
            s.paulis[q + 1] = Pauli::Z;
            obs.add_term(-j, s);
        }
        for q in 0..n {
            obs.add_term(-h, PauliString::single(n, q, Pauli::X));
        }
        obs
    }

    /// Dense matrix (tests / tiny registers only).
    pub fn matrix(&self) -> CMat {
        let dim = 1usize << self.nb_qubits;
        let mut m = CMat::zeros(dim, dim);
        for (c, p) in &self.terms {
            m = &m + &p.matrix().scale(cr(*c));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_math::scalar::c;
    use qclab_math::DensityMatrix;

    const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    fn bell() -> CVec {
        CVec(vec![cr(INV_SQRT2), cr(0.0), cr(0.0), cr(INV_SQRT2)])
    }

    #[test]
    fn parse_and_display() {
        let p = PauliString::parse("XIZ").unwrap();
        assert_eq!(p.nb_qubits(), 3);
        assert_eq!(p.to_string(), "XIZ");
        assert!(PauliString::parse("XQ").is_none());
        assert!(PauliString::parse("").is_none());
    }

    #[test]
    fn single_qubit_expectations() {
        let zero = CVec::basis_state(2, 0);
        let plus = CVec(vec![cr(INV_SQRT2), cr(INV_SQRT2)]);
        let v = CVec(vec![cr(INV_SQRT2), c(0.0, INV_SQRT2)]); // +Y eigenstate
        assert!((PauliString::parse("Z").unwrap().expectation(&zero) - 1.0).abs() < 1e-14);
        assert!(PauliString::parse("X").unwrap().expectation(&zero).abs() < 1e-14);
        assert!((PauliString::parse("X").unwrap().expectation(&plus) - 1.0).abs() < 1e-14);
        assert!((PauliString::parse("Y").unwrap().expectation(&v) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn bell_state_correlations() {
        let b = bell();
        for (s, expect) in [
            ("ZZ", 1.0),
            ("XX", 1.0),
            ("YY", -1.0),
            ("ZI", 0.0),
            ("IX", 0.0),
        ] {
            let got = PauliString::parse(s).unwrap().expectation(&b);
            assert!((got - expect).abs() < 1e-14, "<{s}> = {got}, want {expect}");
        }
    }

    #[test]
    fn expectation_matches_density_matrix_path() {
        let state = CVec(vec![cr(0.5), c(0.0, 0.5), cr(0.5), c(0.5, 0.0)]).normalized();
        let rho = DensityMatrix::from_pure(&state);
        for s in ["XZ", "YI", "ZY", "XX"] {
            let p = PauliString::parse(s).unwrap();
            let fast = p.expectation(&state);
            let dense = rho.expectation(&p.matrix());
            assert!((fast - dense).abs() < 1e-12, "mismatch for {s}");
        }
    }

    #[test]
    fn observable_linear_combination() {
        let obs = Observable::new(2).term(0.5, "ZZ").term(-0.25, "XX");
        let b = bell();
        // 0.5·1 − 0.25·1 = 0.25
        assert!((obs.expectation(&b) - 0.25).abs() < 1e-14);
        // dense path agrees
        let rho = DensityMatrix::from_pure(&b);
        assert!((rho.expectation(&obs.matrix()) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pauli_string_variance_is_one_minus_mean_squared() {
        let zero = CVec::basis_state(4, 0);
        let obs = Observable::new(2).term(1.0, "XI");
        // <X> = 0 on |00>, X² = I, so variance = 1
        assert!((obs.variance(&zero) - 1.0).abs() < 1e-14);
        let obs = Observable::new(2).term(1.0, "ZI");
        // Z eigenstate: variance 0
        assert!(obs.variance(&zero).abs() < 1e-14);
    }

    #[test]
    fn ising_chain_ground_limits() {
        // h = 0: |00..0> is a ground state with energy -J(n-1)
        let n = 4;
        let obs = Observable::ising_chain(n, 1.0, 0.0);
        let zero = CVec::basis_state(1 << n, 0);
        assert!((obs.expectation(&zero) + 3.0).abs() < 1e-13);
        // J = 0: |++..+> has energy -h·n
        let obs = Observable::ising_chain(n, 0.0, 1.0);
        let mut plus = CVec::basis_state(1 << n, 0);
        for q in 0..n {
            kernel::apply_gate(&Gate::Hadamard(q), &mut plus, n);
        }
        assert!((obs.expectation(&plus) + 4.0).abs() < 1e-13);
    }

    #[test]
    fn heisenberg_xxz_structure_and_neel_energy() {
        let n = 4;
        let obs = Observable::heisenberg_xxz(n, 1.0, 0.5);
        assert_eq!(obs.terms().len(), 3 * (n - 1));
        // Néel state |0101>: <XX> = <YY> = 0 per bond, <ZZ> = -1
        let neel = CVec::basis_state(1 << n, 0b0101);
        let e = obs.expectation(&neel);
        assert!((e - (-0.5 * 3.0)).abs() < 1e-12, "Néel energy {e}");
    }

    #[test]
    fn pauli_string_accessors() {
        let p = PauliString::parse("XIZY").unwrap();
        assert_eq!(p.pauli_at(0), Pauli::X);
        assert_eq!(p.pauli_at(1), Pauli::I);
        assert_eq!(p.weight(), 3);
        assert_eq!(
            p.support(),
            vec![(0, Pauli::X), (2, Pauli::Z), (3, Pauli::Y)]
        );
    }

    #[test]
    fn ghz_ising_energy() {
        // GHZ: <ZZ> = 1 on every bond, <X> = 0 -> E = -J(n-1)
        let n = 5;
        let mut state = CVec::basis_state(1 << n, 0);
        kernel::apply_gate(&Gate::Hadamard(0), &mut state, n);
        for q in 1..n {
            kernel::apply_gate(&Gate::PauliX(q).controlled(q - 1, 1), &mut state, n);
        }
        let obs = Observable::ising_chain(n, 1.0, 0.7);
        assert!((obs.expectation(&state) + 4.0).abs() < 1e-12);
    }
}
