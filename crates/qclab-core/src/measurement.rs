//! Single-qubit measurements in arbitrary bases.
//!
//! Measurements in QCLAB are single-qubit operations (paper Sec. 3.3). The
//! default basis is Z; X- and Y-basis measurements are preconfigured, and
//! custom bases are supported through a user-supplied basis-change unitary
//! `V` whose **columns are the measurement basis states**. The simulator
//! applies `V†` before a standard Z measurement and `V` afterwards, so
//! probabilities and post-measurement states come out in the requested
//! basis — exactly the scheme the paper describes for its X-measurement
//! (`H — measure — H`).

use crate::error::QclabError;
use qclab_math::scalar::{c, cr};
use qclab_math::CMat;

const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// The measurement basis of a [`Measurement`].
#[derive(Clone, Debug, PartialEq)]
pub enum Basis {
    /// Computational basis (default).
    Z,
    /// Hadamard basis `{|+>, |->}`.
    X,
    /// Circular basis `{|+i>, |-i>}`.
    Y,
    /// User-defined basis: `label` for rendering, `change` is the unitary
    /// whose columns are the basis states.
    Custom { label: String, change: CMat },
}

impl Basis {
    /// The basis-change unitary `V` (columns = basis states). Measuring in
    /// this basis means applying `V†`, measuring in Z, then applying `V`.
    pub fn change_matrix(&self) -> CMat {
        match self {
            Basis::Z => CMat::identity(2),
            // columns |+>, |->
            Basis::X => CMat::mat2(cr(INV_SQRT2), cr(INV_SQRT2), cr(INV_SQRT2), cr(-INV_SQRT2)),
            // columns |+i> = (1, i)/√2 and |-i> = (1, -i)/√2
            Basis::Y => CMat::mat2(
                cr(INV_SQRT2),
                cr(INV_SQRT2),
                c(0.0, INV_SQRT2),
                c(0.0, -INV_SQRT2),
            ),
            Basis::Custom { change, .. } => change.clone(),
        }
    }

    /// One-character label used by the circuit renderers.
    pub fn label(&self) -> String {
        match self {
            Basis::Z => "z".into(),
            Basis::X => "x".into(),
            Basis::Y => "y".into(),
            Basis::Custom { label, .. } => label.clone(),
        }
    }
}

/// A single-qubit measurement bound to a qubit and a basis.
#[derive(Clone, Debug, PartialEq)]
pub struct Measurement {
    qubit: usize,
    basis: Basis,
}

impl Measurement {
    /// Measurement of `qubit` in the computational (Z) basis — the QCLAB
    /// default `qclab.Measurement(q)`.
    pub fn z(qubit: usize) -> Self {
        Measurement {
            qubit,
            basis: Basis::Z,
        }
    }

    /// Measurement in the X basis — `qclab.Measurement(q, 'x')`.
    pub fn x(qubit: usize) -> Self {
        Measurement {
            qubit,
            basis: Basis::X,
        }
    }

    /// Measurement in the Y basis — `qclab.Measurement(q, 'y')`.
    pub fn y(qubit: usize) -> Self {
        Measurement {
            qubit,
            basis: Basis::Y,
        }
    }

    /// Measurement in a custom basis given by the unitary `change` whose
    /// columns are the two basis states.
    pub fn in_basis(qubit: usize, label: &str, change: CMat) -> Result<Self, QclabError> {
        if change.rows() != 2 || change.cols() != 2 {
            return Err(QclabError::DimensionMismatch {
                expected: 2,
                actual: change.rows(),
            });
        }
        if !change.is_unitary(1e-10) {
            return Err(QclabError::NonUnitary(format!("basis '{label}'")));
        }
        Ok(Measurement {
            qubit,
            basis: Basis::Custom {
                label: label.to_string(),
                change,
            },
        })
    }

    /// The measured qubit.
    pub fn qubit(&self) -> usize {
        self.qubit
    }

    /// The measurement basis.
    pub fn basis(&self) -> &Basis {
        &self.basis
    }

    /// Returns a copy shifted by `offset` qubits.
    pub fn shifted(&self, offset: usize) -> Measurement {
        Measurement {
            qubit: self.qubit + offset,
            basis: self.basis.clone(),
        }
    }

    /// Validates against a register size.
    pub fn validate(&self, nb_qubits: usize) -> Result<(), QclabError> {
        if self.qubit >= nb_qubits {
            return Err(QclabError::QubitOutOfRange {
                qubit: self.qubit,
                nb_qubits,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_math::scalar::DEFAULT_TOL;

    #[test]
    fn default_basis_is_z() {
        let m = Measurement::z(0);
        assert_eq!(m.basis().label(), "z");
        assert!(m.basis().change_matrix().is_identity(0.0));
    }

    #[test]
    fn basis_change_matrices_are_unitary() {
        for b in [Basis::Z, Basis::X, Basis::Y] {
            assert!(b.change_matrix().is_unitary(DEFAULT_TOL));
        }
    }

    #[test]
    fn x_basis_columns_are_plus_minus() {
        let v = Basis::X.change_matrix();
        // V |0> = |+>
        let col0 = v.col(0);
        assert!((col0[0].re - INV_SQRT2).abs() < 1e-15);
        assert!((col0[1].re - INV_SQRT2).abs() < 1e-15);
        let col1 = v.col(1);
        assert!((col1[1].re + INV_SQRT2).abs() < 1e-15);
    }

    #[test]
    fn y_basis_columns_are_circular_states() {
        let v = Basis::Y.change_matrix();
        let col0 = v.col(0);
        assert!((col0[1].im - INV_SQRT2).abs() < 1e-15);
        let col1 = v.col(1);
        assert!((col1[1].im + INV_SQRT2).abs() < 1e-15);
        assert!(v.is_unitary(1e-15));
    }

    #[test]
    fn custom_basis_validation() {
        let ok = Measurement::in_basis(1, "h", Basis::X.change_matrix());
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().basis().label(), "h");
        let bad = Measurement::in_basis(1, "b", CMat::zeros(2, 2));
        assert!(bad.is_err());
        let wrong_dim = Measurement::in_basis(1, "b", CMat::identity(4));
        assert!(wrong_dim.is_err());
    }

    #[test]
    fn shift_and_validate() {
        let m = Measurement::x(1).shifted(2);
        assert_eq!(m.qubit(), 3);
        assert!(m.validate(4).is_ok());
        assert!(m.validate(3).is_err());
    }
}
