//! Density-matrix simulation with noise channels.
//!
//! Extends the toolbox beyond the paper's pure-state simulator so that
//! noisy circuits — the regime QEC (paper Sec. 5.4) actually targets —
//! can be studied quantitatively. The density matrix is stored
//! **vectorized**: `ρ` on `n` qubits becomes a `4^n` vector indexed by a
//! `2n`-qubit register (row qubits `0..n`, column qubits `n..2n`), so
//! `ρ → U ρ U†` reuses the optimized state-vector kernels verbatim —
//! apply `U` on the row qubits and `U*` on the column qubits. Kraus
//! channels `ρ → Σ K_i ρ K_i†` apply each (non-unitary) `K_i` the same
//! way and sum.
//!
//! ```
//! use qclab_core::sim::density::{DensityState, NoiseChannel};
//! use qclab_math::CVec;
//!
//! // a pure |0> decoheres toward maximally mixed under depolarizing noise
//! let mut rho = DensityState::from_pure(&CVec::basis_state(2, 0));
//! assert!((rho.purity() - 1.0).abs() < 1e-12);
//! rho.apply_channel(0, &NoiseChannel::Depolarizing(0.3));
//! assert!(rho.purity() < 1.0);
//! assert!((rho.trace().re - 1.0).abs() < 1e-12); // trace preserved
//! ```

use crate::circuit::QCircuit;
use crate::error::QclabError;
use crate::gates::Gate;
use crate::program::ProgramOp;
use crate::sim::control::ExecutionControl;
use crate::sim::kernel;
use qclab_math::scalar::{c, cr, zero, C64};
use qclab_math::{CMat, CVec, DensityMatrix};

/// A standard single-qubit noise channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoiseChannel {
    /// X with probability `p`.
    BitFlip(f64),
    /// Z with probability `p`.
    PhaseFlip(f64),
    /// X, Y or Z each with probability `p/3`.
    Depolarizing(f64),
    /// Energy relaxation `|1> → |0>` with probability `gamma`.
    AmplitudeDamping(f64),
}

impl NoiseChannel {
    /// The error probability (or damping rate) of the channel.
    pub fn probability(&self) -> f64 {
        match *self {
            NoiseChannel::BitFlip(p)
            | NoiseChannel::PhaseFlip(p)
            | NoiseChannel::Depolarizing(p)
            | NoiseChannel::AmplitudeDamping(p) => p,
        }
    }

    /// Checks that the probability lies in `[0, 1]` — [`kraus`](Self::kraus)
    /// requires this, so validate before building channels from user input.
    pub fn validate(&self) -> Result<(), QclabError> {
        let p = self.probability();
        if p.is_finite() && (0.0..=1.0).contains(&p) {
            Ok(())
        } else {
            Err(QclabError::InvalidNoiseSpec(format!(
                "channel probability {p} outside [0, 1]"
            )))
        }
    }

    /// The Kraus operators of the channel (`Σ K_i† K_i = I`).
    pub fn kraus(&self) -> Vec<CMat> {
        use crate::gates::matrices as m;
        match *self {
            NoiseChannel::BitFlip(p) => {
                assert!((0.0..=1.0).contains(&p));
                vec![
                    CMat::identity(2).scale(cr((1.0 - p).sqrt())),
                    m::pauli_x().scale(cr(p.sqrt())),
                ]
            }
            NoiseChannel::PhaseFlip(p) => {
                assert!((0.0..=1.0).contains(&p));
                vec![
                    CMat::identity(2).scale(cr((1.0 - p).sqrt())),
                    m::pauli_z().scale(cr(p.sqrt())),
                ]
            }
            NoiseChannel::Depolarizing(p) => {
                assert!((0.0..=1.0).contains(&p));
                let q = (p / 3.0).sqrt();
                vec![
                    CMat::identity(2).scale(cr((1.0 - p).sqrt())),
                    m::pauli_x().scale(cr(q)),
                    m::pauli_y().scale(cr(q)),
                    m::pauli_z().scale(cr(q)),
                ]
            }
            NoiseChannel::AmplitudeDamping(gamma) => {
                assert!((0.0..=1.0).contains(&gamma));
                vec![
                    CMat::mat2(cr(1.0), cr(0.0), cr(0.0), cr((1.0 - gamma).sqrt())),
                    CMat::mat2(cr(0.0), cr(gamma.sqrt()), cr(0.0), cr(0.0)),
                ]
            }
        }
    }
}

/// A density matrix in vectorized form, evolving under gates and
/// channels.
#[derive(Clone, Debug)]
pub struct DensityState {
    nb_qubits: usize,
    /// `4^n` amplitudes: entry `i * 2^n + j` is `ρ[i][j]`.
    vec: CVec,
}

impl DensityState {
    /// Initializes `ρ = |ψ⟩⟨ψ|` after checking the `4^n` allocation
    /// against `limits` (the density matrix lives on a doubled register,
    /// so under the default limits this refuses registers the trajectory
    /// backend still handles comfortably).
    pub fn try_from_pure(
        psi: &CVec,
        limits: &crate::sim::guard::ResourceLimits,
    ) -> Result<Self, QclabError> {
        limits.check_matrix(psi.nb_qubits())?;
        Ok(Self::from_pure(psi))
    }

    /// Initializes `ρ = |ψ⟩⟨ψ|`.
    pub fn from_pure(psi: &CVec) -> Self {
        let n = psi.nb_qubits();
        let dim = psi.len();
        let mut vec = CVec::zeros(dim * dim);
        for i in 0..dim {
            for j in 0..dim {
                vec[i * dim + j] = psi[i] * psi[j].conj();
            }
        }
        DensityState { nb_qubits: n, vec }
    }

    /// Initializes from an explicit density matrix.
    pub fn from_density_matrix(rho: &DensityMatrix) -> Self {
        let n = rho.nb_qubits();
        let dim = rho.dim();
        let mut vec = CVec::zeros(dim * dim);
        for i in 0..dim {
            for j in 0..dim {
                vec[i * dim + j] = rho.matrix()[(i, j)];
            }
        }
        DensityState { nb_qubits: n, vec }
    }

    /// Number of qubits.
    pub fn nb_qubits(&self) -> usize {
        self.nb_qubits
    }

    /// Extracts the density matrix.
    pub fn to_density_matrix(&self) -> DensityMatrix {
        let dim = 1usize << self.nb_qubits;
        let m = CMat::from_fn(dim, dim, |i, j| self.vec[i * dim + j]);
        DensityMatrix::from_matrix(m)
    }

    /// `Tr ρ` (1 for a physical state; preserved by gates and channels).
    pub fn trace(&self) -> C64 {
        let dim = 1usize << self.nb_qubits;
        (0..dim).map(|i| self.vec[i * dim + i]).sum()
    }

    /// Purity `Tr ρ²` — computable directly from the vectorization as
    /// the squared 2-norm.
    pub fn purity(&self) -> f64 {
        self.vec.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Fidelity `⟨ψ|ρ|ψ⟩` with a pure state.
    pub fn fidelity_with_pure(&self, psi: &CVec) -> f64 {
        let dim = 1usize << self.nb_qubits;
        assert_eq!(psi.len(), dim);
        let mut acc = zero();
        for i in 0..dim {
            for j in 0..dim {
                acc += psi[i].conj() * self.vec[i * dim + j] * psi[j];
            }
        }
        acc.re
    }

    /// Applies a unitary gate: `ρ → U ρ U†` via the state-vector kernels
    /// on the doubled register.
    pub fn apply_gate(&mut self, gate: &Gate) {
        let n = self.nb_qubits;
        let nn = 2 * n;
        // U on the row qubits
        kernel::apply_gate(gate, &mut self.vec, nn);
        // U* on the column qubits
        let conj = conjugated_gate(gate).shifted(n);
        kernel::apply_gate(&conj, &mut self.vec, nn);
    }

    /// Applies a single-qubit Kraus channel to `qubit`:
    /// `ρ → Σ K_i ρ K_i†`.
    pub fn apply_channel(&mut self, qubit: usize, channel: &NoiseChannel) {
        self.apply_kraus(qubit, &channel.kraus());
    }

    /// Applies arbitrary single-qubit Kraus operators to `qubit`.
    pub fn apply_kraus(&mut self, qubit: usize, kraus: &[CMat]) {
        assert!(qubit < self.nb_qubits);
        let n = self.nb_qubits;
        let nn = 2 * n;
        let mut acc = CVec::zeros(self.vec.len());
        for k in kraus {
            assert_eq!(k.rows(), 2, "single-qubit Kraus operator expected");
            let mut term = self.vec.clone();
            let left = Gate::Custom {
                name: "K".into(),
                qubits: vec![qubit],
                matrix: k.clone(),
            };
            let right = Gate::Custom {
                name: "K*".into(),
                qubits: vec![qubit + n],
                matrix: k.conj(),
            };
            kernel::apply_gate(&left, &mut term, nn);
            kernel::apply_gate(&right, &mut term, nn);
            for (a, t) in acc.iter_mut().zip(term.iter()) {
                *a += t;
            }
        }
        self.vec = acc;
    }

    /// Born probabilities `(P(0), P(1))` of a Z measurement of `qubit`
    /// (no collapse).
    pub fn measure_probabilities(&self, qubit: usize) -> (f64, f64) {
        let dim = 1usize << self.nb_qubits;
        let mut p0 = 0.0;
        let mut p1 = 0.0;
        for i in 0..dim {
            let d = self.vec[i * dim + i].re;
            if qclab_math::bits::qubit_bit(i, qubit, self.nb_qubits) == 0 {
                p0 += d;
            } else {
                p1 += d;
            }
        }
        (p0, p1)
    }

    /// Non-selective Z measurement (decoherence in the computational
    /// basis): `ρ → P₀ρP₀ + P₁ρP₁`.
    pub fn dephase_measure(&mut self, qubit: usize) {
        let p0 = CMat::diag(&[cr(1.0), cr(0.0)]);
        let p1 = CMat::diag(&[cr(0.0), cr(1.0)]);
        self.apply_kraus(qubit, &[p0, p1]);
    }

    /// Reset of `qubit` to `|0⟩` (the channel `Σ |0⟩⟨b| ρ |b⟩⟨0|`).
    pub fn reset(&mut self, qubit: usize) {
        let k0 = CMat::mat2(cr(1.0), cr(0.0), cr(0.0), cr(0.0));
        let k1 = CMat::mat2(cr(0.0), cr(1.0), cr(0.0), cr(0.0));
        self.apply_kraus(qubit, &[k0, k1]);
    }
}

/// The gate with its target matrix complex-conjugated (controls kept),
/// used for the column-space half of `ρ → U ρ U†`.
fn conjugated_gate(g: &Gate) -> Gate {
    let conj = Gate::Custom {
        name: format!("{}*", g.name()),
        qubits: g.targets(),
        matrix: g.target_matrix().conj(),
    };
    let controls = g.controls();
    if controls.is_empty() {
        conj
    } else {
        let (qs, ss): (Vec<usize>, Vec<u8>) = controls.into_iter().unzip();
        Gate::Controlled {
            controls: qs,
            control_states: ss,
            target: Box::new(conj),
        }
    }
}

/// Per-gate noise specification for [`run_noisy`]: the channel is applied
/// to every qubit a gate touches, right after the gate.
#[derive(Clone, Copy, Debug)]
pub struct NoiseModel {
    /// Channel applied after every gate (per touched qubit).
    pub after_gate: Option<NoiseChannel>,
}

/// Runs a circuit on a density matrix: gates evolve `ρ` unitarily
/// (plus the noise model), measurements dephase non-selectively, resets
/// re-initialize. Returns the final [`DensityState`].
pub fn run_noisy(
    circuit: &QCircuit,
    initial: &DensityState,
    noise: &NoiseModel,
) -> Result<DensityState, QclabError> {
    run_noisy_controlled(circuit, initial, noise, &ExecutionControl::none())
}

/// [`run_noisy`] under an [`ExecutionControl`]: the per-op loop polls
/// the deadline/cancel token at op boundaries, so a long density run
/// stops cooperatively with [`QclabError::DeadlineExceeded`] /
/// [`QclabError::Cancelled`] instead of running to completion.
pub fn run_noisy_controlled(
    circuit: &QCircuit,
    initial: &DensityState,
    noise: &NoiseModel,
    control: &ExecutionControl,
) -> Result<DensityState, QclabError> {
    if let Some(ch) = noise.after_gate {
        ch.validate()?;
    }
    let mut state = initial.clone();
    // lower unfused: the noise model attaches a channel to every gate,
    // so fusing gates would change the noise locations
    let program = circuit.compile_with(&crate::program::PlanOptions::unfused());
    let mut ticker = control.ticker();
    for op in program.ops() {
        match op {
            ProgramOp::Gate(g) => {
                state.apply_gate(g);
                if let Some(ch) = noise.after_gate {
                    for q in g.qubits() {
                        state.apply_channel(q, &ch);
                    }
                }
            }
            ProgramOp::Fence(_) => {}
            ProgramOp::Measure(m) => state.dephase_measure(m.qubit()),
            ProgramOp::Reset(q) => state.reset(*q),
            // unfused lowering never relabels (PlanOptions::unfused()
            // switches the locality pass off with fusion)
            ProgramOp::Permute { .. } => {
                unreachable!("density backend executes unremapped plans only")
            }
        }
        ticker.tick()?;
    }
    Ok(state)
}

/// Helper: builds the imaginary unit without importing scalar helpers at
/// call sites (kept for symmetry with the statevector module).
#[allow(dead_code)]
fn im() -> C64 {
    c(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::factories::*;

    const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    fn paper_v() -> CVec {
        CVec(vec![cr(INV_SQRT2), c(0.0, INV_SQRT2)])
    }

    #[test]
    fn pure_state_round_trip() {
        let ds = DensityState::from_pure(&paper_v());
        assert!((ds.trace().re - 1.0).abs() < 1e-14);
        assert!((ds.purity() - 1.0).abs() < 1e-14);
        let rho = ds.to_density_matrix();
        assert!((rho.fidelity_with_pure(&paper_v()) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        // evolve both representations through the same circuit
        let gates = vec![
            Hadamard::new(0),
            CNOT::new(0, 1),
            RotationY::new(1, 0.7),
            CZ::new(1, 0),
            TGate::new(0),
        ];
        let mut psi = CVec::basis_state(4, 0);
        let mut ds = DensityState::from_pure(&psi);
        for g in &gates {
            kernel::apply_gate(g, &mut psi, 2);
            ds.apply_gate(g);
        }
        assert!((ds.fidelity_with_pure(&psi) - 1.0).abs() < 1e-12);
        assert!((ds.purity() - 1.0).abs() < 1e-12);
        assert!((ds.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kraus_completeness_for_all_channels() {
        for ch in [
            NoiseChannel::BitFlip(0.13),
            NoiseChannel::PhaseFlip(0.4),
            NoiseChannel::Depolarizing(0.2),
            NoiseChannel::AmplitudeDamping(0.35),
        ] {
            let mut sum = CMat::zeros(2, 2);
            for k in ch.kraus() {
                sum = &sum + &k.dagger().matmul(&k);
            }
            assert!(sum.is_identity(1e-12), "Kraus not complete for {ch:?}");
        }
    }

    #[test]
    fn channels_preserve_trace_and_physicality() {
        for ch in [
            NoiseChannel::BitFlip(0.2),
            NoiseChannel::PhaseFlip(0.3),
            NoiseChannel::Depolarizing(0.5),
            NoiseChannel::AmplitudeDamping(0.4),
        ] {
            let mut ds = DensityState::from_pure(&paper_v().kron(&CVec::basis_state(2, 0)));
            ds.apply_channel(0, &ch);
            ds.apply_channel(1, &ch);
            assert!(
                (ds.trace().re - 1.0).abs() < 1e-12,
                "{ch:?} broke the trace"
            );
            assert!(
                ds.to_density_matrix().is_physical(1e-10),
                "{ch:?} unphysical"
            );
        }
    }

    #[test]
    fn bit_flip_probability_one_is_x() {
        let mut ds = DensityState::from_pure(&CVec::basis_state(2, 0));
        ds.apply_channel(0, &NoiseChannel::BitFlip(1.0));
        let (p0, p1) = ds.measure_probabilities(0);
        assert!(p0.abs() < 1e-14);
        assert!((p1 - 1.0).abs() < 1e-14);
        assert!((ds.purity() - 1.0).abs() < 1e-13);
    }

    #[test]
    fn depolarizing_drives_to_maximally_mixed() {
        let mut ds = DensityState::from_pure(&CVec::basis_state(2, 0));
        for _ in 0..60 {
            ds.apply_channel(0, &NoiseChannel::Depolarizing(0.3));
        }
        let rho = ds.to_density_matrix();
        assert!(rho
            .matrix()
            .approx_eq(DensityMatrix::maximally_mixed(1).matrix(), 1e-6));
    }

    #[test]
    fn amplitude_damping_relaxes_excited_state() {
        let mut ds = DensityState::from_pure(&CVec::basis_state(2, 1));
        for _ in 0..80 {
            ds.apply_channel(0, &NoiseChannel::AmplitudeDamping(0.2));
        }
        let (p0, _) = ds.measure_probabilities(0);
        assert!(p0 > 1.0 - 1e-6);
    }

    #[test]
    fn phase_flip_destroys_coherence_not_populations() {
        let plus = CVec(vec![cr(INV_SQRT2), cr(INV_SQRT2)]);
        let mut ds = DensityState::from_pure(&plus);
        ds.apply_channel(0, &NoiseChannel::PhaseFlip(0.5)); // full dephasing
        let rho = ds.to_density_matrix();
        assert!(rho.matrix()[(0, 1)].norm() < 1e-14);
        assert!((rho.matrix()[(0, 0)].re - 0.5).abs() < 1e-14);
        assert!((ds.purity() - 0.5).abs() < 1e-13);
    }

    #[test]
    fn nonselective_measurement_and_reset() {
        let plus = CVec(vec![cr(INV_SQRT2), cr(INV_SQRT2)]);
        let mut ds = DensityState::from_pure(&plus);
        ds.dephase_measure(0);
        assert!((ds.purity() - 0.5).abs() < 1e-13);
        ds.reset(0);
        let (p0, _) = ds.measure_probabilities(0);
        assert!((p0 - 1.0).abs() < 1e-13);
        assert!((ds.purity() - 1.0).abs() < 1e-13);
    }

    #[test]
    fn noiseless_run_matches_pure_simulation() {
        let mut circuit = QCircuit::new(2);
        circuit.push_back(Hadamard::new(0));
        circuit.push_back(CNOT::new(0, 1));
        let init = DensityState::from_pure(&CVec::basis_state(4, 0));
        let out = run_noisy(&circuit, &init, &NoiseModel { after_gate: None }).unwrap();
        let bell = CVec(vec![cr(INV_SQRT2), cr(0.0), cr(0.0), cr(INV_SQRT2)]);
        assert!((out.fidelity_with_pure(&bell) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_run_degrades_fidelity_monotonically() {
        let mut circuit = QCircuit::new(2);
        circuit.push_back(Hadamard::new(0));
        circuit.push_back(CNOT::new(0, 1));
        let bell = CVec(vec![cr(INV_SQRT2), cr(0.0), cr(0.0), cr(INV_SQRT2)]);
        let init = DensityState::from_pure(&CVec::basis_state(4, 0));
        let mut last = 1.1;
        for p in [0.0, 0.01, 0.05, 0.15] {
            let noise = NoiseModel {
                after_gate: Some(NoiseChannel::Depolarizing(p)),
            };
            let out = run_noisy(&circuit, &init, &noise).unwrap();
            let f = out.fidelity_with_pure(&bell);
            assert!(f < last, "fidelity did not degrade at p = {p}");
            last = f;
        }
    }
}
