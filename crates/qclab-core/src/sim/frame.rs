//! Pauli-frame sampling: noisy Clifford ensembles at O(poly n) per shot.
//!
//! The trajectory engine pays full state-vector cost for every noisy
//! shot. For the workloads that dominate QEC studies — Clifford gates,
//! Pauli noise channels, Z/X/Y-basis measurements and resets — that is
//! asymptotically wasteful: a Pauli error commutes through a Clifford
//! circuit as another Pauli, so the *difference* between a noisy shot
//! and the noiseless reference is itself just a Pauli operator (the
//! **error frame**). This module runs the reference circuit **once** on
//! the bit-packed [`StabilizerState`] tableau and then propagates only
//! frames per shot:
//!
//! - **Reference run** — one tableau simulation of the noiseless
//!   circuit records, per measurement/reset site, the reference outcome
//!   bit and — when the outcome is random — the *witness*: the
//!   anticommuting stabilizer row captured just before the collapse
//!   ([`StabilizerState::measure_witness`]). Multiplying a frame by the
//!   witness moves that shot onto the opposite measurement branch
//!   consistently, which is what restores independent per-shot
//!   randomness at random sites (a plain frame sampler would freeze
//!   them to the reference outcome).
//! - **Frame propagation** — a shot's frame is a pair of bits
//!   `(x, z)` per qubit. Clifford conjugation acts linearly and
//!   sign-free on those bits (H swaps `x↔z`; S maps `z ^= x`; CNOT maps
//!   `x_t ^= x_c`, `z_c ^= z_t`; Pauli gates are frame no-ops), so the
//!   whole engine is XOR/swap arithmetic.
//! - **Bit-slicing** — frames are stored struct-of-arrays over shots:
//!   per qubit, an `x` and a `z` bit-plane holding **64 shots per
//!   `u64` word**. One pass of word ops conjugates a whole batch; noise
//!   is drawn per lane from the same schedule-independent
//!   `(seed, shot)` SplitMix64 streams as the trajectory engine, then
//!   injected branch-free as per-site XOR masks. Results are therefore
//!   bitwise independent of the batch width.
//!
//! A measurement site reads `outcome = reference_bit ⊕ x_frame[q]`
//! (after rotating the frame into the measurement basis); at random
//! sites a fair per-lane coin first folds the witness into the frame,
//! which toggles `x_frame[q]` and updates every other qubit the witness
//! touches. A reset folds its witness the same way, then clears the
//! frame on the reset qubit (the post-reset state is `|0⟩` regardless
//! of the incoming error, and Z on `|0⟩` is gauge).
//!
//! Eligibility is classified at lowering time
//! ([`crate::program::PlanStats::is_clifford`]) and the lowered
//! [`FrameProgram`] is cached on the compiled plan, riding the
//! fingerprint-keyed plan cache. Routing happens in
//! [`run_trajectories`](crate::sim::trajectory::run_trajectories);
//! [`TrajectoryConfig::frames`] opts out.

use crate::error::QclabError;
use crate::gates::Gate;
use crate::measurement::Basis;
use crate::observable::Pauli;
use crate::program::{CompiledProgram, ProgramOp};
use crate::sim::control::{StopCause, StopLatch};
use crate::sim::stabilizer::StabilizerState;
use crate::sim::trajectory::{shot_rng, stop_or_err, TrajectoryConfig};
use rand::rngs::StdRng;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One word-parallel frame-conjugation primitive. Every Clifford gate
/// the tableau accepts lowers to a short sequence of these (sign-free:
/// frames ignore phases, so S and S† coincide and Pauli gates vanish).
#[derive(Clone, Copy, Debug)]
enum Prim {
    /// Swap the `x` and `z` planes of a qubit.
    H(usize),
    /// `z ^= x` on a qubit (conjugation by S or S†).
    S(usize),
    /// `x_t ^= x_c`, `z_c ^= z_t`.
    Cnot(usize, usize),
}

/// Measurement basis a frame site supports (Custom never classifies as
/// Clifford, so it cannot reach the frame engine).
#[derive(Clone, Copy, Debug)]
enum FrameBasis {
    Z,
    X,
    Y,
}

/// One op of the lowered frame schedule, walked in lockstep with the
/// reference-run site list.
#[derive(Clone, Debug)]
enum FrameOp {
    /// A gate: its frame conjugation plus the qubit sets the noise
    /// model needs (`touched` in gate-qubit order, `untouched`
    /// ascending — the same draw order as the trajectory engine).
    Gate {
        prims: Vec<Prim>,
        touched: Vec<usize>,
        untouched: Vec<usize>,
    },
    /// A measurement site: `site` indexes the reference-run record.
    Measure {
        qubit: usize,
        basis: FrameBasis,
        site: usize,
    },
    /// A reset site (also consumes a reference-run record).
    Reset { qubit: usize, site: usize },
    /// Scheduling wall — one ticker step, nothing else.
    Fence,
}

/// A compiled program lowered for Pauli-frame execution. Built lazily by
/// [`CompiledProgram::frame_program`] and cached on the plan; `None`
/// when any op falls outside the Clifford+Z/X/Y-measurement family.
#[derive(Debug)]
pub struct FrameProgram {
    n: usize,
    ops: Vec<FrameOp>,
    /// Number of measurement/reset sites (length of the reference-run
    /// site list).
    sites: usize,
    /// Number of recorded (measurement) sites — the per-shot record
    /// length.
    recorded: usize,
}

impl FrameProgram {
    /// Lowers a compiled program into the frame schedule, or `None`
    /// when the op stream is not frame-eligible. The check mirrors
    /// [`PlanStats::is_clifford`](crate::program::PlanStats::is_clifford)
    /// op by op — callers may consult the stat first and skip the walk.
    pub(crate) fn compile(program: &CompiledProgram) -> Option<FrameProgram> {
        if !program.stats().is_clifford {
            return None;
        }
        let n = program.nb_qubits();
        let mut ops = Vec::with_capacity(program.ops().len());
        let mut sites = 0usize;
        let mut recorded = 0usize;
        for op in program.ops() {
            match op {
                ProgramOp::Gate(g) => {
                    let prims = lower_gate(g)?;
                    let touched = g.qubits();
                    let untouched = (0..n).filter(|q| !touched.contains(q)).collect();
                    ops.push(FrameOp::Gate {
                        prims,
                        touched,
                        untouched,
                    });
                }
                ProgramOp::Measure(m) => {
                    let basis = match m.basis() {
                        Basis::Z => FrameBasis::Z,
                        Basis::X => FrameBasis::X,
                        Basis::Y => FrameBasis::Y,
                        Basis::Custom { .. } => return None,
                    };
                    ops.push(FrameOp::Measure {
                        qubit: m.qubit(),
                        basis,
                        site: sites,
                    });
                    sites += 1;
                    recorded += 1;
                }
                ProgramOp::Reset(q) => {
                    ops.push(FrameOp::Reset {
                        qubit: *q,
                        site: sites,
                    });
                    sites += 1;
                }
                ProgramOp::Fence(_) => ops.push(FrameOp::Fence),
                // the locality pass is disabled on noisy plans, and a
                // permuted plan never classifies as Clifford anyway
                ProgramOp::Permute { .. } => return None,
            }
        }
        Some(FrameProgram {
            n,
            ops,
            sites,
            recorded,
        })
    }

    /// Register size the schedule was lowered for.
    pub fn nb_qubits(&self) -> usize {
        self.n
    }

    /// Ops in the frame schedule (one per program op).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for an empty schedule.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Measurement + reset sites the reference run records.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Recorded (measurement) sites — the per-shot record length.
    pub fn recorded(&self) -> usize {
        self.recorded
    }
}

/// The frame conjugation of one Clifford gate, or `None` when the gate
/// is outside the family. Pauli gates (and identity) commute with any
/// frame up to phase, which frames do not track — they lower to no
/// primitives but remain noise locations.
fn lower_gate(g: &Gate) -> Option<Vec<Prim>> {
    Some(match g {
        Gate::Identity(_) | Gate::PauliX(_) | Gate::PauliY(_) | Gate::PauliZ(_) => Vec::new(),
        Gate::Hadamard(q) => vec![Prim::H(*q)],
        Gate::S(q) | Gate::Sdg(q) => vec![Prim::S(*q)],
        Gate::Swap(a, b) => vec![Prim::Cnot(*a, *b), Prim::Cnot(*b, *a), Prim::Cnot(*a, *b)],
        Gate::Controlled {
            controls,
            control_states,
            target,
        } if controls.len() == 1 && control_states[0] == 1 => {
            let c = controls[0];
            match &**target {
                Gate::PauliX(t) => vec![Prim::Cnot(c, *t)],
                // CZ = H(t) · CX · H(t)
                Gate::PauliZ(t) => vec![Prim::H(*t), Prim::Cnot(c, *t), Prim::H(*t)],
                // CY = S†(t) · CX · S(t); S and S† coincide frame-wise
                Gate::PauliY(t) => vec![Prim::S(*t), Prim::Cnot(c, *t), Prim::S(*t)],
                _ => return None,
            }
        }
        _ => return None,
    })
}

/// One measurement/reset site of the reference run: the noiseless
/// outcome bit, plus the witness row when the outcome was random
/// (`None` = deterministic — every shot's randomness at that site is
/// already carried by its frame).
struct RefSite {
    bit: bool,
    witness: Option<(Vec<u64>, Vec<u64>)>,
}

/// The reference run: one tableau pass over the schedule.
struct Reference {
    sites: Vec<RefSite>,
}

/// Runs the noiseless circuit once on the stabilizer tableau, recording
/// per-site outcomes and witnesses. The reference RNG stream is derived
/// from `(seed, u64::MAX)` — outside every per-shot stream, so shot
/// results stay independent of it being consumed here.
fn reference_run(
    program: &CompiledProgram,
    config: &TrajectoryConfig,
) -> Result<Reference, QclabError> {
    let n = program.nb_qubits();
    let mut st = StabilizerState::new(n)?;
    let mut rng = shot_rng(config.seed, u64::MAX);
    let mut ticker = config.control.ticker();
    let mut sites = Vec::new();
    for op in program.ops() {
        match op {
            ProgramOp::Gate(g) => st.apply_gate(g)?,
            ProgramOp::Measure(m) => {
                let q = m.qubit();
                // rotate into the measurement basis (V†), Z-measure
                // with witness, rotate back (V) — the witness is
                // captured in the rotated picture, matching where the
                // executor folds it
                match m.basis() {
                    Basis::Z => {}
                    Basis::X => st.h(q),
                    Basis::Y => {
                        st.sdg(q);
                        st.h(q);
                    }
                    Basis::Custom { .. } => {
                        return Err(QclabError::Unavailable(
                            "custom measurement basis is not frame-eligible".into(),
                        ))
                    }
                }
                let (out, witness) = st.measure_witness(q, &mut rng);
                match m.basis() {
                    Basis::Z | Basis::Custom { .. } => {}
                    Basis::X => st.h(q),
                    Basis::Y => {
                        st.h(q);
                        st.s(q);
                    }
                }
                sites.push(RefSite {
                    bit: out.bit,
                    witness,
                });
            }
            ProgramOp::Reset(q) => {
                let (out, witness) = st.measure_witness(*q, &mut rng);
                if out.bit {
                    st.x(*q);
                }
                sites.push(RefSite {
                    bit: out.bit,
                    witness,
                });
            }
            ProgramOp::Fence(_) => {}
            ProgramOp::Permute { .. } => {
                return Err(QclabError::Unavailable(
                    "permuted plans are not frame-eligible".into(),
                ))
            }
        }
        ticker.tick()?;
    }
    Ok(Reference { sites })
}

/// One batch of bit-sliced frames: per qubit, an `x` and a `z`
/// bit-plane of `words` `u64`s, 64 shot lanes per word, flattened
/// `[qubit][word]`.
struct FrameBatch {
    words: usize,
    fx: Vec<u64>,
    fz: Vec<u64>,
}

impl FrameBatch {
    fn new(n: usize, lanes: usize) -> FrameBatch {
        let words = lanes.div_ceil(64);
        FrameBatch {
            words,
            fx: vec![0u64; n * words],
            fz: vec![0u64; n * words],
        }
    }

    #[inline]
    fn plane(&mut self, q: usize) -> (&mut [u64], &mut [u64]) {
        let r = q * self.words..(q + 1) * self.words;
        (&mut self.fx[r.clone()], &mut self.fz[r])
    }

    /// Applies one conjugation primitive across every lane of the batch.
    #[inline]
    fn apply(&mut self, prim: Prim) {
        let w = self.words;
        match prim {
            Prim::H(q) => {
                for i in q * w..(q + 1) * w {
                    std::mem::swap(&mut self.fx[i], &mut self.fz[i]);
                }
            }
            Prim::S(q) => {
                for i in q * w..(q + 1) * w {
                    self.fz[i] ^= self.fx[i];
                }
            }
            Prim::Cnot(c, t) => {
                for i in 0..w {
                    self.fx[t * w + i] ^= self.fx[c * w + i];
                    self.fz[c * w + i] ^= self.fz[t * w + i];
                }
            }
        }
    }

    /// Folds the witness row into every lane selected by `mask` (one
    /// bit per lane): frame ← frame · witness on those lanes.
    fn fold_witness(&mut self, witness: &(Vec<u64>, Vec<u64>), mask: &[u64]) {
        let w = self.words;
        for (wq, (&xw, &zw)) in witness.0.iter().zip(&witness.1).enumerate() {
            let mut bits = xw | zw;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let q = (wq << 6) | b;
                if (xw >> b) & 1 == 1 {
                    for (f, &m) in self.fx[q * w..(q + 1) * w].iter_mut().zip(mask) {
                        *f ^= m;
                    }
                }
                if (zw >> b) & 1 == 1 {
                    for (f, &m) in self.fz[q * w..(q + 1) * w].iter_mut().zip(mask) {
                        *f ^= m;
                    }
                }
            }
        }
    }
}

/// Draws one noise site (`channel` on `qubit`) for every lane and
/// injects the sampled Paulis into the batch as XOR masks. Returns the
/// number of lanes that received an error. Each lane draws exactly one
/// `f64` — fired or not — so lane streams advance identically to the
/// trajectory engine's per-site draw discipline and stay independent of
/// the batch grouping.
fn inject_site(
    batch: &mut FrameBatch,
    channel: &crate::sim::trajectory::PauliChannel,
    qubit: usize,
    rngs: &mut [StdRng],
    mx: &mut [u64],
    mz: &mut [u64],
) -> u64 {
    mx.fill(0);
    mz.fill(0);
    for (lane, rng) in rngs.iter_mut().enumerate() {
        if let Some(p) = channel.sample(rng) {
            let (w, b) = (lane >> 6, lane & 63);
            match p {
                Pauli::I => {}
                Pauli::X => mx[w] |= 1 << b,
                Pauli::Z => mz[w] |= 1 << b,
                Pauli::Y => {
                    mx[w] |= 1 << b;
                    mz[w] |= 1 << b;
                }
            }
        }
    }
    let (fx, fz) = batch.plane(qubit);
    let mut injected = 0u64;
    for i in 0..fx.len() {
        fx[i] ^= mx[i];
        fz[i] ^= mz[i];
        injected += (mx[i] | mz[i]).count_ones() as u64;
    }
    injected
}

/// The aggregate a frame run hands back to the trajectory layer, which
/// owns [`TrajectoryResult`](crate::sim::trajectory::TrajectoryResult)
/// assembly.
pub(crate) struct FrameRun {
    pub counts: BTreeMap<String, u64>,
    pub shots: u64,
    pub injected: u64,
    pub stopped: Option<StopCause>,
    pub batch: u64,
}

/// Executes one batch of `lanes` consecutive shots starting at absolute
/// shot index `first`: all frames advance through the schedule
/// together, one pass of word ops per primitive. Returns the per-lane
/// measurement records plus the batch's injected-error count.
fn run_batch(
    fp: &FrameProgram,
    reference: &Reference,
    config: &TrajectoryConfig,
    first: u64,
    lanes: usize,
) -> Result<(Vec<String>, u64), QclabError> {
    let noise = &config.noise;
    let mut batch = FrameBatch::new(fp.n, lanes);
    let words = batch.words;
    let mut rngs: Vec<StdRng> = (0..lanes as u64)
        .map(|j| shot_rng(config.seed, first + j))
        .collect();
    let mut ticker = config.control.ticker();
    let (mut mx, mut mz) = (vec![0u64; words], vec![0u64; words]);
    // per-site outcome words, assembled into strings once at the end
    let mut outcomes: Vec<Vec<u64>> = Vec::with_capacity(fp.recorded);
    let mut injected = 0u64;
    for op in &fp.ops {
        match op {
            FrameOp::Gate {
                prims,
                touched,
                untouched,
            } => {
                for &prim in prims {
                    batch.apply(prim);
                }
                if let Some(ch) = &noise.after_gate {
                    for &q in touched {
                        injected += inject_site(&mut batch, ch, q, &mut rngs, &mut mx, &mut mz);
                    }
                }
                if let Some(ch) = &noise.idle {
                    for &q in untouched {
                        injected += inject_site(&mut batch, ch, q, &mut rngs, &mut mx, &mut mz);
                    }
                }
            }
            FrameOp::Measure { qubit, basis, site } => {
                let q = *qubit;
                if let Some(ch) = &noise.before_measure {
                    injected += inject_site(&mut batch, ch, q, &mut rngs, &mut mx, &mut mz);
                }
                // rotate the frame into the measurement basis (V†)
                match basis {
                    FrameBasis::Z => {}
                    FrameBasis::X => batch.apply(Prim::H(q)),
                    FrameBasis::Y => {
                        batch.apply(Prim::S(q));
                        batch.apply(Prim::H(q));
                    }
                }
                let site = &reference.sites[*site];
                if let Some(witness) = &site.witness {
                    // random site: a fair per-lane coin folds the
                    // witness into the frame, toggling x[q] — the fold
                    // IS the outcome flip, kept consistent for every
                    // later op the witness touches
                    flip_mask(&mut rngs, &mut mx);
                    batch.fold_witness(witness, &mx);
                }
                let (fx, _) = batch.plane(q);
                let base = if site.bit { !0u64 } else { 0u64 };
                outcomes.push(fx.iter().map(|&w| w ^ base).collect());
                // rotate back (V)
                match basis {
                    FrameBasis::Z => {}
                    FrameBasis::X => batch.apply(Prim::H(q)),
                    FrameBasis::Y => {
                        batch.apply(Prim::H(q));
                        batch.apply(Prim::S(q));
                    }
                }
            }
            FrameOp::Reset { qubit, site } => {
                let q = *qubit;
                if let Some(ch) = &noise.before_measure {
                    injected += inject_site(&mut batch, ch, q, &mut rngs, &mut mx, &mut mz);
                }
                if let Some(witness) = &reference.sites[*site].witness {
                    flip_mask(&mut rngs, &mut mx);
                    batch.fold_witness(witness, &mx);
                }
                // the reset branch correction (X on outcome 1) clears
                // the X frame; Z on |0⟩ is gauge — both planes vanish
                let (fx, fz) = batch.plane(q);
                fx.fill(0);
                fz.fill(0);
            }
            FrameOp::Fence => {}
        }
        ticker.tick()?;
    }
    // transpose the outcome words into per-lane record strings
    let mut records = Vec::with_capacity(lanes);
    for lane in 0..lanes {
        let (w, b) = (lane >> 6, lane & 63);
        let mut record = String::with_capacity(outcomes.len());
        for site in &outcomes {
            record.push(if (site[w] >> b) & 1 == 1 { '1' } else { '0' });
        }
        records.push(record);
    }
    Ok((records, injected))
}

/// One fair coin per lane, packed into `mask` (bit set = flip).
fn flip_mask(rngs: &mut [StdRng], mask: &mut [u64]) {
    use rand::Rng;
    mask.fill(0);
    for (lane, rng) in rngs.iter_mut().enumerate() {
        if rng.gen::<bool>() {
            mask[lane >> 6] |= 1 << (lane & 63);
        }
    }
}

/// Samples `config.shots` shots of a frame-eligible program: reference
/// tableau run, then bit-sliced frame batches (Rayon fans the batches
/// out when `config.parallel`). Cooperative cancellation matches the
/// trajectory engine: a stopped run keeps completed batches and flags
/// the result partial; the in-flight batch is dropped whole.
pub(crate) fn run_frames(
    program: &CompiledProgram,
    fp: &FrameProgram,
    config: &TrajectoryConfig,
) -> Result<FrameRun, QclabError> {
    let n = fp.n;
    let shots = config.shots;
    let lanes = config
        .shot_batch
        .max(1)
        .min(shots.max(1).min(usize::MAX as u64) as usize);
    config.limits.check_frames(n, lanes)?;
    config.noise.validate()?;

    let reference = match reference_run(program, config) {
        Ok(r) => r,
        // stopped during the one-time reference run: no shot completed
        Err(e) => {
            return Ok(FrameRun {
                counts: BTreeMap::new(),
                shots: 0,
                injected: 0,
                stopped: Some(stop_or_err(e)?),
                batch: lanes as u64,
            })
        }
    };

    let latch = StopLatch::new();
    let control = &config.control;
    let injected = AtomicU64::new(0);
    let mut slots: Vec<Option<String>> = Vec::new();
    slots.resize_with(shots as usize, || None);
    let run_chunk = |first: usize, chunk: &mut [Option<String>]| {
        if latch.is_tripped() {
            return;
        }
        if let Some(cause) = control.probe() {
            latch.trip(cause.into_error(crate::error::ExecProgress::default()));
            return;
        }
        match run_batch(fp, &reference, config, first as u64, chunk.len()) {
            Ok((records, inj)) => {
                injected.fetch_add(inj, Ordering::Relaxed);
                for (slot, record) in chunk.iter_mut().zip(records) {
                    *slot = Some(record);
                }
            }
            Err(e) => latch.trip(e),
        }
    };
    if config.parallel && shots > 1 {
        slots
            .par_chunks_mut(lanes)
            .enumerate()
            .for_each(|(bi, chunk)| run_chunk(bi * lanes, chunk));
    } else {
        for (bi, chunk) in slots.chunks_mut(lanes).enumerate() {
            run_chunk(bi * lanes, chunk);
        }
    }
    let stopped = match latch.take() {
        None => None,
        Some(e) => Some(stop_or_err(e)?),
    };
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut completed = 0u64;
    for record in slots.into_iter().flatten() {
        *counts.entry(record).or_insert(0) += 1;
        completed += 1;
    }
    Ok(FrameRun {
        counts,
        shots: completed,
        injected: injected.into_inner(),
        stopped,
        batch: lanes as u64,
    })
}
