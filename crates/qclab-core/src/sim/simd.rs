//! AVX2+FMA kernels for uncontrolled dense 1- and 2-qubit gates.
//!
//! The scalar kernels in [`super::kernel`] are compute-bound: a complex
//! multiply costs ~3 scalar FMA chains per amplitude, so a dense sweep
//! runs well below memory bandwidth. These vectorized paths process two
//! amplitudes per 256-bit register and push dense sweeps to the
//! memory-bound regime — which is precisely what makes gate fusion
//! profitable: once a sweep costs bandwidth rather than flops, halving
//! the number of sweeps halves the simulation time.
//!
//! Complex numbers are `[re, im]` pairs (`Complex<f64>` is `repr(C)`), so
//! a `__m256d` holds two amplitudes. The product `z * m` for a constant
//! `m` splits into `A ∓ B` with `A = z·m.re` and `B = swap(z)·m.im`
//! (`swap` exchanges re/im); `addsub` applies the alternating sign.
//! Accumulating the `A` and `B` sides separately over matrix columns
//! turns a whole matrix row into FMA chains plus one final `addsub`.
//!
//! Only used when the gate has no controls (fused blocks fold controls
//! into the matrix) and the innermost stride admits two consecutive
//! groups. Everything here is gated on runtime CPU detection with the
//! scalar kernels as the universal fallback.
#![cfg(target_arch = "x86_64")]

use qclab_math::scalar::C64;
use std::arch::x86_64::*;

/// Runtime check for the features the kernels below are compiled with.
/// `is_x86_feature_detected!` caches internally, so per-gate calls are
/// cheap.
#[inline]
pub(crate) fn available() -> bool {
    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
}

/// Swaps re/im within each complex slot: `[a, b, c, d] -> [b, a, d, c]`.
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn swap_reim(v: __m256d) -> __m256d {
    _mm256_permute_pd(v, 0b0101)
}

/// Uncontrolled dense single-qubit gate on the qubit with bit shift `s`.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available, `s >= 1`, and
/// `state.len()` is a power of two `>= 2^(s+1)`.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn apply_1q_dense(state: &mut [C64], s: usize, m: [C64; 4]) {
    let half = 1usize << s;
    let block = half << 1;
    debug_assert!(s >= 1 && state.len().is_multiple_of(block));
    let mre: [__m256d; 4] = std::array::from_fn(|i| _mm256_set1_pd(m[i].re));
    let mim: [__m256d; 4] = std::array::from_fn(|i| _mm256_set1_pd(m[i].im));

    for chunk in state.chunks_exact_mut(block) {
        let (lo, hi) = chunk.split_at_mut(half);
        let lp = lo.as_mut_ptr() as *mut f64;
        let hp = hi.as_mut_ptr() as *mut f64;
        let mut j = 0usize;
        while j < half {
            let x = _mm256_loadu_pd(lp.add(2 * j));
            let y = _mm256_loadu_pd(hp.add(2 * j));
            let xs = swap_reim(x);
            let ys = swap_reim(y);
            // new_x = m00*x + m01*y, new_y = m10*x + m11*y
            let a0 = _mm256_fmadd_pd(y, mre[1], _mm256_mul_pd(x, mre[0]));
            let b0 = _mm256_fmadd_pd(ys, mim[1], _mm256_mul_pd(xs, mim[0]));
            let a1 = _mm256_fmadd_pd(y, mre[3], _mm256_mul_pd(x, mre[2]));
            let b1 = _mm256_fmadd_pd(ys, mim[3], _mm256_mul_pd(xs, mim[2]));
            _mm256_storeu_pd(lp.add(2 * j), _mm256_addsub_pd(a0, b0));
            _mm256_storeu_pd(hp.add(2 * j), _mm256_addsub_pd(a1, b1));
            j += 2;
        }
    }
}

/// [`apply_1q_dense`] for the least significant qubit (`s == 0`), where
/// the `(x, y)` pairs are adjacent: one 256-bit register holds a whole
/// pair, and lane broadcasts replace the cross-pair vectorization.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available and `state.len()` is an
/// even power of two `>= 2`.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn apply_1q_dense_lsb(state: &mut [C64], m: [C64; 4]) {
    // constant slots: [row0, row0, row1, row1] per matrix column
    let cre0 = _mm256_setr_pd(m[0].re, m[0].re, m[2].re, m[2].re);
    let cim0 = _mm256_setr_pd(m[0].im, m[0].im, m[2].im, m[2].im);
    let cre1 = _mm256_setr_pd(m[1].re, m[1].re, m[3].re, m[3].re);
    let cim1 = _mm256_setr_pd(m[1].im, m[1].im, m[3].im, m[3].im);
    let p = state.as_mut_ptr() as *mut f64;
    for i in (0..state.len()).step_by(2) {
        let v = _mm256_loadu_pd(p.add(2 * i)); // [x, y]
        let bx = _mm256_permute2f128_pd(v, v, 0x00); // [x, x]
        let by = _mm256_permute2f128_pd(v, v, 0x11); // [y, y]
        let a = _mm256_fmadd_pd(by, cre1, _mm256_mul_pd(bx, cre0));
        let b = _mm256_fmadd_pd(swap_reim(by), cim1, _mm256_mul_pd(swap_reim(bx), cim0));
        _mm256_storeu_pd(p.add(2 * i), _mm256_addsub_pd(a, b));
    }
}

/// Uncontrolled dense two-qubit gate. `s0`/`s1` are the bit shifts of
/// the gate's first/second target (gate order — they select the high and
/// low bit of the 4-dimensional sub-state index, matching
/// `Gate::target_matrix`), `m` the 4x4 matrix in row-major order.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available, `s0 != s1`,
/// `min(s0, s1) >= 1`, and `state.len()` is a power of two
/// `>= 2^(max(s0, s1) + 1)`.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn apply_2q_dense(state: &mut [C64], s0: usize, s1: usize, m: &[C64]) {
    debug_assert_eq!(m.len(), 16);
    let (d0, d1) = (1usize << s0, 1usize << s1);
    let (d_lo, d_hi) = (d0.min(d1), d0.max(d1));
    debug_assert!(d_lo >= 2 && state.len().is_multiple_of(d_hi << 1));
    let mre: [__m256d; 16] = std::array::from_fn(|i| _mm256_set1_pd(m[i].re));
    let mim: [__m256d; 16] = std::array::from_fn(|i| _mm256_set1_pd(m[i].im));
    let p = state.as_mut_ptr() as *mut f64;

    for a in (0..state.len()).step_by(d_hi << 1) {
        for b in (a..a + d_hi).step_by(d_lo << 1) {
            let mut i = b;
            while i < b + d_lo {
                // two consecutive groups; sub-state index is
                // (bit at s0) << 1 | (bit at s1)
                let p00 = p.add(2 * i);
                let p01 = p.add(2 * (i + d1));
                let p10 = p.add(2 * (i + d0));
                let p11 = p.add(2 * (i + d0 + d1));
                let v00 = _mm256_loadu_pd(p00);
                let v01 = _mm256_loadu_pd(p01);
                let v10 = _mm256_loadu_pd(p10);
                let v11 = _mm256_loadu_pd(p11);
                let w00 = swap_reim(v00);
                let w01 = swap_reim(v01);
                let w10 = swap_reim(v10);
                let w11 = swap_reim(v11);
                let mut out = [_mm256_setzero_pd(); 4];
                for (r, o) in out.iter_mut().enumerate() {
                    let k = 4 * r;
                    let mut acc_a = _mm256_mul_pd(v00, mre[k]);
                    acc_a = _mm256_fmadd_pd(v01, mre[k + 1], acc_a);
                    acc_a = _mm256_fmadd_pd(v10, mre[k + 2], acc_a);
                    acc_a = _mm256_fmadd_pd(v11, mre[k + 3], acc_a);
                    let mut acc_b = _mm256_mul_pd(w00, mim[k]);
                    acc_b = _mm256_fmadd_pd(w01, mim[k + 1], acc_b);
                    acc_b = _mm256_fmadd_pd(w10, mim[k + 2], acc_b);
                    acc_b = _mm256_fmadd_pd(w11, mim[k + 3], acc_b);
                    *o = _mm256_addsub_pd(acc_a, acc_b);
                }
                _mm256_storeu_pd(p00, out[0]);
                _mm256_storeu_pd(p01, out[1]);
                _mm256_storeu_pd(p10, out[2]);
                _mm256_storeu_pd(p11, out[3]);
                i += 2;
            }
        }
    }
}

/// [`apply_2q_dense`] when one target sits on the least significant
/// qubit (`min(s0, s1) == 0`): consecutive sub-states of one group are
/// adjacent in memory, so each group is processed with lane broadcasts
/// instead of pairing two groups.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available, exactly one of `s0`/`s1`
/// is zero, and `state.len()` is a power of two `>= 2^(max(s0, s1) + 1)`.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn apply_2q_dense_lsb(state: &mut [C64], s0: usize, s1: usize, m: &[C64]) {
    debug_assert_eq!(m.len(), 16);
    debug_assert!(s0.min(s1) == 0 && s0 != s1);
    // The LSB target makes consecutive sub-states memory-adjacent. When
    // the LSB is the *low* sub-index bit (s1 == 0) the low/high memory
    // pairs hold sub-states (0,1)/(2,3); when it is the high bit
    // (s0 == 0) they interleave to (0,2)/(1,3). Only the slot
    // bookkeeping differs between the two cases — matrix columns are
    // always accumulated in original 0..4 order, so the rounding (and
    // thus the result) is bit-identical to `apply_2q_dense`, which the
    // locality pass relies on when it relabels a target onto the LSB.
    let lsb_is_low_sub = s1 == 0;
    let d_hi = 1usize << s0.max(s1);
    // rows living in the (low, high) memory pairs, in memory order
    let pair_rows: [[usize; 2]; 2] = if lsb_is_low_sub {
        [[0, 1], [2, 3]]
    } else {
        [[0, 2], [1, 3]]
    };
    // constant slots: [row a, row a, row b, row b] per matrix column
    let cre: [__m256d; 8] = std::array::from_fn(|i| {
        let (rows, c) = (pair_rows[i / 4], i % 4);
        _mm256_setr_pd(
            m[4 * rows[0] + c].re,
            m[4 * rows[0] + c].re,
            m[4 * rows[1] + c].re,
            m[4 * rows[1] + c].re,
        )
    });
    let cim: [__m256d; 8] = std::array::from_fn(|i| {
        let (rows, c) = (pair_rows[i / 4], i % 4);
        _mm256_setr_pd(
            m[4 * rows[0] + c].im,
            m[4 * rows[0] + c].im,
            m[4 * rows[1] + c].im,
            m[4 * rows[1] + c].im,
        )
    });
    let p = state.as_mut_ptr() as *mut f64;
    for a in (0..state.len()).step_by(d_hi << 1) {
        for base in (a..a + d_hi).step_by(2) {
            let lo = _mm256_loadu_pd(p.add(2 * base));
            let hi = _mm256_loadu_pd(p.add(2 * (base + d_hi)));
            let l0 = _mm256_permute2f128_pd(lo, lo, 0x00);
            let l1 = _mm256_permute2f128_pd(lo, lo, 0x11);
            let h0 = _mm256_permute2f128_pd(hi, hi, 0x00);
            let h1 = _mm256_permute2f128_pd(hi, hi, 0x11);
            // broadcast slots indexed by original sub-state
            let z = if lsb_is_low_sub {
                [l0, l1, h0, h1]
            } else {
                [l0, h0, l1, h1]
            };
            let zs = [
                swap_reim(z[0]),
                swap_reim(z[1]),
                swap_reim(z[2]),
                swap_reim(z[3]),
            ];
            // pair_rows[0] into the low pair, pair_rows[1] into the high
            let mut acc_a = _mm256_mul_pd(z[0], cre[0]);
            let mut acc_b = _mm256_mul_pd(zs[0], cim[0]);
            for c in 1..4 {
                acc_a = _mm256_fmadd_pd(z[c], cre[c], acc_a);
                acc_b = _mm256_fmadd_pd(zs[c], cim[c], acc_b);
            }
            _mm256_storeu_pd(p.add(2 * base), _mm256_addsub_pd(acc_a, acc_b));
            let mut acc_a = _mm256_mul_pd(z[0], cre[4]);
            let mut acc_b = _mm256_mul_pd(zs[0], cim[4]);
            for c in 1..4 {
                acc_a = _mm256_fmadd_pd(z[c], cre[4 + c], acc_a);
                acc_b = _mm256_fmadd_pd(zs[c], cim[4 + c], acc_b);
            }
            _mm256_storeu_pd(p.add(2 * (base + d_hi)), _mm256_addsub_pd(acc_a, acc_b));
        }
    }
}

/// Uncontrolled dense k-qubit gate for `k >= 3` (fused blocks up to the
/// fusion cap). `shifts` are the bit shifts of the targets in gate
/// order (`shifts[0]` selects the most significant sub-state bit), `m`
/// the `2^k x 2^k` matrix in row-major order. Two consecutive groups are
/// processed per iteration; the matrix constants live in L1-resident
/// broadcast tables.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available, all shifts are distinct
/// and `>= 1`, and `state.len()` is a power of two with at least two
/// groups (`state.len() >> k >= 2`).
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn apply_kq_dense(state: &mut [C64], shifts: &[usize], m: &[C64]) {
    let k = shifts.len();
    let dim = 1usize << k;
    debug_assert_eq!(m.len(), dim * dim);
    debug_assert!(shifts.iter().all(|&s| s >= 1));

    // scatter offsets of each sub-state (shifts[0] = most significant)
    let offsets: Vec<usize> = (0..dim)
        .map(|sub| {
            shifts
                .iter()
                .enumerate()
                .map(|(i, &s)| ((sub >> (k - 1 - i)) & 1) << s)
                .sum()
        })
        .collect();
    let mre: Vec<__m256d> = m.iter().map(|z| _mm256_set1_pd(z.re)).collect();
    let mim: Vec<__m256d> = m.iter().map(|z| _mm256_set1_pd(z.im)).collect();

    let mut sorted = shifts.to_vec();
    sorted.sort_unstable();
    let base_of = |mcount: usize| {
        let mut base = mcount;
        for &s in &sorted {
            base = qclab_math::bits::insert_bit(base, s);
        }
        base
    };

    let p = state.as_mut_ptr() as *mut f64;
    let groups = state.len() >> k;
    debug_assert!(groups >= 2 && groups.is_multiple_of(2));
    let mut v = vec![_mm256_setzero_pd(); dim];
    let mut w = vec![_mm256_setzero_pd(); dim];
    let mut out = vec![_mm256_setzero_pd(); dim];
    let mut mcount = 0usize;
    while mcount < groups {
        // every shift is >= 1, so bit 0 of the counter maps to bit 0 of
        // the base index: groups (mcount, mcount + 1) are adjacent
        let base = base_of(mcount);
        for sub in 0..dim {
            v[sub] = _mm256_loadu_pd(p.add(2 * (base + offsets[sub])));
            w[sub] = swap_reim(v[sub]);
        }
        for (r, o) in out.iter_mut().enumerate() {
            let row = r * dim;
            let mut acc_a = _mm256_mul_pd(v[0], mre[row]);
            let mut acc_b = _mm256_mul_pd(w[0], mim[row]);
            for c in 1..dim {
                acc_a = _mm256_fmadd_pd(v[c], mre[row + c], acc_a);
                acc_b = _mm256_fmadd_pd(w[c], mim[row + c], acc_b);
            }
            *o = _mm256_addsub_pd(acc_a, acc_b);
        }
        for sub in 0..dim {
            _mm256_storeu_pd(p.add(2 * (base + offsets[sub])), out[sub]);
        }
        mcount += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_math::scalar::{c, cr};
    use qclab_math::CVec;

    fn random_state(n: usize, seed: u64) -> Vec<C64> {
        // tiny deterministic LCG, good enough for kernel cross-checks
        let mut x = seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as f64) / (1u64 << 31) as f64 - 1.0
        };
        (0..1 << n).map(|_| c(next(), next())).collect()
    }

    #[test]
    fn avx_1q_matches_scalar_reference() {
        if !available() {
            return;
        }
        let n = 6;
        let m = [cr(0.6), c(0.0, 0.8), c(0.0, 0.8), cr(0.6)];
        for s in 0..n {
            let mut state = random_state(n, 7 + s as u64);
            let mut reference = state.clone();
            // scalar reference
            let half = 1usize << s;
            for chunk in reference.chunks_mut(half << 1) {
                let (lo, hi) = chunk.split_at_mut(half);
                for j in 0..half {
                    let (x, y) = (lo[j], hi[j]);
                    lo[j] = m[0] * x + m[1] * y;
                    hi[j] = m[2] * x + m[3] * y;
                }
            }
            unsafe {
                if s >= 1 {
                    apply_1q_dense(&mut state, s, m);
                } else {
                    apply_1q_dense_lsb(&mut state, m);
                }
            }
            let a = CVec(state);
            let b = CVec(reference);
            assert!(a.approx_eq(&b, 1e-13), "shift {s} diverged");
        }
    }

    #[test]
    fn avx_kq_matches_scalar_reference() {
        if !available() {
            return;
        }
        let n = 7;
        for shifts in [vec![3usize, 1, 5], vec![2, 4, 1, 3]] {
            let k = shifts.len();
            let dim = 1usize << k;
            let m: Vec<C64> = (0..dim * dim)
                .map(|i| c(0.05 * i as f64 - 1.0, 0.3 - 0.02 * i as f64))
                .collect();
            let mut state = random_state(n, 99 + k as u64);
            let mut reference = state.clone();
            // scalar reference: gather, matvec, scatter per group
            let offsets: Vec<usize> = (0..dim)
                .map(|sub| {
                    shifts
                        .iter()
                        .enumerate()
                        .map(|(i, &s)| ((sub >> (k - 1 - i)) & 1) << s)
                        .sum()
                })
                .collect();
            let mut sorted = shifts.clone();
            sorted.sort_unstable();
            for mcount in 0..reference.len() >> k {
                let mut base = mcount;
                for &s in &sorted {
                    base = qclab_math::bits::insert_bit(base, s);
                }
                let v: Vec<C64> = offsets.iter().map(|&o| reference[base + o]).collect();
                for (r, &o) in offsets.iter().enumerate() {
                    reference[base + o] = (0..dim).map(|cc| m[dim * r + cc] * v[cc]).sum();
                }
            }
            unsafe { apply_kq_dense(&mut state, &shifts, &m) };
            let a = CVec(state);
            let b = CVec(reference);
            assert!(a.approx_eq(&b, 1e-12), "k={k} diverged");
        }
    }

    #[test]
    fn avx_2q_lsb_is_bit_identical_to_dense_under_bit_swap() {
        // The locality pass relabels a 2q target onto the LSB and relies
        // on the lsb kernel computing the *same floating-point op
        // sequence* as the general kernel — bit-identical, not ≈.
        if !available() {
            return;
        }
        let n = 5;
        let m: Vec<C64> = (0..16)
            .map(|i| c(0.1 + 0.05 * i as f64, 0.2 - 0.03 * i as f64))
            .collect();
        let a = random_state(n, 1234);
        // b[j] = a[i] with bits 0 and 3 of the index swapped
        let swap_bits = |i: usize| -> usize {
            let (b0, b3) = (i & 1, (i >> 3) & 1);
            (i & !0b1001) | (b0 << 3) | b3
        };
        let mut b: Vec<C64> = a.clone();
        for (i, &z) in a.iter().enumerate() {
            b[swap_bits(i)] = z;
        }
        let mut ra = a.clone();
        let mut rb = b.clone();
        unsafe {
            // first target on bit 3 in `a` ↔ on bit 0 in `b`
            apply_2q_dense(&mut ra, 3, 2, &m);
            apply_2q_dense_lsb(&mut rb, 0, 2, &m);
        }
        for (i, &z) in ra.iter().enumerate() {
            let w = rb[swap_bits(i)];
            assert_eq!(z.re.to_bits(), w.re.to_bits(), "re diverged at {i}");
            assert_eq!(z.im.to_bits(), w.im.to_bits(), "im diverged at {i}");
        }
    }

    #[test]
    fn avx_2q_matches_scalar_reference() {
        if !available() {
            return;
        }
        let n = 6;
        // a non-symmetric dense 4x4 so argument order mistakes are caught
        let m: Vec<C64> = (0..16)
            .map(|i| c(0.1 + 0.05 * i as f64, 0.2 - 0.03 * i as f64))
            .collect();
        for s0 in 0..n {
            for s1 in 0..n {
                if s0 == s1 {
                    continue;
                }
                let mut state = random_state(n, (s0 * 8 + s1) as u64);
                let mut reference = state.clone();
                let (dl, dh) = ((1usize << s0).min(1 << s1), (1usize << s0).max(1 << s1));
                for a in (0..reference.len()).step_by(dh << 1) {
                    for b in (a..a + dh).step_by(dl << 1) {
                        for i in b..b + dl {
                            let idx = [i, i + (1 << s1), i + (1 << s0), i + (1 << s0) + (1 << s1)];
                            let v: Vec<C64> = idx.iter().map(|&j| reference[j]).collect();
                            for r in 0..4 {
                                reference[idx[r]] = (0..4).map(|cc| m[4 * r + cc] * v[cc]).sum();
                            }
                        }
                    }
                }
                unsafe {
                    if s0.min(s1) >= 1 {
                        apply_2q_dense(&mut state, s0, s1, &m);
                    } else {
                        apply_2q_dense_lsb(&mut state, s0, s1, &m);
                    }
                }
                let a = CVec(state);
                let b = CVec(reference);
                assert!(a.approx_eq(&b, 1e-13), "shifts {s0}/{s1} diverged");
            }
        }
    }
}
