//! Pre-allocation resource guard.
//!
//! Every dense simulation path in the workspace eventually allocates a
//! `1 << n` amplitude buffer (or a `2^n × 2^n` matrix). For large `n` that
//! allocation aborts the process — or, for `n ≥ 64`, the shift itself
//! overflows before the allocator is even reached. [`ResourceLimits`]
//! estimates the memory an operation would need *before* any allocation
//! and turns oversized requests into [`QclabError::ResourceExhausted`],
//! so callers always get an error value instead of an abort.
//!
//! The default cap is [`DEFAULT_MAX_STATE_BYTES`] (4 GiB ≈ 28 state-vector
//! qubits). The CLI exposes it as `--max-qubits`; library users set
//! [`ResourceLimits`] on `SimOptions` / `TrajectoryConfig` directly.

use crate::error::QclabError;

/// Bytes per amplitude (`C64` = two `f64`).
pub const AMPLITUDE_BYTES: u128 = 16;

/// Bytes one live entry of the sparse hashmap state costs: a `usize`
/// basis index, a `C64` amplitude, and hashmap slot/load-factor
/// overhead. The sparse executor's live-entry budget is
/// `max_state_bytes / SPARSE_ENTRY_BYTES`, so dense and sparse runs
/// answer to the same byte cap.
pub const SPARSE_ENTRY_BYTES: u128 = 48;

/// Default cap on a single state allocation: 4 GiB, i.e. a 28-qubit
/// state vector (or a 14-qubit density matrix, which lives on a doubled
/// register).
pub const DEFAULT_MAX_STATE_BYTES: u128 = 4 << 30;

/// Bytes one packed `u64` word-pair costs in the stabilizer tableau and
/// the Pauli-frame planes: an `x` word plus a `z` word, 8 B each.
pub const TABLEAU_WORD_BYTES: u128 = 16;

/// Memory/size limits checked before dense state allocations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Hard cap on the register size in qubits, independent of memory.
    /// `None` means the register size is limited only by
    /// [`max_state_bytes`](Self::max_state_bytes).
    pub max_qubits: Option<usize>,
    /// Cap on the bytes a single dense state may occupy.
    pub max_state_bytes: u128,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            max_qubits: None,
            max_state_bytes: DEFAULT_MAX_STATE_BYTES,
        }
    }
}

impl ResourceLimits {
    /// Limits that refuse nothing the address space can index. The
    /// `n < 64` shift-overflow guard still applies.
    pub fn unlimited() -> Self {
        ResourceLimits {
            max_qubits: None,
            max_state_bytes: u128::MAX,
        }
    }

    /// Default byte cap plus an explicit qubit cap (CLI `--max-qubits`).
    pub fn with_max_qubits(max_qubits: usize) -> Self {
        ResourceLimits {
            max_qubits: Some(max_qubits),
            ..ResourceLimits::default()
        }
    }

    /// Bytes a dense `nb_qubits`-qubit state vector occupies, or `None`
    /// when `2^n · 16` does not even fit in a `u128`.
    pub fn state_bytes(nb_qubits: usize) -> Option<u128> {
        if nb_qubits >= 124 {
            return None;
        }
        Some((1u128 << nb_qubits) * AMPLITUDE_BYTES)
    }

    /// Checks that a dense `nb_qubits`-qubit state vector may be
    /// allocated and returns its dimension `1 << nb_qubits`.
    pub fn check_register(&self, nb_qubits: usize) -> Result<usize, QclabError> {
        let bytes = Self::state_bytes(nb_qubits);
        if let Some(max_q) = self.max_qubits {
            if nb_qubits > max_q {
                return Err(QclabError::ResourceExhausted {
                    qubits: nb_qubits,
                    bytes_needed: bytes,
                    limit_bytes: Self::state_bytes(max_q).unwrap_or(u128::MAX),
                });
            }
        }
        // `1usize << n` is only defined for n < 64; checking it here is
        // what makes the shift below (and in every caller) safe.
        let indexable = nb_qubits < usize::BITS as usize;
        match bytes {
            Some(b) if indexable && b <= self.max_state_bytes => Ok(1usize << nb_qubits),
            _ => Err(QclabError::ResourceExhausted {
                qubits: nb_qubits,
                bytes_needed: bytes,
                limit_bytes: self.max_state_bytes,
            }),
        }
    }

    /// Live-entry budget of a sparse execution under these limits: the
    /// byte cap divided by [`SPARSE_ENTRY_BYTES`].
    pub fn max_sparse_entries(&self) -> u128 {
        self.max_state_bytes / SPARSE_ENTRY_BYTES
    }

    /// Checks that a sparse state over `nb_qubits` qubits may exist at
    /// all: the explicit qubit cap still applies and basis indices must
    /// be addressable (`n < 64`), but — unlike
    /// [`check_register`](Self::check_register) — no `2^n` byte estimate
    /// is charged. Memory admission for sparse states is per live entry
    /// via [`check_sparse_entries`](Self::check_sparse_entries).
    pub fn check_sparse_register(&self, nb_qubits: usize) -> Result<(), QclabError> {
        if let Some(max_q) = self.max_qubits {
            if nb_qubits > max_q {
                return Err(QclabError::ResourceExhausted {
                    qubits: nb_qubits,
                    bytes_needed: Self::state_bytes(nb_qubits),
                    limit_bytes: Self::state_bytes(max_q).unwrap_or(u128::MAX),
                });
            }
        }
        // basis indices are `usize`; the sparse maps need `1usize << n`
        // nowhere, but `qubit_shift`-style bit math does need n < 64
        if nb_qubits >= usize::BITS as usize {
            return Err(QclabError::ResourceExhausted {
                qubits: nb_qubits,
                bytes_needed: Self::state_bytes(nb_qubits),
                limit_bytes: self.max_state_bytes,
            });
        }
        Ok(())
    }

    /// Checks that `entries` live sparse entries fit the byte cap
    /// (`entries · `[`SPARSE_ENTRY_BYTES`]` ≤ max_state_bytes`). The
    /// sparse executor calls this after every op; the chooser calls it
    /// on the lowering-time support bound.
    pub fn check_sparse_entries(&self, nb_qubits: usize, entries: u128) -> Result<(), QclabError> {
        let bytes = entries.saturating_mul(SPARSE_ENTRY_BYTES);
        if bytes > self.max_state_bytes {
            return Err(QclabError::ResourceExhausted {
                qubits: nb_qubits,
                bytes_needed: Some(bytes),
                limit_bytes: self.max_state_bytes,
            });
        }
        Ok(())
    }

    /// Bytes an `nb_qubits`-qubit stabilizer tableau occupies: `2n`
    /// Pauli rows (destabilizers + stabilizers) of `⌈n/64⌉` packed
    /// word-pairs each. Polynomial in `n`, so the same byte cap that
    /// stops a 29-qubit state vector admits tableaux of thousands of
    /// qubits — but an absurd register still refuses instead of
    /// aborting in the allocator.
    pub fn tableau_bytes(nb_qubits: usize) -> u128 {
        (2 * nb_qubits as u128)
            .saturating_mul(nb_qubits.div_ceil(64) as u128)
            .saturating_mul(TABLEAU_WORD_BYTES)
    }

    /// Bytes one Pauli-frame batch of `lanes` shots occupies: per qubit,
    /// an `x` and a `z` bit-plane of `⌈lanes/64⌉` words each (64 frames
    /// per word, struct-of-arrays over shots).
    pub fn frame_batch_bytes(nb_qubits: usize, lanes: usize) -> u128 {
        (nb_qubits as u128)
            .saturating_mul(lanes.div_ceil(64) as u128)
            .saturating_mul(TABLEAU_WORD_BYTES)
    }

    /// Admission check for the stabilizer tableau backend: the explicit
    /// qubit cap applies, and the tableau estimate
    /// ([`tableau_bytes`](Self::tableau_bytes)) is charged against the
    /// byte cap — the tableau backends answer to the same
    /// [`ResourceLimits`] as every dense path instead of bypassing the
    /// guard.
    pub fn check_tableau(&self, nb_qubits: usize) -> Result<(), QclabError> {
        self.check_frames(nb_qubits, 0)
    }

    /// Admission check for a Pauli-frame sampling run: tableau bytes
    /// (the reference run) plus one frame batch of `lanes` shots
    /// ([`frame_batch_bytes`](Self::frame_batch_bytes)) must fit the
    /// byte cap, and the explicit qubit cap applies. The caps are
    /// inclusive, matching [`check_register`](Self::check_register).
    pub fn check_frames(&self, nb_qubits: usize, lanes: usize) -> Result<(), QclabError> {
        let bytes = Self::tableau_bytes(nb_qubits)
            .saturating_add(Self::frame_batch_bytes(nb_qubits, lanes));
        if let Some(max_q) = self.max_qubits {
            if nb_qubits > max_q {
                return Err(QclabError::ResourceExhausted {
                    qubits: nb_qubits,
                    bytes_needed: Some(bytes),
                    limit_bytes: self.max_state_bytes,
                });
            }
        }
        if bytes > self.max_state_bytes {
            return Err(QclabError::ResourceExhausted {
                qubits: nb_qubits,
                bytes_needed: Some(bytes),
                limit_bytes: self.max_state_bytes,
            });
        }
        Ok(())
    }

    /// Checks that a dense `2^n × 2^n` matrix over `nb_qubits` qubits may
    /// be allocated (it costs as much as a state on a doubled register)
    /// and returns the side length `1 << nb_qubits`.
    pub fn check_matrix(&self, nb_qubits: usize) -> Result<usize, QclabError> {
        let doubled = nb_qubits
            .checked_mul(2)
            .ok_or(QclabError::ResourceExhausted {
                qubits: nb_qubits,
                bytes_needed: None,
                limit_bytes: self.max_state_bytes,
            })?;
        self.check_register(doubled)?;
        Ok(1usize << nb_qubits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_limits_admit_28_qubits_and_refuse_29() {
        let lim = ResourceLimits::default();
        assert_eq!(lim.check_register(0), Ok(1));
        assert_eq!(lim.check_register(28), Ok(1 << 28));
        match lim.check_register(29) {
            Err(QclabError::ResourceExhausted {
                qubits,
                bytes_needed,
                limit_bytes,
            }) => {
                assert_eq!(qubits, 29);
                assert_eq!(bytes_needed, Some((1u128 << 29) * 16));
                assert_eq!(limit_bytes, DEFAULT_MAX_STATE_BYTES);
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }

    #[test]
    fn qubit_cap_overrides_byte_cap_downward() {
        let lim = ResourceLimits::with_max_qubits(10);
        assert!(lim.check_register(10).is_ok());
        assert!(lim.check_register(11).is_err());
    }

    #[test]
    fn shift_overflow_region_is_an_error_not_a_panic() {
        // n ≥ 64 would overflow `1usize << n`; n ≥ 124 even overflows the
        // u128 byte estimate. Both must come back as clean errors.
        let lim = ResourceLimits::unlimited();
        for n in [64, 100, 124, usize::MAX] {
            assert!(matches!(
                lim.check_register(n),
                Err(QclabError::ResourceExhausted { .. })
            ));
        }
        assert!(lim.check_register(30).is_ok());
    }

    #[test]
    fn matrix_check_uses_doubled_register() {
        let lim = ResourceLimits::default();
        assert_eq!(lim.check_matrix(14), Ok(1 << 14));
        assert!(lim.check_matrix(15).is_err());
        assert!(lim.check_matrix(usize::MAX / 2 + 1).is_err());
    }

    // Boundary exactness: the caps are inclusive (`<=`), so a request
    // landing exactly on the cap is admitted and one unit above it is
    // refused. Off-by-one drift here silently shrinks (or blows) the
    // memory budget by a factor of two at the qubit granularity.

    #[test]
    fn register_cap_boundary_is_exact() {
        for n in [4usize, 10, 20] {
            // cap == exactly one n-qubit state vector
            let lim = ResourceLimits {
                max_qubits: None,
                max_state_bytes: (1u128 << n) * AMPLITUDE_BYTES,
            };
            assert_eq!(lim.check_register(n), Ok(1 << n), "at-cap n={n}");
            assert!(lim.check_register(n + 1).is_err(), "above-cap n={n}");
            // one byte less than the state refuses it
            let tight = ResourceLimits {
                max_state_bytes: lim.max_state_bytes - 1,
                ..lim
            };
            assert!(tight.check_register(n).is_err(), "cap-minus-one n={n}");
            assert!(tight.check_register(n - 1).is_ok());
        }
    }

    #[test]
    fn qubit_cap_boundary_is_exact() {
        let lim = ResourceLimits::with_max_qubits(17);
        assert_eq!(lim.check_register(17), Ok(1 << 17));
        assert!(lim.check_register(18).is_err());
        assert!(lim.check_sparse_register(17).is_ok());
        assert!(lim.check_sparse_register(18).is_err());
    }

    #[test]
    fn sparse_entry_cap_boundary_is_exact() {
        let entries = 1000u128;
        let lim = ResourceLimits {
            max_qubits: None,
            max_state_bytes: entries * SPARSE_ENTRY_BYTES,
        };
        assert_eq!(lim.max_sparse_entries(), entries);
        assert!(lim.check_sparse_entries(30, entries).is_ok(), "at cap");
        assert!(
            lim.check_sparse_entries(30, entries + 1).is_err(),
            "one entry above"
        );
        // a cap one byte short of the entry total refuses it
        let tight = ResourceLimits {
            max_state_bytes: entries * SPARSE_ENTRY_BYTES - 1,
            ..lim
        };
        assert!(tight.check_sparse_entries(30, entries).is_err());
        assert!(tight.check_sparse_entries(30, entries - 1).is_ok());
        // saturating byte math keeps absurd entry counts an error
        assert!(lim.check_sparse_entries(30, u128::MAX).is_err());
    }

    #[test]
    fn tableau_cap_boundary_is_exact() {
        // sizes straddling the 64-qubit word boundary: ⌈n/64⌉ jumps
        for n in [4usize, 64, 100, 129] {
            let bytes = ResourceLimits::tableau_bytes(n);
            assert_eq!(
                bytes,
                2 * n as u128 * n.div_ceil(64) as u128 * TABLEAU_WORD_BYTES
            );
            let lim = ResourceLimits {
                max_qubits: None,
                max_state_bytes: bytes,
            };
            assert!(lim.check_tableau(n).is_ok(), "at-cap n={n}");
            let tight = ResourceLimits {
                max_state_bytes: bytes - 1,
                ..lim
            };
            assert!(tight.check_tableau(n).is_err(), "cap-minus-one n={n}");
            // the qubit cap binds independently of the byte estimate
            let capped = ResourceLimits {
                max_qubits: Some(n - 1),
                ..lim
            };
            assert!(capped.check_tableau(n).is_err(), "qubit-capped n={n}");
        }
    }

    #[test]
    fn frame_cap_boundary_is_exact() {
        // a frame run charges tableau + one bit-sliced batch; the batch
        // estimate moves in whole 64-lane words
        let n = 25usize;
        for lanes in [1usize, 64, 1000] {
            let bytes =
                ResourceLimits::tableau_bytes(n) + ResourceLimits::frame_batch_bytes(n, lanes);
            let lim = ResourceLimits {
                max_qubits: None,
                max_state_bytes: bytes,
            };
            assert!(lim.check_frames(n, lanes).is_ok(), "at-cap lanes={lanes}");
            let tight = ResourceLimits {
                max_state_bytes: bytes - 1,
                ..lim
            };
            assert!(
                tight.check_frames(n, lanes).is_err(),
                "cap-minus-one lanes={lanes}"
            );
            // one more shot word is one unit above the cap
            assert!(
                lim.check_frames(n, lanes.div_ceil(64) * 64 + 1).is_err(),
                "next-word lanes={lanes}"
            );
        }
        // lanes within the same word cost the same
        assert_eq!(
            ResourceLimits::frame_batch_bytes(n, 1),
            ResourceLimits::frame_batch_bytes(n, 64)
        );
        // absurd inputs saturate into a refusal, never overflow
        assert!(ResourceLimits::default()
            .check_frames(usize::MAX, usize::MAX)
            .is_err());
    }

    #[test]
    fn matrix_cap_boundary_is_exact() {
        // an n-qubit matrix costs as much as a 2n-qubit state
        let n = 6usize;
        let lim = ResourceLimits {
            max_qubits: None,
            max_state_bytes: (1u128 << (2 * n)) * AMPLITUDE_BYTES,
        };
        assert_eq!(lim.check_matrix(n), Ok(1 << n), "at cap");
        assert!(lim.check_matrix(n + 1).is_err(), "above cap");
        let tight = ResourceLimits {
            max_state_bytes: lim.max_state_bytes - 1,
            ..lim
        };
        assert!(tight.check_matrix(n).is_err(), "cap minus one byte");
    }
}
