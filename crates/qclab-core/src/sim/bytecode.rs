//! Bytecode execution engine: [`crate::program::CompiledProgram`]
//! lowered one step further into a flat, cache-resident instruction
//! buffer run by a tight dispatch loop.
//!
//! The interpreter in [`super::Simulation`]'s `simulate_with` walks the
//! `ProgramOp` schedule and re-derives, for every op of every run (and
//! every shot of a trajectory ensemble): the control masks, the dense
//! target matrix (trig for rotation gates included), the extracted
//! diagonal, the k-qubit kernel's sorted shifts and scatter-offset
//! table, and the cache-blocked sweep's tile lowering. Bytecode
//! compilation pays all of that once per *plan*: each instruction is an
//! opcode plus fully-resolved operands
//! ([`kernel::PreparedOp`]/[`kernel::TilePre`] — matrix slot, stride,
//! masks, offset table), stored in the plan itself, which lives in the
//! fingerprint-keyed plan cache. A cache hit therefore skips both
//! lowering *and* preparation; the dispatch loop is a single `match` on
//! the opcode per instruction.
//!
//! Bit-identity is by construction, not by accident: both paths execute
//! [`kernel::apply_prepared`] on operands produced by the same
//! [`kernel::prepare_gate`] classification, in the same op order, with
//! the same runtime flags — the bytecode path merely moves the *prepare*
//! half out of the hot loop. The same structure (kernel-per-opcode over
//! a flat instruction stream) is what a GPU/offload backend dispatches,
//! which is why this layer is the stepping stone to one.

use super::control::ControlTicker;
use super::kernel::{self, KernelConfig, PreparedOp, TilePre};
use super::{measure_branches, reset_branches, Branch, SimOptions};
use crate::error::QclabError;
use crate::program::{CompiledProgram, ProgramOp};

/// One instruction of the dense simulate stream. Gate runs that the
/// interpreter would execute as a cache-blocked sweep are collapsed into
/// a single [`Window`](Instr::Window) at compile time (the grouping
/// rule is identical, so the executed kernel sequence is too);
/// measurements, resets and permutations carry the index of their
/// source op — the executor reads the operand (measurement spec,
/// permutation tables) from the plan it already holds.
pub(crate) enum Instr {
    /// Apply one pre-lowered gate to the full register.
    Gate(PreparedOp),
    /// Cache-blocked sweep over `count` consecutive tile-local gates.
    Window { tiles: Vec<TilePre>, count: usize },
    /// Scheduling wall — nothing to execute, one ticker step.
    Fence,
    /// Physically permute the amplitudes (`ops[op]` holds the tables).
    Permute { op: usize },
    /// Branch on a measurement (`ops[op]` holds the spec).
    Measure { op: usize },
    /// Reset a qubit (`ops[op]` holds it).
    Reset { op: usize },
}

/// The per-op overlay the shot-batched trajectory executor walks in
/// lockstep with the op schedule (`flat[i]` pairs with `ops[i]`): gates
/// carry their prepared form plus the touched-qubit list the noise
/// model re-derived per shot; everything else executes off the op
/// itself.
pub(crate) enum FlatInstr {
    /// A gate, pre-lowered, with `gate.qubits()` precomputed for the
    /// after-gate/idle noise sites.
    Gate {
        pre: PreparedOp,
        touched: Vec<usize>,
    },
    /// Measure / reset / fence / permute — the executor reads the
    /// paired `ProgramOp` directly.
    Other,
}

/// A compiled program's instruction buffer: the windowed stream the
/// dense branching executor dispatches on, plus the flat per-op overlay
/// the shot-batched trajectory engine walks. Compiled lazily by
/// [`CompiledProgram::bytecode`] and cached on the plan.
pub struct Bytecode {
    n: usize,
    pub(crate) stream: Vec<Instr>,
    pub(crate) flat: Vec<FlatInstr>,
}

impl std::fmt::Debug for Bytecode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bytecode")
            .field("n", &self.n)
            .field("stream_len", &self.stream.len())
            .field("flat_len", &self.flat.len())
            .finish()
    }
}

impl Bytecode {
    /// Lowers a compiled program into bytecode. Preparation classifies
    /// with every kernel specialization enabled — the execution paths
    /// are gated on the matching [`KernelConfig`] flags (see
    /// [`eligible`]), so ablation runs with a specialization disabled
    /// fall back to the interpreter instead of executing mismatched
    /// operands.
    pub(crate) fn compile(program: &CompiledProgram) -> Bytecode {
        let n = program.nb_qubits();
        let ops = program.ops();
        let mut stream = Vec::with_capacity(ops.len());
        let mut flat = Vec::with_capacity(ops.len());

        // flat overlay: one entry per op, in lockstep
        for op in ops {
            flat.push(match op {
                ProgramOp::Gate(g) => FlatInstr::Gate {
                    pre: kernel::prepare_gate(g, n, true, true),
                    touched: g.qubits(),
                },
                _ => FlatInstr::Other,
            });
        }

        // windowed stream: replicate the interpreter's grouping rule —
        // maximal runs of >= 2 consecutive sweepable gates become one
        // Window; everything else stays a single instruction
        let mut i = 0;
        while i < ops.len() {
            match &ops[i] {
                ProgramOp::Gate(g) => {
                    let mut j = i;
                    while j < ops.len()
                        && matches!(&ops[j], ProgramOp::Gate(g) if kernel::sweepable(g, n))
                    {
                        j += 1;
                    }
                    if j - i >= 2 {
                        let tiles: Vec<TilePre> = ops[i..j]
                            .iter()
                            .map(|op| match op {
                                ProgramOp::Gate(g) => kernel::prepare_tile(g, n, true, true),
                                _ => unreachable!(),
                            })
                            .collect();
                        stream.push(Instr::Window {
                            tiles,
                            count: j - i,
                        });
                        i = j;
                        continue;
                    }
                    stream.push(Instr::Gate(kernel::prepare_gate(g, n, true, true)));
                    i += 1;
                }
                ProgramOp::Fence(_) => {
                    stream.push(Instr::Fence);
                    i += 1;
                }
                ProgramOp::Permute { .. } => {
                    stream.push(Instr::Permute { op: i });
                    i += 1;
                }
                ProgramOp::Measure(_) => {
                    stream.push(Instr::Measure { op: i });
                    i += 1;
                }
                ProgramOp::Reset(_) => {
                    stream.push(Instr::Reset { op: i });
                    i += 1;
                }
            }
        }
        Bytecode { n, stream, flat }
    }

    /// Register size the bytecode was compiled for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of instructions in the dense dispatch stream (windows
    /// count as one).
    pub fn stream_len(&self) -> usize {
        self.stream.len()
    }
}

/// Whether a kernel configuration may execute through the bytecode
/// path: the stream's operands were classified with the diagonal and
/// swap specializations on, so switching either off (the F4 ablations)
/// — or `bytecode` itself (`--no-bytecode`) — routes through the
/// interpreter instead.
pub(crate) fn eligible(cfg: &KernelConfig) -> bool {
    cfg.bytecode && cfg.use_diagonal_kernel && cfg.use_swap_kernel
}

/// The dense branching executor's dispatch loop: drives `branches`
/// through the compiled stream exactly as `simulate_with`'s interpreter
/// walk would — same kernels, same tick cadence (one per instruction,
/// `count` per window), same measurement branching — with all per-op
/// derivation already done.
pub(crate) fn execute_dense(
    program: &CompiledProgram,
    bc: &Bytecode,
    branches: &mut Vec<Branch>,
    opts: &SimOptions,
    ticker: &mut ControlTicker<'_>,
) -> Result<(), QclabError> {
    let n = bc.n;
    let ops = program.ops();
    // logical→physical layout of the amplitudes; `None` = identity
    let mut map: Option<Vec<usize>> = None;
    for instr in &bc.stream {
        match instr {
            Instr::Gate(pre) => {
                for b in branches.iter_mut() {
                    kernel::apply_prepared(pre, &mut b.state, n, &opts.kernel);
                }
                ticker.tick()?;
            }
            Instr::Window { tiles, count } => {
                for b in branches.iter_mut() {
                    kernel::apply_window_pre(&mut b.state, n, tiles, &opts.kernel);
                }
                ticker.tick_n(*count)?;
            }
            Instr::Fence => {
                ticker.tick()?;
            }
            Instr::Permute { op } => {
                let ProgramOp::Permute { perm, map: new_map } = &ops[*op] else {
                    unreachable!()
                };
                let parallel = opts.kernel.allow_parallel && n >= kernel::PARALLEL_THRESHOLD_QUBITS;
                for b in branches.iter_mut() {
                    kernel::permute_state(&mut b.state, n, perm, parallel);
                }
                map = if new_map.iter().enumerate().all(|(q, &p)| q == p) {
                    None
                } else {
                    Some(new_map.clone())
                };
                ticker.tick()?;
            }
            Instr::Measure { op } => {
                let ProgramOp::Measure(m) = &ops[*op] else {
                    unreachable!()
                };
                *branches = measure_branches(branches, m, opts, n, map.as_deref());
                ticker.tick()?;
            }
            Instr::Reset { op } => {
                let ProgramOp::Reset(q) = &ops[*op] else {
                    unreachable!()
                };
                *branches = reset_branches(branches, *q, opts, n, map.as_deref());
                ticker.tick()?;
            }
        }
    }
    Ok(())
}
