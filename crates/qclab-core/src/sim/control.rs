//! Cooperative execution control: deadlines, cancellation, and fault
//! injection at op boundaries.
//!
//! `sim::guard` refuses oversized work *before* an executor allocates;
//! this module is the in-flight counterpart. An [`ExecutionControl`]
//! carries a monotonic deadline ([`std::time::Instant`]) and a shared
//! cancel token (`Arc<AtomicBool>`), and every executor — dense sweep,
//! sparse per-op loop, density, stabilizer, and the trajectory shot
//! paths — polls it at op boundaries through a [`ControlTicker`], so a
//! long run observes a stop within a bounded number of ops
//! (`check_every`, default [`DEFAULT_CHECK_EVERY`]).
//!
//! Two invariants the rest of the stack relies on:
//!
//! * **Disabled control is free.** [`ExecutionControl::none`] (the
//!   default everywhere) makes [`ControlTicker::tick`] a branch on a
//!   cached boolean — no clock reads, no atomics, and crucially no RNG
//!   draws, so results with control threaded through are bit-identical
//!   to results without it.
//! * **Checks never touch randomness or state.** Even an *enabled*
//!   control only compares `Instant`s and loads an atomic; per-shot RNG
//!   streams and amplitudes are untouched, so the shots a timed-out
//!   trajectory run did complete are bit-identical to the same shots of
//!   an untimed run.
//!
//! A stop surfaces as [`QclabError::Cancelled`] or
//! [`QclabError::DeadlineExceeded`] with an [`ExecProgress`] payload;
//! trajectory ensembles instead keep the completed shots and return a
//! result flagged partial (see `trajectory::TrajectoryResult::stop_cause`).
//!
//! With the `chaos` cargo feature, this module also hosts the
//! fault-injection hook (modeled on the trajectory noise-injection
//! style: a process-global armed fault instead of a per-gate channel):
//! [`chaos::arm`] schedules a forced cancellation, a synthetic
//! allocation refusal, or a panic after a chosen number of op
//! boundaries, which the ticker fires from the same call sites the real
//! checks use. The chaos test suite drives it through every executor to
//! prove clean unwinding: scratch buffers returned, watchdog stats
//! consistent, plan cache never poisoned.

use crate::error::{ExecProgress, QclabError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Op boundaries between deadline/cancel checks when
/// [`ExecutionControl::check_every`] is left at 0.
///
/// A check is an atomic load plus an `Instant::now()` — trivial next to
/// any dense op, but worth amortizing in the sparse and stabilizer
/// loops where an op can be tens of nanoseconds.
pub const DEFAULT_CHECK_EVERY: u32 = 64;

/// Why a run stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCause {
    /// The shared cancel token was set.
    Cancelled,
    /// The monotonic deadline passed.
    DeadlineExceeded,
}

impl StopCause {
    /// The corresponding error, carrying the progress made.
    pub fn into_error(self, progress: ExecProgress) -> QclabError {
        match self {
            StopCause::Cancelled => QclabError::Cancelled(progress),
            StopCause::DeadlineExceeded => QclabError::DeadlineExceeded(progress),
        }
    }

    /// Extracts the stop cause from an error, if it is one.
    pub fn from_error(err: &QclabError) -> Option<StopCause> {
        match err {
            QclabError::Cancelled(_) => Some(StopCause::Cancelled),
            QclabError::DeadlineExceeded(_) => Some(StopCause::DeadlineExceeded),
            _ => None,
        }
    }
}

impl std::fmt::Display for StopCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopCause::Cancelled => write!(f, "cancelled"),
            StopCause::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// Deadline + cancel token threaded cooperatively through an execution.
///
/// Cheap to clone (the token is an `Arc`), `Sync`, and safe to share
/// across the trajectory engine's parallel shots. The default
/// ([`ExecutionControl::none`]) has neither a deadline nor a token and
/// costs nothing at op boundaries.
#[derive(Clone, Debug, Default)]
pub struct ExecutionControl {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    /// Op boundaries between checks; 0 means [`DEFAULT_CHECK_EVERY`].
    check_every: u32,
}

impl ExecutionControl {
    /// No deadline, no token: every check is a no-op.
    pub fn none() -> Self {
        Self::default()
    }

    /// Control that stops when the monotonic clock passes `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        ExecutionControl {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// Control that stops `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Control that stops once `token` is set (e.g. by another thread).
    pub fn with_cancel_token(token: Arc<AtomicBool>) -> Self {
        ExecutionControl {
            cancel: Some(token),
            ..Self::default()
        }
    }

    /// Adds a deadline to an existing control (builder style).
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Adds a cancel token to an existing control (builder style).
    pub fn cancel_token(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets the op-boundary check interval (0 restores the default).
    pub fn check_every(mut self, every: u32) -> Self {
        self.check_every = every;
        self
    }

    /// `true` when a deadline or token is attached, i.e. when
    /// op-boundary checks actually do something. (Chaos pokes happen
    /// regardless — they are compiled in per-feature, not configured.)
    pub fn is_enabled(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// Immediate check, ignoring the interval: has a stop been
    /// requested right now? Token wins over deadline when both fired.
    pub fn probe(&self) -> Option<StopCause> {
        if let Some(tok) = &self.cancel {
            if tok.load(Ordering::Relaxed) {
                return Some(StopCause::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopCause::DeadlineExceeded);
            }
        }
        None
    }

    /// A fresh per-run op counter over this control.
    pub fn ticker(&self) -> ControlTicker<'_> {
        ControlTicker {
            control: self,
            enabled: self.is_enabled(),
            every: if self.check_every == 0 {
                DEFAULT_CHECK_EVERY
            } else {
                self.check_every
            },
            since_check: 0,
            ops_done: 0,
        }
    }
}

/// Per-run op counter that polls an [`ExecutionControl`] every
/// `check_every` op boundaries. Created by [`ExecutionControl::ticker`];
/// executors call [`tick`](ControlTicker::tick) once per applied op.
#[derive(Debug)]
pub struct ControlTicker<'a> {
    control: &'a ExecutionControl,
    enabled: bool,
    every: u32,
    since_check: u32,
    ops_done: u64,
}

impl ControlTicker<'_> {
    /// Records one completed op boundary and, at the configured
    /// interval, checks for a requested stop. With chaos compiled in,
    /// also the fault-injection point (every boundary, not just at the
    /// interval, so faults land at exact op indices).
    #[inline]
    pub fn tick(&mut self) -> Result<(), QclabError> {
        self.tick_n(1)
    }

    /// [`tick`](ControlTicker::tick) for a batch of `n` ops applied as
    /// one unit (e.g. a cache-blocked sweep window); performs at most
    /// one check.
    #[inline]
    pub fn tick_n(&mut self, n: usize) -> Result<(), QclabError> {
        self.ops_done += n as u64;
        #[cfg(feature = "chaos")]
        chaos::poke(self.progress())?;
        if !self.enabled {
            return Ok(());
        }
        self.since_check = self.since_check.saturating_add(n as u32);
        if self.since_check >= self.every {
            self.since_check = 0;
            if let Some(cause) = self.control.probe() {
                return Err(cause.into_error(self.progress()));
            }
        }
        Ok(())
    }

    /// Op boundaries ticked so far.
    pub fn ops_done(&self) -> u64 {
        self.ops_done
    }

    /// The progress payload for an error raised at this point.
    pub fn progress(&self) -> ExecProgress {
        ExecProgress {
            ops_done: self.ops_done,
            shots_done: 0,
        }
    }
}

/// First-stop latch shared by the trajectory engine's parallel shots:
/// the shot that observes a cancel/deadline (or hits an injected fault)
/// records it here, and every other shot sees the latch in its prologue
/// and returns without starting. Only the first error is kept.
#[derive(Debug, Default)]
pub struct StopLatch {
    tripped: AtomicBool,
    err: std::sync::Mutex<Option<QclabError>>,
}

impl StopLatch {
    /// A latch in the clear state.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` once any participant has tripped the latch.
    #[inline]
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    /// Trips the latch with `err`; later trips are ignored.
    pub fn trip(&self, err: QclabError) {
        let mut slot = self.err.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(err);
        }
        self.tripped.store(true, Ordering::Relaxed);
    }

    /// The first recorded error, if the latch was tripped.
    pub fn take(self) -> Option<QclabError> {
        self.err.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

/// Fault injection at op boundaries, compiled in with the `chaos`
/// feature and driven by the chaos test suite (`tests/chaos_faults.rs`).
///
/// A process-global single-shot fault: [`arm`] schedules one fault to
/// fire after `after_ops` further op boundaries (across whichever
/// executor ticks next), after which the hook disarms itself so
/// subsequent runs in the same process are clean — exactly what the
/// differential recovery checks need.
#[cfg(feature = "chaos")]
pub mod chaos {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// What to inject at the op boundary.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Fault {
        /// Forced cooperative cancellation ([`QclabError::Cancelled`]).
        Cancel,
        /// Synthetic allocation refusal
        /// ([`QclabError::ResourceExhausted`] with zeroed sizes).
        Refuse,
        /// A panic, to prove executors unwind without poisoning shared
        /// state.
        Panic,
    }

    const DISARMED: u64 = 0;
    const CANCEL: u64 = 1;
    const REFUSE: u64 = 2;
    const PANIC: u64 = 3;

    static FAULT: AtomicU64 = AtomicU64::new(DISARMED);
    static COUNTDOWN: AtomicU64 = AtomicU64::new(0);

    /// Arms `fault` to fire after `after_ops` more op boundaries
    /// (0 = the very next boundary). Single-shot: firing disarms.
    pub fn arm(fault: Fault, after_ops: u64) {
        COUNTDOWN.store(after_ops, Ordering::SeqCst);
        let code = match fault {
            Fault::Cancel => CANCEL,
            Fault::Refuse => REFUSE,
            Fault::Panic => PANIC,
        };
        FAULT.store(code, Ordering::SeqCst);
    }

    /// Disarms any pending fault.
    pub fn disarm() {
        FAULT.store(DISARMED, Ordering::SeqCst);
    }

    /// Ticker call site: counts down and fires the armed fault.
    pub(crate) fn poke(progress: ExecProgress) -> Result<(), QclabError> {
        if FAULT.load(Ordering::Relaxed) == DISARMED {
            return Ok(());
        }
        let prev = COUNTDOWN
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| {
                Some(c.saturating_sub(1))
            })
            .unwrap_or(0);
        if prev > 0 {
            return Ok(());
        }
        // fire once, then disarm so recovery runs are unperturbed
        match FAULT.swap(DISARMED, Ordering::SeqCst) {
            CANCEL => Err(QclabError::Cancelled(progress)),
            REFUSE => Err(QclabError::ResourceExhausted {
                qubits: 0,
                bytes_needed: None,
                limit_bytes: 0,
            }),
            PANIC => panic!("chaos fault injection: forced panic at op boundary"),
            _ => Ok(()), // raced with disarm / another firing
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_control_never_stops() {
        let ctl = ExecutionControl::none();
        assert!(!ctl.is_enabled());
        assert!(ctl.probe().is_none());
        let mut t = ctl.ticker();
        for _ in 0..10_000 {
            t.tick().unwrap();
        }
        assert_eq!(t.ops_done(), 10_000);
    }

    #[test]
    fn cancel_token_observed_within_interval() {
        let tok = Arc::new(AtomicBool::new(false));
        let ctl = ExecutionControl::with_cancel_token(tok.clone()).check_every(8);
        let mut t = ctl.ticker();
        for _ in 0..100 {
            t.tick().unwrap();
        }
        tok.store(true, Ordering::Relaxed);
        let mut stopped_at = None;
        for i in 0..16 {
            if let Err(e) = t.tick() {
                assert!(matches!(e, QclabError::Cancelled(_)));
                stopped_at = Some(i);
                break;
            }
        }
        // bounded observation: at most one interval after the set
        assert!(stopped_at.expect("cancellation must be observed") < 8);
    }

    #[test]
    fn expired_deadline_stops_with_progress() {
        let ctl = ExecutionControl::with_deadline(Instant::now() - Duration::from_millis(1))
            .check_every(1);
        assert_eq!(ctl.probe(), Some(StopCause::DeadlineExceeded));
        let mut t = ctl.ticker();
        t.tick().unwrap_err(); // first tick observes
        match t.tick().unwrap_err() {
            QclabError::DeadlineExceeded(p) => assert_eq!(p.ops_done, 2),
            e => panic!("expected DeadlineExceeded, got {e:?}"),
        }
    }

    #[test]
    fn generous_deadline_does_not_stop() {
        let ctl = ExecutionControl::with_timeout(Duration::from_secs(3600)).check_every(1);
        assert!(ctl.is_enabled());
        let mut t = ctl.ticker();
        for _ in 0..1000 {
            t.tick().unwrap();
        }
    }

    #[test]
    fn cancel_wins_over_deadline_and_batch_tick_counts_ops() {
        let tok = Arc::new(AtomicBool::new(true));
        let ctl = ExecutionControl::with_deadline(Instant::now() - Duration::from_millis(1))
            .cancel_token(tok)
            .check_every(1);
        assert_eq!(ctl.probe(), Some(StopCause::Cancelled));
        let mut t = ctl.ticker();
        match t.tick_n(5).unwrap_err() {
            QclabError::Cancelled(p) => assert_eq!(p.ops_done, 5),
            e => panic!("expected Cancelled, got {e:?}"),
        }
    }

    #[test]
    fn stop_latch_keeps_first_error() {
        let latch = StopLatch::new();
        assert!(!latch.is_tripped());
        latch.trip(QclabError::Cancelled(ExecProgress::default()));
        latch.trip(QclabError::DeadlineExceeded(ExecProgress::default()));
        assert!(latch.is_tripped());
        assert!(matches!(latch.take(), Some(QclabError::Cancelled(_))));
    }

    #[test]
    fn stop_cause_round_trips_through_errors() {
        let p = ExecProgress {
            ops_done: 3,
            shots_done: 1,
        };
        for cause in [StopCause::Cancelled, StopCause::DeadlineExceeded] {
            let err = cause.into_error(p);
            assert_eq!(StopCause::from_error(&err), Some(cause));
        }
        assert_eq!(
            StopCause::from_error(&QclabError::InvalidBitstring("x".into())),
            None
        );
    }
}
