//! Sparse statevector executor: a hashmap of nonzero amplitudes keyed
//! by basis index.
//!
//! Dense simulation pays `2^n` amplitudes no matter how many are zero;
//! Grover oracles, basis-state-heavy syndrome circuits and other
//! low-entanglement workloads keep all but a handful at exactly zero.
//! This executor stores only the nonzero support, so its memory and
//! per-gate cost scale with the *live-entry count* instead of `2^n` —
//! [`guard::ResourceLimits`] admission goes through
//! [`check_sparse_entries`](ResourceLimits::check_sparse_entries)
//! rather than the dense byte estimate, opening 30+ qubit registers the
//! dense engine guard-refuses.
//!
//! The executor consumes the same [`CompiledProgram`] as every dense
//! executor (gates, fences, permutes, mid-circuit measurements and
//! resets all supported) and mirrors the branching semantics of
//! [`simulate_with`](crate::circuit::QCircuit::simulate_with) exactly,
//! which is what the `sparse_equivalence` differential suite locks in.
//! Amplitudes whose magnitude drops to the pruning epsilon are removed,
//! so destructive interference (the uncompute half of an oracle) shrinks
//! the support back down instead of accumulating dead entries.
//!
//! Use [`PlanOptions::sparse()`](crate::program::PlanOptions::sparse)
//! when lowering for this executor: fusion would coarsen
//! support-preserving gate runs into dense blocks and the locality pass
//! optimizes a stride that a hashmap does not have. The automatic
//! dense/sparse dispatch lives in
//! [`choose_backend`](crate::program::choose_backend) and
//! [`simulate_bitstring_routed`](crate::circuit::QCircuit::simulate_bitstring_routed).

use std::collections::{BTreeMap, HashMap};

use super::control::ExecutionControl;
use super::guard::ResourceLimits;
use super::sampler::DiscreteSampler;
use super::{Branch, Simulation};
use crate::error::QclabError;
use crate::gates::Gate;
use crate::measurement::{Basis, Measurement};
use crate::program::{CompiledProgram, ProgramOp};
use qclab_math::{bits, CVec, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default amplitude-pruning epsilon: entries with `|amp| ≤ eps` are
/// dropped after a general gate application. Two orders of magnitude
/// below the 1e-12 equivalence tolerance the differential suite
/// asserts, so pruning is invisible at that precision.
pub const DEFAULT_PRUNE_EPS: f64 = 1e-14;

/// Options of a sparse execution run.
#[derive(Clone, Copy, Debug)]
pub struct SparseOptions {
    /// Amplitude-pruning threshold (see [`DEFAULT_PRUNE_EPS`]).
    pub prune_eps: f64,
    /// Measurement outcomes with probability below this threshold are
    /// pruned instead of spawning a branch (matches
    /// [`SimOptions::branch_tol`](super::SimOptions::branch_tol)).
    pub branch_tol: f64,
    /// Resource limits; sparse admission charges live entries via
    /// [`ResourceLimits::check_sparse_entries`] after every op.
    pub limits: ResourceLimits,
}

impl Default for SparseOptions {
    fn default() -> Self {
        SparseOptions {
            prune_eps: DEFAULT_PRUNE_EPS,
            branch_tol: 1e-12,
            limits: ResourceLimits::default(),
        }
    }
}

/// `(mask, want)` test precomputed from a gate's control list: index `i`
/// satisfies the controls iff `i & mask == want`.
fn control_masks(controls: &[(usize, u8)], n: usize) -> (usize, usize) {
    let mut mask = 0usize;
    let mut want = 0usize;
    for &(q, s) in controls {
        let bit = 1usize << bits::qubit_shift(q, n);
        mask |= bit;
        if s == 1 {
            want |= bit;
        }
    }
    (mask, want)
}

/// A sparse `n`-qubit state: the nonzero amplitudes keyed by basis
/// index (qubit 0 is the most significant index bit, as everywhere in
/// the workspace).
#[derive(Clone, Debug, Default)]
pub struct SparseState {
    n: usize,
    amps: HashMap<usize, C64>,
}

impl SparseState {
    /// The basis state `|idx>` on `n` qubits — one live entry.
    pub fn basis_state(n: usize, idx: usize) -> Self {
        let mut amps = HashMap::with_capacity(1);
        amps.insert(idx, C64::new(1.0, 0.0));
        SparseState { n, amps }
    }

    /// The basis state written as a bitstring (`"010"`), like
    /// [`CVec::from_bitstring`] without the `2^n` allocation.
    pub fn from_bitstring(s: &str) -> Option<Self> {
        let idx = bits::bitstring_to_index(s)?;
        Some(Self::basis_state(s.len(), idx))
    }

    /// Builds a sparse state from a dense vector, dropping amplitudes
    /// with `|amp| ≤ eps`.
    pub fn from_dense(v: &CVec, eps: f64) -> Self {
        let n = v.nb_qubits();
        let eps2 = eps * eps;
        let amps = v
            .iter()
            .enumerate()
            .filter(|(_, z)| z.norm_sqr() > eps2)
            .map(|(i, &z)| (i, z))
            .collect();
        SparseState { n, amps }
    }

    /// Number of register qubits.
    pub fn nb_qubits(&self) -> usize {
        self.n
    }

    /// Number of live (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.amps.len()
    }

    /// The amplitude of basis state `idx` (zero when not live).
    pub fn amplitude(&self, idx: usize) -> C64 {
        self.amps.get(&idx).copied().unwrap_or(C64::new(0.0, 0.0))
    }

    /// Iterator over the live `(basis index, amplitude)` entries, in
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, C64)> + '_ {
        self.amps.iter().map(|(&i, &a)| (i, a))
    }

    /// 2-norm of the state.
    pub fn norm(&self) -> f64 {
        self.amps.values().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Densifies into a `2^n` vector, guard-checked against `limits`.
    pub fn to_dense(&self, limits: &ResourceLimits) -> Result<CVec, QclabError> {
        let dim = limits.check_register(self.n)?;
        let mut v = CVec::zeros(dim);
        for (&i, &a) in &self.amps {
            v[i] = a;
        }
        Ok(v)
    }

    /// Applies `gate` in place, pruning result amplitudes with
    /// `|amp| ≤ eps`.
    ///
    /// Diagonal gates (controls included) multiply live entries in
    /// place and can never grow or shrink the support; every other gate
    /// gathers the live entries into groups sharing their non-target
    /// bits, multiplies each group by the `2^k × 2^k` target matrix and
    /// scatters the nonzero results back — entries failing the control
    /// test pass through untouched.
    pub fn apply_gate(&mut self, gate: &Gate, eps: f64) {
        let n = self.n;
        let targets = gate.targets();
        let (cmask, cwant) = control_masks(&gate.controls(), n);
        let m = gate.target_matrix();

        if m.is_diagonal(0.0) {
            // unitary diagonal entries have unit magnitude: support and
            // entry magnitudes are preserved, no pruning needed
            for (&i, a) in self.amps.iter_mut() {
                if i & cmask == cwant {
                    let sub = bits::gather_bits(i, &targets, n);
                    *a *= m[(sub, sub)];
                }
            }
            return;
        }

        let k = targets.len();
        let dim = 1usize << k;
        let tmask: usize = targets
            .iter()
            .map(|&q| 1usize << bits::qubit_shift(q, n))
            .fold(0, |acc, b| acc | b);

        let mut out: HashMap<usize, C64> = HashMap::with_capacity(self.amps.len() * 2);
        let mut groups: HashMap<usize, Vec<C64>> = HashMap::new();
        for (&i, &a) in &self.amps {
            if i & cmask != cwant {
                out.insert(i, a);
                continue;
            }
            let base = i & !tmask;
            let sub = bits::gather_bits(i, &targets, n);
            groups
                .entry(base)
                .or_insert_with(|| vec![C64::new(0.0, 0.0); dim])[sub] = a;
        }
        let eps2 = eps * eps;
        for (base, vin) in groups {
            for row in 0..dim {
                let mut acc = C64::new(0.0, 0.0);
                for (col, &x) in vin.iter().enumerate() {
                    if x.re != 0.0 || x.im != 0.0 {
                        acc += m[(row, col)] * x;
                    }
                }
                if acc.norm_sqr() > eps2 {
                    out.insert(base | bits::scatter_bits(0, row, &targets, n), acc);
                }
            }
        }
        self.amps = out;
    }

    /// Applies a layout permutation by re-keying every live entry
    /// (matches [`super::kernel::permute_state`]: the bit on qubit `q`
    /// moves to qubit `perm[q]`).
    pub(crate) fn permute(&mut self, perm: &[usize]) {
        let n = self.n;
        self.amps = self
            .amps
            .drain()
            .map(|(i, a)| (bits::permute_index(i, perm, n), a))
            .collect();
    }

    /// Z-measurement outcome probabilities of qubit `q`.
    fn measure_probabilities(&self, q: usize) -> (f64, f64) {
        let shift = bits::qubit_shift(q, self.n);
        let mut p = [0.0f64; 2];
        for (&i, a) in &self.amps {
            p[(i >> shift) & 1] += a.norm_sqr();
        }
        (p[0], p[1])
    }

    /// The state collapsed onto outcome `bit` of a Z-measurement of `q`
    /// with probability `p`: entries on the other outcome drop, the
    /// rest rescale by `1/sqrt(p)`.
    fn collapsed(&self, q: usize, bit: usize, p: f64) -> SparseState {
        let shift = bits::qubit_shift(q, self.n);
        let scale = 1.0 / p.sqrt();
        let amps = self
            .amps
            .iter()
            .filter(|(&i, _)| (i >> shift) & 1 == bit)
            .map(|(&i, &a)| (i, a * scale))
            .collect();
        SparseState { n: self.n, amps }
    }
}

/// One post-measurement branch of a sparse simulation — the sparse
/// mirror of [`Branch`].
#[derive(Clone, Debug)]
pub struct SparseBranch {
    result: String,
    probability: f64,
    state: SparseState,
    measured: BTreeMap<usize, (Vec<C64>, u8)>,
}

impl SparseBranch {
    /// Concatenated measurement outcomes, in execution order.
    pub fn result(&self) -> &str {
        &self.result
    }

    /// Probability of observing this branch.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Sparse final state of this branch.
    pub fn state(&self) -> &SparseState {
        &self.state
    }
}

/// The result of a sparse execution — the sparse mirror of
/// [`Simulation`], with the same branch ordering, result strings and
/// probabilities (the differential suite asserts this).
#[derive(Clone, Debug)]
pub struct SparseSimulation {
    nb_qubits: usize,
    branches: Vec<SparseBranch>,
    peak_entries: usize,
}

impl SparseSimulation {
    /// Number of register qubits.
    pub fn nb_qubits(&self) -> usize {
        self.nb_qubits
    }

    /// All branches (unique measurement histories).
    pub fn branches(&self) -> &[SparseBranch] {
        &self.branches
    }

    /// Largest total live-entry count (summed over branches) reached
    /// after any op — the number the guard admitted against.
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
    }

    /// The observed measurement result strings, one per branch.
    pub fn results(&self) -> Vec<&str> {
        self.branches.iter().map(|b| b.result.as_str()).collect()
    }

    /// Branch probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.branches.iter().map(|b| b.probability).collect()
    }

    /// Samples `shots` repetitions — same sampler, tally shape and
    /// result ordering as [`Simulation::counts`].
    pub fn counts(&self, shots: u64, seed: u64) -> Vec<(String, u64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.counts_with_rng(shots, &mut rng)
    }

    /// [`counts`](Self::counts) with a caller-supplied RNG.
    pub fn counts_with_rng(&self, shots: u64, rng: &mut impl Rng) -> Vec<(String, u64)> {
        let mut tally: BTreeMap<String, u64> = BTreeMap::new();
        for b in &self.branches {
            tally.entry(b.result.clone()).or_insert(0);
        }
        let weights: Vec<f64> = self.branches.iter().map(|b| b.probability).collect();
        let sampler =
            DiscreteSampler::new(&weights).expect("branch probabilities are a distribution");
        for _ in 0..shots {
            let chosen = sampler.sample(rng);
            *tally
                .entry(self.branches[chosen].result.clone())
                .or_insert(0) += 1;
        }
        tally.into_iter().collect()
    }

    /// Densifies every branch into a [`Simulation`], guard-checked
    /// against `limits` — the bridge the differential tests use to
    /// compare sparse and dense runs amplitude for amplitude.
    pub fn to_dense(&self, limits: &ResourceLimits) -> Result<Simulation, QclabError> {
        let mut branches = Vec::with_capacity(self.branches.len());
        for b in &self.branches {
            branches.push(Branch {
                result: b.result.clone(),
                probability: b.probability,
                state: b.state.to_dense(limits)?,
                measured: b.measured.clone(),
            });
        }
        Ok(Simulation {
            nb_qubits: self.nb_qubits,
            branches,
        })
    }
}

/// Executes a compiled program on a sparse initial state, mirroring the
/// dense branching walk of `simulate_with`: gates evolve every live
/// branch, measurements split branches (pruning outcomes below
/// `branch_tol`), resets Z-measure and flip without recording, fences
/// are no-ops and layout permutes re-key the support. After every gate
/// the total live-entry count is re-admitted against
/// [`ResourceLimits::check_sparse_entries`].
pub fn execute(
    program: &CompiledProgram,
    initial: SparseState,
    opts: &SparseOptions,
) -> Result<SparseSimulation, QclabError> {
    execute_controlled(program, initial, opts, &ExecutionControl::none())
}

/// [`execute`] under an [`ExecutionControl`]: the per-op loop polls the
/// deadline/cancel token at op boundaries (every
/// `control.check_every` ops), so a long sparse run stops cooperatively
/// with [`QclabError::DeadlineExceeded`] / [`QclabError::Cancelled`].
pub fn execute_controlled(
    program: &CompiledProgram,
    initial: SparseState,
    opts: &SparseOptions,
    control: &ExecutionControl,
) -> Result<SparseSimulation, QclabError> {
    let n = program.nb_qubits();
    opts.limits.check_sparse_register(n)?;
    if initial.nb_qubits() != n {
        return Err(QclabError::DimensionMismatch {
            expected: 1usize << n,
            actual: 1usize << initial.nb_qubits(),
        });
    }
    let norm = initial.norm();
    if (norm - 1.0).abs() > 1e-6 {
        return Err(QclabError::NotNormalized { norm });
    }

    let mut peak = initial.nnz();
    let mut branches = vec![SparseBranch {
        result: String::new(),
        probability: 1.0,
        state: initial,
        measured: BTreeMap::new(),
    }];
    let mut ticker = control.ticker();
    for op in program.ops() {
        match op {
            ProgramOp::Gate(g) => {
                for b in branches.iter_mut() {
                    b.state.apply_gate(g, opts.prune_eps);
                }
                let live: u128 = branches.iter().map(|b| b.state.nnz() as u128).sum();
                opts.limits.check_sparse_entries(n, live)?;
                peak = peak.max(live as usize);
            }
            ProgramOp::Fence(_) => {}
            ProgramOp::Permute { perm, .. } => {
                for b in branches.iter_mut() {
                    b.state.permute(perm);
                }
            }
            ProgramOp::Measure(m) => {
                branches = measure_sparse(&branches, m, opts);
            }
            ProgramOp::Reset(q) => {
                branches = reset_sparse(&branches, *q, opts);
            }
        }
        ticker.tick()?;
    }
    Ok(SparseSimulation {
        nb_qubits: n,
        branches,
        peak_entries: peak,
    })
}

/// Splits every branch on a measurement outcome — the sparse mirror of
/// the dense `measure_branches`, including the `V†`/`V` basis rotation
/// and the branch-tolerance pruning, so branch order and records match
/// the dense walk exactly.
fn measure_sparse(
    branches: &[SparseBranch],
    m: &Measurement,
    opts: &SparseOptions,
) -> Vec<SparseBranch> {
    let q = m.qubit();
    let v = m.basis().change_matrix();
    let needs_change = !matches!(m.basis(), Basis::Z);
    let mut out = Vec::with_capacity(branches.len() * 2);
    for b in branches {
        let mut pre = b.state.clone();
        if needs_change {
            let vdg = Gate::Custom {
                name: "V†".into(),
                qubits: vec![q],
                matrix: v.dagger(),
            };
            pre.apply_gate(&vdg, opts.prune_eps);
        }
        let (p0, p1) = pre.measure_probabilities(q);
        for (bit, p) in [(0usize, p0), (1usize, p1)] {
            if p <= opts.branch_tol {
                continue;
            }
            let mut post = pre.collapsed(q, bit, p);
            if needs_change {
                let vg = Gate::Custom {
                    name: "V".into(),
                    qubits: vec![q],
                    matrix: v.clone(),
                };
                post.apply_gate(&vg, opts.prune_eps);
            }
            let mut measured = b.measured.clone();
            measured.insert(q, (v.col(bit), bit as u8));
            let mut result = b.result.clone();
            result.push(if bit == 0 { '0' } else { '1' });
            out.push(SparseBranch {
                result,
                probability: b.probability * p,
                state: post,
                measured,
            });
        }
    }
    out
}

/// Resets a qubit to `|0>` on every branch: Z-measure and flip on
/// outcome 1, without recording — the sparse mirror of the dense
/// `reset_branches`.
fn reset_sparse(branches: &[SparseBranch], q: usize, opts: &SparseOptions) -> Vec<SparseBranch> {
    let mut out = Vec::with_capacity(branches.len());
    for b in branches {
        let (p0, p1) = b.state.measure_probabilities(q);
        for (bit, p) in [(0usize, p0), (1usize, p1)] {
            if p <= opts.branch_tol {
                continue;
            }
            let mut post = b.state.collapsed(q, bit, p);
            if bit == 1 {
                post.apply_gate(&Gate::PauliX(q), opts.prune_eps);
            }
            out.push(SparseBranch {
                result: b.result.clone(),
                probability: b.probability * p,
                state: post,
                measured: b.measured.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::QCircuit;
    use crate::gates::factories::*;
    use crate::program::{self, PlanOptions};

    fn run_sparse(c: &QCircuit, bits_str: &str) -> SparseSimulation {
        let program = program::compile(c, &PlanOptions::sparse());
        let initial = SparseState::from_bitstring(bits_str).unwrap();
        execute(&program, initial, &SparseOptions::default()).unwrap()
    }

    #[test]
    fn bell_branches_match_dense_semantics() {
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(Measurement::z(0));
        c.push_back(Measurement::z(1));
        let sim = run_sparse(&c, "00");
        assert_eq!(sim.results(), &["00", "11"]);
        let p = sim.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
        // collapsed support is a single basis state per branch
        assert_eq!(sim.branches()[0].state().nnz(), 1);
        assert!((sim.branches()[1].state().amplitude(3).re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncompute_prunes_support_back_to_one() {
        // H then H: the intermediate support is 2, the interference on
        // the way back must prune it to a single live entry
        let mut c = QCircuit::new(1);
        c.push_back(Hadamard::new(0));
        c.push_back(Hadamard::new(0));
        let sim = run_sparse(&c, "0");
        assert_eq!(sim.branches()[0].state().nnz(), 1);
        assert!((sim.branches()[0].state().amplitude(0).re - 1.0).abs() < 1e-12);
        assert_eq!(sim.peak_entries(), 2);
    }

    #[test]
    fn thirty_qubit_ghz_lives_on_two_entries() {
        let n = 30;
        let mut c = QCircuit::new(n);
        c.push_back(Hadamard::new(0));
        for q in 1..n {
            c.push_back(CNOT::new(q - 1, q));
        }
        for q in 0..n {
            c.push_back(Measurement::z(q));
        }
        // the dense engine guard-refuses this register outright
        assert!(ResourceLimits::default().check_register(n).is_err());
        let sim = run_sparse(&c, &"0".repeat(n));
        assert_eq!(sim.peak_entries(), 2);
        let mut results = sim.results();
        results.sort_unstable();
        assert_eq!(results, vec!["0".repeat(n), "1".repeat(n)]);
        for p in sim.probabilities() {
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn live_entry_guard_refuses_dense_support() {
        // 20 H gates drive the support to 2^20 entries ≈ 48 MiB; a
        // 1 MiB cap must refuse mid-run with ResourceExhausted
        let n = 20;
        let mut c = QCircuit::new(n);
        for q in 0..n {
            c.push_back(Hadamard::new(q));
        }
        let program = program::compile(&c, &PlanOptions::sparse());
        let opts = SparseOptions {
            limits: ResourceLimits {
                max_qubits: None,
                max_state_bytes: 1 << 20,
            },
            ..SparseOptions::default()
        };
        let err = execute(&program, SparseState::basis_state(n, 0), &opts).unwrap_err();
        assert!(matches!(err, QclabError::ResourceExhausted { .. }));
    }

    #[test]
    fn to_dense_round_trips() {
        let mut c = QCircuit::new(3);
        c.push_back(Hadamard::new(1));
        c.push_back(CNOT::new(1, 2));
        c.push_back(RotationZ::new(2, 0.3));
        let sparse = run_sparse(&c, "000");
        let dense = c.simulate_bitstring("000").unwrap();
        let densified = sparse.to_dense(&ResourceLimits::default()).unwrap();
        for (a, b) in densified.states()[0].iter().zip(dense.states()[0].iter()) {
            assert!((a - b).norm() < 1e-12);
        }
    }
}
