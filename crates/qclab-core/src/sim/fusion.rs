//! Gate-fusion execution pass.
//!
//! State-vector simulation cost is dominated by memory traffic: every
//! gate application streams the full `2^n` amplitude array through the
//! cache hierarchy. Fusing a run of small gates into one dense block
//! (the qsim/qulacs strategy) trades a handful of tiny matrix products —
//! at most `2^k x 2^k` with `k <=` [`MAX_FUSED_QUBITS_LIMIT`] — for
//! entire passes over the state, so a circuit of `g` one/two-qubit gates
//! can execute in far fewer than `g` sweeps.
//!
//! The pass mirrors the causal-adjacency bookkeeping of
//! [`crate::optimize`]: a per-qubit pointer to the last emitted item.
//! A gate is merged into the *latest* block touching any of its qubits.
//! That is always causally sound: if `j` is the maximum `last_on` index
//! over the gate's qubits, no item after `j` touches any of those
//! qubits, so the gate commutes backward to position `j`. Measurements,
//! resets and barriers are fusion walls on their qubits, exactly like
//! the optimizer; sub-circuits are fused recursively but stay opaque.
//!
//! Fusion preserves circuit semantics exactly (it only reassociates the
//! unitary product) and is verified by three-way differential property
//! tests against both unfused backends.

use crate::circuit::{CircuitItem, QCircuit};
use crate::gates::Gate;
use qclab_math::scalar::{cr, C64};
use qclab_math::{bits, CMat};

/// Default cap on the qubit footprint (controls included) of a fused
/// block: two-qubit blocks keep the dense matrices in registers.
pub const DEFAULT_MAX_FUSED_QUBITS: usize = 2;

/// Largest supported fused-block footprint. Beyond four qubits the
/// `2^k x 2^k` matrix product per group outweighs the saved sweeps.
pub const MAX_FUSED_QUBITS_LIMIT: usize = 4;

/// Statistics of one [`fuse_circuit`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Gates in the input circuit (sub-circuits counted recursively).
    pub gates_in: usize,
    /// Gates in the fused circuit.
    pub gates_out: usize,
    /// Fused blocks emitted (each replacing >= 2 input gates).
    pub blocks: usize,
}

/// An item being accumulated during the pass: either a fusable block of
/// gates sharing a bounded qubit footprint, or an opaque wall.
enum Entry {
    Block {
        gates: Vec<Gate>,
        qubits: Vec<usize>,
    },
    Item(CircuitItem),
}

/// Builds the dense `2^k x 2^k` unitary of `gate` on the local register
/// defined by `qubits` (ascending; position in the slice = local qubit
/// index). Controls are expanded structurally, exactly like
/// [`super::kron::extended_unitary`] but dense and block-local. Also
/// used by the locality pass (`crate::program`) to fold an index-bit
/// transposition into the following gate's matrix.
pub(crate) fn local_unitary(gate: &Gate, qubits: &[usize]) -> CMat {
    let k = qubits.len();
    let dim = 1usize << k;
    let local = |q: usize| {
        qubits
            .iter()
            .position(|&x| x == q)
            .expect("gate qubit outside its block")
    };
    let targets: Vec<usize> = gate.targets().iter().map(|&q| local(q)).collect();
    let controls: Vec<(usize, u8)> = gate
        .controls()
        .iter()
        .map(|&(q, s)| (local(q), s))
        .collect();
    let m = gate.target_matrix();

    let mut u = CMat::zeros(dim, dim);
    'cols: for col in 0..dim {
        for &(q, s) in &controls {
            if bits::qubit_bit(col, q, k) != s as usize {
                u[(col, col)] = cr(1.0);
                continue 'cols;
            }
        }
        let sub_col = bits::gather_bits(col, &targets, k);
        for sub_row in 0..m.rows() {
            let v = m[(sub_row, sub_col)];
            if v != C64::new(0.0, 0.0) {
                u[(bits::scatter_bits(col, sub_row, &targets, k), col)] = v;
            }
        }
    }
    u
}

/// Collapses a finished block into circuit items: single gates pass
/// through unchanged (so specialized kernels still apply); longer runs
/// become one dense [`Gate::Custom`] block.
fn emit_block(gates: Vec<Gate>, qubits: Vec<usize>, stats: &mut FusionStats) -> CircuitItem {
    if gates.len() == 1 {
        stats.gates_out += 1;
        return CircuitItem::Gate(gates.into_iter().next().unwrap());
    }
    let dim = 1usize << qubits.len();
    let mut u = CMat::identity(dim);
    for g in &gates {
        // gates apply left to right; matrices multiply right to left
        u = local_unitary(g, &qubits).matmul(&u);
    }
    stats.gates_out += 1;
    stats.blocks += 1;
    CircuitItem::Gate(Gate::Custom {
        name: format!("F{}", gates.len()),
        qubits,
        matrix: u,
    })
}

/// Sorted union of two ascending qubit lists.
fn union(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = a.to_vec();
    for &q in b {
        if !out.contains(&q) {
            out.push(q);
        }
    }
    out.sort_unstable();
    out
}

/// One fusion pass over an item list.
pub(crate) fn fuse_items(
    items: &[CircuitItem],
    nb_qubits: usize,
    max_fused: usize,
    stats: &mut FusionStats,
) -> Vec<CircuitItem> {
    let mut kept: Vec<Entry> = Vec::with_capacity(items.len());
    let mut last_on: Vec<Option<usize>> = vec![None; nb_qubits];

    for item in items {
        match item {
            CircuitItem::Gate(g) => {
                stats.gates_in += 1;
                let mut gq = g.qubits();
                gq.sort_unstable();
                gq.dedup();
                if gq.len() > max_fused {
                    // too wide to fuse: opaque wall on its own qubits
                    let idx = kept.len();
                    kept.push(Entry::Item(item.clone()));
                    for &q in &gq {
                        last_on[q] = Some(idx);
                    }
                    continue;
                }
                // latest kept item touching any qubit of the gate: no
                // later item touches those qubits, so merging there
                // preserves causal order
                let pred = gq.iter().filter_map(|&q| last_on[q]).max();
                if let Some(j) = pred {
                    if let Entry::Block { gates, qubits } = &mut kept[j] {
                        let merged = union(qubits, &gq);
                        if merged.len() <= max_fused {
                            gates.push(g.clone());
                            *qubits = merged;
                            for &q in &gq {
                                last_on[q] = Some(j);
                            }
                            continue;
                        }
                    }
                }
                let idx = kept.len();
                kept.push(Entry::Block {
                    gates: vec![g.clone()],
                    qubits: gq.clone(),
                });
                for &q in &gq {
                    last_on[q] = Some(idx);
                }
            }
            CircuitItem::SubCircuit { offset, circuit } => {
                // fuse internally, keep opaque here (like the optimizer)
                let sub_fused = fuse_subcircuit(circuit, max_fused, stats);
                let idx = kept.len();
                let span = *offset..offset + circuit.nb_qubits();
                kept.push(Entry::Item(CircuitItem::SubCircuit {
                    offset: *offset,
                    circuit: sub_fused,
                }));
                for q in span {
                    last_on[q] = Some(idx);
                }
            }
            other => {
                // measurements, resets and barriers are fusion walls
                let idx = kept.len();
                kept.push(Entry::Item(other.clone()));
                for q in other.qubits() {
                    last_on[q] = Some(idx);
                }
            }
        }
    }

    kept.into_iter()
        .map(|e| match e {
            Entry::Block { gates, qubits } => emit_block(gates, qubits, stats),
            Entry::Item(item) => {
                if matches!(item, CircuitItem::Gate(_)) {
                    stats.gates_out += 1;
                }
                item
            }
        })
        .collect()
}

fn fuse_subcircuit(circuit: &QCircuit, max_fused: usize, stats: &mut FusionStats) -> QCircuit {
    let items = fuse_items(circuit.items(), circuit.nb_qubits(), max_fused, stats);
    rebuild(circuit, items)
}

fn rebuild(circuit: &QCircuit, items: Vec<CircuitItem>) -> QCircuit {
    let mut out = QCircuit::new(circuit.nb_qubits());
    if let Some(name) = circuit.name() {
        out.set_name(name);
    }
    if circuit.draws_as_block() {
        let name = circuit.name().unwrap_or("block").to_string();
        out.as_block(&name);
    }
    for item in items {
        out.push_back(item);
    }
    out
}

/// Fuses causally-adjacent runs of gates whose combined qubit footprint
/// (controls included) stays within `max_fused` qubits into single dense
/// [`Gate::Custom`] blocks. `max_fused` is clamped to
/// `1..=`[`MAX_FUSED_QUBITS_LIMIT`]; at 1 only same-qubit single-qubit
/// runs merge. The returned circuit is semantically identical to the
/// input: same register, same unitary, same measurement branching.
pub fn fuse_circuit(circuit: &QCircuit, max_fused: usize) -> (QCircuit, FusionStats) {
    let max_fused = max_fused.clamp(1, MAX_FUSED_QUBITS_LIMIT);
    let mut stats = FusionStats::default();
    let items = fuse_items(circuit.items(), circuit.nb_qubits(), max_fused, &mut stats);
    (rebuild(circuit, items), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::factories::*;
    use crate::measurement::Measurement;
    use qclab_math::CVec;

    fn assert_same_action(c: &QCircuit, fused: &QCircuit) {
        let m1 = c.to_matrix().expect("original to_matrix");
        let m2 = fused.to_matrix().expect("fused to_matrix");
        assert!(
            m1.approx_eq(&m2, 1e-12),
            "fusion changed the circuit unitary (max diff {})",
            m1.max_abs_diff(&m2)
        );
    }

    #[test]
    fn single_qubit_run_fuses_to_one_block() {
        let mut c = QCircuit::new(1);
        c.push_back(Hadamard::new(0));
        c.push_back(TGate::new(0));
        c.push_back(RotationX::new(0, 0.3));
        let (fused, stats) = fuse_circuit(&c, 2);
        assert_eq!(fused.nb_gates(), 1);
        assert_eq!(stats.gates_in, 3);
        assert_eq!(stats.gates_out, 1);
        assert_eq!(stats.blocks, 1);
        assert_same_action(&c, &fused);
    }

    #[test]
    fn two_qubit_ladder_fuses_within_footprint() {
        // H(0) CX(0,1) H(1) share the {0,1} footprint: one block
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(Hadamard::new(1));
        let (fused, stats) = fuse_circuit(&c, 2);
        assert_eq!(fused.nb_gates(), 1);
        assert_eq!(stats.blocks, 1);
        assert_same_action(&c, &fused);
    }

    #[test]
    fn footprint_cap_is_respected() {
        // CX(0,1) CX(1,2) would need 3 qubits: must stay separate at cap 2
        let mut c = QCircuit::new(3);
        c.push_back(CNOT::new(0, 1));
        c.push_back(CNOT::new(1, 2));
        let (fused2, _) = fuse_circuit(&c, 2);
        assert_eq!(fused2.nb_gates(), 2);
        // at cap 3 they merge
        let (fused3, stats3) = fuse_circuit(&c, 3);
        assert_eq!(fused3.nb_gates(), 1);
        assert_eq!(stats3.blocks, 1);
        assert_same_action(&c, &fused3);
    }

    #[test]
    fn max_fused_is_clamped_to_limit() {
        let mut c = QCircuit::new(6);
        for q in 0..5 {
            c.push_back(CNOT::new(q, q + 1));
        }
        let (fused, _) = fuse_circuit(&c, 64);
        for item in fused.items() {
            if let CircuitItem::Gate(g) = item {
                assert!(g.qubits().len() <= MAX_FUSED_QUBITS_LIMIT);
            }
        }
        assert_same_action(&c, &fused);
    }

    #[test]
    fn barrier_blocks_fusion() {
        let mut c = QCircuit::new(1);
        c.push_back(Hadamard::new(0));
        c.push_back(CircuitItem::Barrier(vec![0]));
        c.push_back(Hadamard::new(0));
        let (fused, stats) = fuse_circuit(&c, 2);
        assert_eq!(fused.nb_gates(), 2);
        assert_eq!(stats.blocks, 0);
    }

    #[test]
    fn measurement_blocks_fusion() {
        let mut c = QCircuit::new(1);
        c.push_back(Hadamard::new(0));
        c.push_back(Measurement::z(0));
        c.push_back(Hadamard::new(0));
        let (fused, _) = fuse_circuit(&c, 2);
        assert_eq!(fused.nb_gates(), 2);
        assert_eq!(fused.nb_measurements(), 1);
    }

    #[test]
    fn reset_blocks_fusion() {
        let mut c = QCircuit::new(1);
        c.push_back(Hadamard::new(0));
        c.push_back(CircuitItem::Reset(0));
        c.push_back(Hadamard::new(0));
        let (fused, _) = fuse_circuit(&c, 2);
        assert_eq!(fused.nb_gates(), 2);
    }

    #[test]
    fn wall_on_one_qubit_does_not_block_other_qubits() {
        // measurement on q1 must not stop H(0)·T(0) from fusing
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(Measurement::z(1));
        c.push_back(TGate::new(0));
        let (fused, stats) = fuse_circuit(&c, 2);
        assert_eq!(fused.nb_gates(), 1);
        assert_eq!(stats.blocks, 1);
    }

    #[test]
    fn merge_across_disjoint_gate_is_causally_sound() {
        // H(0), X(1), H(0): the two H's are causally adjacent and merge
        // to one block; X(1) stays. The simulated state must agree.
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(PauliX::new(1));
        c.push_back(Hadamard::new(0));
        let (fused, stats) = fuse_circuit(&c, 2);
        assert_eq!(stats.blocks, 1);
        assert_same_action(&c, &fused);
    }

    #[test]
    fn open_and_closed_control_semantics_survive_fusion() {
        for ctrl_state in [0u8, 1u8] {
            let mut c = QCircuit::new(2);
            c.push_back(CNOT::with_control_state(0, 1, ctrl_state));
            c.push_back(CRY::new(0, 1, 0.83));
            let (fused, stats) = fuse_circuit(&c, 2);
            assert_eq!(stats.blocks, 1);
            assert_same_action(&c, &fused);
        }
    }

    #[test]
    fn wide_gate_is_a_wall_on_its_qubits_only() {
        // MCX spans 3 qubits (cap 2): passes through unfused, and the
        // single-qubit gates around it on q3 still merge
        let mut c = QCircuit::new(4);
        c.push_back(Hadamard::new(3));
        c.push_back(MCX::new(&[0, 1], 2, &[1, 0]));
        c.push_back(TGate::new(3));
        let (fused, stats) = fuse_circuit(&c, 2);
        assert_eq!(fused.nb_gates(), 2);
        assert_eq!(stats.blocks, 1);
        assert_same_action(&c, &fused);
    }

    #[test]
    fn subcircuits_fuse_recursively_but_stay_opaque() {
        let mut sub = QCircuit::new(2);
        sub.push_back(Hadamard::new(0));
        sub.push_back(CNOT::new(0, 1));
        let mut c = QCircuit::new(3);
        c.push_back_at(1, sub).unwrap();
        let (fused, stats) = fuse_circuit(&c, 2);
        assert_eq!(stats.blocks, 1);
        match &fused.items()[0] {
            CircuitItem::SubCircuit { circuit, .. } => assert_eq!(circuit.nb_gates(), 1),
            other => panic!("expected subcircuit, got {other:?}"),
        }
        assert_same_action(&c, &fused);
    }

    #[test]
    fn fused_blocks_are_unitary_and_validated() {
        let mut c = QCircuit::new(3);
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(RotationZZ::new(0, 1, 0.4));
        c.push_back(SwapGate::new(1, 2));
        let (fused, _) = fuse_circuit(&c, 2);
        for item in fused.items() {
            if let CircuitItem::Gate(Gate::Custom { matrix, .. }) = item {
                assert!(matrix.is_unitary(1e-12));
            }
        }
        assert_same_action(&c, &fused);
    }

    #[test]
    fn fusion_preserves_measurement_branching() {
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(Measurement::z(0));
        c.push_back(Measurement::z(1));
        let (fused, _) = fuse_circuit(&c, 2);
        let init = CVec::from_bitstring("00").unwrap();
        let a = c.simulate(&init).unwrap();
        let b = fused.simulate(&init).unwrap();
        assert_eq!(a.results(), b.results());
        for (pa, pb) in a.probabilities().iter().zip(b.probabilities()) {
            assert!((pa - pb).abs() < 1e-12);
        }
    }

    #[test]
    fn local_unitary_matches_extended_unitary() {
        // block-local construction agrees with the kron backend on a
        // register of exactly the block size
        for gate in [
            CNOT::new(0, 1),
            CNOT::with_control_state(1, 0, 0),
            CZ::new(0, 1),
            SwapGate::new(0, 1),
            CRY::new(0, 1, 1.1),
        ] {
            let dense = super::super::kron::extended_unitary(&gate, 2).to_dense();
            let local = local_unitary(&gate, &[0, 1]);
            assert!(local.approx_eq(&dense, 1e-14), "{}", gate.name());
        }
    }

    #[test]
    fn empty_and_gateless_circuits_pass_through() {
        let c = QCircuit::new(2);
        let (fused, stats) = fuse_circuit(&c, 2);
        assert!(fused.is_empty());
        assert_eq!(stats, FusionStats::default());
    }
}
