//! Measurement probability computation and state collapse.
//!
//! Implements paper Sec. 3.3: outcome probabilities are sums of squared
//! amplitude magnitudes over the matching half of the register, and the
//! post-measurement state is the renormalized restriction to that half.
//! As in QCLAB, bitwise operations enumerate the indices of the collapsed
//! subspace directly.

use qclab_math::bits;
use qclab_math::CVec;

/// Probabilities `(P(0), P(1))` of a Z-basis measurement of qubit `q`.
pub fn measure_probabilities(state: &CVec, n: usize, q: usize) -> (f64, f64) {
    let s = bits::qubit_shift(q, n);
    let half = state.len() >> 1;
    let mut p0 = 0.0;
    for k in 0..half {
        let i = bits::insert_bit(k, s);
        p0 += state[i].norm_sqr();
    }
    // The total may drift from 1 by rounding; derive P(1) from the actual
    // norm so both probabilities stay consistent with the state.
    let total: f64 = state.iter().map(|z| z.norm_sqr()).sum();
    (p0, (total - p0).max(0.0))
}

/// Collapses `state` onto outcome `bit` of a Z measurement of qubit `q`,
/// renormalizing by `1/sqrt(prob)`. The returned vector keeps the full
/// register dimension with zeros in the eliminated subspace, matching the
/// `2^n x 1` post-measurement states QCLAB reports.
pub fn collapse(state: &CVec, n: usize, q: usize, bit: usize, prob: f64) -> CVec {
    let mut out = CVec::zeros(0);
    collapse_into(state, n, q, bit, prob, &mut out);
    out
}

/// [`collapse`] writing into a caller-provided buffer — the arithmetic is
/// identical, so the result is bit-for-bit the same. The trajectory
/// engine uses this with a per-thread scratch buffer to avoid allocating
/// a fresh `2^n` vector on every mid-circuit measurement of every shot.
pub fn collapse_into(state: &CVec, n: usize, q: usize, bit: usize, prob: f64, out: &mut CVec) {
    debug_assert!(bit <= 1);
    debug_assert!(prob > 0.0, "collapse onto a zero-probability outcome");
    let s = bits::qubit_shift(q, n);
    let inv = 1.0 / prob.sqrt();
    out.0.clear();
    out.0.resize(state.len(), qclab_math::scalar::zero());
    let half = state.len() >> 1;
    for k in 0..half {
        let i = bits::insert_bit(k, s) | (bit << s);
        out[i] = state[i] * inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_math::scalar::{c, cr};

    const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn probabilities_of_bell_state() {
        let bell = CVec(vec![cr(INV_SQRT2), cr(0.0), cr(0.0), cr(INV_SQRT2)]);
        for q in 0..2 {
            let (p0, p1) = measure_probabilities(&bell, 2, q);
            assert!((p0 - 0.5).abs() < 1e-15);
            assert!((p1 - 0.5).abs() < 1e-15);
        }
    }

    #[test]
    fn probabilities_of_basis_state() {
        let s = CVec::from_bitstring("10").unwrap();
        let (p0, p1) = measure_probabilities(&s, 2, 0);
        assert!(p0.abs() < 1e-15);
        assert!((p1 - 1.0).abs() < 1e-15);
        let (p0, p1) = measure_probabilities(&s, 2, 1);
        assert!((p0 - 1.0).abs() < 1e-15);
        assert!(p1.abs() < 1e-15);
    }

    #[test]
    fn collapse_of_bell_state_yields_correlated_outcome() {
        let bell = CVec(vec![cr(INV_SQRT2), cr(0.0), cr(0.0), cr(INV_SQRT2)]);
        let c0 = collapse(&bell, 2, 0, 0, 0.5);
        // outcome 0 on qubit 0 leaves |00> with unit amplitude
        assert!((c0[0].re - 1.0).abs() < 1e-15);
        assert!((c0.norm() - 1.0).abs() < 1e-15);
        let c1 = collapse(&bell, 2, 0, 1, 0.5);
        assert!((c1[3].re - 1.0).abs() < 1e-15);
    }

    #[test]
    fn collapse_preserves_relative_phases() {
        // (|00> + i|01> + |10> + i|11>)/2, measure qubit 1
        let s = CVec(vec![cr(0.5), c(0.0, 0.5), cr(0.5), c(0.0, 0.5)]);
        let (p0, p1) = measure_probabilities(&s, 2, 1);
        assert!((p0 - 0.5).abs() < 1e-15);
        assert!((p1 - 0.5).abs() < 1e-15);
        let c1 = collapse(&s, 2, 1, 1, p1);
        // remaining superposition (|01> + |11>)/√2 with phase i
        assert!((c1[1].im - INV_SQRT2).abs() < 1e-15);
        assert!((c1[3].im - INV_SQRT2).abs() < 1e-15);
        assert!(c1[0].norm() < 1e-15);
    }

    #[test]
    fn collapse_is_idempotent() {
        let s = CVec(vec![cr(0.6), cr(0.0), cr(0.0), cr(0.8)]);
        let (p0, _) = measure_probabilities(&s, 2, 0);
        let c0 = collapse(&s, 2, 0, 0, p0);
        let (q0, q1) = measure_probabilities(&c0, 2, 0);
        assert!((q0 - 1.0).abs() < 1e-12);
        assert!(q1.abs() < 1e-12);
        let again = collapse(&c0, 2, 0, 0, q0);
        assert!(again.approx_eq(&c0, 1e-12));
    }
}
