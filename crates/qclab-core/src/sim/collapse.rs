//! Measurement probability computation and state collapse.
//!
//! Implements paper Sec. 3.3: outcome probabilities are sums of squared
//! amplitude magnitudes over the matching half of the register, and the
//! post-measurement state is the renormalized restriction to that half.
//! As in QCLAB, bitwise operations enumerate the indices of the collapsed
//! subspace directly.

use qclab_math::bits;
use qclab_math::CVec;

/// Probabilities `(P(0), P(1))` of a Z-basis measurement of qubit `q`.
pub fn measure_probabilities(state: &CVec, n: usize, q: usize) -> (f64, f64) {
    let s = bits::qubit_shift(q, n);
    let half = state.len() >> 1;
    let mut p0 = 0.0;
    for k in 0..half {
        let i = bits::insert_bit(k, s);
        p0 += state[i].norm_sqr();
    }
    // The total may drift from 1 by rounding; derive P(1) from the actual
    // norm so both probabilities stay consistent with the state.
    let total: f64 = state.iter().map(|z| z.norm_sqr()).sum();
    (p0, (total - p0).max(0.0))
}

/// Collapses `state` onto outcome `bit` of a Z measurement of qubit `q`,
/// renormalizing by `1/sqrt(prob)`. The returned vector keeps the full
/// register dimension with zeros in the eliminated subspace, matching the
/// `2^n x 1` post-measurement states QCLAB reports.
pub fn collapse(state: &CVec, n: usize, q: usize, bit: usize, prob: f64) -> CVec {
    let mut out = CVec::zeros(0);
    collapse_into(state, n, q, bit, prob, &mut out);
    out
}

/// [`collapse`] writing into a caller-provided buffer — the arithmetic is
/// identical, so the result is bit-for-bit the same. The trajectory
/// engine uses this with a per-thread scratch buffer to avoid allocating
/// a fresh `2^n` vector on every mid-circuit measurement of every shot.
pub fn collapse_into(state: &CVec, n: usize, q: usize, bit: usize, prob: f64, out: &mut CVec) {
    debug_assert!(bit <= 1);
    debug_assert!(prob > 0.0, "collapse onto a zero-probability outcome");
    let s = bits::qubit_shift(q, n);
    let inv = 1.0 / prob.sqrt();
    out.0.clear();
    out.0.resize(state.len(), qclab_math::scalar::zero());
    let half = state.len() >> 1;
    for k in 0..half {
        let i = bits::insert_bit(k, s) | (bit << s);
        out[i] = state[i] * inv;
    }
}

/// [`measure_probabilities`] for a state stored in *physical* qubit
/// layout under the logical→physical permutation `map` (see
/// `qclab_core::program`'s locality pass): measures **logical** qubit
/// `q`.
///
/// Bit-identity contract: every partial sum is accumulated in logical
/// index order — the same order the unmapped function uses on the
/// unpermuted state — so the returned probabilities are bit-for-bit
/// identical to measuring the equivalent logical-layout state, not just
/// approximately equal.
pub fn measure_probabilities_mapped(state: &CVec, n: usize, q: usize, map: &[usize]) -> (f64, f64) {
    let s = bits::qubit_shift(q, n);
    let half = state.len() >> 1;
    let mut p0 = 0.0;
    for k in 0..half {
        let i = bits::permute_index(bits::insert_bit(k, s), map, n);
        p0 += state[i].norm_sqr();
    }
    let mut total = 0.0;
    for l in 0..state.len() {
        total += state[bits::permute_index(l, map, n)].norm_sqr();
    }
    (p0, (total - p0).max(0.0))
}

/// [`collapse_into`] for a state in physical layout under `map`,
/// collapsing **logical** qubit `q`. Amplitude arithmetic is identical
/// per element, so the result is the permutation of the logical-layout
/// collapse, bit for bit.
pub fn collapse_into_mapped(
    state: &CVec,
    n: usize,
    q: usize,
    bit: usize,
    prob: f64,
    map: &[usize],
    out: &mut CVec,
) {
    debug_assert!(bit <= 1);
    debug_assert!(prob > 0.0, "collapse onto a zero-probability outcome");
    let s = bits::qubit_shift(q, n);
    let inv = 1.0 / prob.sqrt();
    out.0.clear();
    out.0.resize(state.len(), qclab_math::scalar::zero());
    let half = state.len() >> 1;
    for k in 0..half {
        let i = bits::permute_index(bits::insert_bit(k, s) | (bit << s), map, n);
        out[i] = state[i] * inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qclab_math::scalar::{c, cr};

    const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn probabilities_of_bell_state() {
        let bell = CVec(vec![cr(INV_SQRT2), cr(0.0), cr(0.0), cr(INV_SQRT2)]);
        for q in 0..2 {
            let (p0, p1) = measure_probabilities(&bell, 2, q);
            assert!((p0 - 0.5).abs() < 1e-15);
            assert!((p1 - 0.5).abs() < 1e-15);
        }
    }

    #[test]
    fn probabilities_of_basis_state() {
        let s = CVec::from_bitstring("10").unwrap();
        let (p0, p1) = measure_probabilities(&s, 2, 0);
        assert!(p0.abs() < 1e-15);
        assert!((p1 - 1.0).abs() < 1e-15);
        let (p0, p1) = measure_probabilities(&s, 2, 1);
        assert!((p0 - 1.0).abs() < 1e-15);
        assert!(p1.abs() < 1e-15);
    }

    #[test]
    fn collapse_of_bell_state_yields_correlated_outcome() {
        let bell = CVec(vec![cr(INV_SQRT2), cr(0.0), cr(0.0), cr(INV_SQRT2)]);
        let c0 = collapse(&bell, 2, 0, 0, 0.5);
        // outcome 0 on qubit 0 leaves |00> with unit amplitude
        assert!((c0[0].re - 1.0).abs() < 1e-15);
        assert!((c0.norm() - 1.0).abs() < 1e-15);
        let c1 = collapse(&bell, 2, 0, 1, 0.5);
        assert!((c1[3].re - 1.0).abs() < 1e-15);
    }

    #[test]
    fn collapse_preserves_relative_phases() {
        // (|00> + i|01> + |10> + i|11>)/2, measure qubit 1
        let s = CVec(vec![cr(0.5), c(0.0, 0.5), cr(0.5), c(0.0, 0.5)]);
        let (p0, p1) = measure_probabilities(&s, 2, 1);
        assert!((p0 - 0.5).abs() < 1e-15);
        assert!((p1 - 0.5).abs() < 1e-15);
        let c1 = collapse(&s, 2, 1, 1, p1);
        // remaining superposition (|01> + |11>)/√2 with phase i
        assert!((c1[1].im - INV_SQRT2).abs() < 1e-15);
        assert!((c1[3].im - INV_SQRT2).abs() < 1e-15);
        assert!(c1[0].norm() < 1e-15);
    }

    #[test]
    fn mapped_collapse_is_bit_identical_to_unmapped() {
        use qclab_math::bits;
        let n = 3;
        // arbitrary normalized state with irrational amplitudes so any
        // summation-order change would show up in the low bits
        let logical = CVec(
            (0..1usize << n)
                .map(|i| c((i as f64 + 0.3).sqrt(), (i as f64 * 0.7).sin()))
                .collect(),
        );
        let norm = logical.norm();
        let logical = CVec(logical.0.iter().map(|z| *z * (1.0 / norm)).collect());
        let map = [2usize, 0, 1]; // logical q -> physical map[q]
        let mut physical = CVec::zeros(1 << n);
        for i in 0..1usize << n {
            physical[bits::permute_index(i, &map, n)] = logical[i];
        }
        for q in 0..n {
            let (p0, p1) = measure_probabilities(&logical, n, q);
            let (m0, m1) = measure_probabilities_mapped(&physical, n, q, &map);
            // bit-identical, not approximately equal
            assert_eq!(p0.to_bits(), m0.to_bits());
            assert_eq!(p1.to_bits(), m1.to_bits());
            let want = collapse(&logical, n, q, 0, p0);
            let mut got = CVec::zeros(0);
            collapse_into_mapped(&physical, n, q, 0, m0, &map, &mut got);
            for i in 0..1usize << n {
                let j = bits::permute_index(i, &map, n);
                assert_eq!(want[i].re.to_bits(), got[j].re.to_bits());
                assert_eq!(want[i].im.to_bits(), got[j].im.to_bits());
            }
        }
    }

    #[test]
    fn collapse_is_idempotent() {
        let s = CVec(vec![cr(0.6), cr(0.0), cr(0.0), cr(0.8)]);
        let (p0, _) = measure_probabilities(&s, 2, 0);
        let c0 = collapse(&s, 2, 0, 0, p0);
        let (q0, q1) = measure_probabilities(&c0, 2, 0);
        assert!((q0 - 1.0).abs() < 1e-12);
        assert!(q1.abs() < 1e-12);
        let again = collapse(&c0, 2, 0, 0, q0);
        assert!(again.approx_eq(&c0, 1e-12));
    }
}
