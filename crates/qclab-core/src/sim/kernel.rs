//! In-place gate-application kernels (the QCLAB++ backend).
//!
//! QCLAB's MATLAB implementation multiplies the state vector with a sparse
//! extended unitary (see [`super::kron`]); QCLAB++ instead applies each
//! gate **in place** with specialized kernels and GPU parallelism. This
//! module reproduces that optimized code path on the CPU: bit-twiddling
//! index enumeration, per-gate-class kernels (diagonal / single-qubit /
//! controlled / SWAP / general k-qubit), and Rayon data-parallelism
//! standing in for the GPU (see DESIGN.md, substitutions).
//!
//! All kernels follow the register convention of [`qclab_math::bits`]:
//! qubit 0 is the most significant index bit.

use crate::gates::Gate;
use qclab_math::bits;
use qclab_math::scalar::C64;
use qclab_math::{CMat, CVec};
use rayon::prelude::*;

/// Number of register qubits from which kernels switch to Rayon
/// parallelism. Below this the state fits comfortably in cache and thread
/// fan-out costs more than it saves.
pub const PARALLEL_THRESHOLD_QUBITS: usize = 18;

/// `(bit position, required value)` pairs precomputed from a gate's
/// control specification.
type CtrlMasks = (usize, usize); // (mask, required-bits pattern)

fn control_masks(controls: &[(usize, u8)], n: usize) -> CtrlMasks {
    let mut mask = 0usize;
    let mut want = 0usize;
    for &(q, s) in controls {
        let bit = 1usize << bits::qubit_shift(q, n);
        mask |= bit;
        if s == 1 {
            want |= bit;
        }
    }
    (mask, want)
}

#[inline(always)]
fn ctrl_ok(i: usize, (mask, want): CtrlMasks) -> bool {
    i & mask == want
}

/// Dispatch configuration for the kernel backend. The defaults enable
/// every specialization; the ablation benchmarks switch them off
/// individually to measure what each one buys.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Route diagonal gates through the streaming multiply kernel.
    pub use_diagonal_kernel: bool,
    /// Route uncontrolled SWAPs through the pure-permutation kernel.
    pub use_swap_kernel: bool,
    /// Allow Rayon parallelism above [`PARALLEL_THRESHOLD_QUBITS`].
    pub allow_parallel: bool,
    /// Allow the vectorized dense kernels where the CPU supports them.
    /// Switching this off falls back to the scalar kernels at runtime
    /// (graceful degradation; CLI `--no-simd`) — results are identical,
    /// only throughput changes.
    pub allow_simd: bool,
    /// Run the gate-fusion pre-pass ([`super::fusion`]) before
    /// simulation: causally-adjacent small gates merge into dense blocks,
    /// trading tiny matrix products for whole-state sweeps.
    pub fuse: bool,
    /// Qubit-footprint cap (controls included) for fused blocks, clamped
    /// to `1..=`[`super::fusion::MAX_FUSED_QUBITS_LIMIT`] by the pass.
    pub max_fused_qubits: usize,
    /// Run the locality pass (`qclab_core::program`'s logical→physical
    /// qubit remapping) during lowering and execute fence-delimited
    /// windows as cache-blocked sweeps. Switching this off reproduces
    /// the pre-remap engine bit for bit (CLI `--no-remap`).
    pub remap: bool,
    /// Execute dense programs through the compiled bytecode stream
    /// cached on the plan ([`super::bytecode`]) instead of interpreting
    /// `ProgramOp`s per run. Bit-identical by construction — both paths
    /// run [`apply_prepared`] on the same [`PreparedOp`]s; the bytecode
    /// path merely prepares them once at compile time (CLI
    /// `--no-bytecode` restores the interpreter).
    pub bytecode: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            use_diagonal_kernel: true,
            use_swap_kernel: true,
            allow_parallel: true,
            allow_simd: true,
            fuse: true,
            max_fused_qubits: super::fusion::DEFAULT_MAX_FUSED_QUBITS,
            remap: true,
            bytecode: true,
        }
    }
}

/// Applies `gate` to `state` in place. `n` is the register size; the
/// state must have length `2^n`.
pub fn apply_gate(gate: &Gate, state: &mut CVec, n: usize) {
    apply_gate_with(gate, state, n, &KernelConfig::default());
}

/// [`apply_gate`] with an explicit [`KernelConfig`].
pub fn apply_gate_with(gate: &Gate, state: &mut CVec, n: usize, cfg: &KernelConfig) {
    apply_gate_slice(gate, state, n, cfg);
}

/// [`apply_gate_with`] on a raw amplitude slice of length `2^n`. The
/// cache-blocked sweep uses this to apply tile-local gates to one
/// `2^b`-amplitude tile at a time (with `n = b`).
pub(crate) fn apply_gate_slice(gate: &Gate, state: &mut [C64], n: usize, cfg: &KernelConfig) {
    let pre = prepare_gate(gate, n, cfg.use_diagonal_kernel, cfg.use_swap_kernel);
    apply_prepared(&pre, state, n, cfg);
}

/// Kernel class a gate resolves to, with every quantity the execution
/// loop would otherwise re-derive per application precomputed: control
/// masks, the dense target matrix, extracted diagonals, and the k-qubit
/// kernel's sorted shifts and scatter-offset table. This is the operand
/// payload of one bytecode instruction ([`super::bytecode`]); the
/// interpreter builds it per call so both paths execute literally the
/// same kernels on the same operands.
#[derive(Clone)]
pub(crate) struct PreparedOp {
    kind: PreparedKind,
    cm: CtrlMasks,
}

#[derive(Clone)]
enum PreparedKind {
    Swap { a: usize, b: usize },
    Diagonal { targets: Vec<usize>, diag: Vec<C64> },
    OneQ { q: usize, m: CMat },
    Kq(KqPre),
}

/// Precomputed operands of the general k-qubit kernel: target shifts in
/// target order (SIMD dispatch), ascending (base-index construction),
/// and the scatter-index table `scatter_bits(0, sub, targets, n)` that
/// [`apply_gate_slice`] previously rebuilt on every application — on
/// plan-cache hits this now lives in the cached bytecode.
#[derive(Clone)]
pub(crate) struct KqPre {
    targets: Vec<usize>,
    m: CMat,
    shifts: Vec<usize>,
    shifts_sorted: Vec<usize>,
    offsets: Vec<usize>,
}

impl KqPre {
    fn new(targets: Vec<usize>, m: CMat, n: usize) -> Self {
        let dim = 1usize << targets.len();
        debug_assert_eq!(m.rows(), dim);
        let shifts: Vec<usize> = targets.iter().map(|&q| bits::qubit_shift(q, n)).collect();
        let mut shifts_sorted = shifts.clone();
        shifts_sorted.sort_unstable();
        let offsets: Vec<usize> = (0..dim)
            .map(|sub| bits::scatter_bits(0, sub, &targets, n))
            .collect();
        KqPre {
            targets,
            m,
            shifts,
            shifts_sorted,
            offsets,
        }
    }
}

/// Classifies `gate` for an `n`-qubit register exactly as
/// [`apply_gate_slice`] historically did — uncontrolled SWAP (when the
/// swap kernel is enabled), then diagonal (when enabled), then
/// single-qubit, then general k-qubit — and precomputes that kernel's
/// operands. `use_diag`/`use_swap` are baked in because they select the
/// kernel *class*; the remaining [`KernelConfig`] flags stay runtime
/// parameters of [`apply_prepared`].
pub(crate) fn prepare_gate(gate: &Gate, n: usize, use_diag: bool, use_swap: bool) -> PreparedOp {
    let controls = gate.controls();
    let cm = control_masks(&controls, n);

    // dedicated permutation kernel for the uncontrolled SWAP
    if let Gate::Swap(a, b) = gate {
        if controls.is_empty() && use_swap {
            return PreparedOp {
                kind: PreparedKind::Swap { a: *a, b: *b },
                cm,
            };
        }
    }

    let targets = gate.targets();
    let matrix = gate.target_matrix();

    let kind = if use_diag && matrix.is_diagonal(0.0) {
        let diag: Vec<C64> = (0..matrix.rows()).map(|i| matrix[(i, i)]).collect();
        PreparedKind::Diagonal { targets, diag }
    } else if targets.len() == 1 {
        PreparedKind::OneQ {
            q: targets[0],
            m: matrix,
        }
    } else {
        PreparedKind::Kq(KqPre::new(targets, matrix, n))
    };
    PreparedOp { kind, cm }
}

/// Executes a [`PreparedOp`] against a `2^n`-amplitude slice. Runtime
/// flags (`allow_parallel`, `allow_simd`) come from `cfg`; the kernel
/// class and its operands were fixed by [`prepare_gate`].
pub(crate) fn apply_prepared(pre: &PreparedOp, state: &mut [C64], n: usize, cfg: &KernelConfig) {
    debug_assert_eq!(state.len(), 1usize << n);
    let parallel = cfg.allow_parallel && n >= PARALLEL_THRESHOLD_QUBITS;
    match &pre.kind {
        PreparedKind::Swap { a, b } => apply_swap(state, n, *a, *b, parallel),
        PreparedKind::Diagonal { targets, diag } => {
            apply_diagonal(state, n, targets, diag, pre.cm, parallel)
        }
        PreparedKind::OneQ { q, m } => apply_1q(state, n, *q, m, pre.cm, parallel, cfg.allow_simd),
        PreparedKind::Kq(kq) => apply_kq(state, n, kq, pre.cm, parallel, cfg.allow_simd),
    }
}

/// Tile size (in qubits) of the cache-blocked sweep and of
/// [`permute_state`]: `2^12` amplitudes = 64 KiB, sized to keep one tile
/// resident in L1/L2 across every gate of a window.
pub const SWEEP_TILE_QUBITS: usize = 12;

/// Physically permutes the state vector: the amplitude at index `i`
/// moves to index [`bits::permute_index`]`(i, perm, n)` (the bit on
/// qubit `q` moves to qubit `perm[q]`). Realizes the locality pass's
/// layout changes: single transpositions swap two index-bit planes in
/// place; general permutations rebuild the vector in destination order
/// in tile-sized chunks, so writes stream sequentially.
///
/// Pure data movement — no arithmetic — so it can never perturb a
/// single amplitude bit.
pub fn permute_state(state: &mut CVec, n: usize, perm: &[usize], parallel: bool) {
    debug_assert_eq!(state.len(), 1usize << n);
    debug_assert_eq!(perm.len(), n);
    if perm.iter().enumerate().all(|(q, &p)| q == p) {
        return;
    }
    // single-transposition fast path: exchange the two index-bit planes
    // in place with the pair-exchange swap kernel — half the state
    // read+written once, no allocation. Exactly two displaced positions
    // in a permutation always form a transposition.
    let displaced: Vec<usize> = (0..n).filter(|&q| perm[q] != q).collect();
    if let [a, b] = displaced[..] {
        apply_swap(&mut state.0, n, a, b, parallel);
        return;
    }
    // inverse permutation: destination index d reads from source
    // permute_index(d, inv, n)
    let mut inv = vec![0usize; n];
    for (q, &p) in perm.iter().enumerate() {
        inv[p] = q;
    }
    let tile = 1usize << SWEEP_TILE_QUBITS.min(n);
    // sparse fast path: when the support is small (the expected shape
    // right after a remap concentrates an idle-qubit register), scatter
    // just the nonzero amplitudes into a fresh zero vector instead of
    // gathering the full register. The collection pass aborts to the
    // dense path as soon as the support exceeds 1/64 of the register.
    let cap = (state.len() >> 6).max(1);
    let mut nz: Vec<(usize, C64)> = Vec::with_capacity(cap);
    // bit-level occupancy test (`-0.0` counts as occupied and is copied
    // verbatim), so this path is exactly the gather, amplitude for
    // amplitude
    let sparse = state.iter().enumerate().all(|(i, &z)| {
        if z.re.to_bits() != 0 || z.im.to_bits() != 0 {
            if nz.len() == cap {
                return false;
            }
            nz.push((i, z));
        }
        true
    });
    if sparse {
        let mut out = vec![C64::new(0.0, 0.0); state.len()];
        for (i, z) in nz {
            out[bits::permute_index(i, perm, n)] = z;
        }
        state.0 = out;
        return;
    }
    // permute_index distributes over disjoint bit sets, so the source of
    // destination `base | j` is `permute_index(base) | permute_index(j)`:
    // one table over the low tile bits replaces the per-element bit loop
    let lut: Vec<usize> = (0..tile).map(|j| bits::permute_index(j, &inv, n)).collect();
    let mut out = vec![C64::new(0.0, 0.0); state.len()];
    let fill = |ti: usize, chunk: &mut [C64]| {
        let hi_src = bits::permute_index(ti * tile, &inv, n);
        for (j, z) in chunk.iter_mut().enumerate() {
            *z = state[hi_src | lut[j]];
        }
    };
    if parallel && state.len() / tile >= 2 {
        out.par_chunks_mut(tile)
            .enumerate()
            .for_each(|(ti, chunk)| fill(ti, chunk));
    } else {
        for (ti, chunk) in out.chunks_mut(tile).enumerate() {
            fill(ti, chunk);
        }
    }
    state.0 = out;
}

/// One gate of a cache-blocked sweep window, pre-lowered to the tile
/// register: `gate` is relabeled to the `b` tile-local qubits, and any
/// controls on qubits *outside* the tile (constant within it) are
/// stripped into a `(mask, want)` test on the tile's base index.
struct TileGate {
    gate: Gate,
    hi_mask: usize,
    hi_want: usize,
    /// `true` if controls were stripped: the full-vector kernel would
    /// have run the scalar path (controlled gates never vectorize), so
    /// the tile must too for the sweep to stay bit-identical to the
    /// per-gate walk.
    had_hi_controls: bool,
}

/// Whether `gate` may join a cache-blocked sweep window over the low
/// `b = `[`SWEEP_TILE_QUBITS`] index bits: every *target* must live
/// inside the tile (controls may sit anywhere — they are constant per
/// tile and become a base-index test).
pub(crate) fn sweepable(gate: &Gate, n: usize) -> bool {
    n > SWEEP_TILE_QUBITS
        && gate
            .targets()
            .iter()
            .all(|&q| bits::qubit_shift(q, n) < SWEEP_TILE_QUBITS)
}

/// Lowers `gate` (on the full `n`-qubit register, all targets inside the
/// tile) to a [`TileGate`] on the `b`-qubit tile register.
fn tile_gate(gate: &Gate, n: usize) -> TileGate {
    let b = SWEEP_TILE_QUBITS;
    let lo_qubit = n - b; // first qubit inside the tile
    let (mut hi_mask, mut hi_want) = (0usize, 0usize);
    let mut stripped = gate.clone();
    let mut had_hi_controls = false;
    if let Gate::Controlled {
        controls,
        control_states,
        target,
    } = gate
    {
        let mut keep_c = Vec::new();
        let mut keep_s = Vec::new();
        for (&c, &s) in controls.iter().zip(control_states) {
            if c < lo_qubit {
                let bit = 1usize << bits::qubit_shift(c, n);
                hi_mask |= bit;
                if s == 1 {
                    hi_want |= bit;
                }
                had_hi_controls = true;
            } else {
                keep_c.push(c);
                keep_s.push(s);
            }
        }
        stripped = if keep_c.is_empty() {
            (**target).clone()
        } else {
            Gate::Controlled {
                controls: keep_c,
                control_states: keep_s,
                target: target.clone(),
            }
        };
    }
    // relabel the remaining (in-tile) qubits down to the tile register;
    // qubits below `lo_qubit` are never referenced after stripping
    let map: Vec<usize> = (0..n).map(|q| q.saturating_sub(lo_qubit)).collect();
    TileGate {
        gate: stripped.relabeled(&map),
        hi_mask,
        hi_want,
        had_hi_controls,
    }
}

/// One window gate pre-lowered all the way to its executable form: the
/// tile-register [`PreparedOp`] plus the stripped-control base-index
/// test. This is the operand payload of a bytecode `Window` instruction;
/// [`apply_window`] builds the same thing per call.
#[derive(Clone)]
pub(crate) struct TilePre {
    pre: PreparedOp,
    hi_mask: usize,
    hi_want: usize,
    /// `true` if controls were stripped: the full-vector kernel would
    /// have run the scalar path (controlled gates never vectorize), so
    /// the tile must too for the sweep to stay bit-identical to the
    /// per-gate walk.
    scalar: bool,
}

/// Lowers a [`sweepable`] gate to its prepared tile form.
pub(crate) fn prepare_tile(gate: &Gate, n: usize, use_diag: bool, use_swap: bool) -> TilePre {
    let tg = tile_gate(gate, n);
    TilePre {
        pre: prepare_gate(&tg.gate, SWEEP_TILE_QUBITS, use_diag, use_swap),
        hi_mask: tg.hi_mask,
        hi_want: tg.hi_want,
        scalar: tg.had_hi_controls,
    }
}

/// Cache-blocked sweep: applies a window of gates tile-by-tile, so each
/// `2^b`-amplitude tile stays cache-resident across *all* gates of the
/// window instead of the state being walked once per gate. Every gate
/// must satisfy [`sweepable`]. Tiles partition the register, so the
/// parallel path hands Rayon disjoint `&mut` chunks.
pub(crate) fn apply_window(state: &mut CVec, n: usize, gates: &[&Gate], cfg: &KernelConfig) {
    debug_assert!(gates.iter().all(|g| sweepable(g, n)));
    let tgs: Vec<TilePre> = gates
        .iter()
        .map(|g| prepare_tile(g, n, cfg.use_diagonal_kernel, cfg.use_swap_kernel))
        .collect();
    apply_window_pre(state, n, &tgs, cfg);
}

/// [`apply_window`] on pre-lowered tile gates (the bytecode `Window`
/// instruction's execution loop).
pub(crate) fn apply_window_pre(state: &mut CVec, n: usize, tgs: &[TilePre], cfg: &KernelConfig) {
    let b = SWEEP_TILE_QUBITS;
    let tile_len = 1usize << b;
    // inside a tile the work is single-threaded; SIMD takes over where
    // the full-vector walk would have used it (see `use_simd`)
    let cfg_tile = KernelConfig {
        allow_parallel: false,
        ..*cfg
    };
    let cfg_scalar = KernelConfig {
        allow_simd: false,
        ..cfg_tile
    };
    let parallel = cfg.allow_parallel && n >= PARALLEL_THRESHOLD_QUBITS;
    let run_tile = |ti: usize, tile: &mut [C64]| {
        // occupancy skip: window gates keep every target inside the
        // tile, so an exactly-zero tile stays exactly zero through the
        // whole window. Occupied tiles exit the scan at their first
        // nonzero amplitude; only dead tiles pay a full read. After a
        // remap this is where "hot qubits low" pays off structurally:
        // idle high-stride qubits leave the support packed into a few
        // contiguous tiles instead of scattered across all of them.
        if tile.iter().all(|z| z.re == 0.0 && z.im == 0.0) {
            return;
        }
        let base = ti * tile_len;
        for tg in tgs {
            if base & tg.hi_mask == tg.hi_want {
                let c = if tg.scalar { &cfg_scalar } else { &cfg_tile };
                apply_prepared(&tg.pre, tile, b, c);
            }
        }
    };
    if parallel {
        state
            .par_chunks_mut(tile_len)
            .enumerate()
            .for_each(|(ti, tile)| run_tile(ti, tile));
    } else {
        for (ti, tile) in state.chunks_mut(tile_len).enumerate() {
            run_tile(ti, tile);
        }
    }
}

/// Raw state pointer handed to parallel kernel iterations that touch
/// provably disjoint amplitude indices (the iteration spaces below
/// partition the register), making the shared mutable access sound.
#[derive(Clone, Copy)]
struct SendPtr(*mut C64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessor instead of field access so closures capture the whole
    /// `Send` wrapper rather than the raw pointer field (2021 edition
    /// closures capture disjoint fields).
    #[inline(always)]
    fn get(self) -> *mut C64 {
        self.0
    }
}

/// Whether the vectorized dense kernels should take over: they are
/// single-threaded, so they win whenever threads would not (no parallel
/// dispatch, or only one worker available anyway).
#[cfg(target_arch = "x86_64")]
#[inline]
fn use_simd(parallel: bool, allow: bool) -> bool {
    allow && super::simd::available() && (!parallel || rayon::current_num_threads() == 1)
}

/// Single-qubit kernel: walks the register in `(i, i + 2^s)` pairs and
/// applies the 2x2 matrix, skipping pairs whose control bits don't match.
fn apply_1q(
    state: &mut [C64],
    n: usize,
    q: usize,
    m: &CMat,
    cm: CtrlMasks,
    parallel: bool,
    simd: bool,
) {
    let s = bits::qubit_shift(q, n);
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    #[cfg(target_arch = "x86_64")]
    if cm.0 == 0 && use_simd(parallel, simd) {
        let m = [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]];
        unsafe {
            if s >= 1 {
                super::simd::apply_1q_dense(state, s, m);
            } else {
                super::simd::apply_1q_dense_lsb(state, m);
            }
        }
        return;
    }
    let half = 1usize << s;
    let block = half << 1;
    let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);

    let pair = move |a: &mut C64, b: &mut C64| {
        let (x, y) = (*a, *b);
        *a = m00 * x + m01 * y;
        *b = m10 * x + m11 * y;
    };

    let many_chunks = (state.len() / block) >= 8;

    if parallel && many_chunks {
        // outer parallelism over independent blocks
        state
            .par_chunks_mut(block)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let base = ci * block;
                let (lo, hi) = chunk.split_at_mut(half);
                for j in 0..half {
                    if ctrl_ok(base + j, cm) {
                        pair(&mut lo[j], &mut hi[j]);
                    }
                }
            });
    } else if parallel {
        // few, large blocks: parallelize inside each block instead
        for (ci, chunk) in state.chunks_mut(block).enumerate() {
            let base = ci * block;
            let (lo, hi) = chunk.split_at_mut(half);
            lo.par_iter_mut()
                .zip(hi.par_iter_mut())
                .enumerate()
                .for_each(|(j, (a, b))| {
                    if ctrl_ok(base + j, cm) {
                        pair(a, b);
                    }
                });
        }
    } else {
        for (ci, chunk) in state.chunks_mut(block).enumerate() {
            let base = ci * block;
            let (lo, hi) = chunk.split_at_mut(half);
            for j in 0..half {
                if ctrl_ok(base + j, cm) {
                    pair(&mut lo[j], &mut hi[j]);
                }
            }
        }
    }
}

/// Diagonal kernel: every amplitude is scaled by the diagonal entry
/// selected by its target-qubit bits. Covers Z, S, T, RZ, P, RZZ and all
/// their controlled versions with a single streaming pass.
fn apply_diagonal(
    state: &mut [C64],
    n: usize,
    targets: &[usize],
    diag: &[C64],
    cm: CtrlMasks,
    parallel: bool,
) {
    // uncontrolled single-target gates stream over contiguous halves of
    // each block with no per-amplitude index arithmetic at all, and skip
    // unit diagonal entries entirely (P/T/S touch only half the state)
    if targets.len() == 1 && cm.0 == 0 {
        apply_diag_1q(state, n, targets[0], diag[0], diag[1], parallel);
        return;
    }
    if targets.len() == 1 {
        apply_diag_1q_ctrl(state, n, targets[0], diag[0], diag[1], cm, parallel);
        return;
    }
    if cm.0 == 0 {
        apply_diag_kq(state, n, targets, diag, parallel);
        return;
    }
    let one = C64::new(1.0, 0.0);
    let targets = targets.to_vec();
    let apply = move |i: usize, z: &mut C64| {
        if ctrl_ok(i, cm) {
            let sub = bits::gather_bits(i, &targets, n);
            let d = diag[sub];
            if d != one {
                *z *= d;
            }
        }
    };
    if parallel {
        state
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, z)| apply(i, z));
    } else {
        for (i, z) in state.iter_mut().enumerate() {
            apply(i, z);
        }
    }
}

/// Uncontrolled multi-target diagonal kernel. Every target bit is fixed
/// within an aligned run of `2^s_min` amplitudes (`s_min` the smallest
/// target shift), so each run shares one diagonal entry and the state
/// streams through in sequential run-sized chunks — no per-amplitude
/// index arithmetic. This is also the path diagonal fused blocks take.
fn apply_diag_kq(state: &mut [C64], n: usize, targets: &[usize], diag: &[C64], parallel: bool) {
    let Some(s_min) = targets.iter().map(|&q| bits::qubit_shift(q, n)).min() else {
        return; // zero-target diagonal "gate": identity
    };
    let d_lo = 1usize << s_min;
    let one = C64::new(1.0, 0.0);
    let scale = |ci: usize, chunk: &mut [C64]| {
        let d = diag[bits::gather_bits(ci * d_lo, targets, n)];
        if d != one {
            for z in chunk {
                *z *= d;
            }
        }
    };
    if parallel {
        state
            .par_chunks_mut(d_lo)
            .enumerate()
            .for_each(|(ci, chunk)| scale(ci, chunk));
    } else {
        for (ci, chunk) in state.chunks_mut(d_lo).enumerate() {
            scale(ci, chunk);
        }
    }
}

/// Streaming kernel for an uncontrolled single-qubit diagonal gate.
fn apply_diag_1q(state: &mut [C64], n: usize, q: usize, d0: C64, d1: C64, parallel: bool) {
    let s = bits::qubit_shift(q, n);
    let half = 1usize << s;
    let block = half << 1;
    let one = C64::new(1.0, 0.0);
    let scale_block = move |chunk: &mut [C64]| {
        let (lo, hi) = chunk.split_at_mut(half);
        if d0 != one {
            for z in lo {
                *z *= d0;
            }
        }
        if d1 != one {
            for z in hi {
                *z *= d1;
            }
        }
    };
    if parallel && (state.len() / block) >= 8 {
        state.par_chunks_mut(block).for_each(scale_block);
    } else {
        for chunk in state.chunks_mut(block) {
            scale_block(chunk);
        }
    }
}

/// Controlled single-qubit diagonal kernel: enumerates `(i0, i1)` pairs
/// like the dense 1q kernel (half the index space) and skips unit
/// diagonal entries, so a CZ touches only the amplitudes it changes.
fn apply_diag_1q_ctrl(
    state: &mut [C64],
    n: usize,
    q: usize,
    d0: C64,
    d1: C64,
    cm: CtrlMasks,
    parallel: bool,
) {
    let s = bits::qubit_shift(q, n);
    let one = C64::new(1.0, 0.0);
    let half = state.len() >> 1;
    let (scale0, scale1) = (d0 != one, d1 != one);
    if parallel {
        // each k owns the disjoint pair (i0, i0 | 2^s)
        let ptr = SendPtr(state.as_mut_ptr());
        (0..half).into_par_iter().for_each(move |k| {
            let i0 = bits::insert_bit(k, s);
            if ctrl_ok(i0, cm) {
                unsafe {
                    if scale0 {
                        *ptr.get().add(i0) *= d0;
                    }
                    if scale1 {
                        *ptr.get().add(i0 | (1 << s)) *= d1;
                    }
                }
            }
        });
        return;
    }
    for k in 0..half {
        let i0 = bits::insert_bit(k, s);
        if ctrl_ok(i0, cm) {
            if scale0 {
                state[i0] *= d0;
            }
            if scale1 {
                state[i0 | (1 << s)] *= d1;
            }
        }
    }
}

/// Uncontrolled SWAP kernel: exchanges amplitudes whose `a`/`b` bits
/// differ (a pure permutation — no arithmetic at all).
fn apply_swap(state: &mut [C64], n: usize, a: usize, b: usize, parallel: bool) {
    let sa = bits::qubit_shift(a, n);
    let sb = bits::qubit_shift(b, n);
    let (hi, lo) = (sa.max(sb), sa.min(sb));
    // enumerate indices with bit hi = 1 and bit lo = 0; partner has them
    // exchanged. Two inserts build the index from a (n-2)-bit counter.
    let count = state.len() >> 2;
    if parallel {
        // each k owns the disjoint index pair it exchanges
        let ptr = SendPtr(state.as_mut_ptr());
        (0..count).into_par_iter().for_each(move |k| {
            let base = bits::insert_bit(bits::insert_bit(k, lo), hi);
            let i = base | (1 << hi);
            let j = base | (1 << lo);
            unsafe {
                std::ptr::swap(ptr.get().add(i), ptr.get().add(j));
            }
        });
        return;
    }
    for k in 0..count {
        let base = bits::insert_bit(bits::insert_bit(k, lo), hi);
        let i = base | (1 << hi);
        let j = base | (1 << lo);
        state.swap(i, j);
    }
}

/// One gather–multiply–scatter group of the k-qubit kernel. `base` has
/// zero bits at every target position, so `base | offsets[sub]` is the
/// amplitude index holding sub-state `sub` of the group (`offsets` is the
/// precomputed scatter-index table `scatter_bits(0, sub, targets, n)`).
///
/// # Safety
/// The caller must guarantee `base | offsets[sub]` is in bounds for the
/// state and that no other thread touches this group's indices.
#[inline]
unsafe fn kq_group(
    state: *mut C64,
    base: usize,
    offsets: &[usize],
    m: &CMat,
    gathered: &mut [C64],
    out: &mut [C64],
) {
    for (g, &off) in gathered.iter_mut().zip(offsets) {
        *g = unsafe { *state.add(base | off) };
    }
    for (r, o) in out.iter_mut().enumerate() {
        let mut acc = C64::new(0.0, 0.0);
        let row = m.row(r);
        for (c, &g) in gathered.iter().enumerate() {
            acc += row[c] * g;
        }
        *o = acc;
    }
    for (&o, &off) in out.iter().zip(offsets) {
        unsafe {
            *state.add(base | off) = o;
        }
    }
}

/// General k-target-qubit kernel: gathers the `2^k` amplitudes of each
/// group, multiplies by the dense gate matrix, and scatters back. The
/// scatter-index table and sorted shifts come precomputed in [`KqPre`]
/// (once per gate in the interpreter, once per *plan* in the bytecode);
/// each group only pays one base-index construction plus an OR per
/// amplitude.
fn apply_kq(state: &mut [C64], n: usize, kq: &KqPre, cm: CtrlMasks, parallel: bool, simd: bool) {
    let k = kq.targets.len();
    let dim = 1usize << k;
    let m = &kq.m;
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (simd, n);
    #[cfg(target_arch = "x86_64")]
    let _ = n;

    // uncontrolled two-qubit gates — in particular the dense blocks the
    // fusion pass emits — take the vectorized path when the innermost
    // stride admits it (neither target on the least significant qubit)
    #[cfg(target_arch = "x86_64")]
    if cm.0 == 0 && use_simd(parallel, simd) {
        if k == 2 {
            let (s0, s1) = (kq.shifts[0], kq.shifts[1]);
            unsafe {
                if s0.min(s1) >= 1 {
                    super::simd::apply_2q_dense(state, s0, s1, m.as_slice());
                } else {
                    super::simd::apply_2q_dense_lsb(state, s0, s1, m.as_slice());
                }
            }
            return;
        }
        // larger fused blocks (up to the fusion cap) use the generic
        // vectorized gather/matvec/scatter when no target sits on the
        // least significant qubit
        if (3..=4).contains(&k) && state.len() >> k >= 2 && kq.shifts.iter().all(|&s| s >= 1) {
            unsafe { super::simd::apply_kq_dense(state, &kq.shifts, m.as_slice()) };
            return;
        }
    }

    let shifts = &kq.shifts_sorted;
    let offsets = &kq.offsets;

    let groups = state.len() >> k;
    let base_of = |mcount: usize| {
        let mut base = mcount;
        for &s in shifts {
            base = bits::insert_bit(base, s);
        }
        base
    };

    if parallel && groups > 1 {
        // contiguous chunks of groups per task: groups touch pairwise
        // disjoint index sets, and chunking amortizes the scratch buffers
        let chunks = (rayon::current_num_threads() * 4).clamp(1, groups);
        let per_chunk = groups.div_ceil(chunks);
        let ptr = SendPtr(state.as_mut_ptr());
        (0..chunks).into_par_iter().for_each(|ci| {
            let mut gathered = vec![C64::new(0.0, 0.0); dim];
            let mut out = vec![C64::new(0.0, 0.0); dim];
            let lo = ci * per_chunk;
            let hi = (lo + per_chunk).min(groups);
            for mcount in lo..hi {
                let base = base_of(mcount);
                if ctrl_ok(base, cm) {
                    unsafe {
                        kq_group(ptr.get(), base, offsets, m, &mut gathered, &mut out);
                    }
                }
            }
        });
        return;
    }

    let mut gathered = vec![C64::new(0.0, 0.0); dim];
    let mut out = vec![C64::new(0.0, 0.0); dim];
    for mcount in 0..groups {
        let base = base_of(mcount);
        if ctrl_ok(base, cm) {
            unsafe {
                kq_group(
                    state.as_mut_ptr(),
                    base,
                    offsets,
                    m,
                    &mut gathered,
                    &mut out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::factories::*;
    use qclab_math::scalar::cr;

    const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    fn apply_to_zero(gates: &[Gate], n: usize) -> CVec {
        let mut state = CVec::basis_state(1 << n, 0);
        for g in gates {
            apply_gate(g, &mut state, n);
        }
        state
    }

    #[test]
    fn hadamard_on_zero_gives_plus() {
        let s = apply_to_zero(&[Hadamard::new(0)], 1);
        assert!((s[0].re - INV_SQRT2).abs() < 1e-15);
        assert!((s[1].re - INV_SQRT2).abs() < 1e-15);
    }

    #[test]
    fn bell_state_via_kernels() {
        let s = apply_to_zero(&[Hadamard::new(0), CNOT::new(0, 1)], 2);
        assert!((s[0].re - INV_SQRT2).abs() < 1e-15);
        assert!((s[3].re - INV_SQRT2).abs() < 1e-15);
        assert!(s[1].norm() < 1e-15);
        assert!(s[2].norm() < 1e-15);
    }

    #[test]
    fn cnot_control_on_msb_qubit() {
        // |10> --CNOT(0,1)--> |11>
        let mut s = CVec::from_bitstring("10").unwrap();
        apply_gate(&CNOT::new(0, 1), &mut s, 2);
        assert!((s[3].re - 1.0).abs() < 1e-15);
    }

    #[test]
    fn open_control_fires_on_zero() {
        // control state 0: |00> -> |01>
        let mut s = CVec::from_bitstring("00").unwrap();
        apply_gate(&CNOT::with_control_state(0, 1, 0), &mut s, 2);
        assert!((s[1].re - 1.0).abs() < 1e-15);
        // and leaves |10> alone
        let mut s = CVec::from_bitstring("10").unwrap();
        apply_gate(&CNOT::with_control_state(0, 1, 0), &mut s, 2);
        assert!((s[2].re - 1.0).abs() < 1e-15);
    }

    #[test]
    fn swap_kernel_permutes() {
        let mut s = CVec::from_bitstring("10").unwrap();
        apply_gate(&SwapGate::new(0, 1), &mut s, 2);
        assert!((s[1].re - 1.0).abs() < 1e-15);
        // swap twice restores
        apply_gate(&SwapGate::new(0, 1), &mut s, 2);
        assert!((s[2].re - 1.0).abs() < 1e-15);
    }

    #[test]
    fn swap_on_nonadjacent_qubits() {
        let mut s = CVec::from_bitstring("100").unwrap();
        apply_gate(&SwapGate::new(0, 2), &mut s, 3);
        assert_eq!(
            qclab_math::bits::index_to_bitstring(s.iter().position(|z| z.norm() > 0.5).unwrap(), 3),
            "001"
        );
    }

    #[test]
    fn mcx_paper_gate_fires_only_on_matching_controls() {
        // MCX([3,4], 2, [0,1]) on 5 qubits: flips q2 iff q3=0 and q4=1
        let g = MCX::new(&[3, 4], 2, &[0, 1]);
        let mut s = CVec::from_bitstring("00001").unwrap();
        apply_gate(&g, &mut s, 5);
        let idx = s.iter().position(|z| z.norm() > 0.5).unwrap();
        assert_eq!(qclab_math::bits::index_to_bitstring(idx, 5), "00101");
        // non-matching ancilla pattern leaves the state untouched
        let mut s = CVec::from_bitstring("00011").unwrap();
        apply_gate(&g, &mut s, 5);
        let idx = s.iter().position(|z| z.norm() > 0.5).unwrap();
        assert_eq!(qclab_math::bits::index_to_bitstring(idx, 5), "00011");
    }

    #[test]
    fn diagonal_kernel_matches_general_kernel() {
        // apply CZ via the diagonal path and via a Custom (dense) gate
        let cz = CZ::new(0, 1);
        let dense = CustomGate::new(
            "CZdense",
            &[0, 1],
            crate::circuit::QCircuit::to_matrix(&{
                let mut c = crate::circuit::QCircuit::new(2);
                c.push_back(CZ::new(0, 1));
                c
            })
            .unwrap(),
        )
        .unwrap();
        let mut s1 = CVec(vec![cr(0.5); 4]);
        let mut s2 = s1.clone();
        apply_gate(&cz, &mut s1, 2);
        apply_gate(&dense, &mut s2, 2);
        assert!(s1.approx_eq(&s2, 1e-14));
    }

    #[test]
    fn norm_preserved_by_random_gate_sequence() {
        let n = 5;
        let gates = vec![
            Hadamard::new(0),
            RotationX::new(1, 0.37),
            CNOT::new(0, 4),
            RotationZZ::new(1, 3, 1.1),
            MCX::new(&[0, 1], 2, &[1, 0]),
            ISwapGate::new(2, 4),
            TGate::new(3),
            CRY::new(4, 0, 2.2),
        ];
        let s = apply_to_zero(&gates, n);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_matches_to_matrix_for_two_qubit_gates() {
        // iSWAP applied via kernel equals its 4x4 matrix action
        let g = ISwapGate::new(0, 1);
        let m = g.target_matrix();
        for basis in 0..4 {
            let mut s = CVec::basis_state(4, basis);
            apply_gate(&g, &mut s, 2);
            let expected = m.col(basis);
            for i in 0..4 {
                assert!((s[i] - expected[i]).norm() < 1e-14);
            }
        }
    }

    #[test]
    fn large_register_parallel_path() {
        // cross the parallel threshold and verify a GHZ construction
        let n = PARALLEL_THRESHOLD_QUBITS;
        let mut gates = vec![Hadamard::new(0)];
        for q in 1..n {
            gates.push(CNOT::new(q - 1, q));
        }
        let s = apply_to_zero(&gates, n);
        let dim = 1usize << n;
        assert!((s[0].re - INV_SQRT2).abs() < 1e-12);
        assert!((s[dim - 1].re - INV_SQRT2).abs() < 1e-12);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn every_kernel_config_gives_identical_states() {
        // all 16 flag combinations must agree bit-for-bit in semantics;
        // the circuit goes through `simulate_with` so the `fuse` flag
        // exercises the fusion pre-pass, not just the per-gate dispatch
        use crate::sim::{Backend, SimOptions};
        let n = 6;
        let mut circuit = crate::circuit::QCircuit::new(n);
        circuit
            .push_back(Hadamard::new(0))
            .push_back(RotationZ::new(2, 0.7))
            .push_back(CZ::new(1, 4))
            .push_back(SwapGate::new(0, 5))
            .push_back(CNOT::new(3, 2))
            .push_back(TGate::new(5))
            .push_back(RotationZZ::new(1, 3, 0.9))
            .push_back(MCX::new(&[0, 2], 4, &[1, 0]));
        let mut reference: Option<CVec> = None;
        for diag in [true, false] {
            for swp in [true, false] {
                for par in [true, false] {
                    for (fuse, simd) in [(true, true), (true, false), (false, true), (false, false)]
                    {
                        let cfg = KernelConfig {
                            use_diagonal_kernel: diag,
                            use_swap_kernel: swp,
                            allow_parallel: par,
                            allow_simd: simd,
                            fuse,
                            max_fused_qubits: super::super::fusion::DEFAULT_MAX_FUSED_QUBITS,
                            ..KernelConfig::default()
                        };
                        let opts = SimOptions {
                            backend: Backend::Kernel,
                            kernel: cfg,
                            ..SimOptions::default()
                        };
                        let init = CVec::basis_state(1 << n, 0);
                        let sim = circuit.simulate_with(&init, &opts).unwrap();
                        let state = sim.states()[0].clone();
                        match &reference {
                            None => reference = Some(state),
                            Some(r) => {
                                assert!(state.approx_eq(r, 1e-12), "config {cfg:?} diverged")
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_diagonal_and_controlled_paths() {
        let n = PARALLEL_THRESHOLD_QUBITS;
        let mut state = CVec::basis_state(1 << n, 0);
        apply_gate(&Hadamard::new(n - 1), &mut state, n);
        apply_gate(&CPhase::new(n - 1, 0, std::f64::consts::PI), &mut state, n);
        apply_gate(&CNOT::new(n - 1, 1), &mut state, n);
        assert!((state.norm() - 1.0).abs() < 1e-12);
    }
}
