//! Full state-vector simulation with mid-circuit measurement branching
//! (paper Sec. 3).
//!
//! A simulation starts from one branch (the initial state with probability
//! 1). Unitary items evolve every live branch; each measurement splits a
//! branch into the outcomes with nonzero probability, exactly as the paper
//! describes: "the system is described by a probabilistic distribution
//! over the possible post-measurement states". The final [`Simulation`]
//! exposes per-branch results, probabilities and state vectors, sampled
//! `counts`, and reduced states of unmeasured qubits.
//!
//! Two interchangeable gate-application backends are provided:
//! [`Backend::Kron`] (sparse extended unitary — the MATLAB QCLAB
//! strategy) and [`Backend::Kernel`] (in-place kernels — the QCLAB++
//! strategy). They are property-tested against each other and benchmarked
//! in experiment F1.

pub mod bytecode;
pub mod collapse;
pub mod control;
pub mod density;
pub mod frame;
pub mod fusion;
pub mod guard;
pub mod kernel;
pub mod kron;
pub mod sampler;
pub(crate) mod simd;
pub mod sparse;
pub mod stabilizer;
pub mod trajectory;

use crate::circuit::QCircuit;
use crate::error::QclabError;
use crate::gates::Gate;
use crate::measurement::{Basis, Measurement};
use crate::program::{self, BackendChoice, BackendRequest, PlanOptions, ProgramOp};
use crate::reduced::contract_qubit;
use qclab_math::CVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Gate-application strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Build the sparse register-wide unitary per gate and multiply
    /// (MATLAB QCLAB, paper Sec. 3.2).
    Kron,
    /// Apply gates in place with specialized kernels (QCLAB++).
    Kernel,
}

/// Options controlling a simulation run.
#[derive(Clone, Debug)]
pub struct SimOptions {
    /// Gate-application backend (default: [`Backend::Kernel`]).
    pub backend: Backend,
    /// Measurement outcomes with probability below this threshold are
    /// pruned instead of spawning a branch.
    pub branch_tol: f64,
    /// Kernel dispatch configuration, including the gate-fusion pre-pass
    /// (`kernel.fuse` / `kernel.max_fused_qubits`, honoured by both
    /// backends) and the per-gate specialization switches (kernel
    /// backend only).
    pub kernel: kernel::KernelConfig,
    /// Resource limits checked before the state allocation; oversized
    /// registers come back as [`QclabError::ResourceExhausted`] instead
    /// of aborting the process.
    pub limits: guard::ResourceLimits,
    /// Cooperative deadline/cancellation, polled at op boundaries. The
    /// default ([`control::ExecutionControl::none`]) is a no-op and
    /// leaves results bit-identical to runs without control.
    pub control: control::ExecutionControl,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            backend: Backend::Kernel,
            branch_tol: 1e-12,
            kernel: kernel::KernelConfig::default(),
            limits: guard::ResourceLimits::default(),
            control: control::ExecutionControl::none(),
        }
    }
}

/// One post-measurement branch of a simulation.
#[derive(Clone, Debug)]
pub struct Branch {
    result: String,
    probability: f64,
    state: CVec,
    /// Last known single-qubit state of each measured qubit: the
    /// basis-change matrix column selected by the observed bit.
    measured: BTreeMap<usize, (Vec<qclab_math::C64>, u8)>,
}

impl Branch {
    /// Concatenated measurement outcomes of this branch, in execution
    /// order (e.g. `"01"`).
    pub fn result(&self) -> &str {
        &self.result
    }

    /// Probability of observing this branch.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Full-register state vector of this branch.
    pub fn state(&self) -> &CVec {
        &self.state
    }

    /// Qubits measured on this branch, ascending.
    pub fn measured_qubits(&self) -> Vec<usize> {
        self.measured.keys().copied().collect()
    }
}

/// The result of simulating a circuit (`circuit.simulate(...)`).
#[derive(Clone, Debug)]
pub struct Simulation {
    nb_qubits: usize,
    branches: Vec<Branch>,
}

impl Simulation {
    /// Number of register qubits.
    pub fn nb_qubits(&self) -> usize {
        self.nb_qubits
    }

    /// All branches (unique measurement histories).
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// The observed measurement result strings, one per branch
    /// (`simulation.results` in QCLAB).
    pub fn results(&self) -> Vec<&str> {
        self.branches.iter().map(|b| b.result.as_str()).collect()
    }

    /// Branch probabilities (`simulation.probabilities`).
    pub fn probabilities(&self) -> Vec<f64> {
        self.branches.iter().map(|b| b.probability).collect()
    }

    /// Final state vectors, one per branch (`simulation.states`).
    pub fn states(&self) -> Vec<&CVec> {
        self.branches.iter().map(|b| &b.state).collect()
    }

    /// Samples `shots` repetitions of the experiment, returning
    /// `(result string, frequency)` pairs sorted by result string —
    /// QCLAB's `counts` function with MATLAB's `rng(seed)` replaced by a
    /// seeded PRNG.
    pub fn counts(&self, shots: u64, seed: u64) -> Vec<(String, u64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.counts_with_rng(shots, &mut rng)
    }

    /// [`counts`](Self::counts) with a caller-supplied RNG.
    ///
    /// Draws go through [`sampler::DiscreteSampler`] — cumulative search
    /// for few branches, an O(1)-per-draw alias table for many — instead
    /// of the old linear scan per shot, so sampling cost is
    /// `O(branches + shots)` rather than `O(branches · shots)`. The
    /// sampled *distribution* is unchanged but the RNG draw stream is
    /// not: counts for a given seed differ from releases that used the
    /// per-shot scan.
    pub fn counts_with_rng(&self, shots: u64, rng: &mut impl Rng) -> Vec<(String, u64)> {
        let mut tally: BTreeMap<String, u64> = BTreeMap::new();
        // make every possible outcome visible even at zero frequency
        for b in &self.branches {
            tally.entry(b.result.clone()).or_insert(0);
        }
        let weights: Vec<f64> = self.branches.iter().map(|b| b.probability).collect();
        // branch probabilities are positive and sum to ~1 by construction,
        // so the sampler build cannot fail for a simulation result
        let sampler = sampler::DiscreteSampler::new(&weights)
            .expect("branch probabilities are a distribution");
        for _ in 0..shots {
            let chosen = sampler.sample(rng);
            *tally
                .entry(self.branches[chosen].result.clone())
                .or_insert(0) += 1;
        }
        tally.into_iter().collect()
    }

    /// The marginal probability that the measurement at `position` in
    /// the record (0 = first measurement executed) returned `bit`,
    /// summed over all branches.
    pub fn marginal_probability(&self, position: usize, bit: u8) -> f64 {
        let want = if bit == 0 { '0' } else { '1' };
        self.branches
            .iter()
            .filter(|b| b.result.chars().nth(position) == Some(want))
            .map(|b| b.probability)
            .sum()
    }

    /// Reduced states of the unmeasured qubits, one per branch
    /// (`simulation.reducedStates`). Fails if no qubit was left
    /// unmeasured, if every qubit was measured, or if a measured qubit was
    /// re-entangled by later gates.
    pub fn reduced_states(&self) -> Result<Vec<CVec>, QclabError> {
        let mut out = Vec::with_capacity(self.branches.len());
        for b in &self.branches {
            if b.measured.is_empty() {
                return Err(QclabError::Unavailable(
                    "no measurements in the circuit — the full state is the result".into(),
                ));
            }
            if b.measured.len() == self.nb_qubits {
                return Err(QclabError::Unavailable(
                    "all qubits were measured — no reduced state remains".into(),
                ));
            }
            // contract from the highest measured qubit downward
            let mut cur = b.state.clone();
            let mut n = self.nb_qubits;
            for (&q, (known, _bit)) in b.measured.iter().rev() {
                cur = contract_qubit(&cur, n, q, known);
                n -= 1;
            }
            let norm = cur.norm();
            if (norm - 1.0).abs() > 1e-6 {
                return Err(QclabError::Unavailable(format!(
                    "measured qubits were modified after measurement \
                     (branch '{}', overlap {norm:.6})",
                    b.result
                )));
            }
            cur.normalize();
            out.push(cur);
        }
        Ok(out)
    }
}

impl QCircuit {
    /// Simulates the circuit from an initial state vector with default
    /// options (`circuit.simulate(v)`).
    pub fn simulate(&self, initial: &CVec) -> Result<Simulation, QclabError> {
        self.simulate_with(initial, &SimOptions::default())
    }

    /// Simulates from a basis state given as a bitstring
    /// (`circuit.simulate('00')`).
    pub fn simulate_bitstring(&self, bits: &str) -> Result<Simulation, QclabError> {
        self.simulate_bitstring_with(bits, &SimOptions::default())
    }

    /// Simulates from a basis-state bitstring with explicit
    /// [`SimOptions`].
    pub fn simulate_bitstring_with(
        &self,
        bits: &str,
        opts: &SimOptions,
    ) -> Result<Simulation, QclabError> {
        if bits.len() != self.nb_qubits() {
            return Err(QclabError::InvalidBitstring(bits.to_string()));
        }
        // guard before `from_bitstring` allocates its 2^len buffer
        opts.limits.check_register(bits.len())?;
        let initial = CVec::from_bitstring(bits)
            .ok_or_else(|| QclabError::InvalidBitstring(bits.to_string()))?;
        self.simulate_with(&initial, opts)
    }

    /// Simulates with explicit [`SimOptions`].
    pub fn simulate_with(
        &self,
        initial: &CVec,
        opts: &SimOptions,
    ) -> Result<Simulation, QclabError> {
        let dim = opts.limits.check_register(self.nb_qubits())?;
        if initial.len() != dim {
            return Err(QclabError::DimensionMismatch {
                expected: dim,
                actual: initial.len(),
            });
        }
        let norm = initial.norm();
        if (norm - 1.0).abs() > 1e-6 {
            return Err(QclabError::NotNormalized { norm });
        }

        let mut branches = vec![Branch {
            result: String::new(),
            probability: 1.0,
            state: initial.clone(),
            measured: BTreeMap::new(),
        }];
        // lower through the shared compile/execute split — the plan
        // cache makes repeated simulation of one circuit lower once
        let n = self.nb_qubits();
        let mut plan_opts = crate::program::PlanOptions::from(&opts.kernel);
        if opts.backend == Backend::Kron {
            // the Kron backend multiplies register-wide sparse unitaries;
            // index-bit locality buys it nothing
            plan_opts.remap = false;
        }
        let program = self.compile_with(&plan_opts);
        // op-boundary deadline/cancel checks; a no-op for the default
        // (disabled) control, so results are unaffected by its presence
        let mut ticker = opts.control.ticker();
        // dispatch-loop path: execute the bytecode cached on the plan
        // instead of interpreting the op schedule (bit-identical — both
        // run the same prepared kernels; see `sim::bytecode`)
        if opts.backend == Backend::Kernel && bytecode::eligible(&opts.kernel) {
            let bc = program.bytecode();
            bytecode::execute_dense(&program, &bc, &mut branches, opts, &mut ticker)?;
            return Ok(Simulation {
                nb_qubits: n,
                branches,
            });
        }
        let ops = program.ops();
        // logical→physical layout of the amplitudes; `None` = identity
        let mut map: Option<Vec<usize>> = None;
        let mut i = 0;
        while i < ops.len() {
            match &ops[i] {
                ProgramOp::Gate(g) => {
                    if opts.backend == Backend::Kernel {
                        // cache-blocked sweep: a run of tile-local gates
                        // applies per tile, keeping each 2^b-amplitude
                        // block cache-resident across the whole run
                        let mut j = i;
                        while j < ops.len()
                            && matches!(&ops[j], ProgramOp::Gate(g) if kernel::sweepable(g, n))
                        {
                            j += 1;
                        }
                        if j - i >= 2 {
                            let gates: Vec<&Gate> = ops[i..j]
                                .iter()
                                .map(|op| match op {
                                    ProgramOp::Gate(g) => g,
                                    _ => unreachable!(),
                                })
                                .collect();
                            for b in branches.iter_mut() {
                                kernel::apply_window(&mut b.state, n, &gates, &opts.kernel);
                            }
                            ticker.tick_n(j - i)?;
                            i = j;
                            continue;
                        }
                    }
                    for b in branches.iter_mut() {
                        apply_backend(g, &mut b.state, n, opts);
                    }
                    ticker.tick()?;
                    i += 1;
                }
                ProgramOp::Fence(_) => {
                    ticker.tick()?;
                    i += 1;
                }
                ProgramOp::Permute { perm, map: new_map } => {
                    let parallel =
                        opts.kernel.allow_parallel && n >= kernel::PARALLEL_THRESHOLD_QUBITS;
                    for b in branches.iter_mut() {
                        kernel::permute_state(&mut b.state, n, perm, parallel);
                    }
                    map = if new_map.iter().enumerate().all(|(q, &p)| q == p) {
                        None
                    } else {
                        Some(new_map.clone())
                    };
                    ticker.tick()?;
                    i += 1;
                }
                ProgramOp::Measure(m) => {
                    branches = measure_branches(&branches, m, opts, n, map.as_deref());
                    ticker.tick()?;
                    i += 1;
                }
                ProgramOp::Reset(q) => {
                    branches = reset_branches(&branches, *q, opts, n, map.as_deref());
                    ticker.tick()?;
                    i += 1;
                }
            }
        }
        Ok(Simulation {
            nb_qubits: n,
            branches,
        })
    }
}

/// A simulation that ran on whichever state representation the
/// dense/sparse chooser picked — the return type of
/// [`QCircuit::simulate_bitstring_routed`].
#[derive(Clone, Debug)]
pub enum DispatchedSimulation {
    /// Ran on the dense engine ([`Simulation`]).
    Dense(Simulation),
    /// Ran on the sparse executor ([`sparse::SparseSimulation`]).
    Sparse(sparse::SparseSimulation),
}

impl DispatchedSimulation {
    /// Number of register qubits.
    pub fn nb_qubits(&self) -> usize {
        match self {
            DispatchedSimulation::Dense(s) => s.nb_qubits(),
            DispatchedSimulation::Sparse(s) => s.nb_qubits(),
        }
    }

    /// The observed measurement result strings, one per branch.
    pub fn results(&self) -> Vec<&str> {
        match self {
            DispatchedSimulation::Dense(s) => s.results(),
            DispatchedSimulation::Sparse(s) => s.results(),
        }
    }

    /// Branch probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        match self {
            DispatchedSimulation::Dense(s) => s.probabilities(),
            DispatchedSimulation::Sparse(s) => s.probabilities(),
        }
    }

    /// Sampled counts — both representations use the same sampler and
    /// tally shape, so for one seed the draws match when the branch
    /// distributions do.
    pub fn counts(&self, shots: u64, seed: u64) -> Vec<(String, u64)> {
        match self {
            DispatchedSimulation::Dense(s) => s.counts(shots, seed),
            DispatchedSimulation::Sparse(s) => s.counts(shots, seed),
        }
    }

    /// `true` when the sparse executor ran.
    pub fn is_sparse(&self) -> bool {
        matches!(self, DispatchedSimulation::Sparse(_))
    }
}

impl QCircuit {
    /// Simulates from a basis-state bitstring on the backend a
    /// [`BackendRequest`] resolves to: `Auto` lets
    /// [`program::choose_backend`] pick dense or sparse per program
    /// (using the lowering-time support bound), `Dense`/`Sparse` pin
    /// the executor and fail if its guard refuses. This is the routing
    /// entry the CLI `--backend` flag drives.
    pub fn simulate_bitstring_routed(
        &self,
        bits: &str,
        opts: &SimOptions,
        request: BackendRequest,
    ) -> Result<DispatchedSimulation, QclabError> {
        if bits.len() != self.nb_qubits() {
            return Err(QclabError::InvalidBitstring(bits.to_string()));
        }
        // the support bound is computed on the unfused stream, so any
        // plan of this circuit reports the same estimate; lowering the
        // sparse-tagged plan avoids building dense fused blocks for a
        // register the dense engine may not even admit
        let probe = self.compile_with(&PlanOptions::sparse());
        let choice =
            program::resolve_backend(request, probe.stats(), self.nb_qubits(), &opts.limits)?;
        let run_sparse = || -> Result<DispatchedSimulation, QclabError> {
            let initial = sparse::SparseState::from_bitstring(bits)
                .ok_or_else(|| QclabError::InvalidBitstring(bits.to_string()))?;
            let sopts = sparse::SparseOptions {
                branch_tol: opts.branch_tol,
                limits: opts.limits,
                ..sparse::SparseOptions::default()
            };
            Ok(DispatchedSimulation::Sparse(sparse::execute_controlled(
                &probe,
                initial,
                &sopts,
                &opts.control,
            )?))
        };
        match choice {
            BackendChoice::Dense => match self.simulate_bitstring_with(bits, opts) {
                Ok(sim) => Ok(DispatchedSimulation::Dense(sim)),
                // graceful degradation: under Auto, a dense run that was
                // refused mid-flight (allocation) or overran its deadline
                // falls back to the sparse executor — if the chooser's
                // sparse guard admits the program — before giving up. A
                // post-timeout retry keeps the original deadline: sparse
                // ops are cheap enough that a small program can finish
                // before the next check fires, and otherwise the retry
                // stops within one check interval.
                Err(
                    err @ (QclabError::ResourceExhausted { .. } | QclabError::DeadlineExceeded(_)),
                ) if request == BackendRequest::Auto => {
                    if program::resolve_backend(
                        BackendRequest::Sparse,
                        probe.stats(),
                        self.nb_qubits(),
                        &opts.limits,
                    )
                    .is_ok()
                    {
                        run_sparse()
                    } else {
                        Err(err)
                    }
                }
                Err(err) => Err(err),
            },
            BackendChoice::Sparse { .. } => run_sparse(),
        }
    }
}

pub(crate) fn apply_backend(gate: &Gate, state: &mut CVec, n: usize, opts: &SimOptions) {
    match opts.backend {
        Backend::Kron => kron::apply_gate(gate, state, n),
        Backend::Kernel => kernel::apply_gate_with(gate, state, n, &opts.kernel),
    }
}

/// Splits every branch on a measurement outcome. `map` is the active
/// logical→physical layout (`None` = identity): the measurement's qubit
/// is *logical*, so probabilities and collapse go through the mapped
/// collapse routines and any basis rotation targets the physical slot.
pub(crate) fn measure_branches(
    branches: &[Branch],
    m: &Measurement,
    opts: &SimOptions,
    n: usize,
    map: Option<&[usize]>,
) -> Vec<Branch> {
    let q = m.qubit();
    let pq = map.map_or(q, |m| m[q]);
    let v = m.basis().change_matrix();
    let needs_change = !matches!(m.basis(), Basis::Z);
    let mut out = Vec::with_capacity(branches.len() * 2);

    for b in branches {
        let mut pre = b.state.clone();
        if needs_change {
            // rotate the measured qubit into the computational basis
            let vdg = Gate::Custom {
                name: "V†".into(),
                qubits: vec![pq],
                matrix: v.dagger(),
            };
            apply_backend(&vdg, &mut pre, n, opts);
        }
        let (p0, p1) = match map {
            None => collapse::measure_probabilities(&pre, n, q),
            Some(m) => collapse::measure_probabilities_mapped(&pre, n, q, m),
        };
        for (bit, p) in [(0usize, p0), (1usize, p1)] {
            if p <= opts.branch_tol {
                continue;
            }
            let mut post = match map {
                None => collapse::collapse(&pre, n, q, bit, p),
                Some(m) => {
                    let mut post = CVec::zeros(0);
                    collapse::collapse_into_mapped(&pre, n, q, bit, p, m, &mut post);
                    post
                }
            };
            if needs_change {
                // rotate back so the post-measurement state is expressed
                // in the original basis (paper Sec. 3.3)
                let vg = Gate::Custom {
                    name: "V".into(),
                    qubits: vec![pq],
                    matrix: v.clone(),
                };
                apply_backend(&vg, &mut post, n, opts);
            }
            let mut measured = b.measured.clone();
            measured.insert(q, (v.col(bit), bit as u8));
            let mut result = b.result.clone();
            result.push(if bit == 0 { '0' } else { '1' });
            out.push(Branch {
                result,
                probability: b.probability * p,
                state: post,
                measured,
            });
        }
    }
    out
}

/// Resets a qubit to `|0>`: Z-measure it and flip on outcome 1. The
/// measurement outcome is *not* recorded in the result string. As with
/// [`measure_branches`], `q` is logical and `map` locates its physical
/// slot.
pub(crate) fn reset_branches(
    branches: &[Branch],
    q: usize,
    opts: &SimOptions,
    n: usize,
    map: Option<&[usize]>,
) -> Vec<Branch> {
    let pq = map.map_or(q, |m| m[q]);
    let mut out = Vec::with_capacity(branches.len());
    for b in branches {
        let (p0, p1) = match map {
            None => collapse::measure_probabilities(&b.state, n, q),
            Some(m) => collapse::measure_probabilities_mapped(&b.state, n, q, m),
        };
        for (bit, p) in [(0usize, p0), (1usize, p1)] {
            if p <= opts.branch_tol {
                continue;
            }
            let mut post = match map {
                None => collapse::collapse(&b.state, n, q, bit, p),
                Some(m) => {
                    let mut post = CVec::zeros(0);
                    collapse::collapse_into_mapped(&b.state, n, q, bit, p, m, &mut post);
                    post
                }
            };
            if bit == 1 {
                apply_backend(&Gate::PauliX(pq), &mut post, n, opts);
            }
            out.push(Branch {
                result: b.result.clone(),
                probability: b.probability * p,
                state: post,
                measured: b.measured.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::factories::*;
    use qclab_math::scalar::{c, cr};

    const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    fn bell_with_measurements() -> QCircuit {
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(Measurement::z(0));
        c.push_back(Measurement::z(1));
        c
    }

    #[test]
    fn paper_circuit_one_results() {
        // paper Sec. 3: results {'00', '11'}, probabilities 0.5 each
        let sim = bell_with_measurements().simulate_bitstring("00").unwrap();
        assert_eq!(sim.results(), &["00", "11"]);
        let p = sim.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
        // collapsed states |00> and |11>
        let states = sim.states();
        assert!((states[0][0].re - 1.0).abs() < 1e-12);
        assert!((states[1][3].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simulate_from_vector_initial_state() {
        // paper: simulate(kron([1;0],[1;0])) equals simulate('00')
        let init = CVec::from_bitstring("0")
            .unwrap()
            .kron(&CVec::from_bitstring("0").unwrap());
        let sim = bell_with_measurements().simulate(&init).unwrap();
        assert_eq!(sim.results(), &["00", "11"]);
    }

    #[test]
    fn both_backends_agree_on_branching() {
        let circuit = bell_with_measurements();
        for backend in [Backend::Kron, Backend::Kernel] {
            let opts = SimOptions {
                backend,
                ..Default::default()
            };
            let init = CVec::from_bitstring("00").unwrap();
            let sim = circuit.simulate_with(&init, &opts).unwrap();
            assert_eq!(sim.results(), &["00", "11"]);
        }
    }

    #[test]
    fn deterministic_measurement_prunes_branch() {
        let mut c = QCircuit::new(1);
        c.push_back(PauliX::new(0));
        c.push_back(Measurement::z(0));
        let sim = c.simulate_bitstring("0").unwrap();
        assert_eq!(sim.results(), &["1"]);
        assert!((sim.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_basis_measurement_of_plus_state() {
        // H|0> = |+> measured in X basis: deterministic outcome 0
        let mut c = QCircuit::new(1);
        c.push_back(Hadamard::new(0));
        c.push_back(Measurement::x(0));
        let sim = c.simulate_bitstring("0").unwrap();
        assert_eq!(sim.results(), &["0"]);
        assert!((sim.probabilities()[0] - 1.0).abs() < 1e-12);
        // post-measurement state is |+> in the original basis
        let s = sim.states()[0];
        assert!((s[0].re - INV_SQRT2).abs() < 1e-12);
        assert!((s[1].re - INV_SQRT2).abs() < 1e-12);
    }

    #[test]
    fn y_basis_measurement_of_paper_v() {
        // |v> = (1/√2, i/√2) is the +i eigenstate: Y measurement gives 0
        let v = CVec(vec![cr(INV_SQRT2), c(0.0, INV_SQRT2)]);
        let mut c = QCircuit::new(1);
        c.push_back(Measurement::y(0));
        let sim = c.simulate(&v).unwrap();
        assert_eq!(sim.results(), &["0"]);
        assert!((sim.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn marginal_probabilities() {
        let sim = bell_with_measurements().simulate_bitstring("00").unwrap();
        // perfectly correlated outcomes
        for pos in 0..2 {
            assert!((sim.marginal_probability(pos, 0) - 0.5).abs() < 1e-12);
            assert!((sim.marginal_probability(pos, 1) - 0.5).abs() < 1e-12);
        }
        // deterministic case
        let mut c = QCircuit::new(1);
        c.push_back(PauliX::new(0));
        c.push_back(Measurement::z(0));
        let sim = c.simulate_bitstring("0").unwrap();
        assert!((sim.marginal_probability(0, 1) - 1.0).abs() < 1e-12);
        assert!(sim.marginal_probability(0, 0).abs() < 1e-12);
    }

    #[test]
    fn counts_are_deterministic_per_seed_and_sum_to_shots() {
        let sim = bell_with_measurements().simulate_bitstring("00").unwrap();
        let c1 = sim.counts(1000, 1);
        let c2 = sim.counts(1000, 1);
        assert_eq!(c1, c2);
        let total: u64 = c1.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 1000);
        // both outcomes occur with roughly half frequency
        for (_, n) in &c1 {
            assert!(*n > 400 && *n < 600, "counts {c1:?} not near 500/500");
        }
    }

    #[test]
    fn mid_circuit_measurement_branches_continue_evolving() {
        // measure then apply X: both branch states must be flipped
        let mut c = QCircuit::new(1);
        c.push_back(Hadamard::new(0));
        c.push_back(Measurement::z(0));
        c.push_back(PauliX::new(0));
        let sim = c.simulate_bitstring("0").unwrap();
        assert_eq!(sim.results(), &["0", "1"]);
        // branch '0' ended in |1>, branch '1' ended in |0>
        assert!((sim.states()[0][1].re - 1.0).abs() < 1e-12);
        assert!((sim.states()[1][0].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_returns_qubit_to_zero_without_recording() {
        let mut c = QCircuit::new(1);
        c.push_back(Hadamard::new(0));
        c.push_back(crate::circuit::CircuitItem::Reset(0));
        c.push_back(Measurement::z(0));
        let sim = c.simulate_bitstring("0").unwrap();
        // two internal branches, but both measure 0 after the reset
        assert!(sim.results().iter().all(|r| *r == "0"));
        let total: f64 = sim.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reduced_states_for_partial_end_measurement() {
        // Bell pair, measure only q0: reduced state of q1 follows q0
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(Measurement::z(0));
        let sim = c.simulate_bitstring("00").unwrap();
        let reduced = sim.reduced_states().unwrap();
        assert_eq!(reduced.len(), 2);
        assert!((reduced[0][0].re - 1.0).abs() < 1e-12); // |0>
        assert!((reduced[1][1].re - 1.0).abs() < 1e-12); // |1>
    }

    #[test]
    fn reduced_states_error_cases() {
        // all qubits measured
        let sim = bell_with_measurements().simulate_bitstring("00").unwrap();
        assert!(sim.reduced_states().is_err());
        // no measurement at all
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        let sim = c.simulate_bitstring("00").unwrap();
        assert!(sim.reduced_states().is_err());
        // measured qubit re-entangled afterwards
        let mut c = QCircuit::new(2);
        c.push_back(Measurement::z(0));
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        let sim = c.simulate_bitstring("00").unwrap();
        assert!(sim.reduced_states().is_err());
    }

    #[test]
    fn invalid_initial_states_are_rejected() {
        let c = bell_with_measurements();
        assert!(matches!(
            c.simulate(&CVec::zeros(4)),
            Err(QclabError::NotNormalized { .. })
        ));
        assert!(matches!(
            c.simulate(&CVec::basis_state(8, 0)),
            Err(QclabError::DimensionMismatch { .. })
        ));
        assert!(c.simulate_bitstring("000").is_err());
        assert!(c.simulate_bitstring("0x").is_err());
    }

    #[test]
    fn probabilities_always_sum_to_one() {
        let mut c = QCircuit::new(3);
        c.push_back(Hadamard::new(0));
        c.push_back(Hadamard::new(1));
        c.push_back(CNOT::new(1, 2));
        c.push_back(Measurement::x(0));
        c.push_back(Measurement::z(1));
        c.push_back(Measurement::y(2));
        let sim = c.simulate_bitstring("000").unwrap();
        let total: f64 = sim.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
        for s in sim.states() {
            assert!((s.norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn subcircuit_simulation_matches_inline() {
        let mut sub = QCircuit::new(2);
        sub.push_back(Hadamard::new(0));
        sub.push_back(CNOT::new(0, 1));

        let mut outer = QCircuit::new(3);
        outer.push_back_at(1, sub).unwrap();
        outer.push_back(Measurement::z(1));
        outer.push_back(Measurement::z(2));
        let sim = outer.simulate_bitstring("000").unwrap();
        assert_eq!(sim.results(), &["00", "11"]);
    }
}
