//! Stochastic Pauli-channel fault injection on the state-vector kernels
//! (quantum trajectories).
//!
//! The density-matrix backend ([`super::density`]) represents a noisy
//! `n`-qubit register exactly but pays `4^n` memory — it caps out around
//! 13–14 qubits under the default resource limits. Trajectory sampling
//! keeps noisy workloads on the optimized `2^n` state-vector path
//! instead: each *shot* runs the circuit once, and at every noise
//! location a concrete Pauli error (or none) is drawn from the channel
//! and injected as an ordinary gate. Averaging counts/expectations over
//! shots converges to the density-matrix result at `O(1/√shots)` —
//! the standard Monte-Carlo unraveling of a Pauli channel.
//!
//! Guarantees this module is tested for:
//!
//! - **Determinism** — every shot derives its RNG from
//!   `(config.seed, shot index)`, so results are independent of thread
//!   scheduling and reproducible across runs.
//! - **Exactness at zero noise** — with an empty [`NoiseSpec`] a shot
//!   performs bit-for-bit the same kernel calls as the baseline
//!   simulator ([`QCircuit::simulate_with`]).
//! - **No aborts** — the register is checked against
//!   [`ResourceLimits`] before any `1 << n` allocation, and malformed
//!   noise specs come back as [`QclabError::InvalidNoiseSpec`].
//! - **Norm watchdog** — long gate sequences accumulate rounding drift;
//!   an optional watchdog monitors the state norm every few gates,
//!   renormalizes past a tolerance, and reports drift statistics.
//!
//! ```
//! use qclab_core::sim::trajectory::{run_trajectories, NoiseSpec, PauliChannel,
//!                                   TrajectoryConfig};
//! use qclab_core::QCircuit;
//! use qclab_core::gates::factories::*;
//! use qclab_core::measurement::Measurement;
//!
//! let mut bell = QCircuit::new(2);
//! bell.push_back(Hadamard::new(0));
//! bell.push_back(CNOT::new(0, 1));
//! bell.push_back(Measurement::z(0));
//! bell.push_back(Measurement::z(1));
//!
//! let config = TrajectoryConfig {
//!     shots: 200,
//!     noise: NoiseSpec {
//!         after_gate: Some(PauliChannel::Depolarizing(0.01)),
//!         ..NoiseSpec::default()
//!     },
//!     ..TrajectoryConfig::default()
//! };
//! let result = run_trajectories(&bell, &config).unwrap();
//! assert_eq!(result.total_counts(), 200);
//! ```

use crate::circuit::QCircuit;
use crate::error::QclabError;
use crate::gates::Gate;
use crate::measurement::{Basis, Measurement};
use crate::observable::{Observable, Pauli};
use crate::program::{
    self, BackendChoice, BackendRequest, CompiledProgram, PlanOptions, ProgramOp,
};
use crate::sim::bytecode;
use crate::sim::control::{ControlTicker, ExecutionControl, StopCause, StopLatch};
use crate::sim::frame;
use crate::sim::guard::ResourceLimits;
use crate::sim::kernel::KernelConfig;
use crate::sim::sampler::DiscreteSampler;
use crate::sim::sparse;
use crate::sim::{collapse, kernel};
use qclab_math::scalar::C64;
use qclab_math::{bits, CVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

/// A single-qubit Pauli error channel, sampled per noise location.
///
/// Unlike [`super::density::NoiseChannel`] this is restricted to Pauli
/// (probabilistic-unitary) channels — exactly the family that admits
/// trajectory unraveling by gate injection. Amplitude damping needs the
/// full Kraus treatment and stays on the density-matrix backend.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PauliChannel {
    /// X with probability `p`.
    BitFlip(f64),
    /// Z with probability `p`.
    PhaseFlip(f64),
    /// X, Y or Z each with probability `p/3`.
    Depolarizing(f64),
}

impl PauliChannel {
    /// The total error probability of the channel.
    pub fn probability(&self) -> f64 {
        match *self {
            PauliChannel::BitFlip(p)
            | PauliChannel::PhaseFlip(p)
            | PauliChannel::Depolarizing(p) => p,
        }
    }

    /// Checks that the probability lies in `[0, 1]`.
    pub fn validate(&self) -> Result<(), QclabError> {
        let p = self.probability();
        if p.is_finite() && (0.0..=1.0).contains(&p) {
            Ok(())
        } else {
            Err(QclabError::InvalidNoiseSpec(format!(
                "channel probability {p} outside [0, 1]"
            )))
        }
    }

    /// The equivalent density-matrix channel (used by the
    /// trajectory-vs-density cross-validation).
    pub fn to_density_channel(&self) -> super::density::NoiseChannel {
        match *self {
            PauliChannel::BitFlip(p) => super::density::NoiseChannel::BitFlip(p),
            PauliChannel::PhaseFlip(p) => super::density::NoiseChannel::PhaseFlip(p),
            PauliChannel::Depolarizing(p) => super::density::NoiseChannel::Depolarizing(p),
        }
    }

    /// Draws the Pauli to inject at one location (`None` = no error).
    /// Shared with the frame engine so both draw identical per-site
    /// distributions from identical streams.
    pub(crate) fn sample(&self, rng: &mut StdRng) -> Option<Pauli> {
        let r: f64 = rng.gen();
        match *self {
            PauliChannel::BitFlip(p) => (r < p).then_some(Pauli::X),
            PauliChannel::PhaseFlip(p) => (r < p).then_some(Pauli::Z),
            PauliChannel::Depolarizing(p) => {
                if r >= p {
                    None
                } else if r < p / 3.0 {
                    Some(Pauli::X)
                } else if r < 2.0 * p / 3.0 {
                    Some(Pauli::Y)
                } else {
                    Some(Pauli::Z)
                }
            }
        }
    }
}

/// Where noise strikes during a trajectory. All fields default to `None`
/// (noiseless); each one is sampled independently per qubit per location.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NoiseSpec {
    /// Applied to every qubit a gate touches, right after the gate —
    /// the per-gate counterpart of
    /// [`super::density::NoiseModel::after_gate`].
    pub after_gate: Option<PauliChannel>,
    /// Applied to every qubit a gate does *not* touch, at the same
    /// location (idle/memory noise while the gate executes elsewhere).
    pub idle: Option<PauliChannel>,
    /// Applied to the measured qubit right before each measurement or
    /// reset (readout noise).
    pub before_measure: Option<PauliChannel>,
}

impl NoiseSpec {
    /// True when no channel is configured — the trajectory then follows
    /// the baseline simulator bit for bit.
    pub fn is_noiseless(&self) -> bool {
        self.after_gate.is_none() && self.idle.is_none() && self.before_measure.is_none()
    }

    /// Validates every configured channel.
    pub fn validate(&self) -> Result<(), QclabError> {
        for ch in [self.after_gate, self.idle, self.before_measure]
            .into_iter()
            .flatten()
        {
            ch.validate()?;
        }
        Ok(())
    }
}

/// Norm-drift watchdog configuration. Floating-point rounding makes the
/// state norm drift over long gate sequences; the watchdog measures the
/// norm every [`check_every`](Self::check_every) gate applications (plus
/// once at the end of each shot), renormalizes when the drift exceeds
/// [`tol`](Self::tol), and reports [`NormStats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WatchdogConfig {
    /// Gate applications between norm checks; `0` disables the watchdog.
    pub check_every: usize,
    /// Renormalize when `|norm − 1| > tol`. The default is far above
    /// per-gate rounding noise, so short circuits are never touched and
    /// zero-noise runs stay bit-identical to the baseline.
    pub tol: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            check_every: 64,
            tol: 1e-10,
        }
    }
}

/// Drift statistics accumulated by the norm watchdog.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NormStats {
    /// Norm checks performed.
    pub checks: u64,
    /// Renormalizations triggered.
    pub renormalizations: u64,
    /// Largest observed `|norm − 1|`.
    pub max_drift: f64,
}

impl NormStats {
    fn merge(&mut self, other: &NormStats) {
        self.checks += other.checks;
        self.renormalizations += other.renormalizations;
        self.max_drift = self.max_drift.max(other.max_drift);
    }
}

/// Configuration of a trajectory run.
#[derive(Clone, Debug)]
pub struct TrajectoryConfig {
    /// Master seed; shot `i` runs on an RNG derived from `(seed, i)`, so
    /// results do not depend on thread scheduling.
    pub seed: u64,
    /// Number of trajectories to sample.
    pub shots: u64,
    /// Noise locations and channels.
    pub noise: NoiseSpec,
    /// Kernel dispatch configuration (fusion, SIMD, parallel kernels).
    /// Fusion only applies to noiseless runs — noise locations are
    /// defined on the original gates, so a noisy run always executes the
    /// unfused circuit.
    pub kernel: KernelConfig,
    /// Resource limits checked before the per-shot state allocation.
    pub limits: ResourceLimits,
    /// Norm-drift watchdog.
    pub watchdog: WatchdogConfig,
    /// Sample trajectories in parallel (one Rayon task per shot). The
    /// per-shot kernels then run single-threaded to avoid nested
    /// parallelism.
    pub parallel: bool,
    /// Reuse per-thread state/scratch buffers across shots instead of
    /// allocating two `2^n` vectors per shot. Numerically transparent —
    /// buffers are refilled from the initial state, and the collapse
    /// arithmetic is identical — so zero-noise runs stay bit-identical
    /// to the baseline simulator. Disable only to measure the allocation
    /// cost itself (the F11 ablation).
    pub reuse_buffers: bool,
    /// Observables whose expectations are averaged over the final states
    /// of all shots (must match the circuit's register size).
    pub observables: Vec<Observable>,
    /// Enable the shot-execution fast paths (deterministic-prefix forking
    /// and terminal-measurement alias sampling). Both are exact: the fork
    /// path replays the cached [`ShotPlan`](crate::program::ShotPlan)
    /// prefix once and produces bit-identical per-shot results, and the
    /// alias path draws shots from the exact measured-qubit marginal.
    /// Disable to force the plain per-shot engine (the F12 ablation).
    pub fast_path: bool,
    /// State representation of the shot engine. The default pins the
    /// dense engine (bit-compatible with every earlier release);
    /// [`BackendRequest::Auto`]/[`BackendRequest::Sparse`] route
    /// noiseless terminal-measurement programs through the sparse
    /// prefix-sampling path ([`ShotPath::SparseSampled`]), which admits
    /// 30+ qubit low-entanglement registers the dense guard refuses.
    pub backend: BackendRequest,
    /// Cooperative deadline/cancellation, polled at op boundaries inside
    /// every shot and once per shot in the fan-out prologue. A stopped
    /// ensemble keeps the shots it completed and returns a result
    /// flagged partial ([`TrajectoryResult::stop_cause`]); the checks
    /// never draw from the per-shot RNG streams, so completed shots are
    /// bit-identical to the same shots of an uncontrolled run. The
    /// default ([`ExecutionControl::none`]) is a no-op.
    pub control: ExecutionControl,
    /// Route eligible noisy sampling runs through the Pauli-frame
    /// engine ([`crate::sim::frame`]): Clifford gates + Pauli noise +
    /// Z/X/Y-basis measurements/resets, no observables, default/auto
    /// backend. The engine runs the reference circuit once on the
    /// stabilizer tableau and propagates only per-shot error frames,
    /// bit-sliced 64 shots per word — `O(poly n)` per shot where the
    /// state-vector engine pays `O(2^n)`. Statistically equivalent (the
    /// sampled distribution is identical), not bit-identical: frame
    /// shots draw far fewer RNG values than state-vector shots. Disable
    /// (`--no-frames`) to force the state-vector trajectory engine.
    pub frames: bool,
    /// Number of shot states driven through the bytecode per batch on
    /// the per-shot/forked paths: each instruction is applied across
    /// all lanes of a batch before advancing, amortizing dispatch and
    /// operand fetch over the whole batch. Per-shot `(seed, shot)` RNG
    /// streams make every shot independent of the batch grouping, so
    /// results are bit-identical to the serial engine at any batch
    /// size. `<= 1` — or a kernel config the bytecode can't serve
    /// ([`KernelConfig::bytecode`] off, or a diagonal/swap ablation) —
    /// runs the serial per-shot engine. The effective size is capped so
    /// one batch's lane states stay within a fixed memory budget.
    pub shot_batch: usize,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            seed: 1,
            shots: 1024,
            noise: NoiseSpec::default(),
            kernel: KernelConfig::default(),
            limits: ResourceLimits::default(),
            watchdog: WatchdogConfig::default(),
            parallel: true,
            reuse_buffers: true,
            observables: Vec::new(),
            fast_path: true,
            backend: BackendRequest::Dense,
            control: ExecutionControl::none(),
            frames: true,
            shot_batch: DEFAULT_SHOT_BATCH,
        }
    }
}

/// Default [`TrajectoryConfig::shot_batch`]: large enough to amortize
/// instruction dispatch across a batch, small enough that a batch is
/// still a reasonable work unit for the parallel fan-out.
pub const DEFAULT_SHOT_BATCH: usize = 64;

/// Memory budget for one in-flight batch's lane states (state + scratch
/// per lane): bounds the working set the batched engine multiplies by
/// its batch width, which the serial engine never held.
const BATCH_MEM_BYTES: usize = 128 << 20;

/// The batch width actually used for an `n`-qubit register: the
/// requested width, capped so `2 * batch * 2^n` amplitudes stay within
/// [`BATCH_MEM_BYTES`]. Capping never changes results — shots depend
/// only on `(seed, shot)` — it only bounds memory.
fn effective_batch(requested: usize, n: usize) -> usize {
    let state_bytes = std::mem::size_of::<C64>() << n;
    requested.min((BATCH_MEM_BYTES / (2 * state_bytes)).max(1))
}

/// Which shot-execution strategy a trajectory run actually used
/// (reported on [`TrajectoryResult::path`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShotPath {
    /// Every shot evolved the full op schedule from the initial state.
    PerShot,
    /// The deterministic prefix was evolved once and snapshotted; each
    /// shot forked from the snapshot and ran only the stochastic suffix.
    Forked {
        /// Ops (gates + fences) replayed once instead of per shot.
        prefix_ops: usize,
    },
    /// The circuit was pure unitary + terminal measurements: the state
    /// was evolved once, the measured-qubit marginal built, and all
    /// shots drawn from an alias table in O(1) each.
    AliasSampled {
        /// Ops evolved once before sampling.
        prefix_ops: usize,
    },
    /// Like [`AliasSampled`](Self::AliasSampled), but the prefix was
    /// evolved on the sparse executor and the marginal built over the
    /// live entries only — the dense `2^n` state never exists.
    SparseSampled {
        /// Ops evolved once (sparsely) before sampling.
        prefix_ops: usize,
    },
    /// Clifford + Pauli-noise run: the reference circuit was evolved
    /// once on the stabilizer tableau and every shot propagated only
    /// its Pauli error frame, bit-sliced 64 shots per word
    /// ([`crate::sim::frame`]).
    PauliFrame,
}

impl fmt::Display for ShotPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ShotPath::PerShot => write!(f, "per-shot"),
            ShotPath::Forked { prefix_ops } => {
                write!(f, "forked (prefix {prefix_ops} ops)")
            }
            ShotPath::AliasSampled { prefix_ops } => {
                write!(f, "alias-sampled (prefix {prefix_ops} ops)")
            }
            ShotPath::SparseSampled { prefix_ops } => {
                write!(f, "sparse-sampled (prefix {prefix_ops} ops)")
            }
            ShotPath::PauliFrame => write!(f, "pauli-frame"),
        }
    }
}

/// A Pauli error injected during one trajectory.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InjectedPauli {
    /// Index into the lowered program ([`crate::program::CompiledProgram::ops`])
    /// of the operation the error followed — gates, measurements, resets
    /// and fences all count, matching the shared IR's op numbering.
    pub op_index: usize,
    /// Qubit the error hit.
    pub qubit: usize,
    /// Which Pauli was injected.
    pub pauli: Pauli,
}

/// The outcome of a single trajectory ([`run_single_trajectory`]).
#[derive(Clone, Debug)]
pub struct Trajectory {
    /// Final state vector of this shot.
    pub state: CVec,
    /// Concatenated measurement outcomes, in execution order.
    pub record: String,
    /// Every Pauli error injected during the shot.
    pub injected: Vec<InjectedPauli>,
    /// Watchdog statistics for this shot.
    pub norm: NormStats,
}

/// Aggregated results of [`run_trajectories`].
#[derive(Clone, Debug)]
pub struct TrajectoryResult {
    nb_qubits: usize,
    shots: u64,
    requested_shots: u64,
    counts: BTreeMap<String, u64>,
    injected_errors: u64,
    expectations: Vec<f64>,
    norm: NormStats,
    path: ShotPath,
    /// `Some` when the ensemble was stopped early by its
    /// [`ExecutionControl`]; `shots` then counts only the completed
    /// trajectories.
    stopped: Option<StopCause>,
    /// Effective shot-batch width the run executed with (1 = serial).
    batch: u64,
}

impl TrajectoryResult {
    /// Number of register qubits.
    pub fn nb_qubits(&self) -> usize {
        self.nb_qubits
    }

    /// Number of trajectories actually sampled. Equal to
    /// [`requested_shots`](Self::requested_shots) unless the run was
    /// stopped early (see [`stop_cause`](Self::stop_cause)).
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Number of trajectories the configuration asked for.
    pub fn requested_shots(&self) -> u64 {
        self.requested_shots
    }

    /// Why the run stopped early, if it did. A `Some` here means the
    /// result is **partial**: counts, expectations and watchdog stats
    /// aggregate only the [`shots`](Self::shots) completed
    /// trajectories — each of which is still bit-identical to the same
    /// shot of an uninterrupted run.
    pub fn stop_cause(&self) -> Option<StopCause> {
        self.stopped
    }

    /// `true` when the run was cancelled or timed out before completing
    /// every requested shot.
    pub fn is_partial(&self) -> bool {
        self.stopped.is_some()
    }

    /// Measurement-record frequencies (circuits without measurements
    /// produce a single empty-record entry).
    pub fn counts(&self) -> &BTreeMap<String, u64> {
        &self.counts
    }

    /// Sum of all record frequencies (equals [`shots`](Self::shots)).
    pub fn total_counts(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The observed frequency of `record`, as a fraction of shots.
    pub fn frequency(&self, record: &str) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        *self.counts.get(record).unwrap_or(&0) as f64 / self.shots as f64
    }

    /// Total number of Pauli errors injected across all shots.
    pub fn injected_errors(&self) -> u64 {
        self.injected_errors
    }

    /// Mean expectation of each configured observable over the final
    /// states of all shots (same order as `config.observables`).
    pub fn expectations(&self) -> &[f64] {
        &self.expectations
    }

    /// Merged watchdog statistics over all shots.
    pub fn norm_stats(&self) -> &NormStats {
        &self.norm
    }

    /// Which shot-execution strategy the run used.
    pub fn path(&self) -> ShotPath {
        self.path
    }

    /// Effective shot-batch width the run executed with: `> 1` when the
    /// per-shot/forked path pushed batches of lane states through the
    /// plan's bytecode, `1` for serial execution and the sampled paths
    /// (which have no per-shot evolution to batch). Never affects
    /// results — only how dispatch cost was amortized.
    pub fn shot_batch(&self) -> u64 {
        self.batch
    }
}

/// The plan options of a trajectory run: fusion and the locality pass
/// only apply to noiseless runs — noise locations are defined on the
/// original gates at their *source* qubits, so a noisy run always
/// executes the unfused, unrelabeled sequence. For a noiseless run the
/// options match the baseline simulator's, so both backends share one
/// cached plan (and therefore the exact same kernel calls).
fn plan_options(config: &TrajectoryConfig) -> PlanOptions {
    PlanOptions {
        fuse: config.kernel.fuse && config.noise.is_noiseless(),
        max_fused_qubits: config.kernel.max_fused_qubits,
        remap: config.kernel.remap && config.noise.is_noiseless(),
        ..PlanOptions::default()
    }
}

/// Derives the per-shot RNG: a SplitMix64-style avalanche of the
/// `(seed, shot)` pair, so consecutive shots get uncorrelated streams and
/// results are independent of execution order.
pub(crate) fn shot_rng(seed: u64, shot: u64) -> StdRng {
    let mut z = seed ^ shot.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

fn pauli_gate(p: Pauli, q: usize) -> Option<Gate> {
    match p {
        Pauli::I => None,
        Pauli::X => Some(Gate::PauliX(q)),
        Pauli::Y => Some(Gate::PauliY(q)),
        Pauli::Z => Some(Gate::PauliZ(q)),
    }
}

/// Validates the register, initial state, noise spec and observables of a
/// run; returns the state dimension.
fn validate(
    circuit: &QCircuit,
    initial: &CVec,
    config: &TrajectoryConfig,
) -> Result<usize, QclabError> {
    let n = circuit.nb_qubits();
    let dim = config.limits.check_register(n)?;
    if initial.len() != dim {
        return Err(QclabError::DimensionMismatch {
            expected: dim,
            actual: initial.len(),
        });
    }
    let norm = initial.norm();
    if (norm - 1.0).abs() > 1e-6 {
        return Err(QclabError::NotNormalized { norm });
    }
    config.noise.validate()?;
    for obs in &config.observables {
        if obs.nb_qubits() != n {
            return Err(QclabError::DimensionMismatch {
                expected: n,
                actual: obs.nb_qubits(),
            });
        }
    }
    Ok(dim)
}

/// State of one in-flight shot: the vector plus watchdog bookkeeping.
/// The buffers are owned (moved in from the per-thread arena and moved
/// back out on completion) so a [`ShotBatch`] lane can hold a whole
/// `ShotState` by value.
struct ShotState<'a> {
    state: CVec,
    scratch: CVec,
    n: usize,
    kernel: KernelConfig,
    watchdog: WatchdogConfig,
    stats: NormStats,
    gates_since_check: usize,
    injected: Vec<InjectedPauli>,
    noise: &'a NoiseSpec,
    /// Active logical→physical layout from the locality pass (`None` =
    /// identity). Only ever non-`None` on noiseless runs — the pass is
    /// disabled with noise (see [`plan_options`]), so noise injection
    /// below never has to translate its qubits.
    map: Option<Vec<usize>>,
}

impl ShotState<'_> {
    fn apply(&mut self, gate: &Gate) {
        kernel::apply_gate_with(gate, &mut self.state, self.n, &self.kernel);
        self.bump_watchdog();
    }

    /// [`apply`](Self::apply) for a pre-lowered bytecode gate: same
    /// kernels, same watchdog bookkeeping, the classification work
    /// already paid at plan-compile time.
    fn apply_pre(&mut self, pre: &kernel::PreparedOp) {
        kernel::apply_prepared(pre, &mut self.state, self.n, &self.kernel);
        self.bump_watchdog();
    }

    fn bump_watchdog(&mut self) {
        if self.watchdog.check_every > 0 {
            self.gates_since_check += 1;
            if self.gates_since_check >= self.watchdog.check_every {
                self.check_norm();
            }
        }
    }

    /// Watchdog step: measure the norm, record the drift, renormalize
    /// past the tolerance.
    fn check_norm(&mut self) {
        self.gates_since_check = 0;
        self.stats.checks += 1;
        let norm = self.state.norm();
        let drift = (norm - 1.0).abs();
        self.stats.max_drift = self.stats.max_drift.max(drift);
        if drift > self.watchdog.tol && norm > 0.0 {
            let inv = 1.0 / norm;
            for z in self.state.iter_mut() {
                *z *= inv;
            }
            self.stats.renormalizations += 1;
        }
    }

    /// Samples `channel` on `qubit` and injects the drawn Pauli (if any).
    fn inject(&mut self, channel: &PauliChannel, qubit: usize, op_index: usize, rng: &mut StdRng) {
        if let Some(p) = channel.sample(rng) {
            if let Some(g) = pauli_gate(p, qubit) {
                kernel::apply_gate_with(&g, &mut self.state, self.n, &self.kernel);
                self.injected.push(InjectedPauli {
                    op_index,
                    qubit,
                    pauli: p,
                });
            }
        }
    }

    /// Applies the configured noise for a gate location: `after_gate` on
    /// the touched qubits, `idle` on everything else.
    fn gate_noise(&mut self, touched: &[usize], op_index: usize, rng: &mut StdRng) {
        if let Some(ch) = self.noise.after_gate {
            for &q in touched {
                self.inject(&ch, q, op_index, rng);
            }
        }
        if let Some(ch) = self.noise.idle {
            for q in 0..self.n {
                if !touched.contains(&q) {
                    self.inject(&ch, q, op_index, rng);
                }
            }
        }
    }

    /// The physical slot of logical qubit `q` under the active layout.
    fn physical(&self, q: usize) -> usize {
        self.map.as_ref().map_or(q, |m| m[q])
    }

    /// Samples a Z measurement of *logical* qubit `q`, collapses,
    /// returns the bit. Under a non-identity layout the mapped collapse
    /// routines enumerate amplitudes in logical index order, so
    /// probabilities — and therefore the RNG comparison and the drawn
    /// bit — are bit-identical to the unremapped engine.
    fn sample_z(&mut self, q: usize, rng: &mut StdRng) -> usize {
        let (p0, p1) = match &self.map {
            None => collapse::measure_probabilities(&self.state, self.n, q),
            Some(m) => collapse::measure_probabilities_mapped(&self.state, self.n, q, m),
        };
        let r: f64 = rng.gen();
        // degenerate outcomes never collapse onto a zero-probability half
        let bit = if p1 <= 0.0 {
            0
        } else if p0 <= 0.0 {
            1
        } else if r < p0 / (p0 + p1) {
            0
        } else {
            1
        };
        let p = if bit == 0 { p0 } else { p1 };
        // collapse into the scratch buffer and swap: same arithmetic as
        // `collapse::collapse`, zero allocation after the first shot
        match &self.map {
            None => collapse::collapse_into(&self.state, self.n, q, bit, p, &mut self.scratch),
            Some(m) => {
                collapse::collapse_into_mapped(&self.state, self.n, q, bit, p, m, &mut self.scratch)
            }
        }
        std::mem::swap(&mut self.state, &mut self.scratch);
        bit
    }

    /// Samples a measurement in its basis (rotate in, Z-sample, rotate
    /// back), mirroring the branching simulator's basis handling. The
    /// basis rotation is a physical single-qubit gate, so it targets the
    /// measured qubit's physical slot.
    fn sample_measurement(&mut self, m: &Measurement, rng: &mut StdRng) -> usize {
        let q = m.qubit();
        let pq = self.physical(q);
        let needs_change = !matches!(m.basis(), Basis::Z);
        if needs_change {
            let v = m.basis().change_matrix();
            let vdg = Gate::Custom {
                name: "V†".into(),
                qubits: vec![pq],
                matrix: v.dagger(),
            };
            kernel::apply_gate_with(&vdg, &mut self.state, self.n, &self.kernel);
            let bit = self.sample_z(q, rng);
            let vg = Gate::Custom {
                name: "V".into(),
                qubits: vec![pq],
                matrix: v,
            };
            kernel::apply_gate_with(&vg, &mut self.state, self.n, &self.kernel);
            bit
        } else {
            self.sample_z(q, rng)
        }
    }
}

/// Everything shots of one ensemble share: the lowered op schedule,
/// the initial state and the run configuration. Borrowed by every
/// [`run_shot_in`] call so per-shot arguments stay down to the shot
/// index and the buffers.
struct ShotProgram<'a> {
    ops: &'a [ProgramOp],
    /// State every shot starts from. On the fork path this is the
    /// snapshot after the deterministic prefix, not `|initial⟩`.
    initial: &'a CVec,
    n: usize,
    config: &'a TrajectoryConfig,
    kernel: KernelConfig,
    /// First op each shot executes (`> 0` on the fork path; the skipped
    /// prefix is baked into `initial`). Absolute op indices are kept so
    /// [`InjectedPauli::op_index`] still refers to the full schedule.
    start: usize,
    /// Watchdog statistics carried over from the one-time prefix
    /// evolution, so per-shot stats match the unforked engine exactly.
    init_norm: NormStats,
    /// Gate count since the last watchdog check at the end of the prefix.
    init_gates: usize,
    /// Logical→physical layout the snapshot (`initial`) is stored in —
    /// [`CompiledProgram::prefix_map`] on the fork path, `None` when
    /// shots start from op 0 (the schedule itself then establishes any
    /// layout). Each shot resumes its map tracking from this.
    start_map: Option<&'a [usize]>,
}

/// Runs one trajectory over the lowered op schedule, using the
/// caller-provided `state`/`scratch` buffers (refilled from the initial
/// state; the final state is left in `state`). Returns the measurement
/// record, injected errors and watchdog statistics. Polls
/// `config.control` at op boundaries — the checks never touch `rng`, so
/// a shot that completes under an enabled control is bit-identical to
/// the same shot without one; a stopped shot surfaces
/// [`QclabError::Cancelled`] / [`QclabError::DeadlineExceeded`].
#[allow(clippy::type_complexity)]
fn run_shot_in(
    prog: &ShotProgram<'_>,
    shot: u64,
    state: &mut CVec,
    scratch: &mut CVec,
) -> Result<(String, Vec<InjectedPauli>, NormStats), QclabError> {
    let (ops, config) = (prog.ops, prog.config);
    state.0.clear();
    state.0.extend_from_slice(&prog.initial.0);
    let mut rng = shot_rng(config.seed, shot);
    let mut ticker = config.control.ticker();
    // move the arena buffers into the shot state; they are moved back
    // out on completion (an error abandons them — the arena simply
    // reallocates on the next shot, and errors end the run anyway)
    let mut s = ShotState {
        state: std::mem::replace(state, CVec(Vec::new())),
        scratch: std::mem::replace(scratch, CVec(Vec::new())),
        n: prog.n,
        kernel: prog.kernel,
        watchdog: config.watchdog,
        stats: prog.init_norm,
        gates_since_check: prog.init_gates,
        injected: Vec::new(),
        noise: &config.noise,
        map: prog.start_map.map(|m| m.to_vec()),
    };
    let mut record = String::new();
    for (idx, op) in ops.iter().enumerate().skip(prog.start) {
        match op {
            ProgramOp::Gate(g) => {
                s.apply(g);
                if !s.noise.is_noiseless() {
                    s.gate_noise(&g.qubits(), idx, &mut rng);
                }
            }
            ProgramOp::Fence(_) => {}
            ProgramOp::Permute { perm, map } => {
                // pure data movement: never perturbs amplitude bits,
                // never consumes RNG draws
                kernel::permute_state(&mut s.state, s.n, perm, false);
                s.map = if map.iter().enumerate().all(|(q, &p)| q == p) {
                    None
                } else {
                    Some(map.clone())
                };
            }
            ProgramOp::Measure(m) => {
                if let Some(ch) = s.noise.before_measure {
                    s.inject(&ch, m.qubit(), idx, &mut rng);
                }
                let bit = s.sample_measurement(m, &mut rng);
                record.push(if bit == 0 { '0' } else { '1' });
            }
            ProgramOp::Reset(q) => {
                if let Some(ch) = s.noise.before_measure {
                    s.inject(&ch, *q, idx, &mut rng);
                }
                let bit = s.sample_z(*q, &mut rng);
                if bit == 1 {
                    let pq = s.physical(*q);
                    s.apply(&Gate::PauliX(pq));
                }
            }
        }
        ticker.tick()?;
    }
    if s.watchdog.check_every > 0 && s.gates_since_check > 0 {
        s.check_norm();
    }
    *state = s.state;
    *scratch = s.scratch;
    Ok((record, s.injected, s.stats))
}

/// One lane of a [`run_shot_batch`] call: a full in-flight shot (state,
/// RNG stream, control ticker, record).
struct BatchLane<'a> {
    s: ShotState<'a>,
    rng: StdRng,
    ticker: ControlTicker<'a>,
    record: String,
}

/// Where one lane's trajectory first leaves the batch's shared
/// noiseless evolution, found by replaying the lane's RNG stream
/// without touching any state: every noise-site draw is a plain
/// `rng.gen::<f64>()` whose *count and order* depend only on the op
/// schedule, never on amplitudes, so the first op at which a shot can
/// diverge — the first fired injection, measurement or reset — is a
/// pure function of `(seed, shot)`.
struct LaneFork {
    /// Number of leading schedule ops whose unitary action the lane
    /// shares with the reference evolution (absolute index into `ops`).
    shared: usize,
    /// `Some(idx)` when the fork was triggered by a fired gate-noise
    /// draw at op `idx`: the reference covers the gate itself
    /// (`shared == idx + 1`) and the lane replays that op's noise draws
    /// from `rng` — parked just before them — before resuming.
    noise_at: Option<usize>,
    /// The lane's RNG stream, positioned exactly where the serial
    /// engine's would be at the fork.
    rng: StdRng,
}

/// Replays the noise draws of `(seed, shot)` over the schedule (no
/// state, no kernels) and returns the lane's fork point. Draw order
/// mirrors [`ShotState::gate_noise`] exactly: `after_gate` over the
/// touched qubits in order, then `idle` over the rest in qubit order.
/// A measurement or reset forks unconditionally — its draws consult the
/// state. Forking *early* is always safe (the lane just replays more
/// ops itself), so a fired draw forks even if the sampled Pauli turns
/// out to act trivially.
fn scan_fork(
    ops: &[ProgramOp],
    flat: &[bytecode::FlatInstr],
    start: usize,
    noise: &NoiseSpec,
    n: usize,
    mut rng: StdRng,
) -> LaneFork {
    let gate_draws = noise.after_gate.is_some() || noise.idle.is_some();
    for idx in start..ops.len() {
        match &ops[idx] {
            ProgramOp::Gate(_) => {
                if !gate_draws {
                    continue;
                }
                let bytecode::FlatInstr::Gate { touched, .. } = &flat[idx] else {
                    unreachable!("flat bytecode out of lockstep with the op schedule")
                };
                let before = rng.clone();
                let mut fired = false;
                if let Some(ch) = noise.after_gate {
                    for _ in touched.iter() {
                        fired |= ch.sample(&mut rng).is_some();
                    }
                }
                if let Some(ch) = noise.idle {
                    for q in 0..n {
                        if !touched.contains(&q) {
                            fired |= ch.sample(&mut rng).is_some();
                        }
                    }
                }
                if fired {
                    return LaneFork {
                        shared: idx + 1,
                        noise_at: Some(idx),
                        rng: before,
                    };
                }
            }
            ProgramOp::Measure(_) | ProgramOp::Reset(_) => {
                return LaneFork {
                    shared: idx,
                    noise_at: None,
                    rng,
                };
            }
            ProgramOp::Fence(_) | ProgramOp::Permute { .. } => {}
        }
    }
    LaneFork {
        shared: ops.len(),
        noise_at: None,
        rng,
    }
}

/// Hands every lane whose fork point is `at` its own copy of the
/// reference trajectory: state, watchdog counters and layout as of
/// `at` ops applied, plus the RNG stream the scan parked at the fork.
fn fork_lanes<'a>(
    lanes: &mut [Option<BatchLane<'a>>],
    forks: &[LaneFork],
    at: usize,
    reference: &ShotState<'a>,
    config: &'a TrajectoryConfig,
) {
    for (lane, f) in lanes.iter_mut().zip(forks) {
        if f.shared == at && lane.is_none() {
            *lane = Some(BatchLane {
                s: ShotState {
                    state: reference.state.clone(),
                    scratch: CVec(Vec::new()),
                    n: reference.n,
                    kernel: reference.kernel,
                    watchdog: reference.watchdog,
                    stats: reference.stats,
                    gates_since_check: reference.gates_since_check,
                    injected: Vec::new(),
                    noise: reference.noise,
                    map: reference.map.clone(),
                },
                rng: f.rng.clone(),
                ticker: config.control.ticker(),
                record: String::new(),
            });
        }
    }
}

/// Batched counterpart of [`run_shot_in`]: drives `count` shots
/// (`first..first + count`) through the plan's flat bytecode by
/// amortizing the evolution the shots *share*. Up to its first
/// stochastic divergence — the first fired noise injection, or the
/// first measurement/reset — every shot follows the same noiseless
/// trajectory through the same kernels, and because noise-site RNG
/// draws never consult the state, each lane's divergence point can be
/// computed up front by replaying its `(seed, shot)` stream
/// ([`scan_fork`]). The batch therefore evolves one reference state
/// through the shared prefix *once*, forks each lane off it at that
/// lane's own divergence point (state + watchdog counters + RNG
/// position), and then finishes each lane serially — one lane at a
/// time, so the suffix state stays cache-resident. Every per-lane op
/// executes the exact per-op body of the serial engine in the same
/// order with the same RNG stream, so every shot is bit-identical to
/// the same shot of a serial run regardless of batch grouping. A
/// control stop (reference pass or any lane's ticker) abandons the
/// whole in-flight batch — completed batches are unaffected.
fn run_shot_batch<'a>(
    prog: &ShotProgram<'a>,
    flat: &[bytecode::FlatInstr],
    first: u64,
    count: usize,
) -> Result<Vec<BatchLane<'a>>, QclabError> {
    let (ops, config) = (prog.ops, prog.config);
    debug_assert_eq!(flat.len(), ops.len());

    // 1. Pure-RNG pre-scan: where does each lane leave the shared
    //    trajectory? (A few ns per noise site — no state, no kernels.)
    let forks: Vec<LaneFork> = (0..count)
        .map(|j| {
            scan_fork(
                ops,
                flat,
                prog.start,
                &config.noise,
                prog.n,
                shot_rng(config.seed, first + j as u64),
            )
        })
        .collect();
    // every fork sits at or before the first measurement/reset, so the
    // reference pass below never has to cross one
    let max_shared = forks.iter().map(|f| f.shared).max().unwrap_or(prog.start);

    // 2. Reference pass: evolve the shared noiseless prefix once,
    //    snapshotting lanes off at their fork points as it goes.
    let mut reference = ShotState {
        state: prog.initial.clone(),
        scratch: CVec(Vec::new()),
        n: prog.n,
        kernel: prog.kernel,
        watchdog: config.watchdog,
        stats: prog.init_norm,
        gates_since_check: prog.init_gates,
        injected: Vec::new(),
        noise: &config.noise,
        map: prog.start_map.map(|m| m.to_vec()),
    };
    let mut ticker = config.control.ticker();
    let mut lanes: Vec<Option<BatchLane<'a>>> = (0..count).map(|_| None).collect();
    fork_lanes(&mut lanes, &forks, prog.start, &reference, config);
    for idx in prog.start..max_shared {
        match (&ops[idx], &flat[idx]) {
            (ProgramOp::Gate(_), bytecode::FlatInstr::Gate { pre, .. }) => {
                reference.apply_pre(pre);
            }
            (ProgramOp::Fence(_), _) => {}
            (ProgramOp::Permute { perm, map }, _) => {
                kernel::permute_state(&mut reference.state, reference.n, perm, false);
                reference.map = if map.iter().enumerate().all(|(q, &p)| q == p) {
                    None
                } else {
                    Some(map.clone())
                };
            }
            (ProgramOp::Measure(_) | ProgramOp::Reset(_), _) => {
                unreachable!("reference pass crossed a measurement/reset")
            }
            (ProgramOp::Gate(_), bytecode::FlatInstr::Other) => {
                unreachable!("flat bytecode out of lockstep with the op schedule")
            }
        }
        ticker.tick()?;
        fork_lanes(&mut lanes, &forks, idx + 1, &reference, config);
    }

    // 3. Per-lane suffix: finish each shot serially from its fork.
    let mut out = Vec::with_capacity(count);
    for (lane, f) in lanes.into_iter().zip(&forks) {
        let mut l = lane.expect("every lane forks at or before the schedule end");
        if let Some(idx) = f.noise_at {
            // the reference applied the gate at `idx`; the lane owes
            // that op's noise draws (its RNG is parked right before
            // them, so it redraws exactly what the scan saw)
            let bytecode::FlatInstr::Gate { touched, .. } = &flat[idx] else {
                unreachable!("flat bytecode out of lockstep with the op schedule")
            };
            l.s.gate_noise(touched, idx, &mut l.rng);
            l.ticker.tick()?;
        }
        for idx in f.shared..ops.len() {
            match (&ops[idx], &flat[idx]) {
                (ProgramOp::Gate(_), bytecode::FlatInstr::Gate { pre, touched }) => {
                    l.s.apply_pre(pre);
                    if !l.s.noise.is_noiseless() {
                        l.s.gate_noise(touched, idx, &mut l.rng);
                    }
                }
                (ProgramOp::Fence(_), _) => {}
                (ProgramOp::Permute { perm, map }, _) => {
                    kernel::permute_state(&mut l.s.state, l.s.n, perm, false);
                    l.s.map = if map.iter().enumerate().all(|(q, &p)| q == p) {
                        None
                    } else {
                        Some(map.clone())
                    };
                }
                (ProgramOp::Measure(m), _) => {
                    if let Some(ch) = l.s.noise.before_measure {
                        l.s.inject(&ch, m.qubit(), idx, &mut l.rng);
                    }
                    let bit = l.s.sample_measurement(m, &mut l.rng);
                    l.record.push(if bit == 0 { '0' } else { '1' });
                }
                (ProgramOp::Reset(q), _) => {
                    if let Some(ch) = l.s.noise.before_measure {
                        l.s.inject(&ch, *q, idx, &mut l.rng);
                    }
                    let bit = l.s.sample_z(*q, &mut l.rng);
                    if bit == 1 {
                        let pq = l.s.physical(*q);
                        l.s.apply(&Gate::PauliX(pq));
                    }
                }
                (ProgramOp::Gate(_), bytecode::FlatInstr::Other) => {
                    unreachable!("flat bytecode out of lockstep with the op schedule")
                }
            }
            l.ticker.tick()?;
        }
        if l.s.watchdog.check_every > 0 && l.s.gates_since_check > 0 {
            l.s.check_norm();
        }
        out.push(l);
    }
    Ok(out)
}

/// Hands the closure a per-thread `(state, scratch)` buffer pair when
/// `reuse` is set (the arena: allocated once per thread, reused by every
/// subsequent shot on that thread), or fresh empty buffers otherwise.
fn with_shot_buffers<R>(reuse: bool, f: impl FnOnce(&mut CVec, &mut CVec) -> R) -> R {
    thread_local! {
        static BUFFERS: RefCell<(CVec, CVec)> =
            const { RefCell::new((CVec(Vec::new()), CVec(Vec::new()))) };
    }
    if reuse {
        BUFFERS.with(|b| {
            let mut b = b.borrow_mut();
            let (state, scratch) = &mut *b;
            f(state, scratch)
        })
    } else {
        let mut state = CVec(Vec::new());
        let mut scratch = CVec(Vec::new());
        f(&mut state, &mut scratch)
    }
}

/// The kernel configuration a shot actually runs with: when shots are
/// sampled in parallel the per-shot kernels stay single-threaded (no
/// nested parallelism — the trajectory fan-out already saturates the
/// cores).
fn shot_kernel_config(config: &TrajectoryConfig) -> KernelConfig {
    KernelConfig {
        allow_parallel: config.kernel.allow_parallel && !config.parallel,
        ..config.kernel
    }
}

/// Evolves the deterministic prefix (`ops[..prefix]` — gates and fences
/// only, by construction of [`crate::program::ShotPlan`]) once from
/// `initial`, with full watchdog bookkeeping. Returns the evolved state
/// plus the watchdog carry `(stats, gates_since_check)` that forked
/// shots must resume from so their statistics match the unforked engine
/// exactly. `final_check` additionally performs the end-of-shot norm
/// check (used by the alias path, where no per-shot epilogue runs).
fn evolve_prefix(
    ops: &[ProgramOp],
    prefix: usize,
    initial: &CVec,
    n: usize,
    config: &TrajectoryConfig,
    kernel: KernelConfig,
    final_check: bool,
) -> Result<(CVec, NormStats, usize), QclabError> {
    let noise = NoiseSpec::default();
    let mut s = ShotState {
        state: initial.clone(),
        scratch: CVec(Vec::new()),
        n,
        kernel,
        watchdog: config.watchdog,
        stats: NormStats::default(),
        gates_since_check: 0,
        injected: Vec::new(),
        noise: &noise,
        map: None,
    };
    let mut ticker = config.control.ticker();
    for op in &ops[..prefix] {
        match op {
            ProgramOp::Gate(g) => s.apply(g),
            ProgramOp::Fence(_) => {}
            ProgramOp::Permute { perm, .. } => {
                // the layout the prefix ends in is published as
                // `CompiledProgram::prefix_map`; forked shots resume
                // their tracking from there
                kernel::permute_state(&mut s.state, s.n, perm, false);
            }
            // the classifier ends the prefix at the first Measure/Reset
            ProgramOp::Measure(_) | ProgramOp::Reset(_) => unreachable!(),
        }
        ticker.tick()?;
    }
    if final_check && s.watchdog.check_every > 0 && s.gates_since_check > 0 {
        s.check_norm();
    }
    let (stats, gates) = (s.stats, s.gates_since_check);
    Ok((s.state, stats, gates))
}

/// A partial [`TrajectoryResult`] for a run stopped before any shot
/// completed (e.g. the one-time prefix evolution hit the deadline).
fn partial_empty(
    n: usize,
    config: &TrajectoryConfig,
    cause: StopCause,
    path: ShotPath,
) -> TrajectoryResult {
    TrajectoryResult {
        nb_qubits: n,
        shots: 0,
        requested_shots: config.shots,
        counts: BTreeMap::new(),
        injected_errors: 0,
        expectations: vec![0.0; config.observables.len()],
        norm: NormStats::default(),
        path,
        stopped: Some(cause),
        batch: 1,
    }
}

/// Splits a control stop (cancel/deadline — the partial-result cases)
/// from a genuine execution error, which propagates.
pub(crate) fn stop_or_err(err: QclabError) -> Result<StopCause, QclabError> {
    StopCause::from_error(&err).ok_or(err)
}

/// The shared, seed-independent preparation of a sampled-path run: the
/// evolved prefix reduced to a [`DiscreteSampler`] over the
/// measured-qubit marginal. Building it is the `O(2^n · gates)` (dense)
/// or support-sized (sparse) part of the run; drawing shots from it is
/// `O(1)` per shot and keyed only by `(seed, shot)` — so one prep can
/// serve many same-fingerprint requests ([`run_trajectories_grouped`])
/// with every request's draws bit-identical to a standalone run.
struct SampledPrep {
    /// Outcome index for each sampler slot; `None` means the identity
    /// (the dense path's sampler covers the full `2^m` marginal).
    outcomes: Option<Vec<usize>>,
    sampler: DiscreteSampler,
    /// Measured-qubit count — the record width.
    m: usize,
    /// Watchdog statistics of the one-time prefix evolution (dense
    /// path; the sparse executor has no norm watchdog).
    norm: NormStats,
    path: ShotPath,
}

/// Builds the terminal-measurement fast-path preparation: the program
/// is a unitary prefix followed only by measurements of
/// pairwise-distinct qubits (plus fences), and the run is noiseless
/// with no observables. Evolves the state once, rotates each measured
/// qubit into its measurement basis and builds the exact joint marginal
/// over the measured qubits. `Ok(Err(cause))` means the one-time
/// evolution was stopped before any shot existed.
fn alias_prep(
    program: &CompiledProgram,
    initial: &CVec,
    n: usize,
    config: &TrajectoryConfig,
) -> Result<Result<SampledPrep, StopCause>, QclabError> {
    let plan = program.shot_plan();
    let ops = program.ops();
    // one-time evolution: no per-shot RNG stream to stay compatible
    // with, so the parallel kernels are allowed here
    let (mut state, norm, _) = match evolve_prefix(
        ops,
        plan.prefix_ops,
        initial,
        n,
        config,
        config.kernel,
        true,
    ) {
        Ok(v) => v,
        Err(e) => return Ok(Err(stop_or_err(e)?)),
    };
    // rotate every non-Z measured qubit into its basis; the suffix
    // qubits are pairwise distinct, so the rotations commute and the
    // Z-basis joint marginal below is exactly the joint outcome
    // distribution of the sequential per-shot measurements
    for op in &ops[plan.prefix_ops..] {
        if let ProgramOp::Measure(m) = op {
            if !matches!(m.basis(), Basis::Z) {
                let v = m.basis().change_matrix();
                let vdg = Gate::Custom {
                    name: "V†".into(),
                    qubits: vec![m.qubit()],
                    matrix: v.dagger(),
                };
                kernel::apply_gate_with(&vdg, &mut state, n, &config.kernel);
            }
        }
    }
    let measured = &plan.measured_qubits;
    let m = measured.len();
    let mut probs = vec![0.0f64; 1usize << m];
    for (i, amp) in state.iter().enumerate() {
        probs[bits::gather_bits(i, measured, n)] += amp.norm_sqr();
    }
    let sampler = DiscreteSampler::new(&probs)
        .expect("marginal of a normalized state is a valid distribution");
    Ok(Ok(SampledPrep {
        outcomes: None,
        sampler,
        m,
        norm,
        path: ShotPath::AliasSampled {
            prefix_ops: plan.prefix_ops,
        },
    }))
}

/// Sparse variant of [`alias_prep`]: the prefix is evolved on the
/// sparse executor from `|0…0⟩` and the joint marginal accumulated over
/// the *live entries only* (keyed and sorted, so the sampler's outcome
/// order is deterministic). A dense `2^n` buffer never exists, so
/// 30+ qubit low-entanglement programs sample in support-sized memory.
fn sparse_prep(
    program: &CompiledProgram,
    n: usize,
    config: &TrajectoryConfig,
) -> Result<Result<SampledPrep, StopCause>, QclabError> {
    config.noise.validate()?;
    config.limits.check_sparse_register(n)?;
    let plan = program.shot_plan();
    let ops = program.ops();
    let sopts = sparse::SparseOptions {
        limits: config.limits,
        ..sparse::SparseOptions::default()
    };
    let mut state = sparse::SparseState::basis_state(n, 0);
    let mut ticker = config.control.ticker();
    for op in &ops[..plan.prefix_ops] {
        match op {
            ProgramOp::Gate(g) => {
                state.apply_gate(g, sopts.prune_eps);
                config.limits.check_sparse_entries(n, state.nnz() as u128)?;
            }
            ProgramOp::Fence(_) => {}
            // sparse-tagged plans never emit layout permutes, but a
            // caller handing in a dense plan still gets correct results
            ProgramOp::Permute { perm, .. } => state.permute(perm),
            ProgramOp::Measure(_) | ProgramOp::Reset(_) => {
                unreachable!("measurement inside a shot-plan prefix")
            }
        }
        if let Err(e) = ticker.tick() {
            // stopped before any shot existed
            return Ok(Err(stop_or_err(e)?));
        }
    }
    // rotate non-Z measured qubits into their bases, as in the dense path
    for op in &ops[plan.prefix_ops..] {
        if let ProgramOp::Measure(m) = op {
            if !matches!(m.basis(), Basis::Z) {
                let v = m.basis().change_matrix();
                let vdg = Gate::Custom {
                    name: "V†".into(),
                    qubits: vec![m.qubit()],
                    matrix: v.dagger(),
                };
                state.apply_gate(&vdg, sopts.prune_eps);
            }
        }
    }
    let measured = &plan.measured_qubits;
    let m = measured.len();
    // joint marginal over the live support; BTreeMap gives the sampler a
    // deterministic outcome order independent of hashmap iteration
    let mut marginal: BTreeMap<usize, f64> = BTreeMap::new();
    for (i, amp) in state.iter() {
        *marginal
            .entry(bits::gather_bits(i, measured, n))
            .or_insert(0.0) += amp.norm_sqr();
    }
    let outcomes: Vec<usize> = marginal.keys().copied().collect();
    let weights: Vec<f64> = marginal.values().copied().collect();
    let sampler = DiscreteSampler::new(&weights)
        .expect("marginal of a normalized state is a valid distribution");
    Ok(Ok(SampledPrep {
        outcomes: Some(outcomes),
        sampler,
        m,
        norm: NormStats::default(),
        path: ShotPath::SparseSampled {
            prefix_ops: plan.prefix_ops,
        },
    }))
}

/// Draws `config.shots` shots from a prepared sampler, each from the
/// shot's own `(config.seed, shot)` RNG stream — one draw per shot, so
/// the sample is deterministic and independent of execution order *and*
/// of which request group the prep was built for. Polls
/// `config.control` between draws; a stop keeps the tally of the shots
/// already drawn.
fn draw_sampled(
    prep: &SampledPrep,
    n: usize,
    config: &TrajectoryConfig,
) -> Result<TrajectoryResult, QclabError> {
    // tally by outcome index — O(log distinct) per draw, never 2^m
    // storage for sparse outcomes
    let mut tally: BTreeMap<usize, u64> = BTreeMap::new();
    let mut ticker = config.control.ticker();
    let mut done = 0u64;
    let mut stopped = None;
    for shot in 0..config.shots {
        if let Err(e) = ticker.tick() {
            stopped = Some(stop_or_err(e)?);
            break;
        }
        let mut rng = shot_rng(config.seed, shot);
        let slot = prep.sampler.sample(&mut rng);
        let outcome = match &prep.outcomes {
            Some(outcomes) => outcomes[slot],
            None => slot,
        };
        *tally.entry(outcome).or_insert(0) += 1;
        done += 1;
    }
    // outcome index → record string: measurement j (execution order) is
    // bit m−1−j, matching the per-shot engine's record layout
    let m = prep.m;
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for (k, c) in tally {
        let mut record = String::with_capacity(m);
        for j in (0..m).rev() {
            record.push(if (k >> j) & 1 == 1 { '1' } else { '0' });
        }
        counts.insert(record, c);
    }
    Ok(TrajectoryResult {
        nb_qubits: n,
        shots: done,
        requested_shots: config.shots,
        counts,
        injected_errors: 0,
        expectations: Vec::new(),
        norm: prep.norm,
        path: prep.path,
        stopped,
        batch: 1,
    })
}

/// Terminal-measurement fast path: prep once, draw `config.shots` shots
/// — `O(2^n · gates + shots)` total instead of `O(shots · 2^n · gates)`.
fn run_alias_sampled(
    program: &CompiledProgram,
    initial: &CVec,
    n: usize,
    config: &TrajectoryConfig,
) -> Result<TrajectoryResult, QclabError> {
    match alias_prep(program, initial, n, config)? {
        Ok(prep) => draw_sampled(&prep, n, config),
        // stopped before any shot existed: empty partial result
        Err(cause) => Ok(partial_empty(
            n,
            config,
            cause,
            ShotPath::AliasSampled {
                prefix_ops: program.shot_plan().prefix_ops,
            },
        )),
    }
}

/// Sparse variant of the terminal-measurement fast path (see
/// [`sparse_prep`]); the shots draw from the same per-shot
/// `(seed, shot)` RNG streams as [`run_alias_sampled`].
fn run_sparse_sampled(
    program: &CompiledProgram,
    n: usize,
    config: &TrajectoryConfig,
) -> Result<TrajectoryResult, QclabError> {
    match sparse_prep(program, n, config)? {
        Ok(prep) => draw_sampled(&prep, n, config),
        // stopped before any shot existed: empty partial result
        Err(cause) => Ok(partial_empty(
            n,
            config,
            cause,
            ShotPath::SparseSampled {
                prefix_ops: program.shot_plan().prefix_ops,
            },
        )),
    }
}

/// Runs a single trajectory (shot index `shot`) and returns its final
/// state, measurement record and injected errors. Deterministic in
/// `(config.seed, shot)`.
pub fn run_single_trajectory(
    circuit: &QCircuit,
    initial: &CVec,
    config: &TrajectoryConfig,
    shot: u64,
) -> Result<Trajectory, QclabError> {
    let n = circuit.nb_qubits();
    validate(circuit, initial, config)?;
    let program = circuit.compile_with(&plan_options(config));
    // local buffers: the final state is moved into the returned
    // `Trajectory`, so the arena would gain nothing here
    let mut state = CVec(Vec::new());
    let mut scratch = CVec(Vec::new());
    let prog = ShotProgram {
        ops: program.ops(),
        initial,
        n,
        config,
        kernel: config.kernel,
        start: 0,
        init_norm: NormStats::default(),
        init_gates: 0,
        start_map: None,
    };
    let (record, injected, norm) = run_shot_in(&prog, shot, &mut state, &mut scratch)?;
    Ok(Trajectory {
        state,
        record,
        injected,
        norm,
    })
}

/// Samples `config.shots` trajectories of `circuit` from `|0…0⟩` and
/// aggregates counts, expectations and watchdog statistics.
pub fn run_trajectories(
    circuit: &QCircuit,
    config: &TrajectoryConfig,
) -> Result<TrajectoryResult, QclabError> {
    let n = circuit.nb_qubits();
    // Backend routing happens before the dense `|0…0⟩` guard/allocation,
    // so sparse-eligible wide registers are not refused on the dense
    // byte estimate.
    if config.backend != BackendRequest::Dense {
        let program = circuit.compile_with(&PlanOptions::sparse());
        let choice = program::resolve_backend(config.backend, program.stats(), n, &config.limits)?;
        if let BackendChoice::Sparse { .. } = choice {
            let prefix_sampleable = config.fast_path
                && config.noise.is_noiseless()
                && program.shot_plan().terminal_measurements
                && config.observables.is_empty();
            if prefix_sampleable {
                return run_sparse_sampled(&program, n, config);
            }
            if config.backend == BackendRequest::Sparse {
                return Err(QclabError::Unavailable(
                    "sparse trajectory execution covers noiseless terminal-measurement \
                     programs (prefix sampling) only — run with the dense or auto backend"
                        .into(),
                ));
            }
            // Auto preferred sparse but the program shape is not
            // prefix-sampleable: fall through to the dense engine,
            // whose own guard decides admission.
        }
    }
    // Pauli-frame routing: a noisy Clifford+Pauli sampling run (no
    // observables) propagates only per-shot error frames over one
    // reference tableau run — O(poly n) per shot, admitted by the
    // frame guard instead of the dense 2^n estimate, so 100+ qubit
    // Clifford workloads run where every state-vector backend refuses.
    // Noiseless runs keep the exact alias/fork/sparse paths above.
    if config.frames && !config.noise.is_noiseless() && config.observables.is_empty() {
        let program = circuit.compile_with(&plan_options(config));
        if let Some(fp) = program.frame_program() {
            let run = frame::run_frames(&program, &fp, config)?;
            return Ok(TrajectoryResult {
                nb_qubits: n,
                shots: run.shots,
                requested_shots: config.shots,
                counts: run.counts,
                injected_errors: run.injected,
                expectations: Vec::new(),
                norm: NormStats::default(),
                path: ShotPath::PauliFrame,
                stopped: run.stopped,
                batch: run.batch,
            });
        }
    }
    let dim = config.limits.check_register(n)?;
    run_trajectories_from(circuit, &CVec::basis_state(dim, 0), config)
}

/// [`run_trajectories`] from an explicit initial state.
pub fn run_trajectories_from(
    circuit: &QCircuit,
    initial: &CVec,
    config: &TrajectoryConfig,
) -> Result<TrajectoryResult, QclabError> {
    let n = circuit.nb_qubits();
    validate(circuit, initial, config)?;
    // lower once (plan-cached); every shot executes the same program
    let program = circuit.compile_with(&plan_options(config));
    let plan = program.shot_plan();

    // Terminal-measurement fast path: pure unitary + terminal
    // measurements, noiseless, no observables — evolve once, sample the
    // exact marginal.
    if config.fast_path
        && config.noise.is_noiseless()
        && plan.terminal_measurements
        && config.observables.is_empty()
    {
        return run_alias_sampled(&program, initial, n, config);
    }

    // Deterministic-prefix forking: without gate/idle noise the prefix
    // consumes no RNG draws and injects no errors, so evolving it once
    // and forking each shot from the snapshot preserves the per-shot
    // (seed, shot) streams — and therefore the results — bit for bit.
    let gate_noise = config.noise.after_gate.is_some() || config.noise.idle.is_some();
    let prefix_ops = if config.fast_path && !gate_noise {
        plan.prefix_ops
    } else {
        0
    };
    let kernel = shot_kernel_config(config);
    let path = if prefix_ops > 0 {
        ShotPath::Forked { prefix_ops }
    } else {
        ShotPath::PerShot
    };
    let snapshot;
    let (start_state, init_norm, init_gates) = if prefix_ops > 0 {
        // same kernel config as the shots themselves, so the snapshot is
        // bit-identical to what each unforked shot would have computed
        let (state, stats, gates) =
            match evolve_prefix(program.ops(), prefix_ops, initial, n, config, kernel, false) {
                Ok(v) => v,
                // stopped during the one-time prefix: no shot completed
                Err(e) => return Ok(partial_empty(n, config, stop_or_err(e)?, path)),
            };
        snapshot = state;
        (&snapshot, stats, gates)
    } else {
        (initial, NormStats::default(), 0)
    };
    let prog = ShotProgram {
        ops: program.ops(),
        initial: start_state,
        n,
        config,
        kernel,
        start: prefix_ops,
        init_norm,
        init_gates,
        // the snapshot is stored in the prefix-end layout; each forked
        // shot resumes the permutation tracking from it
        start_map: if prefix_ops > 0 {
            program.prefix_map()
        } else {
            None
        },
    };
    run_ensemble(&program, &prog, path)
}

/// Executes one shot ensemble over a prepared [`ShotProgram`]: the
/// parallel/batched fan-out, stop-latch bookkeeping and result
/// aggregation shared by [`run_trajectories_from`] and the coalesced
/// [`run_trajectories_grouped`] fork path. The run configuration
/// (shots, seed, control, …) is `prog.config`'s.
fn run_ensemble(
    program: &CompiledProgram,
    prog: &ShotProgram<'_>,
    path: ShotPath,
) -> Result<TrajectoryResult, QclabError> {
    let (n, config, kernel) = (prog.n, prog.config, prog.kernel);
    /// Per-shot summary kept after the state is dropped.
    struct ShotSummary {
        record: String,
        injected: u64,
        expectations: Vec<f64>,
        norm: NormStats,
    }

    // Shared stop latch: the first shot to observe a cancel/deadline
    // (or hit an injected fault) trips it; every shot's prologue checks
    // the latch — and probes the control directly, so short shots that
    // never reach a ticker check still stop between shots — and returns
    // `None`, leaving its slot empty. Completed slots are unaffected:
    // each shot's RNG stream depends only on (seed, shot index).
    let latch = StopLatch::new();
    let control = &config.control;
    let summarize = |shot: u64| -> Option<ShotSummary> {
        if latch.is_tripped() {
            return None;
        }
        if let Some(cause) = control.probe() {
            latch.trip(cause.into_error(crate::error::ExecProgress::default()));
            return None;
        }
        with_shot_buffers(config.reuse_buffers, |state, scratch| {
            match run_shot_in(prog, shot, state, scratch) {
                Ok((record, injected, norm)) => Some(ShotSummary {
                    // expectations read the final state straight out of
                    // the arena — no per-shot copy
                    expectations: config
                        .observables
                        .iter()
                        .map(|o| o.expectation(state))
                        .collect(),
                    record,
                    injected: injected.len() as u64,
                    norm,
                }),
                Err(e) => {
                    latch.trip(e);
                    None
                }
            }
        })
    };

    let shots = config.shots;
    // Shot-batched bytecode dispatch: when the plan's bytecode can serve
    // this kernel config, push batches of lane states through one
    // instruction stream (a batch is also the parallel work unit).
    // Per-shot RNG streams make results independent of the grouping, so
    // any batch width — including the serial fallback — is
    // bit-identical.
    let batch = if config.shot_batch > 1 && shots > 1 && bytecode::eligible(&kernel) {
        effective_batch(config.shot_batch, n)
    } else {
        1
    };
    let mut slots: Vec<Option<ShotSummary>> = Vec::new();
    slots.resize_with(shots as usize, || None);
    if batch > 1 {
        let bc = program.bytecode();
        let run_batch = |first: usize, chunk: &mut [Option<ShotSummary>]| {
            if latch.is_tripped() {
                return;
            }
            if let Some(cause) = control.probe() {
                latch.trip(cause.into_error(crate::error::ExecProgress::default()));
                return;
            }
            match run_shot_batch(prog, &bc.flat, first as u64, chunk.len()) {
                Ok(lanes) => {
                    for (slot, lane) in chunk.iter_mut().zip(lanes) {
                        *slot = Some(ShotSummary {
                            expectations: config
                                .observables
                                .iter()
                                .map(|o| o.expectation(&lane.s.state))
                                .collect(),
                            record: lane.record,
                            injected: lane.s.injected.len() as u64,
                            norm: lane.s.stats,
                        });
                    }
                }
                // the in-flight batch is dropped whole; batches that
                // already completed keep their slots
                Err(e) => latch.trip(e),
            }
        };
        if config.parallel && shots > 1 {
            slots
                .par_chunks_mut(batch)
                .enumerate()
                .for_each(|(bi, chunk)| run_batch(bi * batch, chunk));
        } else {
            for (bi, chunk) in slots.chunks_mut(batch).enumerate() {
                run_batch(bi * batch, chunk);
            }
        }
    } else if config.parallel && shots > 1 {
        slots
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, slot)| *slot = summarize(i as u64));
    } else {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = summarize(i as u64);
        }
    }

    // a tripped latch means a partial run (cancel/deadline) — completed
    // shots are kept and flagged — or a genuine error, which propagates
    let stopped = match latch.take() {
        None => None,
        Some(e) => Some(stop_or_err(e)?),
    };
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut injected_errors = 0u64;
    let mut expectations = vec![0.0; config.observables.len()];
    let mut norm = NormStats::default();
    let mut completed = 0u64;
    for summary in slots.into_iter().flatten() {
        *counts.entry(summary.record).or_insert(0) += 1;
        injected_errors += summary.injected;
        for (acc, e) in expectations.iter_mut().zip(&summary.expectations) {
            *acc += e;
        }
        norm.merge(&summary.norm);
        completed += 1;
    }
    if completed > 0 {
        for e in expectations.iter_mut() {
            *e /= completed as f64;
        }
    }
    Ok(TrajectoryResult {
        nb_qubits: n,
        shots: completed,
        counts,
        injected_errors,
        expectations,
        norm,
        path,
        requested_shots: shots,
        stopped,
        batch: batch as u64,
    })
}

/// One tenant's slice of a coalesced ensemble
/// ([`run_trajectories_grouped`]): its own `(seed, shots)` determinism
/// and its own cooperative control, sharing everything else with the
/// group's base configuration.
#[derive(Clone, Debug)]
pub struct ShotRequest {
    /// Master seed of this request's per-shot RNG streams.
    pub seed: u64,
    /// Trajectories to sample for this request.
    pub shots: u64,
    /// Per-request deadline/cancellation, polled between this request's
    /// shots; other requests in the group are unaffected (the shared
    /// one-time preparation runs under the base configuration's
    /// control).
    pub control: ExecutionControl,
}

impl ShotRequest {
    /// A request with no deadline/cancel control.
    pub fn new(seed: u64, shots: u64) -> Self {
        ShotRequest {
            seed,
            shots,
            control: ExecutionControl::none(),
        }
    }
}

/// Runs several same-circuit shot requests as **one coalesced
/// ensemble**: the deterministic, seed-independent preparation (plan
/// lookup, prefix evolution, marginal + alias-table build, fork
/// snapshot) is paid once for the whole group, and each request's shots
/// are then drawn from that request's own `(seed, shot)` RNG streams.
/// Every returned result is **bit-identical** to [`run_trajectories`]
/// with the same `(seed, shots)` alone, because a standalone run
/// derives all of its randomness from `(seed, shot)` pairs and the
/// shared preparation never touches those streams.
///
/// `base` supplies everything but seed/shots/control (noise, kernels,
/// limits, backend, …); results come back in request order. Paths whose
/// preparation is not shareable (per-shot gate noise, the Pauli-frame
/// engine) fall back to one standalone run per request — still sharing
/// the cached plan (and, for frames, the cached frame stream) through
/// the plan cache, which is the dedup half of the win.
pub fn run_trajectories_grouped(
    circuit: &QCircuit,
    base: &TrajectoryConfig,
    requests: &[ShotRequest],
) -> Result<Vec<TrajectoryResult>, QclabError> {
    if requests.is_empty() {
        return Ok(Vec::new());
    }
    let per_request = |r: &ShotRequest| TrajectoryConfig {
        seed: r.seed,
        shots: r.shots,
        control: r.control.clone(),
        ..base.clone()
    };
    // a singleton group is exactly a standalone run
    if requests.len() == 1 {
        return Ok(vec![run_trajectories(circuit, &per_request(&requests[0]))?]);
    }
    let n = circuit.nb_qubits();

    // backend routing mirrors run_trajectories op for op, so the grouped
    // path picks the same engine a standalone run would
    if base.backend != BackendRequest::Dense {
        let program = circuit.compile_with(&PlanOptions::sparse());
        let choice = program::resolve_backend(base.backend, program.stats(), n, &base.limits)?;
        if let BackendChoice::Sparse { .. } = choice {
            let prefix_sampleable = base.fast_path
                && base.noise.is_noiseless()
                && program.shot_plan().terminal_measurements
                && base.observables.is_empty();
            if prefix_sampleable {
                return match sparse_prep(&program, n, base)? {
                    Ok(prep) => requests
                        .iter()
                        .map(|r| draw_sampled(&prep, n, &per_request(r)))
                        .collect(),
                    Err(cause) => {
                        let path = ShotPath::SparseSampled {
                            prefix_ops: program.shot_plan().prefix_ops,
                        };
                        Ok(requests
                            .iter()
                            .map(|r| partial_empty(n, &per_request(r), cause, path))
                            .collect())
                    }
                };
            }
            if base.backend == BackendRequest::Sparse {
                return Err(QclabError::Unavailable(
                    "sparse trajectory execution covers noiseless terminal-measurement \
                     programs (prefix sampling) only — run with the dense or auto backend"
                        .into(),
                ));
            }
            // Auto preferred sparse but the shape is not
            // prefix-sampleable: fall through to the dense engine
        }
    }
    // frame path: the frame stream is cached on the plan (shared), but
    // the per-request reference pass is O(poly n) — no shared prep to
    // amortize, so run each request standalone
    if base.frames && !base.noise.is_noiseless() && base.observables.is_empty() {
        let program = circuit.compile_with(&plan_options(base));
        if program.frame_program().is_some() {
            return requests
                .iter()
                .map(|r| run_trajectories(circuit, &per_request(r)))
                .collect();
        }
    }
    let dim = base.limits.check_register(n)?;
    let initial = CVec::basis_state(dim, 0);
    validate(circuit, &initial, base)?;
    let program = circuit.compile_with(&plan_options(base));
    let plan = program.shot_plan();

    // terminal-measurement fast path: one prep, per-request draws
    if base.fast_path
        && base.noise.is_noiseless()
        && plan.terminal_measurements
        && base.observables.is_empty()
    {
        return match alias_prep(&program, &initial, n, base)? {
            Ok(prep) => requests
                .iter()
                .map(|r| draw_sampled(&prep, n, &per_request(r)))
                .collect(),
            Err(cause) => {
                let path = ShotPath::AliasSampled {
                    prefix_ops: plan.prefix_ops,
                };
                Ok(requests
                    .iter()
                    .map(|r| partial_empty(n, &per_request(r), cause, path))
                    .collect())
            }
        };
    }

    // fork path: one shared prefix snapshot, one ensemble per request —
    // the snapshot is seed-independent, so every request's shots match
    // the standalone fork path bit for bit
    let gate_noise = base.noise.after_gate.is_some() || base.noise.idle.is_some();
    let prefix_ops = if base.fast_path && !gate_noise {
        plan.prefix_ops
    } else {
        0
    };
    let kernel = shot_kernel_config(base);
    let path = if prefix_ops > 0 {
        ShotPath::Forked { prefix_ops }
    } else {
        ShotPath::PerShot
    };
    let snapshot;
    let (start_state, init_norm, init_gates) = if prefix_ops > 0 {
        let (state, stats, gates) =
            match evolve_prefix(program.ops(), prefix_ops, &initial, n, base, kernel, false) {
                Ok(v) => v,
                // stopped during the shared prefix: nobody's shots ran
                Err(e) => {
                    let cause = stop_or_err(e)?;
                    return Ok(requests
                        .iter()
                        .map(|r| partial_empty(n, &per_request(r), cause, path))
                        .collect());
                }
            };
        snapshot = state;
        (&snapshot, stats, gates)
    } else {
        (&initial, NormStats::default(), 0)
    };
    requests
        .iter()
        .map(|r| {
            let config = per_request(r);
            let prog = ShotProgram {
                ops: program.ops(),
                initial: start_state,
                n,
                config: &config,
                kernel,
                start: prefix_ops,
                init_norm,
                init_gates,
                start_map: if prefix_ops > 0 {
                    program.prefix_map()
                } else {
                    None
                },
            };
            run_ensemble(&program, &prog, path)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitItem;
    use crate::gates::factories::*;
    use crate::observable::PauliString;

    fn bell_measured() -> QCircuit {
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(Measurement::z(0));
        c.push_back(Measurement::z(1));
        c
    }

    #[test]
    fn noiseless_bell_counts_are_correlated_and_near_half() {
        let config = TrajectoryConfig {
            shots: 2000,
            ..TrajectoryConfig::default()
        };
        let r = run_trajectories(&bell_measured(), &config).unwrap();
        assert_eq!(r.total_counts(), 2000);
        // only the correlated outcomes occur
        assert!(r.counts().keys().all(|k| k == "00" || k == "11"));
        assert!((r.frequency("00") - 0.5).abs() < 0.05);
    }

    #[test]
    fn deterministic_in_seed_and_independent_of_parallelism() {
        let mk = |parallel| TrajectoryConfig {
            shots: 300,
            seed: 7,
            parallel,
            noise: NoiseSpec {
                after_gate: Some(PauliChannel::Depolarizing(0.05)),
                ..NoiseSpec::default()
            },
            ..TrajectoryConfig::default()
        };
        let a = run_trajectories(&bell_measured(), &mk(true)).unwrap();
        let b = run_trajectories(&bell_measured(), &mk(true)).unwrap();
        let c = run_trajectories(&bell_measured(), &mk(false)).unwrap();
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.counts(), c.counts());
        assert_eq!(a.injected_errors(), c.injected_errors());
        // a different seed gives a different sample
        let mut other = mk(true);
        other.seed = 8;
        let d = run_trajectories(&bell_measured(), &other).unwrap();
        assert_ne!(a.counts(), d.counts());
    }

    #[test]
    fn zero_noise_single_shot_matches_baseline_simulator_exactly() {
        // unitary circuit: the single branch must agree bit for bit
        let mut c = QCircuit::new(3);
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(RotationY::new(2, 0.4321));
        c.push_back(CZ::new(1, 2));
        let init = CVec::basis_state(8, 0);
        let config = TrajectoryConfig::default();
        let t = run_single_trajectory(&c, &init, &config, 0).unwrap();
        let sim = c.simulate(&init).unwrap();
        let base = sim.states()[0];
        assert_eq!(t.state.len(), base.len());
        for (a, b) in t.state.iter().zip(base.iter()) {
            assert_eq!(a, b, "zero-noise trajectory diverged from baseline");
        }
        assert!(t.injected.is_empty());
    }

    #[test]
    fn bit_flip_before_measure_flips_deterministic_outcome() {
        // |0> measured with certain readout error: always reads 1
        let mut c = QCircuit::new(1);
        c.push_back(Measurement::z(0));
        let config = TrajectoryConfig {
            shots: 50,
            noise: NoiseSpec {
                before_measure: Some(PauliChannel::BitFlip(1.0)),
                ..NoiseSpec::default()
            },
            ..TrajectoryConfig::default()
        };
        let r = run_trajectories(&c, &config).unwrap();
        assert_eq!(r.frequency("1"), 1.0);
        assert_eq!(r.injected_errors(), 50);
    }

    #[test]
    fn depolarizing_noise_depolarizes_expectations() {
        // <Z> of |0> under depolarizing after a single gate layer:
        // E[Z] = 1 - 4p/3 (X and Y flip the sign, Z and I keep it)
        let mut c = QCircuit::new(1);
        c.push_back(Gate::PauliX(0)); // go to |1>, <Z> = -1
        let p = 0.3;
        let config = TrajectoryConfig {
            shots: 8000,
            noise: NoiseSpec {
                after_gate: Some(PauliChannel::Depolarizing(p)),
                ..NoiseSpec::default()
            },
            observables: vec![Observable::new(1).term(1.0, "Z")],
            ..TrajectoryConfig::default()
        };
        let r = run_trajectories(&c, &config).unwrap();
        let expected = -(1.0 - 4.0 * p / 3.0);
        assert!(
            (r.expectations()[0] - expected).abs() < 0.03,
            "<Z> = {} vs {expected}",
            r.expectations()[0]
        );
    }

    #[test]
    fn idle_noise_hits_untouched_qubits() {
        // gate on q0 only; idle bit-flip with p = 1 must flip q1 and q2
        let mut c = QCircuit::new(3);
        c.push_back(Hadamard::new(0));
        c.push_back(Measurement::z(1));
        c.push_back(Measurement::z(2));
        let config = TrajectoryConfig {
            shots: 20,
            noise: NoiseSpec {
                idle: Some(PauliChannel::BitFlip(1.0)),
                ..NoiseSpec::default()
            },
            ..TrajectoryConfig::default()
        };
        let r = run_trajectories(&c, &config).unwrap();
        assert_eq!(r.frequency("11"), 1.0);
    }

    #[test]
    fn invalid_specs_and_oversized_registers_error_cleanly() {
        let c = bell_measured();
        let bad = TrajectoryConfig {
            noise: NoiseSpec {
                after_gate: Some(PauliChannel::BitFlip(1.5)),
                ..NoiseSpec::default()
            },
            ..TrajectoryConfig::default()
        };
        assert!(matches!(
            run_trajectories(&c, &bad),
            Err(QclabError::InvalidNoiseSpec(_))
        ));
        let tiny = TrajectoryConfig {
            limits: ResourceLimits::with_max_qubits(1),
            ..TrajectoryConfig::default()
        };
        assert!(matches!(
            run_trajectories(&c, &tiny),
            Err(QclabError::ResourceExhausted { .. })
        ));
        let wrong_obs = TrajectoryConfig {
            observables: vec![Observable::new(3).term(1.0, "ZZZ")],
            ..TrajectoryConfig::default()
        };
        assert!(matches!(
            run_trajectories(&c, &wrong_obs),
            Err(QclabError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn watchdog_reports_checks_and_renormalizes_forced_drift() {
        // many rotations accumulate (tiny) drift; force the watchdog to
        // act by setting an absurdly small tolerance
        let mut c = QCircuit::new(2);
        for i in 0..200 {
            c.push_back(RotationX::new(i % 2, 0.1));
        }
        let config = TrajectoryConfig {
            shots: 1,
            watchdog: WatchdogConfig {
                check_every: 8,
                tol: 0.0,
            },
            // unfused so each rotation counts as one watchdog step
            kernel: KernelConfig {
                fuse: false,
                ..KernelConfig::default()
            },
            ..TrajectoryConfig::default()
        };
        let r = run_trajectories(&c, &config).unwrap();
        assert!(r.norm_stats().checks >= 25);
        assert!(r.norm_stats().renormalizations >= 1);
        assert!(r.norm_stats().max_drift < 1e-12);
        // disabled watchdog performs no checks
        let off = TrajectoryConfig {
            shots: 1,
            watchdog: WatchdogConfig {
                check_every: 0,
                tol: 0.0,
            },
            ..TrajectoryConfig::default()
        };
        let r = run_trajectories(&c, &off).unwrap();
        assert_eq!(r.norm_stats().checks, 0);
    }

    #[test]
    fn resets_and_x_basis_measurements_sample_correctly() {
        // H|0> = |+>: X-basis measurement is deterministic 0; then reset
        // and Z-measure must read 0
        let mut c = QCircuit::new(1);
        c.push_back(Hadamard::new(0));
        c.push_back(Measurement::x(0));
        c.push_back(CircuitItem::Reset(0));
        c.push_back(Measurement::z(0));
        let config = TrajectoryConfig {
            shots: 40,
            ..TrajectoryConfig::default()
        };
        let r = run_trajectories(&c, &config).unwrap();
        assert_eq!(r.frequency("00"), 1.0);
    }

    #[test]
    fn pauli_string_support_matches_injection() {
        // phase flips commute with Z measurement: outcome distribution
        // of a Z-basis-only circuit is unchanged by PhaseFlip noise
        let config = |noise| TrajectoryConfig {
            shots: 500,
            seed: 3,
            noise,
            ..TrajectoryConfig::default()
        };
        let mut c = QCircuit::new(1);
        c.push_back(Gate::PauliX(0));
        c.push_back(Measurement::z(0));
        let clean = run_trajectories(&c, &config(NoiseSpec::default())).unwrap();
        let flipped = run_trajectories(
            &c,
            &config(NoiseSpec {
                after_gate: Some(PauliChannel::PhaseFlip(0.5)),
                ..NoiseSpec::default()
            }),
        )
        .unwrap();
        assert_eq!(clean.counts(), flipped.counts());
        assert!(flipped.injected_errors() > 0);
        // sanity: PauliString helper agrees on what Z does to |1>
        let s = PauliString::parse("Z").unwrap();
        let mut v = CVec::basis_state(2, 1);
        s.apply(&mut v);
        assert!((v[1].re + 1.0).abs() < 1e-15);
    }

    #[test]
    fn shot_path_selection_matches_plan_and_noise() {
        let base = || TrajectoryConfig {
            shots: 32,
            ..TrajectoryConfig::default()
        };
        // noiseless + terminal measurements → alias sampled (H + CNOT
        // fuse into one op under the default kernel config)
        let r = run_trajectories(&bell_measured(), &base()).unwrap();
        assert_eq!(r.path(), ShotPath::AliasSampled { prefix_ops: 1 });
        assert_eq!(r.total_counts(), 32);
        // opt-out forces the plain per-shot engine
        let cfg = TrajectoryConfig {
            fast_path: false,
            ..base()
        };
        let r = run_trajectories(&bell_measured(), &cfg).unwrap();
        assert_eq!(r.path(), ShotPath::PerShot);
        // observables need per-shot final states → fork, not alias
        let cfg = TrajectoryConfig {
            observables: vec![Observable::new(2).term(1.0, "ZZ")],
            ..base()
        };
        let r = run_trajectories(&bell_measured(), &cfg).unwrap();
        assert_eq!(r.path(), ShotPath::Forked { prefix_ops: 1 });
        // noisy Clifford circuit → the Pauli-frame sampler takes it
        let noisy = |frames| TrajectoryConfig {
            noise: NoiseSpec {
                after_gate: Some(PauliChannel::BitFlip(0.1)),
                ..NoiseSpec::default()
            },
            frames,
            ..base()
        };
        let r = run_trajectories(&bell_measured(), &noisy(true)).unwrap();
        assert_eq!(r.path(), ShotPath::PauliFrame);
        assert_eq!(r.total_counts(), 32);
        // frame opt-out + gate noise → every gate is a noise site, so
        // no deterministic prefix remains
        let r = run_trajectories(&bell_measured(), &noisy(false)).unwrap();
        assert_eq!(r.path(), ShotPath::PerShot);
        // readout noise strikes only in the suffix → with frames off,
        // the fork path stays on
        let cfg = TrajectoryConfig {
            noise: NoiseSpec {
                before_measure: Some(PauliChannel::BitFlip(0.1)),
                ..NoiseSpec::default()
            },
            frames: false,
            ..base()
        };
        let r = run_trajectories(&bell_measured(), &cfg).unwrap();
        assert_eq!(r.path(), ShotPath::Forked { prefix_ops: 2 });
        // a non-Clifford gate keeps a noisy run off the frame path even
        // with frames enabled
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(RotationY::new(1, 0.3));
        c.push_back(Measurement::z(0));
        c.push_back(Measurement::z(1));
        let cfg = TrajectoryConfig {
            noise: NoiseSpec {
                after_gate: Some(PauliChannel::BitFlip(0.1)),
                ..NoiseSpec::default()
            },
            ..base()
        };
        let r = run_trajectories(&c, &cfg).unwrap();
        assert_eq!(r.path(), ShotPath::PerShot);
    }

    #[test]
    fn forked_runs_are_bit_identical_to_per_shot() {
        // re-measured qubit + reset keep the alias path off under every
        // plan; the forked engine must reproduce the per-shot engine
        // exactly
        let mut c = QCircuit::new(3);
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(RotationY::new(2, 0.7));
        c.push_back(Measurement::z(0));
        c.push_back(Hadamard::new(2));
        c.push_back(Measurement::x(2));
        c.push_back(CircuitItem::Reset(0));
        c.push_back(Measurement::z(0));
        for noise in [
            NoiseSpec::default(),
            NoiseSpec {
                before_measure: Some(PauliChannel::BitFlip(0.05)),
                ..NoiseSpec::default()
            },
        ] {
            let mk = |fast_path| TrajectoryConfig {
                shots: 200,
                seed: 11,
                fast_path,
                noise,
                ..TrajectoryConfig::default()
            };
            let fast = run_trajectories(&c, &mk(true)).unwrap();
            let slow = run_trajectories(&c, &mk(false)).unwrap();
            // fused (noiseless) and unfused (noisy) plans have different
            // prefix op counts; both must fork
            assert!(matches!(fast.path(), ShotPath::Forked { prefix_ops } if prefix_ops > 0));
            assert_eq!(slow.path(), ShotPath::PerShot);
            assert_eq!(fast.counts(), slow.counts());
            assert_eq!(fast.injected_errors(), slow.injected_errors());
            assert_eq!(fast.norm_stats(), slow.norm_stats());
        }
    }

    #[test]
    fn alias_path_reproduces_deterministic_marginals() {
        // |1⟩ ⊗ |+⟩: q0 reads 1 in Z, q1 reads 0 in X — both certain
        let mut c = QCircuit::new(2);
        c.push_back(Gate::PauliX(0));
        c.push_back(Hadamard::new(1));
        c.push_back(Measurement::z(0));
        c.push_back(Measurement::x(1));
        let config = TrajectoryConfig {
            shots: 100,
            ..TrajectoryConfig::default()
        };
        let r = run_trajectories(&c, &config).unwrap();
        assert!(matches!(r.path(), ShotPath::AliasSampled { .. }));
        assert_eq!(r.counts().get("10"), Some(&100));
        // zero shots: both engines report empty counts
        let none = TrajectoryConfig {
            shots: 0,
            ..TrajectoryConfig::default()
        };
        let r = run_trajectories(&c, &none).unwrap();
        assert_eq!(r.total_counts(), 0);
        assert!(r.counts().is_empty());
    }

    /// Grouped execution shares the seed-independent preparation, so
    /// every request's result must be bit-identical to running it
    /// standalone at the same `(seed, shots)`.
    fn assert_grouped_matches_standalone(circuit: &QCircuit, base: &TrajectoryConfig) {
        let requests: Vec<ShotRequest> = [(11, 400), (12, 400), (13, 150), (11, 250)]
            .iter()
            .map(|&(seed, shots)| ShotRequest::new(seed, shots))
            .collect();
        let grouped = run_trajectories_grouped(circuit, base, &requests).unwrap();
        assert_eq!(grouped.len(), requests.len());
        for (req, got) in requests.iter().zip(&grouped) {
            let config = TrajectoryConfig {
                seed: req.seed,
                shots: req.shots,
                ..base.clone()
            };
            let alone = run_trajectories(circuit, &config).unwrap();
            assert_eq!(
                got.counts(),
                alone.counts(),
                "grouped run diverged from standalone at seed {} (path {})",
                req.seed,
                alone.path()
            );
            assert_eq!(got.shots(), alone.shots());
            assert_eq!(got.injected_errors(), alone.injected_errors());
            assert_eq!(got.path(), alone.path());
        }
    }

    #[test]
    fn grouped_alias_path_is_bit_identical_per_request() {
        let mut c = QCircuit::new(3);
        c.push_back(Hadamard::new(0));
        c.push_back(RotationY::new(1, 0.8));
        c.push_back(CNOT::new(0, 2));
        c.push_back(Measurement::z(0));
        c.push_back(Measurement::z(2));
        let base = TrajectoryConfig::default();
        assert_grouped_matches_standalone(&c, &base);
        // sanity: this circuit really takes the alias path
        let probe = run_trajectories(
            &c,
            &TrajectoryConfig {
                shots: 1,
                ..base.clone()
            },
        )
        .unwrap();
        assert!(matches!(probe.path(), ShotPath::AliasSampled { .. }));
    }

    #[test]
    fn grouped_fork_path_is_bit_identical_per_request() {
        // mid-circuit measurement followed by a gate: terminal sampling
        // is ineligible, the deterministic prefix is forked instead
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(Measurement::z(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(Measurement::z(1));
        let base = TrajectoryConfig::default();
        let probe = run_trajectories(
            &c,
            &TrajectoryConfig {
                shots: 1,
                ..base.clone()
            },
        )
        .unwrap();
        assert!(matches!(probe.path(), ShotPath::Forked { .. }));
        assert_grouped_matches_standalone(&c, &base);
    }

    #[test]
    fn grouped_noisy_fallback_is_bit_identical_per_request() {
        // non-Clifford + gate noise: no frames, no alias — the grouped
        // runner falls back to per-request ensembles and must still
        // reproduce the standalone bits
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(RotationY::new(1, 0.3));
        c.push_back(CNOT::new(0, 1));
        c.push_back(Measurement::z(0));
        c.push_back(Measurement::z(1));
        let base = TrajectoryConfig {
            noise: NoiseSpec {
                after_gate: Some(PauliChannel::BitFlip(0.05)),
                ..NoiseSpec::default()
            },
            ..TrajectoryConfig::default()
        };
        let probe = run_trajectories(
            &c,
            &TrajectoryConfig {
                shots: 1,
                ..base.clone()
            },
        )
        .unwrap();
        assert_eq!(probe.path(), ShotPath::PerShot);
        assert_grouped_matches_standalone(&c, &base);
    }

    #[test]
    fn grouped_frame_path_is_bit_identical_per_request() {
        // noisy Clifford circuit: the Pauli-frame sampler handles each
        // request (shared plan, per-request frame runs)
        let mut c = QCircuit::new(2);
        c.push_back(Hadamard::new(0));
        c.push_back(CNOT::new(0, 1));
        c.push_back(Measurement::z(0));
        c.push_back(Measurement::z(1));
        let base = TrajectoryConfig {
            noise: NoiseSpec {
                after_gate: Some(PauliChannel::Depolarizing(0.02)),
                ..NoiseSpec::default()
            },
            ..TrajectoryConfig::default()
        };
        let probe = run_trajectories(
            &c,
            &TrajectoryConfig {
                shots: 1,
                ..base.clone()
            },
        )
        .unwrap();
        assert_eq!(probe.path(), ShotPath::PauliFrame);
        assert_grouped_matches_standalone(&c, &base);
    }

    #[test]
    fn grouped_sparse_path_is_bit_identical_per_request() {
        // sparse-friendly circuit pinned to the sparse backend
        let mut c = QCircuit::new(22);
        c.push_back(Hadamard::new(0));
        for q in 1..6 {
            c.push_back(CNOT::new(0, q));
        }
        c.push_back(Measurement::z(0));
        c.push_back(Measurement::z(5));
        let base = TrajectoryConfig {
            backend: BackendRequest::Sparse,
            ..TrajectoryConfig::default()
        };
        let probe = run_trajectories(
            &c,
            &TrajectoryConfig {
                shots: 1,
                ..base.clone()
            },
        )
        .unwrap();
        assert!(matches!(probe.path(), ShotPath::SparseSampled { .. }));
        assert_grouped_matches_standalone(&c, &base);
    }

    #[test]
    fn grouped_edge_cases() {
        // empty request list and single-request groups are well-defined
        let c = bell_measured();
        let base = TrajectoryConfig::default();
        assert!(run_trajectories_grouped(&c, &base, &[]).unwrap().is_empty());
        let one = run_trajectories_grouped(&c, &base, &[ShotRequest::new(5, 300)]).unwrap();
        let mut config = base.clone();
        config.seed = 5;
        config.shots = 300;
        let alone = run_trajectories(&c, &config).unwrap();
        assert_eq!(one[0].counts(), alone.counts());
        // a zero-shot request rides along without disturbing peers
        let reqs = [ShotRequest::new(5, 300), ShotRequest::new(6, 0)];
        let mixed = run_trajectories_grouped(&c, &base, &reqs).unwrap();
        assert_eq!(mixed[0].counts(), alone.counts());
        assert_eq!(mixed[1].total_counts(), 0);
    }

    #[test]
    fn grouped_per_request_cancellation_stops_only_that_request() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        // request 0 carries a pre-tripped cancel token; request 1 must
        // complete untouched and bit-identical to standalone
        let c = bell_measured();
        let base = TrajectoryConfig {
            // per-shot engine so the control ticker is consulted
            fast_path: false,
            ..TrajectoryConfig::default()
        };
        let token = Arc::new(AtomicBool::new(true));
        let mut cancelled = ShotRequest::new(3, 500);
        cancelled.control = ExecutionControl::with_cancel_token(token);
        let fine = ShotRequest::new(4, 500);
        let results = run_trajectories_grouped(&c, &base, &[cancelled, fine]).unwrap();
        assert_eq!(results[0].stop_cause(), Some(StopCause::Cancelled));
        assert!(results[0].shots() < 500);
        assert_eq!(results[1].stop_cause(), None);
        let mut config = base.clone();
        config.seed = 4;
        config.shots = 500;
        let alone = run_trajectories(&c, &config).unwrap();
        assert_eq!(results[1].counts(), alone.counts());
    }
}
