//! Stabilizer (tableau) simulation of Clifford circuits.
//!
//! The paper's QEC footnote notes that practical error correction uses
//! "Clifford gates and classical control". This module provides the
//! matching simulation substrate: the Aaronson–Gottesman CHP tableau,
//! which simulates Clifford circuits (H, S, CNOT and everything they
//! generate) in polynomial time and memory — thousands of qubits instead
//! of the state vector's ~30. Rows are packed into `u64` words, so gate
//! updates stream over `2n·⌈2n/64⌉` bits.
//!
//! The tableau holds `2n` Pauli rows (destabilizers then stabilizers)
//! over the `x|z` bit representation plus a sign bit, exactly as in
//! Aaronson & Gottesman, *Improved simulation of stabilizer circuits*
//! (2004).
//!
//! ```
//! use qclab_core::StabilizerState;
//!
//! let mut s = StabilizerState::new(2).unwrap();
//! s.h(0);
//! s.cnot(0, 1);
//! assert_eq!(s.stabilizer_strings(), vec!["+XX", "+ZZ"]);
//!
//! // the Bell pair measures randomly but perfectly correlated
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let first = s.measure(0, &mut rng);
//! let second = s.measure(1, &mut rng);
//! assert!(first.random && !second.random);
//! assert_eq!(first.bit, second.bit);
//! ```

use crate::error::QclabError;
use crate::gates::Gate;
use crate::measurement::{Basis, Measurement};
use crate::program::{CompiledProgram, PlanOptions, ProgramOp};
use crate::sim::control::ExecutionControl;
use rand::Rng;

/// A Pauli row of the tableau: `x`/`z` bit vectors plus a sign.
#[derive(Clone, Debug, PartialEq)]
struct Row {
    x: Vec<u64>,
    z: Vec<u64>,
    /// Sign bit: `true` means the row carries a −1 phase.
    r: bool,
}

impl Row {
    fn zero(words: usize) -> Self {
        Row {
            x: vec![0; words],
            z: vec![0; words],
            r: false,
        }
    }

    #[inline]
    fn get_x(&self, q: usize) -> bool {
        self.x[q >> 6] >> (q & 63) & 1 == 1
    }

    #[inline]
    fn get_z(&self, q: usize) -> bool {
        self.z[q >> 6] >> (q & 63) & 1 == 1
    }

    #[inline]
    fn set_x(&mut self, q: usize, v: bool) {
        let (w, b) = (q >> 6, q & 63);
        self.x[w] = (self.x[w] & !(1 << b)) | ((v as u64) << b);
    }

    #[inline]
    fn set_z(&mut self, q: usize, v: bool) {
        let (w, b) = (q >> 6, q & 63);
        self.z[w] = (self.z[w] & !(1 << b)) | ((v as u64) << b);
    }
}

/// The phase exponent contribution g(x1,z1,x2,z2) ∈ {−1, 0, 1} of
/// multiplying two single-qubit Paulis (Aaronson–Gottesman eq. for
/// `rowsum`).
#[inline]
fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
    match (x1, z1) {
        (false, false) => 0,
        (true, true) => (z2 as i32) - (x2 as i32),
        (true, false) => (z2 as i32) * (2 * (x2 as i32) - 1),
        (false, true) => (x2 as i32) * (1 - 2 * (z2 as i32)),
    }
}

/// A stabilizer state on `n` qubits, initialized to `|0…0⟩`.
#[derive(Clone, Debug)]
pub struct StabilizerState {
    n: usize,
    words: usize,
    /// Rows `0..n` are destabilizers, `n..2n` stabilizers.
    rows: Vec<Row>,
}

/// A stabilizer row's qubit-packed `x`/`z` bit-planes, as captured by
/// [`StabilizerState::measure_witness`] before a random-outcome
/// collapse.
pub type Witness = (Vec<u64>, Vec<u64>);

/// The outcome of a stabilizer measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeasureOutcome {
    /// The measured bit.
    pub bit: bool,
    /// `true` if the outcome was uniformly random (the qubit was in a
    /// superposition w.r.t. Z), `false` if it was determined.
    pub random: bool,
}

impl StabilizerState {
    /// Creates the all-zeros stabilizer state on `n` qubits. A
    /// zero-qubit tableau has no rows to hold and is refused as an
    /// error value, like every other backend entry point.
    pub fn new(n: usize) -> Result<Self, QclabError> {
        if n == 0 {
            return Err(QclabError::Unavailable(
                "stabilizer tableau requires at least one qubit".into(),
            ));
        }
        let words = n.div_ceil(64);
        let mut rows = vec![Row::zero(words); 2 * n];
        for q in 0..n {
            rows[q].set_x(q, true); // destabilizer X_q
            rows[n + q].set_z(q, true); // stabilizer Z_q
        }
        Ok(StabilizerState { n, words, rows })
    }

    /// Number of qubits.
    pub fn nb_qubits(&self) -> usize {
        self.n
    }

    /// Hadamard on `q`: swaps X and Z components.
    pub fn h(&mut self, q: usize) {
        for row in &mut self.rows {
            let x = row.get_x(q);
            let z = row.get_z(q);
            row.r ^= x & z;
            row.set_x(q, z);
            row.set_z(q, x);
        }
    }

    /// Phase gate S on `q`.
    pub fn s(&mut self, q: usize) {
        for row in &mut self.rows {
            let x = row.get_x(q);
            let z = row.get_z(q);
            row.r ^= x & z;
            row.set_z(q, x ^ z);
        }
    }

    /// S† on `q` (three S gates).
    pub fn sdg(&mut self, q: usize) {
        self.s(q);
        self.s(q);
        self.s(q);
    }

    /// CNOT with control `c` and target `t`.
    pub fn cnot(&mut self, c: usize, t: usize) {
        assert_ne!(c, t);
        for row in &mut self.rows {
            let xc = row.get_x(c);
            let zc = row.get_z(c);
            let xt = row.get_x(t);
            let zt = row.get_z(t);
            row.r ^= xc & zt & (xt ^ zc ^ true);
            row.set_x(t, xt ^ xc);
            row.set_z(c, zc ^ zt);
        }
    }

    /// Pauli X on `q` (phase-only tableau update).
    pub fn x(&mut self, q: usize) {
        for row in &mut self.rows {
            row.r ^= row.get_z(q);
        }
    }

    /// Pauli Z on `q`.
    pub fn z(&mut self, q: usize) {
        for row in &mut self.rows {
            row.r ^= row.get_x(q);
        }
    }

    /// Pauli Y on `q`.
    pub fn y(&mut self, q: usize) {
        for row in &mut self.rows {
            row.r ^= row.get_x(q) ^ row.get_z(q);
        }
    }

    /// `rows[h] := rows[h] · rows[i]`, tracking the sign via the phase
    /// function `g`.
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase: i32 = 2 * (self.rows[h].r as i32) + 2 * (self.rows[i].r as i32);
        for q in 0..self.n {
            phase += g(
                self.rows[i].get_x(q),
                self.rows[i].get_z(q),
                self.rows[h].get_x(q),
                self.rows[h].get_z(q),
            );
        }
        phase = phase.rem_euclid(4);
        debug_assert!(phase == 0 || phase == 2, "non-Hermitian row product");
        let (ix, iz) = (self.rows[i].x.clone(), self.rows[i].z.clone());
        let row_h = &mut self.rows[h];
        for w in 0..self.words {
            row_h.x[w] ^= ix[w];
            row_h.z[w] ^= iz[w];
        }
        row_h.r = phase == 2;
    }

    /// Measures qubit `q` in the Z basis, consuming randomness from `rng`
    /// when the outcome is not determined.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> MeasureOutcome {
        match self.find_random_stabilizer(q) {
            Some(p) => {
                let bit = rng.gen::<bool>();
                self.collapse(q, p, bit);
                MeasureOutcome { bit, random: true }
            }
            None => MeasureOutcome {
                bit: self.deterministic_outcome(q),
                random: false,
            },
        }
    }

    /// Measures qubit `q` in the Z basis like
    /// [`measure`](Self::measure), additionally returning the *witness*
    /// of a random outcome: the anticommuting stabilizer row's `x`/`z`
    /// bit-planes (qubit-packed), captured before the collapse. The
    /// witness maps one measurement branch onto the other — the
    /// Pauli-frame sampler records it during its reference run, and
    /// multiplying a shot's frame by the witness moves that shot onto
    /// the opposite branch consistently (its sign is irrelevant: `±P`
    /// act identically on a frame).
    pub fn measure_witness(
        &mut self,
        q: usize,
        rng: &mut impl Rng,
    ) -> (MeasureOutcome, Option<Witness>) {
        match self.find_random_stabilizer(q) {
            Some(p) => {
                let witness = (self.rows[p].x.clone(), self.rows[p].z.clone());
                let bit = rng.gen::<bool>();
                self.collapse(q, p, bit);
                (MeasureOutcome { bit, random: true }, Some(witness))
            }
            None => (
                MeasureOutcome {
                    bit: self.deterministic_outcome(q),
                    random: false,
                },
                None,
            ),
        }
    }

    /// Measures qubit `q`, forcing the outcome to `bit` when it is
    /// random (used to follow a specific branch of a statevector
    /// simulation). Returns whether the outcome was random.
    pub fn measure_forced(&mut self, q: usize, bit: bool) -> Result<MeasureOutcome, QclabError> {
        match self.find_random_stabilizer(q) {
            Some(p) => {
                self.collapse(q, p, bit);
                Ok(MeasureOutcome { bit, random: true })
            }
            None => {
                let det = self.deterministic_outcome(q);
                if det != bit {
                    return Err(QclabError::Unavailable(format!(
                        "outcome {} on qubit {q} has probability 0",
                        bit as u8
                    )));
                }
                Ok(MeasureOutcome { bit, random: false })
            }
        }
    }

    /// A stabilizer row (index in `n..2n`) anticommuting with `Z_q`, if
    /// any — its existence means the measurement outcome is random.
    fn find_random_stabilizer(&self, q: usize) -> Option<usize> {
        (self.n..2 * self.n).find(|&p| self.rows[p].get_x(q))
    }

    fn collapse(&mut self, q: usize, p: usize, bit: bool) {
        // every other row with x_q = 1 absorbs row p; the destabilizer
        // partner p - n is skipped — it anticommutes with row p (an
        // anti-Hermitian product) and is overwritten below anyway
        for i in 0..2 * self.n {
            if i != p && i != p - self.n && self.rows[i].get_x(q) {
                self.rowsum(i, p);
            }
        }
        // row p becomes the new stabilizer ±Z_q; its old value moves to
        // the destabilizer slot
        self.rows[p - self.n] = self.rows[p].clone();
        let mut new_row = Row::zero(self.words);
        new_row.set_z(q, true);
        new_row.r = bit;
        self.rows[p] = new_row;
    }

    fn deterministic_outcome(&mut self, q: usize) -> bool {
        // scratch row: product of stabilizers whose destabilizer partner
        // anticommutes with Z_q
        let scratch_idx = self.rows.len();
        self.rows.push(Row::zero(self.words));
        for i in 0..self.n {
            if self.rows[i].get_x(q) {
                self.rowsum(scratch_idx, self.n + i);
            }
        }
        let r = self.rows[scratch_idx].r;
        self.rows.pop();
        r
    }

    /// Applies a circuit gate; errors on non-Clifford gates.
    pub fn apply_gate(&mut self, gate: &Gate) -> Result<(), QclabError> {
        match gate {
            Gate::Identity(_) => {}
            Gate::Hadamard(q) => self.h(*q),
            Gate::S(q) => self.s(*q),
            Gate::Sdg(q) => self.sdg(*q),
            Gate::PauliX(q) => self.x(*q),
            Gate::PauliY(q) => self.y(*q),
            Gate::PauliZ(q) => self.z(*q),
            Gate::Swap(a, b) => {
                self.cnot(*a, *b);
                self.cnot(*b, *a);
                self.cnot(*a, *b);
            }
            Gate::Controlled {
                controls,
                control_states,
                target,
            } if controls.len() == 1 && control_states[0] == 1 => {
                let c = controls[0];
                match &**target {
                    Gate::PauliX(t) => self.cnot(c, *t),
                    Gate::PauliZ(t) => {
                        // CZ = H(t) CX H(t)
                        self.h(*t);
                        self.cnot(c, *t);
                        self.h(*t);
                    }
                    Gate::PauliY(t) => {
                        // CY = S(t) CX S†(t)
                        self.sdg(*t);
                        self.cnot(c, *t);
                        self.s(*t);
                    }
                    other => {
                        return Err(QclabError::Unavailable(format!(
                            "controlled {} is not Clifford",
                            other.name()
                        )))
                    }
                }
            }
            other => {
                return Err(QclabError::Unavailable(format!(
                    "gate {} is not Clifford (stabilizer backend)",
                    other.name()
                )))
            }
        }
        Ok(())
    }

    /// Measures a qubit in the measurement's basis by rotating it into
    /// the computational basis (`V†`), Z-measuring, and rotating back
    /// (`V`) — mirroring the state-vector backends' basis handling. X
    /// and Y bases are Clifford rotations (`V = H` resp. `V = S·H`); a
    /// custom basis is not representable on the tableau.
    pub fn measure_in_basis(
        &mut self,
        m: &Measurement,
        rng: &mut impl Rng,
    ) -> Result<MeasureOutcome, QclabError> {
        let q = m.qubit();
        match m.basis() {
            Basis::Z => Ok(self.measure(q, rng)),
            Basis::X => {
                // V = H is self-adjoint
                self.h(q);
                let out = self.measure(q, rng);
                self.h(q);
                Ok(out)
            }
            Basis::Y => {
                // V = S·H, so V† = H·S†: apply S† then H
                self.sdg(q);
                self.h(q);
                let out = self.measure(q, rng);
                self.h(q);
                self.s(q);
                Ok(out)
            }
            Basis::Custom { .. } => Err(QclabError::Unavailable(format!(
                "custom measurement basis {} is not Clifford (stabilizer backend)",
                m.basis().label()
            ))),
        }
    }

    /// The stabilizer generators as strings like `+XZI` (sign, then one
    /// Pauli letter per qubit) — for inspection and tests.
    pub fn stabilizer_strings(&self) -> Vec<String> {
        (self.n..2 * self.n)
            .map(|i| {
                let row = &self.rows[i];
                let mut s = String::with_capacity(self.n + 1);
                s.push(if row.r { '-' } else { '+' });
                for q in 0..self.n {
                    s.push(match (row.get_x(q), row.get_z(q)) {
                        (false, false) => 'I',
                        (true, false) => 'X',
                        (false, true) => 'Z',
                        (true, true) => 'Y',
                    });
                }
                s
            })
            .collect()
    }
}

/// Whether the tableau — and the Pauli-frame sampler built on top of
/// it — can execute `gate` exactly: the Clifford generators
/// H/S/S†/Paulis/Swap plus singly-controlled Paulis (CX/CY/CZ).
/// Mirrors the accepting arms of [`StabilizerState::apply_gate`].
pub fn is_clifford_gate(gate: &Gate) -> bool {
    match gate {
        Gate::Identity(_)
        | Gate::Hadamard(_)
        | Gate::S(_)
        | Gate::Sdg(_)
        | Gate::PauliX(_)
        | Gate::PauliY(_)
        | Gate::PauliZ(_)
        | Gate::Swap(_, _) => true,
        Gate::Controlled {
            controls,
            control_states,
            target,
        } => {
            controls.len() == 1
                && control_states[0] == 1
                && matches!(
                    &**target,
                    Gate::PauliX(_) | Gate::PauliY(_) | Gate::PauliZ(_)
                )
        }
        _ => false,
    }
}

/// The outcome of running a circuit on the stabilizer backend.
#[derive(Clone, Debug)]
pub struct StabilizerRun {
    /// Final tableau.
    pub state: StabilizerState,
    /// Concatenated measurement outcomes, in execution order — the same
    /// record format as the state-vector and trajectory backends.
    pub record: String,
}

/// Executes a lowered program on a fresh tableau: gates must be
/// Clifford, measurements sample through `rng`, resets force `|0⟩`,
/// fences are no-ops. This is the stabilizer backend's executor over the
/// shared [`CompiledProgram`] IR.
pub fn run_program(
    program: &CompiledProgram,
    rng: &mut impl Rng,
) -> Result<StabilizerRun, QclabError> {
    run_program_controlled(program, rng, &ExecutionControl::none())
}

/// [`run_program`] under an [`ExecutionControl`]: polls the
/// deadline/cancel token at op boundaries, so long tableau runs stop
/// cooperatively. The checks never draw from `rng`, so a run that
/// completes under a generous deadline is bit-identical to one without
/// control.
pub fn run_program_controlled(
    program: &CompiledProgram,
    rng: &mut impl Rng,
    control: &ExecutionControl,
) -> Result<StabilizerRun, QclabError> {
    let mut state = StabilizerState::new(program.nb_qubits())?;
    let mut record = String::new();
    let mut ticker = control.ticker();
    for op in program.ops() {
        match op {
            ProgramOp::Gate(g) => state.apply_gate(g)?,
            ProgramOp::Fence(_) => {}
            ProgramOp::Measure(m) => {
                let out = state.measure_in_basis(m, rng)?;
                record.push(if out.bit { '1' } else { '0' });
            }
            ProgramOp::Reset(q) => {
                let out = state.measure(*q, rng);
                if out.bit {
                    state.x(*q);
                }
            }
            // the tableau has no amplitude layout to permute; stabilizer
            // programs are lowered unfused/unremapped (see below), so
            // this arm never fires on plans built by `run_stabilizer`
            ProgramOp::Permute { .. } => {
                return Err(QclabError::Unavailable(
                    "stabilizer backend cannot execute a relabeled plan — \
                     lower with PlanOptions::unfused()"
                        .into(),
                ))
            }
        }
        ticker.tick()?;
    }
    Ok(StabilizerRun { state, record })
}

/// Runs a circuit on the stabilizer backend from `|0…0⟩`. The circuit is
/// lowered **unfused** — fused blocks are dense `Custom` unitaries the
/// tableau cannot absorb even when every constituent gate is Clifford.
pub fn run_stabilizer(
    circuit: &crate::circuit::QCircuit,
    rng: &mut impl Rng,
) -> Result<StabilizerRun, QclabError> {
    let program = circuit.compile_with(&PlanOptions::unfused());
    run_program(&program, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn initial_state_stabilized_by_z() {
        let s = StabilizerState::new(3).unwrap();
        assert_eq!(s.stabilizer_strings(), vec!["+ZII", "+IZI", "+IIZ"]);
    }

    #[test]
    fn zero_qubit_tableau_is_refused_not_a_panic() {
        // every backend entry point reports an empty register as a
        // proper error; the tableau is no exception
        match StabilizerState::new(0) {
            Err(QclabError::Unavailable(msg)) => assert!(msg.contains("at least one qubit")),
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }

    #[test]
    fn hadamard_turns_z_into_x() {
        let mut s = StabilizerState::new(2).unwrap();
        s.h(0);
        assert_eq!(
            s.stabilizer_strings(),
            vec!["+XII".replace("II", "I"), "+IZ".into()]
        );
    }

    #[test]
    fn bell_state_stabilizers() {
        let mut s = StabilizerState::new(2).unwrap();
        s.h(0);
        s.cnot(0, 1);
        let stabs = s.stabilizer_strings();
        assert_eq!(stabs, vec!["+XX", "+ZZ"]);
    }

    #[test]
    fn pauli_gates_flip_signs() {
        let mut s = StabilizerState::new(1).unwrap();
        s.x(0);
        assert_eq!(s.stabilizer_strings(), vec!["-Z"]);
        s.x(0);
        assert_eq!(s.stabilizer_strings(), vec!["+Z"]);
    }

    #[test]
    fn s_gate_squares_to_z() {
        let mut a = StabilizerState::new(1).unwrap();
        a.h(0); // stabilizer +X
        a.s(0);
        a.s(0);
        let mut b = StabilizerState::new(1).unwrap();
        b.h(0);
        b.z(0);
        assert_eq!(a.stabilizer_strings(), b.stabilizer_strings());
    }

    #[test]
    fn deterministic_measurement_of_basis_state() {
        let mut s = StabilizerState::new(2).unwrap();
        s.x(0);
        let mut rng = StdRng::seed_from_u64(1);
        let m0 = s.measure(0, &mut rng);
        assert!(!m0.random);
        assert!(m0.bit);
        let m1 = s.measure(1, &mut rng);
        assert!(!m1.random);
        assert!(!m1.bit);
    }

    #[test]
    fn plus_state_measurement_is_random_then_fixed() {
        let mut s = StabilizerState::new(1).unwrap();
        s.h(0);
        let mut rng = StdRng::seed_from_u64(7);
        let first = s.measure(0, &mut rng);
        assert!(first.random);
        // repeated measurement is now deterministic and equal
        let second = s.measure(0, &mut rng);
        assert!(!second.random);
        assert_eq!(second.bit, first.bit);
    }

    #[test]
    fn ghz_measurements_are_perfectly_correlated() {
        for seed in 0..20u64 {
            let n = 8;
            let mut s = StabilizerState::new(n).unwrap();
            s.h(0);
            for q in 1..n {
                s.cnot(q - 1, q);
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let first = s.measure(0, &mut rng);
            assert!(first.random);
            for q in 1..n {
                let m = s.measure(q, &mut rng);
                assert!(!m.random, "later GHZ measurement must be determined");
                assert_eq!(m.bit, first.bit);
            }
        }
    }

    #[test]
    fn forced_measurement_rejects_impossible_outcomes() {
        let mut s = StabilizerState::new(1).unwrap();
        s.x(0); // |1>
        assert!(s.measure_forced(0, false).is_err());
        assert!(s.measure_forced(0, true).is_ok());
    }

    #[test]
    fn apply_gate_accepts_cliffords_and_rejects_t() {
        let mut s = StabilizerState::new(3).unwrap();
        use crate::gates::factories::*;
        for g in [
            Hadamard::new(0),
            SGate::new(1),
            SdgGate::new(2),
            PauliX::new(0),
            PauliY::new(1),
            PauliZ::new(2),
            CNOT::new(0, 1),
            CZ::new(1, 2),
            CY::new(0, 2),
            SwapGate::new(0, 2),
        ] {
            s.apply_gate(&g).unwrap();
        }
        assert!(s.apply_gate(&TGate::new(0)).is_err());
        assert!(s.apply_gate(&RotationX::new(0, 0.5)).is_err());
        assert!(s.apply_gate(&Toffoli::new(0, 1, 2)).is_err());
    }

    #[test]
    fn swap_moves_excitation() {
        let mut s = StabilizerState::new(2).unwrap();
        s.x(0);
        use crate::gates::factories::SwapGate;
        s.apply_gate(&SwapGate::new(0, 1)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!s.measure(0, &mut rng).bit);
        assert!(s.measure(1, &mut rng).bit);
    }

    #[test]
    fn large_register_is_cheap() {
        // 2048 qubits: far beyond any state vector; must stay fast
        let n = 2048;
        let mut s = StabilizerState::new(n).unwrap();
        s.h(0);
        for q in 1..n {
            s.cnot(q - 1, q);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let first = s.measure(0, &mut rng);
        let last = s.measure(n - 1, &mut rng);
        assert_eq!(first.bit, last.bit);
    }

    #[test]
    fn x_and_y_basis_measurements_are_deterministic_on_eigenstates() {
        use crate::gates::factories::{Hadamard, SGate};
        let mut rng = StdRng::seed_from_u64(5);

        // H|0> = |+>: X-basis measurement reads 0 deterministically
        let mut s = StabilizerState::new(1).unwrap();
        s.h(0);
        let out = s.measure_in_basis(&Measurement::x(0), &mut rng).unwrap();
        assert!(!out.bit);
        assert!(!out.random);
        // the rotate-back leaves the state an X eigenstate
        assert_eq!(s.stabilizer_strings(), vec!["+X"]);

        // S·H|0> = |+i>: Y-basis measurement reads 0 deterministically
        let mut s = StabilizerState::new(1).unwrap();
        s.apply_gate(&Hadamard::new(0)).unwrap();
        s.apply_gate(&SGate::new(0)).unwrap();
        let out = s.measure_in_basis(&Measurement::y(0), &mut rng).unwrap();
        assert!(!out.bit);
        assert!(!out.random);
        assert_eq!(s.stabilizer_strings(), vec!["+Y"]);

        // |0> in the Y basis is uniformly random
        let mut s = StabilizerState::new(1).unwrap();
        let out = s.measure_in_basis(&Measurement::y(0), &mut rng).unwrap();
        assert!(out.random);

        // custom bases are rejected, not silently mis-measured
        let mut s = StabilizerState::new(1).unwrap();
        let custom = Measurement::in_basis(0, "w", Basis::X.change_matrix()).unwrap();
        assert!(matches!(
            s.measure_in_basis(&custom, &mut rng),
            Err(QclabError::Unavailable(_))
        ));
    }

    #[test]
    fn run_stabilizer_executes_subcircuits_fences_and_resets() {
        use crate::circuit::{CircuitItem, QCircuit};
        use crate::gates::factories::{Hadamard, CNOT};
        use crate::measurement::Measurement;

        // GHZ prep inside a sub-circuit, a barrier, then measure + reset
        let mut sub = QCircuit::new(2);
        sub.push_back(Hadamard::new(0));
        sub.push_back(CNOT::new(0, 1));
        let mut c = QCircuit::new(3);
        c.push_back_at(1, sub).unwrap();
        c.push_back(CircuitItem::Barrier(vec![1, 2]));
        c.push_back(Measurement::z(1));
        c.push_back(Measurement::z(2));
        c.push_back(CircuitItem::Reset(1));
        c.push_back(Measurement::z(1));

        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let run = run_stabilizer(&c, &mut rng).unwrap();
            let bits: Vec<char> = run.record.chars().collect();
            assert_eq!(bits.len(), 3);
            // Bell pair: perfectly correlated; reset: always reads 0
            assert_eq!(bits[0], bits[1]);
            assert_eq!(bits[2], '0');
        }

        // non-Clifford circuits are rejected by the same runner
        let mut bad = QCircuit::new(1);
        bad.push_back(crate::gates::factories::TGate::new(0));
        let mut rng = StdRng::seed_from_u64(0);
        assert!(run_stabilizer(&bad, &mut rng).is_err());
    }
}
