//! Sparse extended-unitary backend (the MATLAB QCLAB code path).
//!
//! Paper Sec. 3.2: QCLAB applies a gate `U'` by forming the sparse
//! register-wide unitary `U = I_l ⊗ U' ⊗ I_r` and multiplying it with the
//! state vector. This module reproduces that strategy exactly — for every
//! gate application a fresh [`CsrMat`] of `O(2^n)` stored entries is
//! built and applied. It is the reference backend the optimized kernels
//! of [`super::kernel`] are benchmarked against (experiment F1), and the
//! two backends are property-tested to agree on random circuits.

use crate::gates::Gate;
use qclab_math::bits;
use qclab_math::scalar::{cr, C64};
use qclab_math::{CVec, CsrMat};

/// Builds the sparse `2^n x 2^n` unitary implementing `gate` on an
/// `n`-qubit register (controls included).
pub fn extended_unitary(gate: &Gate, n: usize) -> CsrMat {
    let dim = 1usize << n;
    let targets = gate.targets();
    let matrix = gate.target_matrix();
    let controls = gate.controls();
    let k = targets.len();
    let sub_dim = 1usize << k;

    let mut triplets: Vec<(usize, usize, C64)> = Vec::with_capacity(dim * sub_dim.min(4));

    'cols: for col in 0..dim {
        for &(q, s) in &controls {
            if bits::qubit_bit(col, q, n) != s as usize {
                // control not satisfied: identity column
                triplets.push((col, col, cr(1.0)));
                continue 'cols;
            }
        }
        let sub_col = bits::gather_bits(col, &targets, n);
        for sub_row in 0..sub_dim {
            let v = matrix[(sub_row, sub_col)];
            if v.norm() > 0.0 {
                let row = bits::scatter_bits(col, sub_row, &targets, n);
                triplets.push((row, col, v));
            }
        }
    }

    CsrMat::from_triplets(dim, dim, triplets)
}

/// Applies `gate` to `state` by building the extended sparse unitary and
/// multiplying — the MATLAB-style gate application.
pub fn apply_gate(gate: &Gate, state: &mut CVec, n: usize) {
    debug_assert_eq!(state.len(), 1usize << n);
    let u = extended_unitary(gate, n);
    let out = u.matvec(state);
    state.0 = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::factories::*;

    const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn extended_hadamard_is_unitary() {
        let u = extended_unitary(&Hadamard::new(1), 3);
        assert!(u.to_dense().is_unitary(1e-12));
        assert_eq!(u.rows(), 8);
    }

    #[test]
    fn extended_unitary_matches_kron_for_middle_qubit() {
        // I ⊗ H ⊗ I on 3 qubits
        let u = extended_unitary(&Hadamard::new(1), 3).to_dense();
        let h = crate::gates::matrices::hadamard();
        let manual = h.embed(2, 2);
        assert!(u.approx_eq(&manual, 1e-15));
    }

    #[test]
    fn extended_cnot_nonadjacent() {
        // CNOT(0,2) on 3 qubits: |100> -> |101>, |101> -> |100>
        let u = extended_unitary(&CNOT::new(0, 2), 3).to_dense();
        assert!(u.is_unitary(1e-12));
        assert!((u[(5, 4)].re - 1.0).abs() < 1e-15);
        assert!((u[(4, 5)].re - 1.0).abs() < 1e-15);
        assert!((u[(0, 0)].re - 1.0).abs() < 1e-15);
    }

    #[test]
    fn sparse_structure_is_compact() {
        // a 1-qubit dense gate stores at most 2 entries per column
        let u = extended_unitary(&Hadamard::new(4), 10);
        assert_eq!(u.nnz(), 2 * 1024);
        // a diagonal gate stores 1 entry per column
        let u = extended_unitary(&TGate::new(3), 10);
        assert_eq!(u.nnz(), 1024);
        // a controlled gate only expands satisfied-control columns
        let u = extended_unitary(&CNOT::new(0, 1), 10);
        assert_eq!(u.nnz(), 1024);
    }

    #[test]
    fn kron_backend_builds_bell_state() {
        let mut s = CVec::from_bitstring("00").unwrap();
        apply_gate(&Hadamard::new(0), &mut s, 2);
        apply_gate(&CNOT::new(0, 1), &mut s, 2);
        assert!((s[0].re - INV_SQRT2).abs() < 1e-15);
        assert!((s[3].re - INV_SQRT2).abs() < 1e-15);
    }

    #[test]
    fn backends_agree_on_gate_sample() {
        let n = 4;
        let gates = vec![
            Hadamard::new(0),
            PauliY::new(3),
            RotationX::new(1, 0.9),
            CNOT::new(2, 0),
            CZ::new(1, 3),
            SwapGate::new(0, 3),
            ISwapGate::new(1, 2),
            RotationZZ::new(0, 2, 0.5),
            MCX::new(&[0, 3], 1, &[1, 0]),
            CPhase::new(3, 0, 1.3),
        ];
        // a non-trivial starting state
        let mut a = CVec::basis_state(1 << n, 0);
        crate::sim::kernel::apply_gate(&Hadamard::new(0), &mut a, n);
        crate::sim::kernel::apply_gate(&RotationY::new(2, 0.4), &mut a, n);
        let mut b = a.clone();

        for g in &gates {
            crate::sim::kernel::apply_gate(g, &mut a, n);
            apply_gate(g, &mut b, n);
            assert!(a.approx_eq(&b, 1e-12), "backends diverge after {g}");
        }
    }
}
