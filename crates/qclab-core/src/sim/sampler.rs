//! Discrete-distribution sampling for shot execution.
//!
//! Every repeated-experiment workflow in the toolbox ends the same way:
//! a probability vector over outcomes (simulation branches, measured-
//! qubit marginals) has to be sampled `shots` times. The naive approach
//! — a linear cumulative scan per draw — costs `O(outcomes)` per shot
//! and dominated `Simulation::counts` for branch-heavy circuits. This
//! module provides the two standard constant-ish-time samplers:
//!
//! * [`AliasTable`] — Vose's alias method: `O(outcomes)` build, **O(1)**
//!   per draw (one uniform index + one biased coin). The right tool when
//!   many draws amortize the table build — `counts(shots)` and the
//!   trajectory engine's terminal-measurement fast path.
//! * [`CdfTable`] — cumulative sums + binary search: `O(outcomes)`
//!   build, `O(log outcomes)` per draw, no auxiliary alias array. The
//!   fallback for small outcome sets, where the scan is cache-resident
//!   and the alias bookkeeping buys nothing.
//!
//! [`DiscreteSampler::new`] picks between them by outcome count, so
//! callers just build one and draw.
//!
//! Weights need not be normalized — both samplers divide by the total —
//! but must be finite, non-negative and not all zero. Draws are
//! deterministic in the RNG stream: the same generator state always
//! yields the same outcome index, which is what makes seeded `counts`
//! and `(seed, shot)`-keyed trajectory sampling reproducible.

use crate::error::QclabError;
use rand::Rng;

/// Outcome counts at or below this size sample through a [`CdfTable`];
/// larger distributions build an [`AliasTable`]. At 32 entries the
/// cumulative vector fits in a few cache lines and a binary search beats
/// the alias method's extra indirection.
pub const ALIAS_THRESHOLD: usize = 32;

fn validate_weights(weights: &[f64]) -> Result<f64, QclabError> {
    if weights.is_empty() {
        return Err(QclabError::Unavailable(
            "cannot sample from an empty distribution".into(),
        ));
    }
    let mut total = 0.0;
    for &w in weights {
        if !w.is_finite() || w < 0.0 {
            return Err(QclabError::Unavailable(format!(
                "cannot sample from a distribution with weight {w}"
            )));
        }
        total += w;
    }
    if total <= 0.0 || !total.is_finite() {
        return Err(QclabError::Unavailable(
            "cannot sample from an all-zero distribution".into(),
        ));
    }
    Ok(total)
}

/// Vose's alias method: every outcome `i` owns one column split between
/// itself (with probability `prob[i]`) and a donor outcome `alias[i]`.
/// A draw picks a uniform column and flips the column's biased coin —
/// two RNG draws and two array reads per sample, independent of the
/// outcome count.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from (unnormalized) non-negative weights in
    /// `O(len)` time and `2 · len` words of memory.
    pub fn new(weights: &[f64]) -> Result<Self, QclabError> {
        let total = validate_weights(weights)?;
        let n = weights.len();
        let scale = n as f64 / total;
        // scaled weights: mean 1, split into under- and overfull columns
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<usize> = (0..n).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            // donor `l` tops the underfull column `s` up to exactly 1
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // numerical leftovers on either worklist are exactly-full columns
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Ok(AliasTable { prob, alias })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` for a zero-outcome table (never constructible via `new`).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index: uniform column, then the column's coin.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let col = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[col] {
            col
        } else {
            self.alias[col]
        }
    }
}

/// Cumulative-sum sampler: one `f64` per outcome, draws by binary search
/// over the running totals.
#[derive(Clone, Debug)]
pub struct CdfTable {
    /// `cum[i]` = sum of weights `0..=i`; `cum[len-1]` is the total.
    cum: Vec<f64>,
}

impl CdfTable {
    /// Builds the cumulative table from (unnormalized) weights.
    pub fn new(weights: &[f64]) -> Result<Self, QclabError> {
        validate_weights(weights)?;
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cum.push(acc);
        }
        Ok(CdfTable { cum })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// `true` for a zero-outcome table (never constructible via `new`).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Draws one outcome index: a uniform point in `[0, total)` mapped
    /// through the cumulative sums. Zero-weight outcomes are unreachable
    /// because the search skips empty cumulative intervals.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cum.last().expect("CdfTable is never empty");
        let r: f64 = rng.gen::<f64>() * total;
        // first index whose cumulative sum exceeds r
        let idx = self.cum.partition_point(|&c| c <= r);
        idx.min(self.cum.len() - 1)
    }
}

/// A discrete sampler that picks the right backend for the outcome
/// count: cumulative search up to [`ALIAS_THRESHOLD`] outcomes, the
/// alias method above it.
#[derive(Clone, Debug)]
pub enum DiscreteSampler {
    /// O(1)-per-draw alias table (large outcome sets).
    Alias(AliasTable),
    /// Cumulative binary search (small outcome sets).
    Cdf(CdfTable),
}

impl DiscreteSampler {
    /// Builds a sampler over (unnormalized) non-negative weights.
    pub fn new(weights: &[f64]) -> Result<Self, QclabError> {
        if weights.len() <= ALIAS_THRESHOLD {
            Ok(DiscreteSampler::Cdf(CdfTable::new(weights)?))
        } else {
            Ok(DiscreteSampler::Alias(AliasTable::new(weights)?))
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        match self {
            DiscreteSampler::Alias(t) => t.len(),
            DiscreteSampler::Cdf(t) => t.len(),
        }
    }

    /// `true` for a zero-outcome sampler (never constructible via `new`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Draws one outcome index.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        match self {
            DiscreteSampler::Alias(t) => t.sample(rng),
            DiscreteSampler::Cdf(t) => t.sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Pearson chi-square statistic of observed counts against expected
    /// probabilities (bins with negligible expectation are pooled away).
    fn chi_square(counts: &[u64], probs: &[f64], draws: u64) -> (f64, usize) {
        let mut stat = 0.0;
        let mut dof = 0usize;
        for (&c, &p) in counts.iter().zip(probs) {
            let expect = p * draws as f64;
            if expect < 5.0 {
                continue; // standard applicability rule
            }
            let d = c as f64 - expect;
            stat += d * d / expect;
            dof += 1;
        }
        (stat, dof.saturating_sub(1))
    }

    fn draw_histogram(sampler: &DiscreteSampler, draws: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; sampler.len()];
        for _ in 0..draws {
            counts[sampler.sample(&mut rng)] += 1;
        }
        counts
    }

    /// Conservative upper chi-square quantile: for any dof the statistic
    /// exceeds `dof + 5 √(2 dof) + 10` with probability well under 1e-4.
    fn chi_bound(dof: usize) -> f64 {
        dof as f64 + 5.0 * (2.0 * dof as f64).sqrt() + 10.0
    }

    #[test]
    fn alias_and_cdf_match_the_distribution_chi_square() {
        // a deliberately lopsided 64-outcome distribution with zeros
        let weights: Vec<f64> = (0..64)
            .map(|i| match i % 4 {
                0 => 0.0,
                1 => 1.0,
                2 => 0.2,
                _ => 5.0 + i as f64,
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let draws = 200_000u64;

        for sampler in [
            DiscreteSampler::Alias(AliasTable::new(&weights).unwrap()),
            DiscreteSampler::Cdf(CdfTable::new(&weights).unwrap()),
        ] {
            let counts = draw_histogram(&sampler, draws, 42);
            // zero-probability outcomes are never drawn
            for (i, &c) in counts.iter().enumerate() {
                if probs[i] == 0.0 {
                    assert_eq!(c, 0, "outcome {i} has zero probability");
                }
            }
            let (stat, dof) = chi_square(&counts, &probs, draws);
            assert!(dof > 10, "test must retain enough bins, got {dof}");
            assert!(
                stat < chi_bound(dof),
                "chi-square {stat:.1} over {dof} dof for {sampler:?}"
            );
        }
    }

    #[test]
    fn two_point_distribution_is_unbiased() {
        // p = 0.3/0.7 through both backends
        let weights = [0.3, 0.7];
        let draws = 100_000u64;
        for sampler in [
            DiscreteSampler::Alias(AliasTable::new(&weights).unwrap()),
            DiscreteSampler::new(&weights).unwrap(), // picks Cdf at len 2
        ] {
            let counts = draw_histogram(&sampler, draws, 7);
            let f0 = counts[0] as f64 / draws as f64;
            assert!((f0 - 0.3).abs() < 0.01, "P(0) = {f0} via {sampler:?}");
        }
    }

    #[test]
    fn sampler_choice_follows_the_threshold() {
        let small = vec![1.0; ALIAS_THRESHOLD];
        assert!(matches!(
            DiscreteSampler::new(&small).unwrap(),
            DiscreteSampler::Cdf(_)
        ));
        let large = vec![1.0; ALIAS_THRESHOLD + 1];
        assert!(matches!(
            DiscreteSampler::new(&large).unwrap(),
            DiscreteSampler::Alias(_)
        ));
    }

    #[test]
    fn deterministic_in_the_rng_stream() {
        let weights: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let sampler = DiscreteSampler::new(&weights).unwrap();
        let a = draw_histogram(&sampler, 1000, 5);
        let b = draw_histogram(&sampler, 1000, 5);
        assert_eq!(a, b);
        let c = draw_histogram(&sampler, 1000, 6);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn degenerate_single_outcome_always_wins() {
        let sampler = DiscreteSampler::new(&[4.2]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng), 0);
        }
        // a certain outcome among zeros is always drawn, both backends
        let mut weights = vec![0.0; 50];
        weights[17] = 1.0;
        for sampler in [
            DiscreteSampler::Alias(AliasTable::new(&weights).unwrap()),
            DiscreteSampler::Cdf(CdfTable::new(&weights).unwrap()),
        ] {
            for _ in 0..100 {
                assert_eq!(sampler.sample(&mut rng), 17, "{sampler:?}");
            }
        }
    }

    #[test]
    fn invalid_weight_vectors_are_rejected() {
        for bad in [
            vec![],
            vec![0.0, 0.0],
            vec![1.0, -0.5],
            vec![f64::NAN],
            vec![f64::INFINITY, 1.0],
        ] {
            assert!(AliasTable::new(&bad).is_err(), "alias accepted {bad:?}");
            assert!(CdfTable::new(&bad).is_err(), "cdf accepted {bad:?}");
            assert!(
                DiscreteSampler::new(&bad).is_err(),
                "sampler accepted {bad:?}"
            );
        }
    }

    #[test]
    fn unnormalized_weights_are_normalized() {
        // weights summing to 300: frequencies still follow the ratios
        let weights = [100.0, 200.0];
        let sampler = DiscreteSampler::new(&weights).unwrap();
        let counts = draw_histogram(&sampler, 30_000, 11);
        let f1 = counts[1] as f64 / 30_000.0;
        assert!((f1 - 2.0 / 3.0).abs() < 0.02, "P(1) = {f1}");
    }
}
